"""Security-critical memory regions (lookup tables).

Attacks, preloading, and the disable-cache scheme all need to reason
about "the M cache lines starting at M0" (Section V).  A
:class:`ProtectedRegion` is that contiguous region; a
:class:`RegionSet` groups several (e.g. the ten 1-KB AES tables).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List


@dataclass(frozen=True)
class ProtectedRegion:
    """Contiguous security-critical region: ``[base, base + size)`` bytes."""

    base: int
    size: int
    line_size: int = 64
    name: str = ""

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"region size must be positive, got {self.size}")
        if self.base % self.line_size:
            raise ValueError(
                f"region base 0x{self.base:x} not aligned to "
                f"{self.line_size}-byte lines"
            )

    @property
    def first_line(self) -> int:
        return self.base // self.line_size

    @property
    def num_lines(self) -> int:
        """M: the number of cache lines the region spans."""
        return -(-self.size // self.line_size)

    @property
    def lines(self) -> range:
        return range(self.first_line, self.first_line + self.num_lines)

    def contains_line(self, line_addr: int) -> bool:
        return self.first_line <= line_addr < self.first_line + self.num_lines

    def contains_byte(self, byte_addr: int) -> bool:
        return self.base <= byte_addr < self.base + self.size

    def line_of_offset(self, offset: int) -> int:
        """Line address of byte offset ``offset`` within the region."""
        if not 0 <= offset < self.size:
            raise ValueError(f"offset {offset} outside region of size {self.size}")
        return (self.base + offset) // self.line_size


class RegionSet:
    """A collection of protected regions with fast line membership."""

    def __init__(self, regions: Iterable[ProtectedRegion] = ()):
        self.regions: List[ProtectedRegion] = list(regions)
        self._lines = frozenset(
            line for region in self.regions for line in region.lines)

    def contains_line(self, line_addr: int) -> bool:
        return line_addr in self._lines

    @property
    def num_lines(self) -> int:
        return len(self._lines)

    def __iter__(self) -> Iterator[ProtectedRegion]:
        return iter(self.regions)

    def __len__(self) -> int:
        return len(self.regions)
