"""Scheme-plugin registry and the randomized-cache design zoo.

``import repro.schemes`` registers every built-in design (the six
legacy schemes plus skewed_random / chameleon / random_and_safe) in the
process-wide registry; all scheme dispatch in the codebase goes through
the helpers re-exported here.  Adding design N+1 is one module plus one
:func:`register` call — see the README "Scheme zoo" section for a
worked example.
"""

from repro.schemes.registry import (
    DEMAND,
    FILL_STRATEGIES,
    NOFILL_RANDOM,
    RANDOM_FILL,
    REGISTRY,
    SchemeRegistry,
    SchemeSpec,
    StoreGeometry,
    functional_scheme_names,
    get_scheme,
    random_fill_scheme_names,
    register,
    scheme_names,
    timing_scheme_names,
)

# Importing the package is what populates the registry.
import repro.schemes.builtin  # noqa: E402,F401  (registration side effects)

__all__ = [
    "DEMAND",
    "FILL_STRATEGIES",
    "NOFILL_RANDOM",
    "RANDOM_FILL",
    "REGISTRY",
    "SchemeRegistry",
    "SchemeSpec",
    "StoreGeometry",
    "functional_scheme_names",
    "get_scheme",
    "random_fill_scheme_names",
    "register",
    "scheme_names",
    "timing_scheme_names",
]
