"""L2 cache controller: unified second level backed by DRAM.

Table IV: 8-way, 2 MB, 20-cycle hit latency.  The L2 is modelled as a
blocking level (its latency is already small next to DRAM, and the L1
miss queue provides the overlap that matters).  An optional ``fill``
argument lets an L1 random fill *at both levels* be simulated
(Section VI studies L1+L2 random fill caches); by default every request
that misses fills the L2, as in a conventional inclusive-ish hierarchy.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.context import AccessContext, DEFAULT_CONTEXT
from repro.cache.set_associative import SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.cache.tagstore import TagStore
from repro.memory.dram import DramModel


class L2Cache:
    """Second-level cache + memory controller front end."""

    def __init__(self, tag_store: Optional[TagStore] = None,
                 dram: Optional[DramModel] = None,
                 size_bytes: int = 2 * 1024 * 1024,
                 associativity: int = 8,
                 line_size: int = 64,
                 hit_latency: int = 20):
        self.tag_store = tag_store if tag_store is not None else \
            SetAssociativeCache(size_bytes, associativity, line_size)
        self.dram = dram if dram is not None else DramModel()
        self.hit_latency = hit_latency
        self.stats = CacheStats()

    def access(self, line_addr: int, now: int,
               ctx: AccessContext = DEFAULT_CONTEXT,
               fill: bool = True) -> int:
        """Service a line request issued at cycle ``now``.

        Returns the cycle at which the line's data is available to the
        requester (critical word first at this granularity).
        """
        stats = self.stats
        stats.accesses += 1
        if self.tag_store.access(line_addr, ctx):
            stats.hits += 1
            return now + self.hit_latency
        stats.demand_misses += 1
        stats.next_level_requests += 1
        done = self.dram.access(line_addr, now + self.hit_latency)
        if fill:
            evicted = self.tag_store.fill(line_addr, ctx)
            stats.fills += 1
            if evicted is not None:
                stats.evictions += 1
        return done

    def probe(self, line_addr: int) -> bool:
        return self.tag_store.probe(line_addr)

    def flush(self) -> None:
        self.tag_store.flush()

    def reset_stats(self) -> None:
        self.stats.reset()
        self.dram.reset_stats()
