"""repro: a reproduction of "Random Fill Cache Architecture"
(Fangfei Liu and Ruby B. Lee, MICRO-47, 2014).

The package implements the paper's contribution — a cache whose fill
strategy replaces demand fetch with random fill within a configurable
neighborhood window — together with every substrate its evaluation
needs: a two-level cache/DRAM simulator, secure-cache baselines
(Newcache, PLcache, NoMo, RPcache), a from-scratch T-table AES-128,
the four classes of cache side-channel attacks, the paper's security
analyses, SPEC-like synthetic workloads, and an experiment harness
regenerating every table and figure.

Quick start::

    from repro import build_random_fill_hierarchy
    system = build_random_fill_hierarchy(seed=1)
    system.os.create_process(pid=1)
    system.os.schedule(pid=1)
    system.os.set_window(-16, 5)       # window [i-16, i+15]
    result = system.l1.access(0x10000, now=0)
"""

from repro.core import (
    RandomFillEngine,
    RandomFillOS,
    RandomFillPolicy,
    RandomFillWindow,
    build_random_fill_hierarchy,
)
from repro.cache import (
    AccessContext,
    DemandFetchPolicy,
    L1Controller,
    SetAssociativeCache,
    build_hierarchy,
)
from repro.crypto import AES128, TracedAES128
from repro.experiments import BASELINE_CONFIG, SimulatorConfig, build_scheme

__version__ = "1.0.0"

__all__ = [
    "AES128",
    "AccessContext",
    "BASELINE_CONFIG",
    "DemandFetchPolicy",
    "L1Controller",
    "RandomFillEngine",
    "RandomFillOS",
    "RandomFillPolicy",
    "RandomFillWindow",
    "SetAssociativeCache",
    "SimulatorConfig",
    "TracedAES128",
    "build_hierarchy",
    "build_random_fill_hierarchy",
    "build_scheme",
    "__version__",
]
