"""Shared reporting for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures; the
rows are printed (visible with ``pytest -s``) and saved under
``benchmarks/results/`` so EXPERIMENTS.md can reference them.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def save_report(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
