"""Tests for the columnar Trace container and the batched pre-decode."""

import numpy as np
import pytest

from repro.cpu.decode import TraceDecode
from repro.cpu.trace import (
    MemRef,
    Trace,
    instruction_count,
    materialize,
    validate_trace,
)

RECORDS = [(0, 1, 0), (64, 2, 1), (128, 4, 0), (64, 1, 0), (4096, 3, 1)]


class TestConstruction:
    def test_from_records_roundtrip(self):
        trace = Trace.from_records(RECORDS)
        assert list(trace) == RECORDS
        assert len(trace) == len(RECORDS)

    def test_from_columns_matches_from_records(self):
        columns = Trace.from_columns([r[0] for r in RECORDS],
                                     [r[1] for r in RECORDS],
                                     [r[2] for r in RECORDS])
        assert columns == Trace.from_records(RECORDS)

    def test_from_records_accepts_memrefs(self):
        trace = Trace.from_records([MemRef(0), MemRef(64, 2, 1)])
        assert list(trace) == [(0, 1, 0), (64, 2, 1)]

    def test_from_records_passes_through_trace(self):
        trace = Trace.from_records(RECORDS)
        assert Trace.from_records(trace) is trace

    def test_empty(self):
        trace = Trace.from_records([])
        assert len(trace) == 0
        assert list(trace) == []
        assert trace.instruction_count == 0

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError):
            Trace.from_columns([1, 2], [1], [0, 0])

    def test_bad_record_shape_rejected(self):
        with pytest.raises(ValueError):
            Trace.from_records([(1, 2)])

    def test_concat_mixes_traces_and_lists(self):
        merged = Trace.concat([Trace.from_records(RECORDS[:2]), RECORDS[2:]])
        assert merged == Trace.from_records(RECORDS)

    def test_concat_single_chunk_is_identity(self):
        trace = Trace.from_records(RECORDS)
        assert Trace.concat([trace]) is trace

    def test_concat_empty(self):
        assert len(Trace.concat([])) == 0


class TestSequenceProtocol:
    def test_iteration_yields_plain_int_tuples(self):
        record = next(iter(Trace.from_records(RECORDS)))
        assert type(record) is tuple
        assert all(type(field) is int for field in record)

    def test_getitem_int(self):
        trace = Trace.from_records(RECORDS)
        assert trace[1] == RECORDS[1]
        assert trace[-1] == RECORDS[-1]

    def test_slice_returns_trace_view(self):
        trace = Trace.from_records(RECORDS)
        tail = trace[2:]
        assert isinstance(tail, Trace)
        assert list(tail) == RECORDS[2:]
        # Zero-copy: the sliced columns are views of the parent buffers.
        assert np.shares_memory(tail.addr, trace.addr)

    def test_slice_memoized(self):
        trace = Trace.from_records(RECORDS)
        assert trace[2:] is trace[2:]
        assert trace[2:] is not trace[1:]

    def test_columns_read_only(self):
        trace = Trace.from_records(RECORDS)
        with pytest.raises(ValueError):
            trace.addr[0] = 1
        with pytest.raises(ValueError):
            trace[1:].gap[0] = 9

    def test_eq_against_record_list(self):
        trace = Trace.from_records(RECORDS)
        assert trace == RECORDS
        assert trace != RECORDS[:-1]
        assert trace != [(1, 1, 1)] * len(RECORDS)

    def test_unhashable_like_list(self):
        with pytest.raises(TypeError):
            hash(Trace.from_records(RECORDS))


class TestDerivedData:
    def test_instruction_count(self):
        trace = Trace.from_records(RECORDS)
        assert trace.instruction_count == sum(r[1] for r in RECORDS)
        # Module-level helper agrees on both representations.
        assert instruction_count(trace) == instruction_count(RECORDS)

    def test_records_memoized(self):
        trace = Trace.from_records(RECORDS)
        assert trace.records() is trace.records()
        assert trace.records() == RECORDS
        assert materialize(trace) == RECORDS

    def test_fingerprint_stable_across_routes(self):
        a = Trace.from_records(RECORDS)
        b = Trace.from_columns([r[0] for r in RECORDS],
                               [r[1] for r in RECORDS],
                               [r[2] for r in RECORDS])
        assert a.fingerprint == b.fingerprint

    def test_fingerprint_sensitive_to_every_column(self):
        base = Trace.from_records([(8, 2, 0)])
        assert base.fingerprint != Trace.from_records([(9, 2, 0)]).fingerprint
        assert base.fingerprint != Trace.from_records([(8, 3, 0)]).fingerprint
        assert base.fingerprint != Trace.from_records([(8, 2, 1)]).fingerprint

    def test_fingerprint_not_fooled_by_column_swap(self):
        # Same bytes distributed differently across columns must differ.
        a = Trace.from_columns([1, 2], [3, 3], [0, 0])
        b = Trace.from_columns([3, 3], [1, 2], [0, 0])
        assert a.fingerprint != b.fingerprint

    def test_validate_trace_accepts_columnar(self):
        assert list(validate_trace(Trace.from_records(RECORDS))) == RECORDS

    def test_validate_trace_still_rejects_bad_gap(self):
        with pytest.raises(ValueError):
            list(validate_trace(Trace.from_records([(0, 0, 0)])))


class TestTraceDecode:
    LINE_SHIFT = 6

    def decode(self):
        return Trace.from_records(RECORDS).decoded(self.LINE_SHIFT)

    def test_memoized_on_trace(self):
        trace = Trace.from_records(RECORDS)
        assert trace.decoded(6) is trace.decoded(6)
        assert trace.decoded(6) is not trace.decoded(5)

    def test_lines(self):
        decode = self.decode()
        expected = [r[0] >> self.LINE_SHIFT for r in RECORDS]
        assert decode.lines().tolist() == expected
        assert decode.lines_list() == expected
        assert decode.gaps_list() == [r[1] for r in RECORDS]
        assert decode.writes_list() == [r[2] for r in RECORDS]

    def test_set_indices_and_tags(self):
        decode = self.decode()
        num_sets = 8
        lines = decode.lines_list()
        assert decode.set_indices(num_sets).tolist() == \
            [line % num_sets for line in lines]
        assert decode.tags(num_sets).tolist() == \
            [line // num_sets for line in lines]

    def test_issue_steps_match_scalar_recurrence(self):
        gaps = [1, 7, 3, 4, 12, 1, 1, 5]
        trace = Trace.from_columns([0] * len(gaps), gaps, [0] * len(gaps))
        for width in (1, 2, 4):
            backlog, expected = 0, []
            for gap in gaps:
                backlog += gap
                expected.append(backlog // width)
                backlog %= width
            assert trace.decoded(0).issue_steps(width) == expected

    def test_issue_steps_rejects_zero_width(self):
        with pytest.raises(ValueError):
            self.decode().issue_steps(0)

    def test_warm_footprint_collapses_consecutive_runs(self):
        addrs = [0, 0, 64, 64, 64, 0, 128, 128]
        trace = Trace.from_columns(addrs, [1] * len(addrs), [0] * len(addrs))
        decode = trace.decoded(self.LINE_SHIFT)
        assert decode.warm_footprint(len(addrs)) == [0, 1, 0, 2]
        assert decode.warm_footprint(2) == [0]
        assert decode.warm_footprint(0) == []

    def test_negative_line_shift_rejected(self):
        with pytest.raises(ValueError):
            TraceDecode(Trace.from_records(RECORDS), -1)
