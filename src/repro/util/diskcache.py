"""Size bound for the on-disk caches under ``~/.cache/repro``.

Both disk layers — the trace cache (``traces/``) and the result cache
(``results/``) — grow without limit as sweeps vary their parameters, so
every store triggers an mtime-LRU sweep of its directory: when the
directory exceeds its byte budget, the least recently *used* entries
(oldest mtime; reads bump it) are deleted until it fits.  The budget is
``REPRO_CACHE_MAX_MB`` megabytes per directory (default 512); ``0`` or
a negative value disables eviction.

``python -m repro cache --stats/--clear`` reports and empties the same
directories.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

#: per-directory budget in megabytes when ``REPRO_CACHE_MAX_MB`` is unset
DEFAULT_MAX_MB = 512

_ENV_VAR = "REPRO_CACHE_MAX_MB"


def cache_root() -> str:
    """The shared parent of every on-disk cache layer."""
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def max_cache_bytes() -> Optional[int]:
    """Per-directory byte budget; ``None`` when eviction is disabled.

    A malformed ``REPRO_CACHE_MAX_MB`` raises :exc:`ValueError` naming
    the variable — silently falling back to the default would let a
    typo (``512MB``, ``1,024``) defeat the budget the user asked for.
    """
    raw = os.environ.get(_ENV_VAR, "").strip()
    if not raw:
        return DEFAULT_MAX_MB * 1024 * 1024
    try:
        megabytes = float(raw)
    except ValueError:
        raise ValueError(
            f"{_ENV_VAR} must be a number of megabytes "
            f"(0 or negative disables eviction), got {raw!r}") from None
    if megabytes != megabytes:  # NaN
        raise ValueError(f"{_ENV_VAR} must be a number of megabytes, "
                         f"got {raw!r}")
    if megabytes <= 0:
        return None
    return int(megabytes * 1024 * 1024)


def _scan(directory: str) -> List[Tuple[float, int, str]]:
    """``(mtime, size, path)`` per regular file, oldest first."""
    entries: List[Tuple[float, int, str]] = []
    try:
        with os.scandir(directory) as it:
            for entry in it:
                try:
                    if not entry.is_file(follow_symlinks=False):
                        continue
                    stat = entry.stat(follow_symlinks=False)
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, entry.path))
    except OSError:
        return []
    entries.sort()
    return entries


def dir_stats(directory: Optional[str]) -> Dict[str, int]:
    """``{"files": n, "bytes": total}`` for one cache directory."""
    if not directory:
        return {"files": 0, "bytes": 0}
    entries = _scan(directory)
    return {"files": len(entries),
            "bytes": sum(size for _, size, _ in entries)}


def evict_lru(directory: str, max_bytes: int) -> int:
    """Delete oldest-mtime files until the directory fits; returns the
    number of files removed."""
    entries = _scan(directory)
    total = sum(size for _, size, _ in entries)
    removed = 0
    for _mtime, size, path in entries:
        if total <= max_bytes:
            break
        try:
            os.unlink(path)
        except OSError:
            continue
        total -= size
        removed += 1
    return removed


def maybe_evict(directory: Optional[str]) -> int:
    """Apply the environment-configured budget to one cache directory."""
    if not directory:
        return 0
    budget = max_cache_bytes()
    if budget is None:
        return 0
    return evict_lru(directory, budget)


def clear_dir(directory: Optional[str]) -> Dict[str, int]:
    """Delete every file in one cache directory (non-recursive)."""
    if not directory:
        return {"files": 0, "bytes": 0}
    entries = _scan(directory)
    removed = 0
    freed = 0
    for _mtime, size, path in entries:
        try:
            os.unlink(path)
        except OSError:
            continue
        removed += 1
        freed += size
    return {"files": removed, "bytes": freed}
