"""``python -m repro`` — print the reproduction's scope and a smoke demo.

Lists the implemented systems and the table/figure -> bench mapping,
then runs a 5-second demonstration: the Flush-Reload attack against
demand fetch (succeeds) and against the random fill cache (fails).
"""

from repro import __version__
from repro.attacks import run_flush_reload_trials
from repro.cache.set_associative import SetAssociativeCache
from repro.core.window import RandomFillWindow
from repro.secure.region import ProtectedRegion

EXPERIMENTS = (
    ("Table I", "attack classification", "test_table1_attack_classification"),
    ("Figure 2", "collision-attack timing characteristic", "test_fig2_timing_characteristic"),
    ("Table III", "P1-P2 vs window size", "test_table3_p1p2"),
    ("Figure 5", "storage channel capacity", "test_fig5_channel_capacity"),
    ("Figure 6", "AES performance under defences", "test_fig6_crypto_performance"),
    ("Figure 7", "window size vs AES performance", "test_fig7_window_size"),
    ("Figure 8", "SMT co-runner throughput", "test_fig8_concurrent"),
    ("Figure 9", "Eff(d) locality profiles", "test_fig9_profiling"),
    ("Figure 10", "MPKI/IPC vs window shape", "test_fig10_mpki_ipc"),
    ("Sec. VII", "tagged prefetcher comparison", "test_sec7_prefetcher_comparison"),
    ("(extra)", "fill-path ablations", "test_ablation_fill_path"),
)


def main() -> None:
    print(f"repro {__version__} — Random Fill Cache Architecture "
          "(Liu & Lee, MICRO 2014)")
    print("\nReproduced experiments (pytest benchmarks/ --benchmark-only):")
    for figure, what, bench in EXPERIMENTS:
        print(f"  {figure:9s} {what:40s} benchmarks/{bench}.py")

    print("\nSmoke demo: Flush-Reload against a 1-KB table (16 lines)")
    region = ProtectedRegion(0x10000, 1024)
    for label, window in (("demand fetch", RandomFillWindow(0, 0)),
                          ("random fill [-16,+15]", RandomFillWindow(16, 15))):
        result = run_flush_reload_trials(
            SetAssociativeCache(32 * 1024, 4), region, window,
            trials=400, seed=1)
        print(f"  {label:22s} attacker accuracy {result.exact_accuracy:.2f}, "
              f"leakage {result.mutual_information:.2f} bits")
    print("\nSee README.md, DESIGN.md and EXPERIMENTS.md for the full story.")


if __name__ == "__main__":
    main()
