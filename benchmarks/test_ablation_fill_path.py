"""Ablation benches for the design choices DESIGN.md calls out.

Three micro-architectural decisions in the fill path were load-bearing
during calibration; each is ablated here on the libquantum stream:

* **MSHR reservation** — holding one MSHR back from fill requests keeps
  fill traffic from stalling the core;
* **NOFILL upgrade** — merging a random fill request into its line's
  own in-flight NOFILL entry (without it, a line whose only fill source
  is its own misses can never be installed);
* **MSHR count** — the paper's non-blocking story: random fill needs
  miss-level parallelism to be free.
"""

from _reporting import save_report

from repro.cache.mshr import RequestType
from repro.experiments.config import BASELINE_CONFIG, scaled
from repro.experiments.schemes import build_scheme
from repro.cpu.timing import TimingModel
from repro.util.tables import format_table
from repro.workloads.spec import make_workload


def run_stream(mshr_entries=4, fill_reserve=None, disable_upgrade=False,
               n_refs=60_000):
    from dataclasses import replace
    cfg = replace(BASELINE_CONFIG, mshr_entries=mshr_entries)
    scheme = build_scheme("random_fill", cfg, seed=3)
    scheme.os.set_rr(0, 15)
    l1 = scheme.l1
    if fill_reserve is not None:
        l1.fill_reserve = fill_reserve
    if disable_upgrade:
        # Revert to the naive drop-if-in-flight behaviour.
        original = l1._issue_random_fills

        def no_upgrade(now):
            kept = []
            while l1.fill_queue:
                line, ctx = l1.fill_queue.popleft()
                entry = l1.miss_queue.lookup(line)
                if entry is not None and \
                        entry.request_type is RequestType.NOFILL:
                    l1.stats.random_fill_dropped += 1
                    continue
                kept.append((line, ctx))
            l1.fill_queue.extend(kept)
            original(now)
        l1._issue_random_fills = no_upgrade
    trace = make_workload("libquantum", n_refs=n_refs, seed=1)
    return TimingModel(l1, issue_width=cfg.issue_width,
                       overlap_credit=cfg.overlap_credit).run(trace)


def run_all():
    n = scaled(60_000, minimum=10_000)
    return {
        "default": run_stream(n_refs=n),
        "no_reserve": run_stream(fill_reserve=0, n_refs=n),
        "no_upgrade": run_stream(disable_upgrade=True, n_refs=n),
        "mshr_1": run_stream(mshr_entries=1, n_refs=n),
        "mshr_8": run_stream(mshr_entries=8, n_refs=n),
    }


def test_ablation_fill_path(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # More MSHRs help the stream; one MSHR strangles it.
    assert results["mshr_8"].ipc >= results["mshr_1"].ipc
    # The default configuration is not dominated by either ablation.
    assert results["default"].ipc >= results["no_upgrade"].ipc * 0.95
    assert results["default"].ipc >= results["mshr_1"].ipc

    rows = [(name, f"{r.ipc:.3f}", f"{r.l1_mpki:.1f}",
             r.random_fill_issued) for name, r in results.items()]
    save_report("ablation_fill_path", format_table(
        ["configuration", "IPC", "L1 MPKI", "fills issued"], rows,
        title="Ablation: fill-path design choices on libquantum [0,15]"))
