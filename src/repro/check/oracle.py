"""Differential-oracle run driver for checked simulation mode.

:func:`checked_run` replaces ``TimingModel.run`` while a checker is
installed.  It executes the *real* fast path in chunks of
``checker.rate`` accesses — carrying the kernel's charge dict across
chunk boundaries so the chunked execution is bit-identical to the
monolithic one — and, between chunks:

* advances the naive :class:`~repro.check.reference.ReferenceModel`
  over the same accesses and diffs the full machine state (cycle
  count, L1 sets / MSHR file / fill queue, L2 sets, DRAM bank state,
  every stat counter) against the fast path, and
* sweeps the :mod:`~repro.check.invariants` catalogue over the L1.

Configurations the reference does not interpret (Newcache, PLcache,
locked contexts, exotic policies) still run chunked with the invariant
sweep — they just skip the state diff.

The returned :class:`~repro.cpu.timing.SimResult` is bit-identical to
an unchecked run of the same trace, so checked and unchecked results
share result-cache entries and every figure reproduced under
``REPRO_CHECK=1`` is the figure itself, revalidated.
"""

from __future__ import annotations

from typing import Optional

from repro.check import Checker, CheckViolation, _shorten
from repro.check.reference import ReferenceModel

_L1_FIELDS = ("accesses", "hits", "demand_misses", "mshr_merges", "fills",
              "evictions", "random_fill_issued", "random_fill_dropped",
              "next_level_requests")
_L2_FIELDS = ("accesses", "hits", "demand_misses", "fills", "evictions",
              "next_level_requests")


def _snapshot(l1, l2) -> dict:
    base = {"l1_" + f: getattr(l1.stats, f) for f in _L1_FIELDS}
    for field in _L2_FIELDS:
        base["l2_" + field] = getattr(l2.stats, field)
    dram = l2.dram
    base["dram_lines"] = dram.lines_transferred
    base["dram_row_hits"] = getattr(dram, "row_hits", 0)
    base["dram_row_misses"] = getattr(dram, "row_misses", 0)
    return base


def _result(model, base, instructions: int, cycles: int):
    from repro.cpu.timing import SimResult

    l1 = model.l1
    l2 = l1.next_level
    return SimResult(
        instructions=instructions,
        cycles=cycles,
        l1_accesses=l1.stats.accesses - base["l1_accesses"],
        l1_hits=l1.stats.hits - base["l1_hits"],
        l1_demand_misses=l1.stats.demand_misses - base["l1_demand_misses"],
        l2_accesses=l2.stats.accesses - base["l2_accesses"],
        l2_demand_misses=l2.stats.demand_misses - base["l2_demand_misses"],
        memory_lines=l2.dram.lines_transferred - base["dram_lines"],
        random_fill_issued=(l1.stats.random_fill_issued
                            - base["l1_random_fill_issued"]),
    )


def _diff_sets(kind: str, real_store, ref_sets, index: int) -> None:
    real_sets = real_store._sets
    if len(real_sets) != len(ref_sets):
        raise CheckViolation(
            "oracle-state", f"{kind}.tag_store",
            "set count diverged", index=index,
            expected=str(len(ref_sets)), actual=str(len(real_sets)))
    for set_index, (real_set, ref_set) in enumerate(zip(real_sets, ref_sets)):
        real_lines = [ls.line_addr for ls in real_set]
        if real_lines != ref_set:
            raise CheckViolation(
                "oracle-state", f"{kind}.tag_store",
                f"set {set_index} contents diverged from the reference "
                f"(MRU-first line order)", index=index,
                expected=_shorten(repr(ref_set)),
                actual=_shorten(repr(real_lines)))


def _diff_state(model, ref: ReferenceModel, now: int, base: dict,
                index: int) -> None:
    """Raise on the first component where fast path and reference differ."""
    l1 = model.l1
    l2 = l1.next_level
    if now != ref.now:
        raise CheckViolation(
            "oracle-timing", "cycle counter",
            "cycle count diverged from the reference", index=index,
            expected=str(ref.now), actual=str(now))
    _diff_sets("l1", l1.tag_store, ref.l1_sets, index)
    real_mshr = [(line, entry.complete_at, entry.request_type.name)
                 for line, entry in l1.miss_queue._entries.items()]
    ref_mshr = [(line, entry[0], entry[1].name)
                for line, entry in ref.mshr.items()]
    if real_mshr != ref_mshr:
        raise CheckViolation(
            "oracle-state", "l1.miss_queue",
            "MSHR entries diverged (line, complete_at, type, in "
            "allocation order)", index=index,
            expected=_shorten(repr(ref_mshr)),
            actual=_shorten(repr(real_mshr)))
    real_queue = [line for line, _ctx in l1.fill_queue]
    if real_queue != ref.fill_queue:
        raise CheckViolation(
            "oracle-state", "l1.fill_queue",
            "parked random-fill requests diverged", index=index,
            expected=_shorten(repr(ref.fill_queue)),
            actual=_shorten(repr(real_queue)))
    _diff_sets("l2", l2.tag_store, ref.l2_sets, index)
    dram = l2.dram
    if (dict(dram._open_row) != ref.open_row
            or dict(dram._bank_free_at) != ref.bank_free_at):
        raise CheckViolation(
            "oracle-state", "dram",
            "bank state (open rows / busy times) diverged", index=index,
            expected=_shorten(repr((ref.open_row, ref.bank_free_at))),
            actual=_shorten(repr((dict(dram._open_row),
                                  dict(dram._bank_free_at)))))
    actual_counters = _snapshot(l1, l2)
    for key, ref_value in ref.counters.items():
        real_value = actual_counters[key] - base[key]
        if real_value != ref_value:
            raise CheckViolation(
                "oracle-stats", key,
                "stat counter diverged from the reference", index=index,
                expected=str(ref_value), actual=str(real_value))


def checked_run(model, trace, ctx, start_cycle: int, checker: Checker):
    """Checked replacement for ``TimingModel.run`` (bit-identical)."""
    from repro.cpu.timing import Trace

    l1 = model.l1
    l2 = l1.next_level
    base = _snapshot(l1, l2)
    chunk = checker.rate
    if isinstance(trace, Trace):
        instructions = trace.instruction_count
        if model._fast_path_eligible(ctx):
            decode = trace.decoded(l1._line_shift)
            lines_l = decode.lines_list()
            steps_l = decode.issue_steps(model.issue_width)
            writes_l = decode.writes_list()
            ref = ReferenceModel.capture(model, ctx)
            return _run_fused(model, trace, lines_l, steps_l, writes_l, ctx,
                              start_cycle, checker, ref, base, instructions)
        records = trace.records()
    else:
        records = list(trace)
        instructions = sum(gap for _addr, gap, _write in records)
    return _run_records(model, records, ctx, start_cycle, checker, base,
                        instructions)


def _run_fused(model, trace, lines_l, steps_l, writes_l, ctx, start_cycle,
               checker: Checker, ref: Optional[ReferenceModel], base,
               instructions: int):
    """Chunked fused kernel, with the oracle in lockstep when captured."""
    l1 = model.l1
    if ref is not None:
        ref.now = start_cycle
        ref.checker = checker
    carry = {"charged": {}}
    now = start_cycle
    total = len(lines_l)
    for lo in range(0, total, checker.rate):
        hi = min(lo + checker.rate, total)
        result = model._run_columnar_fused(
            trace, lines_l[lo:hi], steps_l[lo:hi], writes_l[lo:hi], ctx, now,
            _carry=carry, _settle=False)
        now += result.cycles
        checker.checks_run += 1
        try:
            if ref is not None:
                ref.run_chunk(lines_l[lo:hi], steps_l[lo:hi], writes_l[lo:hi])
                _diff_state(model, ref, now, base, index=hi)
            from repro.check import invariants

            invariants.validate_l1(l1, index=hi)
        except CheckViolation:
            checker.violations += 1
            raise
    l1.settle()
    checker.checks_run += 1
    try:
        if ref is not None:
            ref.settle()
            _diff_state(model, ref, now, base, index=total)
        from repro.check import invariants

        invariants.validate_l1(l1, index=total)
    except CheckViolation:
        checker.violations += 1
        raise
    return _result(model, base, instructions, now - start_cycle)


def _run_records(model, records, ctx, start_cycle, checker: Checker, base,
                 instructions: int):
    """Chunked per-record path with the invariant sweep (no oracle)."""
    l1 = model.l1
    carry = {"charged": {}, "backlog": 0}
    now = start_cycle
    total = len(records)
    for lo in range(0, total, checker.rate):
        hi = min(lo + checker.rate, total)
        result = model._run_records(records[lo:hi], ctx, now,
                                    _carry=carry, _settle=False)
        now += result.cycles
        checker.validate_l1(l1, index=hi)
    l1.settle()
    checker.validate_l1(l1, index=total)
    return _result(model, base, instructions, now - start_cycle)
