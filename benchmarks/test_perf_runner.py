"""Runner smoke benchmark: columnar-engine speedups, result-cache warm
re-runs, and cache/jobs invariance.

Two generations of baselines, both measured on the reference container
(one CPU core, Python 3.11):

* the seed revision: 0.322 s per 100k-ref cell, 6.31 s for the 20k-ref
  Figure 10 sweep;
* the first runner optimisation pass (the committed ``BENCH_runner.json``
  before the columnar engine landed): 0.1408 s per cell, 2.9759 s for
  the sweep.

The bars below are the acceptance criteria for the columnar trace
engine and the content-addressed result cache:

* a **cold** Figure 10 sweep at ``jobs=1`` (result cache bypassed) must
  be >= 1.5x faster than the previous committed baseline,
* the **batched** cold sweep (the default path: one trace decode and
  one vectorized random-fill draw row per benchmark group) must be
  >= 1.5x faster than the same sweep with ``--no-batch``, and
  bit-identical to it,
* a **warm** identical re-run must be >= 10x faster than cold, served
  entirely from the result cache,
* results are bit-identical cold vs. warm (cache off vs. on) and
  ``jobs=1`` vs. ``jobs=N``,
* neither ``single_cell_s`` nor ``fig10_20k_sweep_s`` may regress more
  than 30% against the committed baseline (the CI perf smoke gate).

All gated timings are **process CPU time** (``time.process_time``),
min-of-N: the reference container shares its single core with bursty
background load, which inflates wall clock by 30%+ but leaves CPU time
within a few percent.  The baselines were wall-clock minima on an idle
core, which is the same quantity.

Timings land in ``BENCH_runner.json`` at the repository root alongside
the per-sweep entries the ``python -m repro sweep`` CLI records.
"""

import os
import shutil
import tempfile
import time
from pathlib import Path

from _reporting import save_report

from repro import check as check_mod

from repro.experiments.perf_general import figure10
from repro.runner import CellSpec, record_bench, resolve_jobs, run_cell
from repro.runner.pool import last_run_stats, run_context
from repro.runner.result_cache import RESULT_CACHE
from repro.util.tables import format_table
from repro.workloads.cache import cached_workload

SEED_SINGLE_CELL_S = 0.322   # seed revision, reference container
SEED_FIG10_20K_S = 6.31      # seed revision, reference container

BASE_SINGLE_CELL_S = 0.1408  # committed baseline before the columnar engine
BASE_FIG10_20K_S = 2.9759    # committed baseline before the columnar engine

#: CI perf smoke gate: fail on more than this regression vs. the baseline
MAX_REGRESSION = 1.30

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_runner.json"

FIG10_BENCHMARKS = ("astar", "bzip2", "h264ref", "sjeng",
                    "milc", "hmmer", "lbm", "libquantum")


def _timed(fn):
    started = time.process_time()
    fn()
    return time.process_time() - started


def _points_key(points):
    return [(p.benchmark, p.window, p.result, p.normalized_ipc)
            for p in points]


def run():
    # Warm the trace cache first so the timings below measure
    # simulation, not trace synthesis (the baselines were measured the
    # same way).
    for benchmark in FIG10_BENCHMARKS:
        cached_workload(benchmark, n_refs=20_000, seed=5)
    cached_workload("bzip2", n_refs=100_000, seed=5)

    spec = CellSpec(kind="general", benchmark="bzip2", window=(4, 3),
                    n_refs=100_000, seed=5)
    single_s = min(_timed(lambda: run_cell(spec)) for _ in range(5))

    # Cold sweeps: result cache bypassed so every cell simulates.  The
    # default path batches compatible cells (one trace decode per
    # benchmark group); the per-cell path is timed with batching off.
    cold_s, sequential = None, None
    percell_s, percell_points = None, None
    with RESULT_CACHE.disabled():
        for _ in range(3):
            started = time.process_time()
            points = figure10(n_refs=20_000, seed=5, jobs=1)
            elapsed = time.process_time() - started
            if cold_s is None or elapsed < cold_s:
                cold_s, sequential = elapsed, points
        batch_stats = last_run_stats()

        with run_context(batch=False):
            for _ in range(3):
                started = time.process_time()
                points = figure10(n_refs=20_000, seed=5, jobs=1)
                elapsed = time.process_time() - started
                if percell_s is None or elapsed < percell_s:
                    percell_s, percell_points = elapsed, points

        jobs = resolve_jobs(None)
        parallel = figure10(n_refs=20_000, seed=5, jobs=jobs)
        pool_stats = last_run_stats()
    jobs_match = _points_key(sequential) == _points_key(parallel)
    batch_match = _points_key(sequential) == _points_key(percell_points)

    # Warm re-run: fill a fresh result cache, then time the identical
    # sweep served entirely from it.
    tmp_dir = tempfile.mkdtemp(prefix="repro-bench-results-")
    saved_dir = RESULT_CACHE.disk_dir
    try:
        RESULT_CACHE.disk_dir = tmp_dir
        filled = figure10(n_refs=20_000, seed=5, jobs=1)
        started = time.process_time()
        warm = figure10(n_refs=20_000, seed=5, jobs=1)
        warm_s = max(time.process_time() - started, 1e-4)
        warm_stats = last_run_stats()
    finally:
        RESULT_CACHE.disk_dir = saved_dir
        shutil.rmtree(tmp_dir, ignore_errors=True)
    cache_match = (_points_key(sequential) == _points_key(filled)
                   == _points_key(warm))

    # Checked-mode accounting, after every gated timing above so the
    # slow differential runs cannot perturb them.  Off-mode overhead is
    # exactly one ``active_checker()`` lookup per ``TimingModel.run``
    # dispatch, so measure that lookup directly and scale it by a
    # generous per-cell dispatch allowance — a differential
    # cell-vs-cell timing would drown the nanoseconds in scheduler
    # noise.
    lookups = 50_000

    def _hook_calls():
        lookup = check_mod.active_checker
        for _ in range(lookups):
            lookup()

    hook_s = min(_timed(_hook_calls) for _ in range(3))
    hook_frac = (hook_s / lookups) * 50 / single_s

    unchecked_result = run_cell(spec)
    os.environ[check_mod.ENV_VAR] = "1"
    try:
        checked_result = run_cell(spec)
        checked_s = min(_timed(lambda: run_cell(spec)) for _ in range(2))
    finally:
        del os.environ[check_mod.ENV_VAR]
    checked_matches = checked_result == unchecked_result

    payload = {
        "single_cell_s": round(single_s, 4),
        "single_cell_seed_s": SEED_SINGLE_CELL_S,
        "single_cell_base_s": BASE_SINGLE_CELL_S,
        "single_cell_speedup_vs_seed": round(SEED_SINGLE_CELL_S / single_s, 2),
        "single_cell_speedup_vs_base": round(BASE_SINGLE_CELL_S / single_s, 2),
        "single_cell_checked_s": round(checked_s, 4),
        "check_overhead_on_x": round(checked_s / single_s, 2),
        "check_hook_off_frac": round(hook_frac, 5),
        "checked_matches_unchecked": checked_matches,
        "fig10_20k_sweep_s": round(cold_s, 4),
        "fig10_20k_seed_s": SEED_FIG10_20K_S,
        "fig10_20k_base_s": BASE_FIG10_20K_S,
        "fig10_20k_speedup_vs_seed": round(SEED_FIG10_20K_S / cold_s, 2),
        "fig10_20k_speedup_vs_base": round(BASE_FIG10_20K_S / cold_s, 2),
        "fig10_batched_s": round(cold_s, 4),
        "fig10_percell_s": round(percell_s, 4),
        "batched_speedup_vs_percell": round(percell_s / cold_s, 2),
        "batched_matches_percell": batch_match,
        "batches": batch_stats.get("batches", 0),
        "batched_cells": batch_stats.get("batched_cells", 0),
        "decode_reuse_hits": batch_stats.get("decode_reuse_hits", 0),
        "fig10_20k_warm_s": round(warm_s, 4),
        "warm_speedup": round(cold_s / warm_s, 1),
        "warm_cache_hits": warm_stats.get("result_cache_hits", 0),
        "cells": len(sequential),
        "cells_per_sec": round(len(sequential) / cold_s, 2),
        "parallel_jobs": jobs,
        "parallel_matches_sequential": jobs_match,
        "cached_matches_uncached": cache_match,
        "supervision_retries": (pool_stats.get("retries", 0)
                                + warm_stats.get("retries", 0)),
        "supervision_pool_restarts": (pool_stats.get("pool_restarts", 0)
                                      + warm_stats.get("pool_restarts", 0)),
        "latency_p95_s": pool_stats.get("latency_p95_s", 0.0),
    }
    record_bench("runner_smoke", payload, path=str(REPORT_PATH))
    return payload


def test_runner_speedups(benchmark):
    payload = benchmark.pedantic(run, rounds=1, iterations=1)

    # Invariance: same bits for any job count and with the cache on/off.
    assert payload["parallel_matches_sequential"]
    assert payload["cached_matches_uncached"]
    assert payload["warm_cache_hits"] == payload["cells"]

    # Columnar engine: cold sweep beats the committed baseline by 1.5x.
    assert payload["fig10_20k_speedup_vs_base"] >= 1.5

    # Batched kernel: bit-identical to the per-cell path and >= 1.5x
    # faster on the cold Figure 10 sweep (shared decode + warm replay +
    # vectorized random-fill draws per benchmark group).
    assert payload["batched_matches_percell"]
    assert payload["batched_speedup_vs_percell"] >= 1.5
    assert payload["batches"] >= 1

    # Result cache: identical re-run is served from disk, >= 10x faster.
    assert payload["warm_speedup"] >= 10

    # CI perf smoke gate: no >30% regression against the baseline.  The
    # cold sweep now runs through the supervision layer, so this bar is
    # also the acceptance test that supervision overhead stays small.
    assert payload["single_cell_s"] <= BASE_SINGLE_CELL_S * MAX_REGRESSION
    assert payload["fig10_20k_sweep_s"] <= BASE_FIG10_20K_S * MAX_REGRESSION

    # A healthy benchmark run must never trip the supervisor.
    assert payload["supervision_retries"] == 0
    assert payload["supervision_pool_restarts"] == 0

    # Checked simulation mode: with REPRO_CHECK unset the dispatch hook
    # must cost under 2% of a cell, and with it set the differential
    # oracle must reproduce the unchecked result bit-for-bit (its
    # slowdown is recorded as check_overhead_on_x, not gated: it is a
    # debugging mode).
    assert payload["check_hook_off_frac"] <= 0.02
    assert payload["checked_matches_unchecked"]

    rows = [(name, str(payload[name])) for name in sorted(payload)]
    save_report("runner_smoke",
                format_table(("metric", "value"), rows,
                             title="Runner smoke benchmark"))
