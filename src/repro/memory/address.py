"""Address geometry: byte addresses, line addresses, set indices, tags.

The whole simulator works on *line addresses* (byte address >> log2(line
size)) in its hot paths; this module is the single place where the
byte/line/set/tag arithmetic lives, so cache geometry is consistent
everywhere (Table IV: 64-byte lines).
"""

from __future__ import annotations

from dataclasses import dataclass


def _log2_exact(value: int, name: str) -> int:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{name} must be a positive power of two, got {value}")
    return value.bit_length() - 1


@dataclass(frozen=True)
class AddressMap:
    """Maps byte addresses to (line, set, tag) for a given cache geometry.

    Parameters
    ----------
    line_size:
        Cache line size in bytes (64 in the paper's Table IV).
    num_sets:
        Number of cache sets (1 for a fully-associative view).
    """

    line_size: int
    num_sets: int

    # The shift/mask values are hot-path constants (every cache access
    # goes through them), so they are computed once here rather than on
    # each call.
    def __post_init__(self) -> None:
        object.__setattr__(self, "_line_bits",
                           _log2_exact(self.line_size, "line_size"))
        object.__setattr__(self, "_set_bits",
                           _log2_exact(self.num_sets, "num_sets"))
        object.__setattr__(self, "_set_mask", self.num_sets - 1)

    @property
    def line_bits(self) -> int:
        return self._line_bits

    @property
    def set_bits(self) -> int:
        return self._set_bits

    def line_of(self, byte_addr: int) -> int:
        """Line address of a byte address."""
        return byte_addr >> self._line_bits

    def byte_of_line(self, line_addr: int) -> int:
        """First byte address of a line."""
        return line_addr << self._line_bits

    def set_of_line(self, line_addr: int) -> int:
        """Set index of a line address."""
        return line_addr & self._set_mask

    def tag_of_line(self, line_addr: int) -> int:
        """Tag of a line address (bits above the set index)."""
        return line_addr >> self._set_bits

    def set_of(self, byte_addr: int) -> int:
        return self.set_of_line(self.line_of(byte_addr))


def lines_spanned(base_byte_addr: int, size_bytes: int, line_size: int) -> range:
    """Range of line addresses covering ``[base, base + size)``.

    Used to enumerate the cache lines of a lookup table (e.g. a 1-KB AES
    table spans 16 lines of 64 bytes).
    """
    if size_bytes <= 0:
        raise ValueError(f"size_bytes must be positive, got {size_bytes}")
    line_bits = _log2_exact(line_size, "line_size")
    first = base_byte_addr >> line_bits
    last = (base_byte_addr + size_bytes - 1) >> line_bits
    return range(first, last + 1)
