"""Tests for the P1 - P2 Monte Carlo analysis (Table III)."""

import pytest

from repro.analysis.hit_probability import (
    FunctionalRandomFillCache,
    monte_carlo_p1_p2,
    newcache_tag_store_factory,
    sa_tag_store_factory,
)
from repro.cache.set_associative import SetAssociativeCache
from repro.core.window import RandomFillWindow
from repro.util.rng import HardwareRng


class TestFunctionalCache:
    def test_demand_fetch_installs_demand_line(self):
        cache = FunctionalRandomFillCache(
            SetAssociativeCache(4096, 4), RandomFillWindow(0, 0),
            HardwareRng(1))
        assert not cache.access_line(5)
        assert cache.access_line(5)

    def test_random_fill_never_installs_demand_line_directly(self):
        cache = FunctionalRandomFillCache(
            SetAssociativeCache(4096, 4), RandomFillWindow(0, 7),
            HardwareRng(1))
        cache.access_line(100)
        resident = set(cache.tag_store.resident_lines())
        assert len(resident) == 1
        assert resident <= set(range(100, 108))

    def test_fill_within_window(self):
        cache = FunctionalRandomFillCache(
            SetAssociativeCache(65536, 4), RandomFillWindow(4, 3),
            HardwareRng(2))
        for i in range(100):
            cache.access_line(1000 + i * 50)
        for line in cache.tag_store.resident_lines():
            demand = round((line - 1000) / 50) * 50 + 1000
            assert demand - 4 <= line <= demand + 3


class TestMonteCarloP1P2:
    def test_demand_fetch_p1_is_one(self):
        result = monte_carlo_p1_p2(sa_tag_store_factory(),
                                   RandomFillWindow(0, 0),
                                   trials=300, seed=1)
        assert result.p1 == pytest.approx(1.0)
        assert 0.2 < result.p2 < 0.6
        assert result.p1_minus_p2 > 0.4

    def test_covering_window_closes_channel(self):
        """a, b >= M-1: P1 - P2 ~ 0 (Section V-A's security condition)."""
        result = monte_carlo_p1_p2(sa_tag_store_factory(),
                                   RandomFillWindow.bidirectional(32),
                                   trials=600, seed=2)
        assert abs(result.p1_minus_p2) < 0.05

    def test_monotone_decrease_with_window(self):
        values = []
        for size in (1, 4, 16):
            r = monte_carlo_p1_p2(sa_tag_store_factory(),
                                  RandomFillWindow.bidirectional(size),
                                  trials=400, seed=3)
            values.append(r.p1_minus_p2)
        assert values[0] > values[1] > values[2]

    def test_newcache_substrate(self):
        result = monte_carlo_p1_p2(newcache_tag_store_factory(seed=9),
                                   RandomFillWindow(0, 0),
                                   trials=200, seed=4)
        assert result.p1_minus_p2 > 0.3  # demand-fetch Newcache leaks too

    def test_sample_counts(self):
        result = monte_carlo_p1_p2(sa_tag_store_factory(),
                                   RandomFillWindow(0, 0),
                                   trials=100, seed=5)
        # 120 ordered pairs per trial
        assert result.collision_samples + result.no_collision_samples == \
            100 * 120

    def test_validation(self):
        with pytest.raises(ValueError):
            monte_carlo_p1_p2(sa_tag_store_factory(),
                              RandomFillWindow(0, 0), trials=0)
