"""L1 cache controller: timing, miss queue, and a pluggable fill strategy.

This is the block diagram of Figure 3 minus the random fill engine.  The
controller owns:

* the tag store (any :class:`~repro.cache.tagstore.TagStore`),
* the non-blocking miss queue (4 entries in Table IV),
* a *fill policy* deciding, per miss, whether the demand line fills the
  cache and which extra lines (if any) should be randomly filled,
* the random fill queue — a FIFO where extra fill requests "wait for idle
  cycles to lookup the tag array" (Section IV-B.2).  We drain it at every
  access boundary; a request that hits in the tag array or merges with an
  in-flight miss is dropped, exactly as in the paper.

The demand-fetch baseline is :class:`DemandFetchPolicy`; the paper's
contribution plugs in via :class:`repro.core.policy.RandomFillPolicy`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

from repro.cache.context import AccessContext, DEFAULT_CONTEXT
from repro.cache.l2 import L2Cache
from repro.cache.mshr import MissQueue, RequestType
from repro.cache.stats import CacheStats
from repro.cache.tagstore import TagStore
from repro.memory.address import AddressMap


@dataclass(frozen=True)
class MissPlan:
    """What the fill policy wants done for one demand miss.

    ``demand_type`` is NORMAL (fill + forward) or NOFILL (forward only);
    ``random_fill_lines`` are extra line addresses for the fill queue.
    """

    demand_type: RequestType
    random_fill_lines: Tuple[int, ...] = ()


class FillPolicy:
    """Strategy interface consulted by the L1 controller."""

    def bypass(self, line_addr: int, ctx: AccessContext) -> bool:
        """True to skip the cache entirely (the disable-cache scheme)."""
        return False

    def on_miss(self, line_addr: int, ctx: AccessContext) -> MissPlan:
        raise NotImplementedError

    def on_hit(self, line_addr: int, ctx: AccessContext) -> None:
        """Hook for policies that react to hits (none in the paper)."""


class DemandFetchPolicy(FillPolicy):
    """The conventional policy: every miss demand-fills the cache."""

    def on_miss(self, line_addr: int, ctx: AccessContext) -> MissPlan:
        return MissPlan(RequestType.NORMAL)


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one L1 access."""

    ready_at: int          # cycle the demanded data reaches the CPU
    l1_hit: bool
    merged: bool = False   # satisfied by an in-flight miss (MSHR merge)
    bypassed: bool = False
    stalled_for_mshr: int = 0  # cycles spent waiting for a free MSHR
    line_addr: int = -1        # line accessed (for CPU-side bookkeeping)


class L1Controller:
    """Non-blocking L1 data cache with a pluggable fill strategy."""

    def __init__(self, tag_store: TagStore, next_level: L2Cache,
                 policy: Optional[FillPolicy] = None,
                 hit_latency: int = 1,
                 mshr_entries: int = 4,
                 fill_queue_capacity: int = 8,
                 line_size: int = 64):
        self.tag_store = tag_store
        self.next_level = next_level
        self.policy = policy if policy is not None else DemandFetchPolicy()
        self.hit_latency = hit_latency
        self.miss_queue = MissQueue(mshr_entries)
        self.fill_queue: Deque[Tuple[int, AccessContext]] = deque()
        self.fill_queue_capacity = fill_queue_capacity
        # MSHRs held back from fill requests so demands never starve
        # (0 when there is only one MSHR — the Table III attack setup).
        self.fill_reserve = 1 if mshr_entries > 1 else 0
        self.amap = AddressMap(line_size=line_size, num_sets=1)
        self.stats = CacheStats()

    # -- internals ---------------------------------------------------------

    def _install(self, line_addr: int, ctx: AccessContext) -> None:
        """Fill callback invoked when an in-flight line's data returns."""
        evicted = self.tag_store.fill(line_addr, ctx)
        self.stats.fills += 1
        if evicted is not None:
            self.stats.evictions += 1

    def _drain(self, now: int) -> None:
        self.miss_queue.drain(now, self._install)

    def _issue_random_fills(self, now: int) -> None:
        """Give queued random fill requests their idle-cycle tag lookup."""
        requeue: List[Tuple[int, AccessContext]] = []
        while self.fill_queue:
            line_addr, ctx = self.fill_queue.popleft()
            if self.tag_store.probe(line_addr, ctx):
                self.stats.random_fill_dropped += 1
                continue
            in_flight = self.miss_queue.lookup(line_addr)
            if in_flight is not None:
                # Merge with the outstanding miss.  A NOFILL entry is
                # upgraded: its data is already on the way, and the
                # random fill request asks for it to be installed.
                if in_flight.request_type is RequestType.NOFILL:
                    in_flight.request_type = RequestType.RANDOM_FILL
                    self.stats.random_fill_issued += 1
                else:
                    self.stats.random_fill_dropped += 1
                continue
            if len(self.miss_queue) >= self.miss_queue.capacity - self.fill_reserve:
                # Keep a reserved MSHR free for demand misses so fill
                # traffic cannot stall the processor outright.
                requeue.append((line_addr, ctx))
                break
            complete_at = self.next_level.access(line_addr, now, ctx)
            self.stats.next_level_requests += 1
            self.stats.random_fill_issued += 1
            self.miss_queue.allocate(line_addr, complete_at,
                                     RequestType.RANDOM_FILL, ctx)
        for item in reversed(requeue):
            self.fill_queue.appendleft(item)

    def _enqueue_random_fills(self, lines: Tuple[int, ...],
                              ctx: AccessContext) -> None:
        for line_addr in lines:
            if line_addr < 0:
                # Window underflow below address zero: nothing to fetch.
                self.stats.random_fill_dropped += 1
                continue
            if len(self.fill_queue) >= self.fill_queue_capacity:
                self.stats.random_fill_dropped += 1
                continue
            self.fill_queue.append((line_addr, ctx))

    # -- public API ----------------------------------------------------------

    def access(self, byte_addr: int, now: int,
               ctx: AccessContext = DEFAULT_CONTEXT) -> AccessResult:
        """One demand access at cycle ``now``; returns timing + outcome."""
        line_addr = self.amap.line_of(byte_addr)
        self.stats.accesses += 1
        self._drain(now)

        if self.policy.bypass(line_addr, ctx):
            # Disable-cache scheme: straight to L2, no L1 state change.
            # The L2 still fills — the defence targets the L1 channel.
            ready = self.next_level.access(line_addr, now, ctx, fill=True)
            self.stats.demand_misses += 1
            self.stats.next_level_requests += 1
            return AccessResult(ready_at=ready, l1_hit=False, bypassed=True,
                                line_addr=line_addr)

        if self.tag_store.access(line_addr, ctx):
            self.stats.hits += 1
            self.policy.on_hit(line_addr, ctx)
            self._issue_random_fills(now)
            return AccessResult(ready_at=now + self.hit_latency, l1_hit=True,
                                line_addr=line_addr)

        in_flight = self.miss_queue.lookup(line_addr)
        if in_flight is not None:
            # Secondary miss: merge; data usable when the line arrives.
            self.stats.mshr_merges += 1
            ready = max(in_flight.complete_at, now) + self.hit_latency
            return AccessResult(ready_at=ready, l1_hit=False, merged=True,
                                line_addr=line_addr)

        # Requests claim MSHRs in arrival order: random fill requests
        # already waiting in the fill queue are older than this demand
        # miss, so they get first pick of free entries.
        self._issue_random_fills(now)
        in_flight = self.miss_queue.lookup(line_addr)
        if in_flight is not None:
            # A queued random fill for this very line just issued.
            self.stats.mshr_merges += 1
            ready = max(in_flight.complete_at, now) + self.hit_latency
            return AccessResult(ready_at=ready, l1_hit=False, merged=True,
                                line_addr=line_addr)

        stall = 0
        if self.miss_queue.full:
            freed_at = self.miss_queue.earliest_completion()
            stall = max(0, freed_at - now)
            now += stall
            self._drain(now)
            # The drained line might be the one we want.
            if self.tag_store.access(line_addr, ctx):
                self.stats.hits += 1
                return AccessResult(now + self.hit_latency, l1_hit=True,
                                    stalled_for_mshr=stall,
                                    line_addr=line_addr)

        plan = self.policy.on_miss(line_addr, ctx)
        complete_at = self.next_level.access(line_addr, now, ctx)
        self.stats.demand_misses += 1
        self.stats.next_level_requests += 1
        self.miss_queue.allocate(line_addr, complete_at, plan.demand_type, ctx)
        self._enqueue_random_fills(plan.random_fill_lines, ctx)
        self._issue_random_fills(now)
        return AccessResult(ready_at=complete_at, l1_hit=False,
                            stalled_for_mshr=stall, line_addr=line_addr)

    def settle(self, now: int = None) -> None:
        """Complete all in-flight activity (end-of-run bookkeeping).

        With ``now=None`` everything outstanding is retired regardless of
        completion time.
        """
        while self.fill_queue or len(self.miss_queue):
            if len(self.miss_queue):
                horizon = self.miss_queue.earliest_completion() if now is None \
                    else now
                self.miss_queue.drain(max(horizon, 0), self._install)
            if self.fill_queue:
                if self.miss_queue.full:
                    continue
                horizon = 0 if now is None else now
                self._issue_random_fills(horizon)
            if now is not None:
                # Bounded settle: drop whatever cannot complete by `now`.
                self.miss_queue.flush()
                self.fill_queue.clear()
                break

    def flush(self) -> None:
        """Flush tag store and discard in-flight state (clean-cache reset)."""
        self.tag_store.flush()
        self.miss_queue.flush()
        self.fill_queue.clear()

    def reset_stats(self) -> None:
        self.stats.reset()
