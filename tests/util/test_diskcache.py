"""Tests for the mtime-LRU size bound on the on-disk caches."""

import os

import pytest

from repro.util.diskcache import (
    DEFAULT_MAX_MB,
    cache_root,
    clear_dir,
    dir_stats,
    evict_lru,
    max_cache_bytes,
    maybe_evict,
)


def make_entry(directory, name, size, mtime):
    path = os.path.join(directory, name)
    with open(path, "wb") as fh:
        fh.write(b"x" * size)
    os.utime(path, (mtime, mtime))
    return path


class TestBudget:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_MAX_MB", raising=False)
        assert max_cache_bytes() == DEFAULT_MAX_MB * 1024 * 1024

    def test_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "2")
        assert max_cache_bytes() == 2 * 1024 * 1024

    def test_fractional(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "0.5")
        assert max_cache_bytes() == 512 * 1024

    @pytest.mark.parametrize("value", ["0", "-3"])
    def test_nonpositive_disables(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", value)
        assert max_cache_bytes() is None

    @pytest.mark.parametrize("value", ["lots", "512MB", "1,024", "nan"])
    def test_garbage_rejected_naming_variable(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", value)
        with pytest.raises(ValueError, match="REPRO_CACHE_MAX_MB"):
            max_cache_bytes()

    def test_cache_root_is_shared_parent(self):
        assert cache_root().endswith(os.path.join(".cache", "repro"))


class TestDirStats:
    def test_counts_files_and_bytes(self, tmp_path):
        make_entry(str(tmp_path), "a", 10, 100)
        make_entry(str(tmp_path), "b", 30, 200)
        assert dir_stats(str(tmp_path)) == {"files": 2, "bytes": 40}

    def test_missing_dir(self, tmp_path):
        assert dir_stats(str(tmp_path / "nope")) == {"files": 0, "bytes": 0}

    def test_none_dir(self):
        assert dir_stats(None) == {"files": 0, "bytes": 0}


class TestEvictLru:
    def test_oldest_mtime_evicted_first(self, tmp_path):
        directory = str(tmp_path)
        old = make_entry(directory, "old", 40, 100)
        mid = make_entry(directory, "mid", 40, 200)
        new = make_entry(directory, "new", 40, 300)
        removed = evict_lru(directory, max_bytes=90)
        assert removed == 1
        assert not os.path.exists(old)
        assert os.path.exists(mid) and os.path.exists(new)

    def test_evicts_until_within_budget(self, tmp_path):
        directory = str(tmp_path)
        for i in range(5):
            make_entry(directory, f"f{i}", 100, 100 + i)
        assert evict_lru(directory, max_bytes=250) == 3
        assert dir_stats(directory)["bytes"] == 200

    def test_noop_when_under_budget(self, tmp_path):
        make_entry(str(tmp_path), "a", 10, 100)
        assert evict_lru(str(tmp_path), max_bytes=1000) == 0

    def test_read_keeps_entry_young(self, tmp_path):
        """A utime bump (what cache loads do) protects an entry."""
        directory = str(tmp_path)
        a = make_entry(directory, "a", 50, 100)
        b = make_entry(directory, "b", 50, 200)
        os.utime(a)  # "read" the older entry now
        evict_lru(directory, max_bytes=60)
        assert os.path.exists(a)
        assert not os.path.exists(b)


class TestMaybeEvict:
    def test_honours_env_budget(self, tmp_path, monkeypatch):
        directory = str(tmp_path)
        for i in range(4):
            make_entry(directory, f"f{i}", 512 * 1024, 100 + i)
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "1")
        assert maybe_evict(directory) == 2
        assert dir_stats(directory)["bytes"] <= 1024 * 1024

    def test_disabled_budget_never_evicts(self, tmp_path, monkeypatch):
        make_entry(str(tmp_path), "a", 1024, 100)
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "0")
        assert maybe_evict(str(tmp_path)) == 0

    def test_none_dir(self):
        assert maybe_evict(None) == 0


class TestClearDir:
    def test_removes_everything(self, tmp_path):
        make_entry(str(tmp_path), "a", 10, 100)
        make_entry(str(tmp_path), "b", 20, 200)
        assert clear_dir(str(tmp_path)) == {"files": 2, "bytes": 30}
        assert dir_stats(str(tmp_path)) == {"files": 0, "bytes": 0}

    def test_none_dir(self):
        assert clear_dir(None) == {"files": 0, "bytes": 0}
