"""The ``REPRO_CHAOS`` parser and hook dispatch.

The heavy end-to-end chaos (SIGKILL mid-sweep, torn journal, stream
drops over real sockets) lives in ``repro.service.smoke --chaos`` and
``tests/service/test_recovery.py``; these tests pin the cheap parts —
config parsing, per-value caching, and the hooks being near-free
no-ops when the variable is unset.
"""

import pytest

from repro.service.chaos import (
    ENV_VAR,
    ChaosConfigError,
    chaos_config,
    chaos_journal_write,
    chaos_stream_should_drop,
    parse_chaos,
)


class TestParse:
    def test_all_modes(self):
        config = parse_chaos(
            "kill_after_cells=2,torn_journal=5,slow_spool_ms=1.5,"
            "fail_spool_every=3,drop_stream_after=7"
        )
        assert config.kill_after_cells == 2
        assert config.torn_journal == 5
        assert config.slow_spool_ms == 1.5
        assert config.fail_spool_every == 3
        assert config.drop_stream_after == 7

    def test_bare_mode_defaults_to_one(self):
        assert parse_chaos("kill_after_cells").kill_after_cells == 1
        assert parse_chaos("torn_journal").torn_journal == 1

    def test_empty_entries_and_whitespace_tolerated(self):
        config = parse_chaos(" kill_after_cells = 3 , ,")
        assert config.kill_after_cells == 3

    def test_unknown_mode_refused(self):
        with pytest.raises(ChaosConfigError, match="unknown chaos mode"):
            parse_chaos("set_fire_to_the_rain")

    def test_non_integer_refused(self):
        with pytest.raises(ChaosConfigError, match="integer"):
            parse_chaos("kill_after_cells=soon")

    def test_zero_or_negative_refused(self):
        with pytest.raises(ChaosConfigError, match=">= 1"):
            parse_chaos("drop_stream_after=0")
        with pytest.raises(ChaosConfigError, match=">= 1"):
            parse_chaos("torn_journal=-2")

    def test_bad_float_refused(self):
        with pytest.raises(ChaosConfigError, match="number"):
            parse_chaos("slow_spool_ms=fast")


class TestConfigCache:
    def test_unset_is_none(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert chaos_config() is None

    def test_empty_is_none(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "")
        assert chaos_config() is None

    def test_value_flips_without_reset(self, monkeypatch):
        # monkeypatch.setenv is enough — the cache keys on the value.
        monkeypatch.setenv(ENV_VAR, "drop_stream_after=4")
        assert chaos_config().drop_stream_after == 4
        monkeypatch.setenv(ENV_VAR, "drop_stream_after=9")
        assert chaos_config().drop_stream_after == 9
        monkeypatch.delenv(ENV_VAR)
        assert chaos_config() is None


class TestHooks:
    def test_stream_drop_threshold(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "drop_stream_after=3")
        assert not chaos_stream_should_drop(2)
        assert chaos_stream_should_drop(3)
        assert chaos_stream_should_drop(4)

    def test_stream_drop_noop_when_unset(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert not chaos_stream_should_drop(10**6)

    def test_journal_write_passthrough_when_unset(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        payload = b'{"record": "submitted"}\n'
        assert chaos_journal_write(payload) is payload

    def test_journal_write_passthrough_without_torn_mode(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "drop_stream_after=3")
        payload = b'{"record": "submitted"}\n'
        assert chaos_journal_write(payload) is payload
