#!/usr/bin/env python3
"""Random fill as a prefetcher: the Section VII streaming study.

Sweeps random fill windows over the irregular streaming benchmarks
(libquantum, lbm) and a narrow-locality benchmark (hmmer), reporting L1
MPKI and IPC, plus the tagged next-line prefetcher for comparison.

The paper's result: design-for-security need not cost performance — on
irregular streams the random fill window acts as a deep, stride-
agnostic prefetcher and beats the tagged prefetcher (libquantum: +57%
vs +26% in the paper).

Run:  python examples/streaming_performance.py
"""

from repro.experiments import run_general_workload
from repro.util.tables import format_table

WINDOWS = ((0, 0), (0, 3), (0, 15), (0, 31), (16, 15))
N_REFS = 120_000


def main():
    print("Random fill windows on streaming vs narrow-locality workloads")
    print("=" * 66)
    for bench in ("libquantum", "lbm", "hmmer"):
        rows = []
        base = None
        for a, b in WINDOWS:
            result = run_general_workload(bench, (a, b), n_refs=N_REFS,
                                          seed=1)
            if base is None:
                base = result.ipc
            rows.append((f"[{-a},{b}]", f"{result.l1_mpki:.1f}",
                         f"{result.l2_mpki:.1f}", f"{result.ipc:.3f}",
                         f"{result.ipc / base:.3f}"))
        tagged = run_general_workload(bench, (0, 0), n_refs=N_REFS, seed=1,
                                      scheme_name="tagged_prefetch")
        rows.append(("tagged prefetch", f"{tagged.l1_mpki:.1f}",
                     f"{tagged.l2_mpki:.1f}", f"{tagged.ipc:.3f}",
                     f"{tagged.ipc / base:.3f}"))
        print()
        print(format_table(
            ["window", "L1 MPKI", "L2 MPKI", "IPC", "vs demand"],
            rows, title=f"{bench}  ([0,0] = demand fetch)"))
    print("\nForward windows accelerate the streams (MPKI down, IPC up)")
    print("and beat the next-line prefetcher on irregular strides, while")
    print("the narrow-locality workload pays a small pollution cost.")


if __name__ == "__main__":
    main()
