"""Tests for the RPcache permutation-randomized tag store."""

from repro.cache.context import AccessContext
from repro.secure.rpcache import RPCache


def make(size=16 * 64, assoc=2):
    return RPCache(size, assoc, 64, seed=7)


class TestBasics:
    def test_fill_then_hit(self):
        c = make()
        ctx = AccessContext(domain=0)
        assert not c.access(5, ctx)
        c.fill(5, ctx)
        assert c.access(5, ctx)

    def test_same_domain_eviction_is_normal(self):
        c = RPCache(2 * 64, 2, 64, seed=1)  # one set
        ctx = AccessContext(domain=0)
        c.fill(0, ctx)
        c.fill(2, ctx)
        evicted = c.fill(4, ctx)
        assert evicted == 0  # LRU

    def test_invalidate_and_flush(self):
        c = make()
        c.fill(5)
        assert c.invalidate(5)
        assert not c.probe(5)
        c.fill(6)
        c.flush()
        assert c.occupancy() == 0


class TestCrossDomain:
    def test_cross_domain_eviction_randomizes(self):
        """A cross-domain conflict must not evict the contended line
        deterministically: the victim's line frequently survives."""
        survived = 0
        for seed in range(30):
            c = RPCache(8 * 64, 1, 64, seed=seed)  # 8 sets, DM
            victim = AccessContext(domain=0)
            attacker = AccessContext(domain=1)
            c.fill(3, victim)
            # attacker fills the line mapping to the same raw set
            c.fill(3 + 8, attacker)
            if c.probe(3, victim):
                survived += 1
        assert survived > 10  # deterministic eviction would give 0

    def test_permutation_swap_remaps_attacker(self):
        # S' is random, so the swap is the identity when S' == S; over
        # several seeds the attacker's table must change at least once.
        changed = 0
        for seed in range(10):
            c = RPCache(8 * 64, 1, 64, seed=seed)
            victim = AccessContext(domain=0)
            attacker = AccessContext(domain=1)
            c.fill(3, victim)
            before = c._perm(1)[:]
            c.fill(3 + 8, attacker)  # triggers cross-domain handling
            if c._perm(1) != before:
                changed += 1
        assert changed >= 5

    def test_cross_domain_fill_still_resident_for_owner(self):
        c = RPCache(8 * 64, 1, 64, seed=5)
        victim = AccessContext(domain=0)
        attacker = AccessContext(domain=1)
        c.fill(3, victim)
        c.fill(3 + 8, attacker)
        assert c.probe(3 + 8, attacker)
