"""Tests for the tagged next-line prefetcher."""

from repro.cache.hierarchy import build_hierarchy
from repro.prefetch.tagged import TaggedPrefetchPolicy, build_tagged_prefetch_l1
from repro.cache.l2 import L2Cache


def make_l1():
    h = build_hierarchy()
    policy = TaggedPrefetchPolicy()
    h.l1.policy = policy
    policy.attach(h.l1)
    return h.l1, policy


class TestTaggedPrefetch:
    def test_miss_prefetches_next_line(self):
        l1, policy = make_l1()
        l1.access(0, now=0)
        l1.settle()
        assert l1.tag_store.probe(0)   # demand fill
        assert l1.tag_store.probe(1)   # prefetched next line

    def test_first_reference_chains(self):
        l1, policy = make_l1()
        r = l1.access(0, now=0)
        l1.settle()
        # first touch of the prefetched line 1 chains to line 2
        l1.access(64, now=r.ready_at + 500)
        l1.settle()
        assert l1.tag_store.probe(2)

    def test_second_reference_does_not_chain(self):
        l1, policy = make_l1()
        r = l1.access(0, now=0)
        l1.settle()
        l1.access(64, now=r.ready_at + 500)
        l1.settle()
        count = policy.prefetches_triggered
        l1.access(64, now=r.ready_at + 2000)  # second touch: tag cleared
        assert policy.prefetches_triggered == count

    def test_sequential_stream_mostly_hits(self):
        l1, policy = make_l1()
        now = 0
        misses = 0
        for line in range(200):
            r = l1.access(line * 64, now)
            if not r.l1_hit:
                misses += 1
            now = r.ready_at + 100
        assert misses < 100  # prefetching halves the stream's misses

    def test_reset(self):
        l1, policy = make_l1()
        l1.access(0, now=0)
        policy.reset()
        assert policy.prefetches_triggered == 0

    def test_builder(self):
        l1 = build_tagged_prefetch_l1(
            build_hierarchy().l1.tag_store, L2Cache())
        assert isinstance(l1.policy, TaggedPrefetchPolicy)
