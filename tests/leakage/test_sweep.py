"""Leakage sweep tests: grid construction, runner wiring, determinism.

The jobs-invariance test pins the satellite requirement that leakage
results are bit-identical for ``--jobs 1`` vs ``--jobs N`` — every cell
derives its RNG streams from the spec seed alone.
"""

import math

import pytest

from repro.leakage.report import (
    format_leakage_table,
    validate_results,
    write_leakage_report,
)
from repro.leakage.sweep import (
    LEAKAGE_CHANNELS,
    LeakageCellSpec,
    leakage_grid,
    run_leakage_cell,
)
from repro.runner.pool import run_cells

FAST = dict(trials=300, curve_repeats=40)

SMOKE_SPECS = [
    LeakageCellSpec(channel="eq7", window=(4, 3), trials=2000,
                    curve_repeats=40),
    LeakageCellSpec(channel="occupancy", scheme="demand_fetch", **FAST),
    LeakageCellSpec(channel="occupancy", scheme="random_fill",
                    window=(4, 3), **FAST),
    LeakageCellSpec(channel="flush_reload", scheme="random_fill",
                    window=(4, 3), **FAST),
]


class TestSpecValidation:
    def test_unknown_channel(self):
        with pytest.raises(ValueError):
            LeakageCellSpec(channel="prime_probe")

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            LeakageCellSpec(channel="occupancy", scheme="l2")

    def test_window_required_for_random_fill(self):
        with pytest.raises(ValueError):
            LeakageCellSpec(channel="occupancy", scheme="random_fill")

    def test_window_rejected_for_demand(self):
        with pytest.raises(ValueError):
            LeakageCellSpec(channel="occupancy", scheme="demand_fetch",
                            window=(2, 1))

    def test_window_size(self):
        spec = LeakageCellSpec(channel="eq7", window=(4, 3))
        assert spec.window_size == 8
        demand = LeakageCellSpec(channel="occupancy", scheme="demand_fetch")
        assert demand.window_size == 1


class TestGrid:
    def test_default_grid_shape(self):
        from repro.schemes import functional_scheme_names, random_fill_scheme_names
        specs = leakage_grid()
        # eq7: 5 windows; flush_reload/occupancy: 5 windows per random
        # fill scheme + 1 cell per other registered functional scheme.
        n_rf = len(random_fill_scheme_names())
        n_other = len(functional_scheme_names()) - n_rf
        assert len(specs) == 5 + 2 * (5 * n_rf + n_other)
        assert {s.channel for s in specs} == set(LEAKAGE_CHANNELS)

    def test_seed_replicates(self):
        specs = leakage_grid(channels=("occupancy",),
                             schemes=("demand_fetch",), seeds=(0, 1, 2))
        assert [s.seed for s in specs] == [0, 1, 2]

    def test_rejects_unknown_channel(self):
        with pytest.raises(ValueError):
            leakage_grid(channels=("mi",))


class TestRunnerWiring:
    def test_leakage_cell_through_generic_dispatch(self):
        spec = LeakageCellSpec(channel="eq7", window=(2, 1), trials=500,
                               curve_repeats=20)
        from repro.runner.cells import run_cell
        assert run_cell(spec) == spec.run()

    def test_foreign_spec_without_run_rejected(self):
        from repro.runner.cells import run_cell
        with pytest.raises(TypeError):
            run_cell(object())

    def test_jobs_invariance(self):
        """Bit-identical results for --jobs 1 vs --jobs N."""
        assert run_cells(SMOKE_SPECS, jobs=2) == run_cells(SMOKE_SPECS, jobs=1)

    def test_sweep_entry_points_agree(self):
        spec = SMOKE_SPECS[1]
        assert run_leakage_cell(spec) == spec.run()


class TestCellResults:
    def test_eq7_matches_analytic_within_tolerance(self):
        result = LeakageCellSpec(channel="eq7", window=(4, 3),
                                 curve_repeats=40).run()
        assert result.analytic_bits is not None
        assert result.mi_bits == pytest.approx(result.analytic_bits, abs=0.12)

    def test_demand_flush_reload_is_identity(self):
        result = LeakageCellSpec(channel="flush_reload",
                                 scheme="demand_fetch", **FAST).run()
        assert result.analytic_bits == pytest.approx(math.log2(16))
        assert result.mi_bits == pytest.approx(math.log2(16), abs=0.1)
        assert result.n_to_success_90 == 1

    def test_json_round_trip_fields(self):
        result = SMOKE_SPECS[1].run()
        payload = result.to_json()
        assert payload["channel"] == "occupancy"
        assert payload["window"] is None
        assert len(payload["success_curve"]) == len(result.success_curve)


class TestReport:
    def _results(self):
        return run_cells(SMOKE_SPECS, jobs=1)

    def test_validation_passes_on_smoke(self):
        validation = validate_results(self._results())
        assert validation["failed"] == 0
        assert validation["passed"] > 0

    def test_validation_flags_inflated_mi(self):
        results = self._results()
        import dataclasses
        bad = dataclasses.replace(results[0], mi_bits=results[0].mi_bits + 1)
        validation = validate_results([bad] + results[1:])
        assert validation["failed"] >= 1

    def test_table_renders_every_cell(self):
        results = self._results()
        table = format_leakage_table(results)
        assert table.count("\n") >= len(results)
        assert "MI (bits)" in table

    def test_report_file_written(self, tmp_path):
        path = str(tmp_path / "BENCH_leakage.json")
        report = write_leakage_report(self._results(), path=path)
        assert "leakage" in report
        import json
        on_disk = json.loads((tmp_path / "BENCH_leakage.json").read_text())
        assert len(on_disk["leakage"]["cells"]) == len(SMOKE_SPECS)
        assert on_disk["leakage"]["validation"]["failed"] == 0
