"""Tests for the L2 cache controller."""

from repro.cache.l2 import L2Cache


class TestL2:
    def test_hit_latency(self):
        l2 = L2Cache()
        l2.tag_store.fill(5)
        assert l2.access(5, now=100) == 120

    def test_miss_goes_to_dram(self):
        l2 = L2Cache()
        done = l2.access(5, now=0)
        assert done > l2.hit_latency
        assert l2.stats.demand_misses == 1
        assert l2.dram.lines_transferred == 1

    def test_miss_fills_by_default(self):
        l2 = L2Cache()
        l2.access(5, now=0)
        assert l2.probe(5)

    def test_fill_false_leaves_absent(self):
        l2 = L2Cache()
        l2.access(5, now=0, fill=False)
        assert not l2.probe(5)

    def test_flush(self):
        l2 = L2Cache()
        l2.access(5, now=0)
        l2.flush()
        assert not l2.probe(5)

    def test_reset_stats(self):
        l2 = L2Cache()
        l2.access(5, now=0)
        l2.reset_stats()
        assert l2.stats.accesses == 0
        assert l2.dram.lines_transferred == 0

    def test_capacity_evictions(self):
        l2 = L2Cache(size_bytes=8 * 64, associativity=2)
        for line in range(0, 32, 4):  # all map to set 0 (4 sets)
            l2.access(line, now=0)
        assert l2.stats.evictions > 0
