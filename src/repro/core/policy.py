"""The random cache fill strategy as an L1 fill policy.

This is where the paper's key mechanism lives: on a demand miss the
missing line is forwarded to the processor *without* filling the cache
(a ``NOFILL`` request, leveraging critical-word-first forwarding), and
one ``RANDOM_FILL`` request for a uniformly random line within the
window is pushed to the fill queue.  With the window registers at zero
the policy degrades exactly to demand fetch (``NORMAL`` requests) —
"the random fill cache works just like the conventional demand-fetch
cache" (Section IV-B.3).
"""

from __future__ import annotations

from repro.cache.context import AccessContext
from repro.cache.controller import FillPolicy, MissPlan, NORMAL_PLAN
from repro.cache.mshr import RequestType
from repro.core.engine import RandomFillEngine


class RandomFillPolicy(FillPolicy):
    """Fill policy consulting a :class:`RandomFillEngine` per miss."""

    def __init__(self, engine: RandomFillEngine):
        self.engine = engine
        # Reused across misses — the controller consumes each plan
        # before asking for the next, so one mutable instance suffices.
        self._nofill_plan = MissPlan(RequestType.NOFILL)

    def on_miss(self, line_addr: int, ctx: AccessContext) -> MissPlan:
        engine = self.engine
        thread_id = ctx.thread_id
        window = engine.window_for(thread_id)
        if window.a == 0 and window.b == 0:  # disabled: pure demand fetch
            return NORMAL_PLAN
        plan = self._nofill_plan
        plan.random_fill_lines = (
            line_addr + engine.random_offset(thread_id),)
        return plan
