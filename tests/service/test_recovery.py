"""Restart recovery and graceful drain, driven in-process.

These tests build journals by hand (or crash-shaped ones) and boot a
fresh :class:`SweepService` over the same spool, asserting the replay
semantics the chaos smoke exercises end-to-end over subprocess kills:
queued sweeps come back in order, an interrupted running sweep resumes
from its result-cache checkpoints, torn tails are tolerated and
reported, and a drain hands the queue to the next process intact.
"""

import os

import pytest

from repro.leakage.sweep import LeakageCellSpec
from repro.runner.pool import run_cells
from repro.runner.result_cache import ResultCache
from repro.runner.telemetry import read_events
from repro.service.codec import encode_result, encode_sweep
from repro.service.journal import SweepJournal, journal_path
from repro.service.store import DiskResultStore
from repro.service.sweeps import ServiceConfig, ServiceError, SweepService


def eq7_grid(n=3, trials=40, seed0=0):
    return [
        LeakageCellSpec(channel="eq7", scheme="random_fill", window=(1, 0),
                        trials=trials, seed=seed0 + i, curve_points=(1, 2),
                        curve_repeats=5)
        for i in range(n)
    ]


def slow_grid(seed=0):
    # ~1.5s of eq7 sampling — long enough to catch the sweep running.
    return [LeakageCellSpec(channel="eq7", scheme="random_fill",
                            window=(1, 0), trials=1_500_000, seed=seed,
                            curve_points=(1,), curve_repeats=1)]


def build_service(tmp, **overrides):
    settings = dict(jobs=1, queue_depth=8, rate=1000.0, burst=1000.0,
                    spool_dir=str(tmp / "spool"))
    settings.update(overrides)
    store = DiskResultStore(ResultCache(disk_dir=str(tmp / "results")))
    return SweepService(ServiceConfig(**settings), store=store)


def journal_of(tmp) -> SweepJournal:
    return SweepJournal(journal_path(str(tmp / "spool")))


def reference(specs):
    results = run_cells(specs, jobs=1,
                        result_cache=ResultCache(disk_dir=None,
                                                 use_default_disk_dir=False))
    return [encode_result(r) for r in results]


class TestRecovery:
    def test_queued_sweeps_readmitted_in_order(self, tmp_path):
        journal = journal_of(tmp_path)
        grids = {f"swp{i}": eq7_grid(n=2, seed0=10 * i) for i in range(3)}
        for sweep_id, specs in grids.items():
            journal.append("submitted", sweep_id, client="origin", cells=len(specs),
                           payload=encode_sweep(specs))
        service = build_service(tmp_path)
        try:
            with service._lock:
                order = list(service._order)
            assert order == list(grids)
            for sweep_id, specs in grids.items():
                sweep = service.get(sweep_id)
                assert sweep.recovered and sweep.client == "origin"
                results = sweep.handle.result(timeout=120)
                assert [encode_result(r) for r in results] == reference(specs)
            recovery = service.metrics()["recovery"]
            assert recovery["recovered_sweeps"] == 3
            assert recovery["resubmitted_cells"] == 6
        finally:
            service.shutdown()

    def test_interrupted_running_sweep_resumes_warm(self, tmp_path):
        specs = eq7_grid(n=4, seed0=40)
        # Two cells were checkpointed before the "crash".
        warm_cache = ResultCache(disk_dir=str(tmp_path / "results"))
        run_cells(specs[:2], jobs=1, result_cache=warm_cache)
        journal = journal_of(tmp_path)
        journal.append("submitted", "crashed", client="c", cells=len(specs),
                       payload=encode_sweep(specs))
        journal.append("started", "crashed")
        service = build_service(tmp_path)
        try:
            sweep = service.get("crashed")
            results = sweep.handle.result(timeout=120)
            assert [encode_result(r) for r in results] == reference(specs)
            # Only the lost tail re-simulated.
            assert sweep.handle.stats["result_cache_hits"] == 2
            assert sweep.handle.stats["result_cache_misses"] == 2
            recovery = service.metrics()["recovery"]
            assert recovery["recovered_sweeps"] == 1
            assert recovery["warm_cells"] == 2
            assert recovery["resubmitted_cells"] == 2
            events = [e["event"] for e in read_events(sweep.events_path)]
            assert "sweep_resumed" in events
            resumed = [e for e in read_events(sweep.events_path)
                       if e["event"] == "sweep_resumed"][0]
            assert resumed["prior_state"] == "running"
            assert resumed["warm_cells"] == 2
        finally:
            service.shutdown()

    def test_warm_count_probe_is_stat_free(self, tmp_path):
        specs = eq7_grid(n=2, seed0=60)
        cache = ResultCache(disk_dir=str(tmp_path / "results"))
        run_cells(specs, jobs=1, result_cache=cache)
        store = DiskResultStore(ResultCache(disk_dir=str(tmp_path / "results")))
        before = store.stats_snapshot()
        assert store.warm_count(specs) == 2
        assert store.warm_count(eq7_grid(n=2, seed0=999)) == 0
        after = store.stats_snapshot()
        assert (after["hits"], after["misses"]) == (before["hits"], before["misses"])

    def test_finished_sweeps_stay_finished(self, tmp_path):
        journal = journal_of(tmp_path)
        journal.append("submitted", "done1", client="c", cells=1,
                       payload=encode_sweep(eq7_grid(n=1)))
        journal.append("started", "done1")
        journal.append("finished", "done1", state="done")
        service = build_service(tmp_path)
        try:
            assert service.metrics()["recovery"]["recovered_sweeps"] == 0
            with pytest.raises(ServiceError) as excinfo:
                service.get("done1")
            assert excinfo.value.status == 404
        finally:
            service.shutdown()

    def test_corrupt_tail_reported_and_tolerated(self, tmp_path):
        journal = journal_of(tmp_path)
        specs = eq7_grid(n=1, seed0=70)
        journal.append("submitted", "good", client="c", cells=1,
                       payload=encode_sweep(specs))
        with open(journal.path, "ab") as fh:
            fh.write(b'{"v": 1, "record": "submitted", "sw')  # torn append
        service = build_service(tmp_path)
        try:
            sweep = service.get("good")
            sweep.handle.result(timeout=120)
            assert service.metrics()["recovery"]["journal_corrupt_tail"] == 1
            service_events = [e["event"] for e in
                              read_events(os.path.join(service.spool_dir, "service.jsonl"))]
            assert "journal_corrupt_tail" in service_events
        finally:
            service.shutdown()

    def test_undecodable_payload_skipped(self, tmp_path):
        journal = journal_of(tmp_path)
        journal.append("submitted", "alien", client="c", cells=1,
                       payload={"version": 999, "cells": [{"family": "??"}]})
        service = build_service(tmp_path)
        try:
            assert service.metrics()["recovery"]["recovered_sweeps"] == 0
            with pytest.raises(ServiceError):
                service.get("alien")
            # The compensating record keeps it from reappearing forever.
            assert journal_of(tmp_path).replay().live == []
        finally:
            service.shutdown()

    def test_recovery_checkpoint_compacts_the_journal(self, tmp_path):
        journal = journal_of(tmp_path)
        for i in range(10):
            journal.append("submitted", f"old{i}", client="c", cells=1,
                           payload=encode_sweep(eq7_grid(n=1)))
            journal.append("finished", f"old{i}", state="done")
        before = os.path.getsize(journal.path)
        service = build_service(tmp_path)
        try:
            assert os.path.getsize(journal.path) < before
        finally:
            service.shutdown()


class TestJournalFirstSubmission:
    def test_accepted_sweep_is_journaled_before_running(self, tmp_path):
        service = build_service(tmp_path)
        try:
            specs = eq7_grid(n=1, seed0=80)
            accepted = service.submit(encode_sweep(specs), client="c")
            live = [s.sweep_id for s in service.journal.replay().live]
            # Either still live in the journal or already finished —
            # but the submitted record must exist either way.
            records = service.journal.replay()
            assert accepted["id"] in live or records.finished >= 1
            service.get(accepted["id"]).handle.result(timeout=120)
        finally:
            service.shutdown()

    def test_queue_full_leaves_compensating_cancel(self, tmp_path):
        service = build_service(tmp_path, queue_depth=1)
        try:
            running = service.submit(encode_sweep(slow_grid(seed=300)), client="c")
            deadline = 120
            import time as _time
            start = _time.monotonic()
            while service.get(running["id"]).handle.state != "running":
                assert _time.monotonic() - start < deadline
                _time.sleep(0.01)
            queued = service.submit(encode_sweep(eq7_grid(n=1, seed0=90)), client="c")
            with pytest.raises(ServiceError) as excinfo:
                service.submit(encode_sweep(eq7_grid(n=1, seed0=91)), client="c")
            assert excinfo.value.code == "queue_full"
            live = {s.sweep_id for s in service.journal.replay().live}
            assert queued["id"] in live
            assert len(live) == 2  # running + queued; the refused one is terminal
        finally:
            service.shutdown()

    def test_cancelled_queued_sweep_not_recovered(self, tmp_path):
        service = build_service(tmp_path, queue_depth=4)
        try:
            service.submit(encode_sweep(slow_grid(seed=310)), client="c")
            queued = service.submit(encode_sweep(eq7_grid(n=1, seed0=95)), client="c")
            service.cancel(queued["id"])
            live = {s.sweep_id for s in service.journal.replay().live}
            assert queued["id"] not in live
        finally:
            service.shutdown()


class TestDrain:
    def test_drain_hands_queue_to_next_process(self, tmp_path):
        service = build_service(tmp_path)
        import time as _time
        queued_specs = eq7_grid(n=2, seed0=100)
        try:
            running = service.submit(encode_sweep(slow_grid(seed=320)), client="c")
            start = _time.monotonic()
            while service.get(running["id"]).handle.state != "running":
                assert _time.monotonic() - start < 120
                _time.sleep(0.01)
            queued = service.submit(encode_sweep(queued_specs), client="c")

            service.begin_drain()
            assert service.healthz()["draining"] is True
            with pytest.raises(ServiceError) as excinfo:
                service.submit(encode_sweep(eq7_grid(n=1, seed0=110)), client="late")
            assert excinfo.value.status == 503 and excinfo.value.code == "draining"

            service.finish_drain(timeout=120)
            # The running sweep finished; the queued one was NOT
            # cancelled — it stays queued for the next process.
            assert service.get(running["id"]).handle.state == "done"
            assert service.get(queued["id"]).handle.state == "queued"
            service.shutdown()
            assert service.get(queued["id"]).handle.state == "queued"
            live = [s.sweep_id for s in service.journal.replay().live]
            assert live == [queued["id"]]
            service_events = [e["event"] for e in
                              read_events(os.path.join(service.spool_dir, "service.jsonl"))]
            assert "service_draining" in service_events
            assert "service_drained" in service_events
        finally:
            service.shutdown()

        # The "next process": same spool, fresh service.
        heir = build_service(tmp_path)
        try:
            sweep = heir.get(queued["id"])
            assert sweep.recovered
            results = sweep.handle.result(timeout=120)
            assert [encode_result(r) for r in results] == reference(queued_specs)
        finally:
            heir.shutdown()

    def test_drain_is_idempotent_and_immediate_when_idle(self, tmp_path):
        service = build_service(tmp_path)
        try:
            service.begin_drain()
            service.begin_drain()
            service.finish_drain(timeout=30)
            assert service.healthz()["draining"] is True
            assert service.metrics()["recovery"]["draining"] is True
        finally:
            service.shutdown()
