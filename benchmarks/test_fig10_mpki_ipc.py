"""Figure 10: L1 MPKI and IPC across random fill window shapes.

All eight SPEC-like benchmarks under windows [0,0] (demand fetch),
forward [0,b] and bidirectional [-a,b] up to 32 lines, with random fill
enabled for every access.

Paper's shape: for narrow-locality benchmarks larger windows raise
L1 MPKI and lower IPC; for the irregular streaming benchmarks (lbm,
libquantum) forward windows *reduce* MPKI and *raise* IPC (libquantum's
best: [0,15] with -31% MPKI, +57% IPC), with forward beating
bidirectional.
"""

from _reporting import save_report

from repro.experiments.config import scaled
from repro.experiments.perf_general import figure10
from repro.util.tables import format_table


def run():
    return figure10(n_refs=scaled(100_000, minimum=10_000), seed=5)


def test_fig10_mpki_and_ipc(benchmark):
    points = benchmark.pedantic(run, rounds=1, iterations=1)

    def cell(bench, window):
        return next(p for p in points
                    if p.benchmark == bench and p.window == window)

    for bench in ("lbm", "libquantum"):
        base = cell(bench, (0, 0))
        best = cell(bench, (0, 15))
        # Streaming: forward window cuts L1 MPKI and raises IPC.
        assert best.result.l1_mpki < 0.85 * base.result.l1_mpki
        assert best.normalized_ipc > 1.10
        # Forward beats bidirectional of the same size (paper's note).
        assert best.normalized_ipc >= cell(bench, (16, 15)).normalized_ipc

    for bench in ("astar", "sjeng", "h264ref", "hmmer"):
        base = cell(bench, (0, 0))
        wide = cell(bench, (0, 31))
        # Narrow locality: MPKI rises, IPC does not improve.
        assert wide.result.l1_mpki > base.result.l1_mpki
        assert wide.normalized_ipc < 1.05

    rows = [(p.benchmark, p.label, f"{p.result.l1_mpki:.2f}",
             f"{p.result.l2_mpki:.2f}", f"{p.result.ipc:.3f}",
             f"{p.normalized_ipc:.3f}") for p in points]
    save_report("fig10_mpki_ipc", format_table(
        ["benchmark", "window", "L1 MPKI", "L2 MPKI", "IPC", "norm IPC"],
        rows, title="Figure 10: MPKI and IPC per random fill window"))
