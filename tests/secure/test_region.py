"""Tests for protected regions."""

import pytest

from repro.secure.region import ProtectedRegion, RegionSet


class TestProtectedRegion:
    def test_geometry(self):
        r = ProtectedRegion(0x10000, 1024, 64)
        assert r.first_line == 1024
        assert r.num_lines == 16

    def test_partial_line_rounds_up(self):
        r = ProtectedRegion(0, 65, 64)
        assert r.num_lines == 2

    def test_contains(self):
        r = ProtectedRegion(0x10000, 1024)
        assert r.contains_line(1024) and r.contains_line(1039)
        assert not r.contains_line(1040)
        assert r.contains_byte(0x10000) and not r.contains_byte(0x10400)

    def test_line_of_offset(self):
        r = ProtectedRegion(0x10000, 1024)
        assert r.line_of_offset(0) == 1024
        assert r.line_of_offset(64) == 1025
        with pytest.raises(ValueError):
            r.line_of_offset(1024)

    def test_validation(self):
        with pytest.raises(ValueError):
            ProtectedRegion(0, 0)
        with pytest.raises(ValueError):
            ProtectedRegion(33, 64)  # unaligned base


class TestRegionSet:
    def test_membership(self):
        rs = RegionSet([ProtectedRegion(0, 64), ProtectedRegion(640, 64)])
        assert rs.contains_line(0)
        assert rs.contains_line(10)
        assert not rs.contains_line(5)

    def test_num_lines(self):
        rs = RegionSet([ProtectedRegion(0, 128)])
        assert rs.num_lines == 2

    def test_iteration_and_len(self):
        regions = [ProtectedRegion(0, 64, name="a"),
                   ProtectedRegion(640, 64, name="b")]
        rs = RegionSet(regions)
        assert len(rs) == 2
        assert [r.name for r in rs] == ["a", "b"]

    def test_empty(self):
        rs = RegionSet()
        assert not rs.contains_line(0)
        assert rs.num_lines == 0
