"""Conventional set-associative tag store (the paper's baseline cache).

Geometry follows Table IV: configurable size/associativity, 64-byte
lines, LRU replacement by default.  Direct-mapped is associativity 1.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.cache.context import AccessContext, DEFAULT_CONTEXT
from repro.cache.replacement import LruPolicy, ReplacementPolicy
from repro.cache.tagstore import LineState, TagStore
from repro.memory.address import AddressMap


class SetAssociativeCache(TagStore):
    """Set-associative cache tag store.

    Parameters
    ----------
    size_bytes:
        Total data capacity.
    associativity:
        Ways per set (1 = direct mapped).
    line_size:
        Line size in bytes (64 in the paper).
    policy:
        Replacement policy; default LRU (Table IV).
    """

    def __init__(self, size_bytes: int, associativity: int,
                 line_size: int = 64,
                 policy: Optional[ReplacementPolicy] = None):
        if size_bytes <= 0 or size_bytes % (associativity * line_size):
            raise ValueError(
                f"size {size_bytes} not divisible into {associativity}-way "
                f"sets of {line_size}-byte lines"
            )
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.line_size = line_size
        self.capacity_lines = size_bytes // line_size
        num_sets = self.capacity_lines // associativity
        self.amap = AddressMap(line_size=line_size, num_sets=num_sets)
        self.policy = policy if policy is not None else LruPolicy()
        self._sets: List[List[LineState]] = [[] for _ in range(num_sets)]

    # -- helpers ---------------------------------------------------------

    def _set_for(self, line_addr: int) -> List[LineState]:
        return self._sets[self.amap.set_of_line(line_addr)]

    def _find(self, cache_set: List[LineState], line_addr: int) -> int:
        for i, line in enumerate(cache_set):
            if line.line_addr == line_addr:
                return i
        return -1

    def _evictable_indices(self, cache_set: List[LineState],
                           ctx: AccessContext) -> List[int]:
        """Indices the requester may evict.

        Locked lines (PLcache) are immune to normal replacement — that
        is what makes preload+lock a constant-time defence; only the
        owner's own *locking* accesses may displace them.
        """
        return [i for i, line in enumerate(cache_set)
                if not line.locked
                or (ctx.lock and line.owner == ctx.thread_id)]

    # -- TagStore interface ----------------------------------------------

    def probe(self, line_addr: int, ctx: AccessContext = DEFAULT_CONTEXT) -> bool:
        return self._find(self._set_for(line_addr), line_addr) >= 0

    def access(self, line_addr: int, ctx: AccessContext = DEFAULT_CONTEXT) -> bool:
        cache_set = self._set_for(line_addr)
        index = self._find(cache_set, line_addr)
        if index < 0:
            return False
        line = cache_set[index]
        if ctx.lock:
            line.locked = True
            line.owner = ctx.thread_id
        elif ctx.unlock and line.owner == ctx.thread_id:
            line.locked = False
        self.policy.on_hit(cache_set, index)
        return True

    def fill(self, line_addr: int,
             ctx: AccessContext = DEFAULT_CONTEXT) -> Optional[int]:
        cache_set = self._set_for(line_addr)
        if self._find(cache_set, line_addr) >= 0:
            return None
        evicted: Optional[int] = None
        if len(cache_set) >= self.associativity:
            victim = self.policy.choose_victim(
                cache_set, self._evictable_indices(cache_set, ctx))
            if victim is None:
                return None  # every way locked by others: fill refused
            evicted = cache_set.pop(victim).line_addr
        new_line = LineState(line_addr, owner=ctx.thread_id, domain=ctx.domain,
                             locked=ctx.lock)
        self.policy.on_fill(cache_set, new_line)
        return evicted

    def invalidate(self, line_addr: int) -> bool:
        cache_set = self._set_for(line_addr)
        index = self._find(cache_set, line_addr)
        if index < 0:
            return False
        cache_set.pop(index)
        return True

    def flush(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()

    def resident_lines(self) -> Iterator[int]:
        for cache_set in self._sets:
            for line in cache_set:
                yield line.line_addr

    def line_state(self, line_addr: int) -> Optional[LineState]:
        """Expose per-line metadata (used by PLcache tests and preload)."""
        cache_set = self._set_for(line_addr)
        index = self._find(cache_set, line_addr)
        return cache_set[index] if index >= 0 else None

    def set_contents(self, set_index: int) -> List[int]:
        """Line addresses in one set, MRU-first (attack code inspects this)."""
        return [line.line_addr for line in self._sets[set_index]]
