"""Tests for the hardware RNG model."""

import pytest

from repro.util.rng import HardwareRng, derive_seed


class TestHardwareRng:
    def test_draw_within_width(self):
        rng = HardwareRng(seed=1, width=8)
        assert all(0 <= rng.draw() < 256 for _ in range(1000))

    def test_draw_masked_applies_mask(self):
        rng = HardwareRng(seed=2, width=8)
        assert all(rng.draw_masked(0x0F) < 16 for _ in range(500))

    def test_draw_below_bound(self):
        rng = HardwareRng(seed=3)
        assert all(rng.draw_below(7) < 7 for _ in range(500))

    def test_draw_below_rejects_nonpositive(self):
        rng = HardwareRng(seed=3)
        with pytest.raises(ValueError):
            rng.draw_below(0)

    def test_deterministic_given_seed(self):
        a = [HardwareRng(seed=42).draw() for _ in range(50)]
        b = [HardwareRng(seed=42).draw() for _ in range(50)]
        assert a == b

    def test_different_seeds_differ(self):
        a = [HardwareRng(seed=1).draw() for _ in range(50)]
        b = [HardwareRng(seed=2).draw() for _ in range(50)]
        assert a != b

    def test_width_validation(self):
        with pytest.raises(ValueError):
            HardwareRng(seed=0, width=0)

    def test_buffer_size_validation(self):
        with pytest.raises(ValueError):
            HardwareRng(seed=0, buffer_size=0)

    def test_fork_is_independent_stream(self):
        parent = HardwareRng(seed=9)
        child = parent.fork("component")
        a = [child.draw() for _ in range(20)]
        b = [parent.draw() for _ in range(20)]
        assert a != b

    def test_roughly_uniform(self):
        rng = HardwareRng(seed=11, width=4)
        counts = [0] * 16
        for _ in range(16000):
            counts[rng.draw()] += 1
        assert min(counts) > 700 and max(counts) < 1300


class TestPregenerate:
    """``pregenerate(n)`` must be bit-identical to ``n`` scalar draws —
    values *and* the RNG state left behind."""

    def test_matches_scalar_draws(self):
        for seed in (0, 1, 42):
            batched = HardwareRng(seed=seed)
            scalar = HardwareRng(seed=seed)
            assert batched.pregenerate(1000) == \
                [scalar.draw() for _ in range(1000)]

    def test_mid_buffer_start_then_lockstep(self):
        batched = HardwareRng(seed=5)
        scalar = HardwareRng(seed=5)
        for _ in range(37):           # leave both mid-buffer
            assert batched.draw() == scalar.draw()
        assert batched.pregenerate(300) == \
            [scalar.draw() for _ in range(300)]
        # State after: subsequent draws still agree (multi-refill tail).
        assert [batched.draw() for _ in range(700)] == \
            [scalar.draw() for _ in range(700)]

    def test_interleaved_pregenerate_and_draw(self):
        batched = HardwareRng(seed=8)
        scalar = HardwareRng(seed=8)
        stream = []
        stream += batched.pregenerate(13)
        stream += [batched.draw() for _ in range(5)]
        stream += batched.pregenerate(600)
        stream += [batched.draw()]
        assert stream == [scalar.draw() for _ in range(len(stream))]

    def test_narrow_width(self):
        batched = HardwareRng(seed=9, width=16)
        scalar = HardwareRng(seed=9, width=16)
        assert batched.pregenerate(2500) == \
            [scalar.draw() for _ in range(2500)]

    def test_nonpositive_count_is_empty_noop(self):
        rng = HardwareRng(seed=1)
        assert rng.pregenerate(0) == []
        assert rng.pregenerate(-3) == []
        assert rng.draw() == HardwareRng(seed=1).draw()

    def test_scalar_fallback_matches_numpy_path(self):
        # Wide RNGs skip the numpy transplant (> one MT word per draw).
        wide = HardwareRng(seed=4, width=48)
        scalar = HardwareRng(seed=4, width=48)
        assert wide.pregenerate(700) == [scalar.draw() for _ in range(700)]


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_sensitive_to_components(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_64_bit_range(self):
        s = derive_seed(123456789, "x", "y", 3)
        assert 0 <= s < 2 ** 64
