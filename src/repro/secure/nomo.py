"""NoMo cache: non-monopolizable static way partitioning (Domnitser+ '12).

NoMo-k reserves ``k`` ways of every set for each active SMT hardware
thread; a thread may monopolize at most ``assoc - k * (threads - 1)``
ways of any set.  The victim chooser therefore refuses to evict another
thread's line while that thread holds no more than its reservation in
the set.  NoMo only helps while victim and attacker run simultaneously
on an SMT core (Section III-A), and — being demand fetch — does nothing
against reuse based attacks.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cache.context import AccessContext
from repro.cache.set_associative import SetAssociativeCache
from repro.cache.tagstore import LineState


class NoMoCache(SetAssociativeCache):
    """Set-associative cache with per-thread reserved ways."""

    def __init__(self, size_bytes: int, associativity: int,
                 line_size: int = 64, reserved_ways: int = 1,
                 num_threads: int = 2, **kwargs):
        super().__init__(size_bytes, associativity, line_size, **kwargs)
        if reserved_ways < 0:
            raise ValueError(f"reserved_ways must be >= 0, got {reserved_ways}")
        if reserved_ways * num_threads > associativity:
            raise ValueError(
                f"cannot reserve {reserved_ways} ways for each of "
                f"{num_threads} threads in a {associativity}-way cache"
            )
        self.reserved_ways = reserved_ways
        self.num_threads = num_threads

    def _evictable_indices(self, cache_set: List[LineState],
                           ctx: AccessContext) -> List[int]:
        counts: Dict[int, int] = {}
        for line in cache_set:
            counts[line.owner] = counts.get(line.owner, 0) + 1
        evictable = []
        for i, line in enumerate(cache_set):
            if line.locked and line.owner != ctx.thread_id:
                continue
            if line.owner != ctx.thread_id and \
                    counts[line.owner] <= self.reserved_ways:
                # The other thread is within its reservation: immune.
                continue
            evictable.append(i)
        return evictable
