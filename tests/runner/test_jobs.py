"""Tests for the job-handle layer (submit / poll / cancel) the sweep
service is built on."""

import threading
import time

import pytest

from repro.leakage.sweep import LeakageCellSpec
from repro.runner.jobs import FINISHED_STATES, JobQueueFull, JobRunner
from repro.runner.result_cache import ResultCache


class IsolatedRunner(JobRunner):
    """JobRunner whose submits never touch the shared on-disk result
    cache — the timing assertions below rely on slow specs actually
    simulating, which a warm ``~/.cache/repro`` would defeat."""

    def submit(self, specs, **kwargs):
        kwargs.setdefault(
            "result_cache",
            ResultCache(disk_dir=None, use_default_disk_dir=False),
        )
        return super().submit(specs, **kwargs)


def quick_spec(seed=0):
    return LeakageCellSpec(channel="eq7", scheme="random_fill", window=(1, 0),
                           trials=40, seed=seed, curve_points=(1, 2),
                           curve_repeats=5)


def slow_spec(seed=0):
    # ~1.5s of eq7 sampling: long enough to observe "running" and to
    # keep the queue occupied, short enough for CI.
    return LeakageCellSpec(channel="eq7", scheme="random_fill", window=(1, 0),
                           trials=1_500_000, seed=seed, curve_points=(1,),
                           curve_repeats=1)


@pytest.fixture
def runner():
    runner = IsolatedRunner(queue_depth=4)
    yield runner
    runner.shutdown(wait=True, cancel_queued=True)


class TestLifecycle:
    def test_submit_poll_result(self, runner):
        specs = [quick_spec(seed) for seed in range(3)]
        handle = runner.submit(specs, jobs=1, progress=False)
        results = handle.result(timeout=120)
        assert len(results) == 3
        snapshot = handle.poll()
        assert snapshot["state"] == "done"
        assert snapshot["cells"] == 3
        assert snapshot["queue_wait_s"] >= 0.0
        assert snapshot["run_seconds"] > 0.0
        assert snapshot["error"] is None
        assert snapshot["stats"].get("cells") == 3

    def test_results_match_direct_run(self, runner):
        specs = [quick_spec(seed) for seed in range(2)]
        handle = runner.submit(specs, jobs=1, progress=False)
        direct = [spec.run() for spec in specs]
        assert handle.result(timeout=120) == direct

    def test_jobs_run_in_submission_order(self, runner):
        order = []
        lock = threading.Lock()

        def observer(tag):
            def on_transition(handle, state):
                if state == "running":
                    with lock:
                        order.append(tag)
            return on_transition

        handles = [
            runner.submit([quick_spec(seed)], on_transition=observer(seed),
                          jobs=1, progress=False)
            for seed in range(3)
        ]
        for handle in handles:
            handle.result(timeout=120)
        assert order == [0, 1, 2]

    def test_failed_job_state_and_error(self, runner):
        handle = runner.submit([object()], jobs=1, progress=False)
        with pytest.raises(RuntimeError, match="failed"):
            handle.result(timeout=120)
        snapshot = handle.poll()
        assert snapshot["state"] == "failed"
        assert snapshot["error"]

    def test_result_timeout(self, runner):
        handle = runner.submit([slow_spec()], jobs=1, progress=False)
        with pytest.raises(TimeoutError):
            handle.result(timeout=0.05)
        assert handle.result(timeout=120)  # still completes afterwards


class TestQueueBound:
    def test_queue_full_raises(self):
        runner = IsolatedRunner(queue_depth=1)
        try:
            first = runner.submit([slow_spec(0)], jobs=1, progress=False)
            # Wait until the first job occupies the executor, so the
            # next submit is the single queued slot.
            deadline = time.monotonic() + 30
            while first.state == "queued" and time.monotonic() < deadline:
                time.sleep(0.005)
            assert first.state in {"running"} | FINISHED_STATES
            queued = runner.submit([slow_spec(1)], jobs=1, progress=False)
            with pytest.raises(JobQueueFull):
                runner.submit([slow_spec(2)], jobs=1, progress=False)
            queued.cancel()
        finally:
            runner.shutdown(wait=True, cancel_queued=True)

    def test_queue_depth_validated(self):
        with pytest.raises(ValueError):
            JobRunner(queue_depth=0)

    def test_submit_after_shutdown_refused(self):
        runner = IsolatedRunner(queue_depth=2)
        runner.shutdown(wait=True, cancel_queued=True)
        with pytest.raises(RuntimeError, match="shut down"):
            runner.submit([quick_spec()], jobs=1, progress=False)


class TestCancel:
    def test_cancel_queued_job_never_runs(self, runner):
        transitions = []
        blocker = runner.submit([slow_spec(0)], jobs=1, progress=False)
        deadline = time.monotonic() + 30
        while blocker.state == "queued" and time.monotonic() < deadline:
            time.sleep(0.005)
        victim = runner.submit(
            [quick_spec(9)],
            on_transition=lambda h, s: transitions.append(s),
            jobs=1, progress=False,
        )
        assert victim.cancel() is True
        assert victim.state == "cancelled"
        blocker.result(timeout=120)
        # Give the executor a beat: it must skip the cancelled job.
        deadline = time.monotonic() + 10
        while runner.running() is not None and time.monotonic() < deadline:
            time.sleep(0.005)
        assert "running" not in transitions
        with pytest.raises(RuntimeError, match="cancelled"):
            victim.result(timeout=1)

    def test_cancel_running_job_discards_results(self, runner):
        handle = runner.submit([slow_spec(3)], jobs=1, progress=False)
        deadline = time.monotonic() + 30
        while handle.state == "queued" and time.monotonic() < deadline:
            time.sleep(0.005)
        assert handle.state == "running"
        assert handle.cancel() is False  # cannot preempt mid-run
        assert handle.state == "cancelling"
        with pytest.raises(RuntimeError, match="cancelled"):
            handle.result(timeout=120)
        assert handle.poll()["state"] == "cancelled"


class TestObservers:
    def test_transition_callbacks_fire(self, runner):
        transitions = []
        handle = runner.submit(
            [quick_spec(5)],
            on_transition=lambda h, s: transitions.append((h.job_id, s)),
            jobs=1, progress=False,
        )
        handle.result(timeout=120)
        assert transitions == [(handle.job_id, "running"),
                               (handle.job_id, "done")]

    def test_observer_exceptions_are_swallowed(self, runner):
        def bomb(handle, state):
            raise RuntimeError("observer bug")

        handle = runner.submit([quick_spec(6)], on_transition=bomb,
                               jobs=1, progress=False)
        assert handle.result(timeout=120)

    def test_shutdown_cancels_queued_and_notifies(self):
        runner = IsolatedRunner(queue_depth=4)
        transitions = []
        blocker = runner.submit([slow_spec(0)], jobs=1, progress=False)
        deadline = time.monotonic() + 30
        while blocker.state == "queued" and time.monotonic() < deadline:
            time.sleep(0.005)
        queued = runner.submit(
            [quick_spec(7)],
            on_transition=lambda h, s: transitions.append(s),
            jobs=1, progress=False,
        )
        runner.shutdown(wait=True, cancel_queued=True)
        assert queued.state == "cancelled"
        assert transitions == ["cancelled"]
