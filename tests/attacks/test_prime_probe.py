"""Tests for the Prime-Probe attack (contention based)."""

from repro.attacks.prime_probe import run_prime_probe_trials
from repro.cache.set_associative import SetAssociativeCache
from repro.core.window import RandomFillWindow
from repro.secure.newcache import Newcache
from repro.secure.region import ProtectedRegion

REGION = ProtectedRegion(0x10000, 1024)  # 16 lines


def sa_cache():
    return SetAssociativeCache(8 * 1024, 4)  # 32 sets


class TestPrimeProbe:
    def test_succeeds_on_sa_demand_fetch(self):
        result = run_prime_probe_trials(sa_cache(), 32, 4, REGION,
                                        trials=200, seed=1)
        assert result.set_accuracy > 0.9

    def test_succeeds_on_sa_random_fill_nearby(self):
        """Random fill does NOT stop contention attacks on an SA cache:
        the fill lands in the window's neighborhood, so the observed set
        is within the window of the true one (the paper pairs random
        fill with Newcache for that reason)."""
        result = run_prime_probe_trials(sa_cache(), 32, 4, REGION,
                                        window=RandomFillWindow(2, 1),
                                        trials=200, seed=2)
        assert result.advantage > 0.1

    def test_fails_on_newcache(self):
        result = run_prime_probe_trials(
            Newcache(8 * 1024, seed=9), 32, 4, REGION, trials=200, seed=3)
        assert result.set_accuracy < 0.3

    def test_advantage_metric(self):
        result = run_prime_probe_trials(sa_cache(), 32, 4, REGION,
                                        trials=50, seed=4)
        assert result.advantage == result.set_accuracy - 1 / 32
