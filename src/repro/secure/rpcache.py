"""RPcache: random permutation cache (Wang & Lee, ISCA'07).

Each trust domain owns a permutation table over set indices.  When a
fill would evict a line belonging to a *different* domain, RPcache
instead evicts a random line from a randomly chosen set S', swaps the
indices of S and S' in the requester's permutation table, and
invalidates the requester's own lines in both sets — so the attacker
can draw no conclusion from observing which of its lines was evicted.

Like all contention-randomizing designs, RPcache remains demand fetch
and thus vulnerable to reuse based attacks.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.cache.context import AccessContext, DEFAULT_CONTEXT
from repro.cache.replacement import LruPolicy, ReplacementPolicy
from repro.cache.tagstore import LineState, TagStore
from repro.memory.address import AddressMap
from repro.util.rng import HardwareRng


class RPCache(TagStore):
    """Set-associative cache with per-domain index permutation."""

    def __init__(self, size_bytes: int, associativity: int,
                 line_size: int = 64,
                 policy: Optional[ReplacementPolicy] = None,
                 rng: Optional[HardwareRng] = None, seed: int = 0):
        if size_bytes <= 0 or size_bytes % (associativity * line_size):
            raise ValueError(
                f"size {size_bytes} not divisible into {associativity}-way sets"
            )
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.line_size = line_size
        self.capacity_lines = size_bytes // line_size
        self.num_sets = self.capacity_lines // associativity
        self.amap = AddressMap(line_size=line_size, num_sets=self.num_sets)
        self.policy = policy if policy is not None else LruPolicy()
        self._rng = rng if rng is not None else HardwareRng(seed)
        self._sets: List[List[LineState]] = [[] for _ in range(self.num_sets)]
        self._perms: Dict[int, List[int]] = {}

    # -- permutation tables ------------------------------------------------

    def _perm(self, domain: int) -> List[int]:
        table = self._perms.get(domain)
        if table is None:
            table = list(range(self.num_sets))  # identity until first swap
            self._perms[domain] = table
        return table

    def _set_index(self, line_addr: int, domain: int) -> int:
        return self._perm(domain)[self.amap.set_of_line(line_addr)]

    def _swap_indices(self, domain: int, raw_a: int, raw_b: int) -> None:
        """Swap two *physical* set indices in ``domain``'s table."""
        table = self._perm(domain)
        pos_a = table.index(raw_a)
        pos_b = table.index(raw_b)
        table[pos_a], table[pos_b] = table[pos_b], table[pos_a]

    # -- internals ---------------------------------------------------------

    def _find(self, cache_set: List[LineState], line_addr: int) -> int:
        for i, line in enumerate(cache_set):
            if line.line_addr == line_addr:
                return i
        return -1

    def _invalidate_domain_lines(self, set_index: int, domain: int) -> None:
        cache_set = self._sets[set_index]
        cache_set[:] = [line for line in cache_set if line.domain != domain]

    # -- TagStore interface ----------------------------------------------

    def probe(self, line_addr: int, ctx: AccessContext = DEFAULT_CONTEXT) -> bool:
        cache_set = self._sets[self._set_index(line_addr, ctx.domain)]
        return self._find(cache_set, line_addr) >= 0

    def access(self, line_addr: int, ctx: AccessContext = DEFAULT_CONTEXT) -> bool:
        set_index = self._set_index(line_addr, ctx.domain)
        cache_set = self._sets[set_index]
        index = self._find(cache_set, line_addr)
        if index < 0:
            return False
        self.policy.on_hit(cache_set, index)
        return True

    def fill(self, line_addr: int,
             ctx: AccessContext = DEFAULT_CONTEXT) -> Optional[int]:
        set_index = self._set_index(line_addr, ctx.domain)
        cache_set = self._sets[set_index]
        if self._find(cache_set, line_addr) >= 0:
            return None
        if len(cache_set) < self.associativity:
            self.policy.on_fill(cache_set, LineState(
                line_addr, owner=ctx.thread_id, domain=ctx.domain))
            return None
        victim_idx = self.policy.choose_victim(
            cache_set, list(range(len(cache_set))))
        victim = cache_set[victim_idx]
        if victim.domain == ctx.domain:
            cache_set.pop(victim_idx)
            self.policy.on_fill(cache_set, LineState(
                line_addr, owner=ctx.thread_id, domain=ctx.domain))
            return victim.line_addr
        # Cross-domain eviction: evict from a random set S' instead,
        # swap S and S' in the requester's permutation table, and
        # invalidate the requester's lines in both sets.
        other_index = self._rng.draw_below(self.num_sets)
        other_set = self._sets[other_index]
        evicted: Optional[int] = None
        if other_set:
            evicted = other_set.pop(
                self._rng.draw_below(len(other_set))).line_addr
        self._swap_indices(ctx.domain, set_index, other_index)
        self._invalidate_domain_lines(set_index, ctx.domain)
        self._invalidate_domain_lines(other_index, ctx.domain)
        self.policy.on_fill(self._sets[other_index], LineState(
            line_addr, owner=ctx.thread_id, domain=ctx.domain))
        return evicted

    def invalidate(self, line_addr: int) -> bool:
        # The line may live under any domain's mapping; search all sets.
        for cache_set in self._sets:
            index = self._find(cache_set, line_addr)
            if index >= 0:
                cache_set.pop(index)
                return True
        return False

    def flush(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()

    def resident_lines(self) -> Iterator[int]:
        for cache_set in self._sets:
            for line in cache_set:
                yield line.line_addr
