"""Tests for the random fill engine."""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.core.engine import RandomFillEngine
from repro.core.window import RandomFillWindow
from repro.util.rng import HardwareRng


def make_engine(seed=0):
    return RandomFillEngine(HardwareRng(seed))


class TestRegisters:
    def test_default_disabled(self):
        engine = make_engine()
        assert engine.window_for(0).disabled

    def test_per_thread_isolation(self):
        engine = make_engine()
        engine.set_window(0, RandomFillWindow(4, 3))
        assert engine.window_for(1).disabled
        assert engine.window_for(0) == RandomFillWindow(4, 3)

    def test_range_registers_encoding(self):
        engine = make_engine()
        engine.set_window(0, RandomFillWindow(4, 3))
        assert engine.range_registers(0) == (0b11111100, 0b00000111)


class TestGeneration:
    def test_offsets_within_pow2_window(self):
        engine = make_engine(1)
        engine.set_window(0, RandomFillWindow(16, 15))
        for _ in range(2000):
            assert -16 <= engine.random_offset(0) <= 15

    def test_offsets_within_arbitrary_window(self):
        engine = make_engine(2)
        engine.set_window(0, RandomFillWindow(5, 7))  # size 13, not pow2
        for _ in range(2000):
            assert -5 <= engine.random_offset(0) <= 7

    def test_generate_adds_demand_line(self):
        engine = make_engine(3)
        engine.set_window(0, RandomFillWindow(2, 1))
        for _ in range(200):
            assert 98 <= engine.generate(100, 0) <= 101

    def test_uniform_coverage(self):
        engine = make_engine(4)
        engine.set_window(0, RandomFillWindow(4, 3))
        counts = Counter(engine.random_offset(0) for _ in range(8000))
        assert set(counts) == set(range(-4, 4))
        assert min(counts.values()) > 700

    @settings(max_examples=30)
    @given(st.integers(min_value=0, max_value=32),
           st.integers(min_value=0, max_value=32),
           st.integers(min_value=0, max_value=2**20))
    def test_generated_line_always_in_window(self, a, b, line):
        engine = make_engine(5)
        engine.set_window(0, RandomFillWindow(a, b))
        fill = engine.generate(line, 0)
        assert line - a <= fill <= line + b
