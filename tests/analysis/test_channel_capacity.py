"""Tests for the storage-channel capacity analysis (Section V-B)."""


import pytest

from repro.analysis.channel_capacity import (
    channel_capacity_bits,
    demand_fetch_capacity_bits,
    figure5_series,
    normalized_capacity,
    transition_probability,
)
from repro.core.window import RandomFillWindow


class TestTransitionProbability:
    def test_equation7(self):
        w = RandomFillWindow(2, 1)  # size 4
        assert transition_probability(10, 8, w) == 0.25
        assert transition_probability(10, 11, w) == 0.25
        assert transition_probability(10, 12, w) == 0.0
        assert transition_probability(10, 7, w) == 0.0

    def test_rows_sum_to_one(self):
        w = RandomFillWindow(5, 7)
        total = sum(transition_probability(0, j, w) for j in range(-10, 10))
        assert total == pytest.approx(1.0)


class TestCapacity:
    def test_demand_fetch_is_log2_m(self):
        assert demand_fetch_capacity_bits(16) == 4.0
        # window of size 1 is the identity channel
        c = channel_capacity_bits(16, RandomFillWindow(0, 0))
        assert c == pytest.approx(4.0)

    def test_capacity_decreases_with_window(self):
        caps = [channel_capacity_bits(16, RandomFillWindow.bidirectional(w))
                for w in (1, 2, 4, 8, 16, 32)]
        assert all(a > b for a, b in zip(caps, caps[1:]))

    def test_never_negative(self):
        for w in (1, 2, 8, 64):
            assert channel_capacity_bits(
                8, RandomFillWindow.bidirectional(w)) >= 0

    def test_boundary_effect_keeps_channel_open(self):
        """Section V-B: the storage channel cannot be completely closed."""
        c = channel_capacity_bits(16, RandomFillWindow(16, 15))
        assert c > 0

    def test_order_of_magnitude_drop_at_twice_m(self):
        """Capacity drops >10x when the window is twice the region."""
        for m in (8, 16, 64, 128):
            window = RandomFillWindow(m, m - 1)  # size 2M
            assert normalized_capacity(m, window) < 0.15

    def test_validation(self):
        with pytest.raises(ValueError):
            channel_capacity_bits(0, RandomFillWindow(1, 1))
        with pytest.raises(ValueError):
            demand_fetch_capacity_bits(0)


class TestNormalized:
    def test_identity_is_one(self):
        assert normalized_capacity(16, RandomFillWindow(0, 0)) == \
            pytest.approx(1.0)

    def test_single_line_region(self):
        assert normalized_capacity(1, RandomFillWindow(4, 3)) == 0.0

    def test_bounds(self):
        for w in (2, 8, 32):
            v = normalized_capacity(16, RandomFillWindow.bidirectional(w))
            assert 0.0 <= v <= 1.0


class TestFigure5:
    def test_series_structure(self):
        series = figure5_series()
        assert set(series) == {8, 16, 64, 128}
        for points in series.values():
            xs = [x for x, _ in points]
            ys = [y for _, y in points]
            assert xs == sorted(xs)
            # monotone non-increasing capacity
            assert all(a >= b - 1e-9 for a, b in zip(ys, ys[1:]))

    def test_larger_m_less_boundary_leakage(self):
        """Section V-B: the boundary effect is smaller for larger M."""
        series = figure5_series(normalized_window_sizes=(2.0,))
        caps = {m: points[0][1] for m, points in series.items()}
        assert caps[128] < caps[8]
