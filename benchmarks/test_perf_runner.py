"""Runner smoke benchmark: columnar-engine speedups, result-cache warm
re-runs, and cache/jobs invariance.

Two generations of baselines, both measured on the reference container
(one CPU core, Python 3.11):

* the seed revision: 0.322 s per 100k-ref cell, 6.31 s for the 20k-ref
  Figure 10 sweep;
* the first runner optimisation pass (the committed ``BENCH_runner.json``
  before the columnar engine landed): 0.1408 s per cell, 2.9759 s for
  the sweep.

The bars below are the acceptance criteria for the columnar trace
engine, the content-addressed result cache, and the lane kernel:

* a **cold** Figure 10 sweep at ``jobs=1`` (result cache bypassed) must
  be >= 1.5x faster than the previous committed baseline,
* the **batched** scalar sweep (``REPRO_LANES=0``: one trace decode and
  one vectorized random-fill draw row per benchmark group, scalar flat
  kernel per cell) must be >= 1.5x faster than the same sweep with
  ``--no-batch``, and bit-identical to it,
* the **lane** sweep (the default path: eligible cells of a batch
  advance together through the lane kernel) must be >= 1.5x faster
  than the batched scalar sweep, and bit-identical to it,
* a **warm** identical re-run must be >= 10x faster than cold, served
  entirely from the result cache,
* results are bit-identical cold vs. warm (cache off vs. on) and
  ``jobs=1`` vs. ``jobs=N``,
* checked mode (``REPRO_CHECK``) must keep bypassing lane planning
  (every checked cell takes the per-cell oracle path) and its on-mode
  slowdown must stay under a soft ceiling,
* neither ``single_cell_s`` nor ``fig10_20k_sweep_s`` may regress more
  than 30% against the committed baseline (the CI perf smoke gate).

All gated timings are **process CPU time** (``time.process_time``),
min-of-N: the reference container shares its single core with bursty
background load, which inflates wall clock by 30%+ but leaves CPU time
within a few percent.  The baselines were wall-clock minima on an idle
core, which is the same quantity.

Timings land in ``BENCH_runner.json`` at the repository root alongside
the per-sweep entries the ``python -m repro sweep`` CLI records.
"""

import os
import shutil
import tempfile
import time
from pathlib import Path

from _reporting import save_report

from repro import check as check_mod

from repro.experiments.perf_general import figure10
from repro.runner import CellSpec, record_bench, resolve_jobs, run_cell
from repro.runner.pool import last_run_stats, run_context
from repro.runner.result_cache import RESULT_CACHE
from repro.util.tables import format_table
from repro.workloads.cache import cached_workload

SEED_SINGLE_CELL_S = 0.322   # seed revision, reference container
SEED_FIG10_20K_S = 6.31      # seed revision, reference container

BASE_SINGLE_CELL_S = 0.1408  # committed baseline before the columnar engine
BASE_FIG10_20K_S = 2.9759    # committed baseline before the columnar engine

#: CI perf smoke gate: fail on more than this regression vs. the baseline
MAX_REGRESSION = 1.30

#: soft ceiling on the checked-mode slowdown (checked cell / plain
#: cell).  Measured 3.1-3.3x across PRs 5-8 with min-of-5 sampling; a
#: reading above this means checked mode itself regressed, not noise.
#: (The 4.72x once committed for PR 6 was a min-of-2 artifact on a
#: shared core — the underlying ratio had not moved.)
MAX_CHECK_OVERHEAD_X = 4.5

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_runner.json"

FIG10_BENCHMARKS = ("astar", "bzip2", "h264ref", "sjeng",
                    "milc", "hmmer", "lbm", "libquantum")


def _timed(fn):
    started = time.process_time()
    fn()
    return time.process_time() - started


def _points_key(points):
    return [(p.benchmark, p.window, p.result, p.normalized_ipc)
            for p in points]


def run():
    # Warm the trace cache first so the timings below measure
    # simulation, not trace synthesis (the baselines were measured the
    # same way).
    for benchmark in FIG10_BENCHMARKS:
        cached_workload(benchmark, n_refs=20_000, seed=5)
    cached_workload("bzip2", n_refs=100_000, seed=5)

    spec = CellSpec(kind="general", benchmark="bzip2", window=(4, 3),
                    n_refs=100_000, seed=5)
    single_s = min(_timed(lambda: run_cell(spec)) for _ in range(5))

    # Cold sweeps: result cache bypassed so every cell simulates.  The
    # default path batches compatible cells and advances them as lanes
    # of the lane kernel; the batched scalar path is timed with
    # ``REPRO_LANES=0`` and the per-cell path with batching off.
    cold_s, sequential = None, None
    batched_s, batched_points = None, None
    percell_s, percell_points = None, None
    with RESULT_CACHE.disabled():
        for _ in range(3):
            started = time.process_time()
            points = figure10(n_refs=20_000, seed=5, jobs=1)
            elapsed = time.process_time() - started
            if cold_s is None or elapsed < cold_s:
                cold_s, sequential = elapsed, points
        batch_stats = last_run_stats()

        os.environ["REPRO_LANES"] = "0"
        try:
            for _ in range(3):
                started = time.process_time()
                points = figure10(n_refs=20_000, seed=5, jobs=1)
                elapsed = time.process_time() - started
                if batched_s is None or elapsed < batched_s:
                    batched_s, batched_points = elapsed, points
        finally:
            del os.environ["REPRO_LANES"]

        with run_context(batch=False):
            for _ in range(3):
                started = time.process_time()
                points = figure10(n_refs=20_000, seed=5, jobs=1)
                elapsed = time.process_time() - started
                if percell_s is None or elapsed < percell_s:
                    percell_s, percell_points = elapsed, points

        jobs = resolve_jobs(None)
        parallel = figure10(n_refs=20_000, seed=5, jobs=jobs)
        pool_stats = last_run_stats()
    jobs_match = _points_key(sequential) == _points_key(parallel)
    lanes_match = _points_key(sequential) == _points_key(batched_points)
    batch_match = _points_key(batched_points) == _points_key(percell_points)

    # Warm re-run: fill a fresh result cache, then time the identical
    # sweep served entirely from it.
    tmp_dir = tempfile.mkdtemp(prefix="repro-bench-results-")
    saved_dir = RESULT_CACHE.disk_dir
    try:
        RESULT_CACHE.disk_dir = tmp_dir
        filled = figure10(n_refs=20_000, seed=5, jobs=1)
        started = time.process_time()
        warm = figure10(n_refs=20_000, seed=5, jobs=1)
        warm_s = max(time.process_time() - started, 1e-4)
        warm_stats = last_run_stats()
    finally:
        RESULT_CACHE.disk_dir = saved_dir
        shutil.rmtree(tmp_dir, ignore_errors=True)
    cache_match = (_points_key(sequential) == _points_key(filled)
                   == _points_key(warm))

    # Checked-mode accounting, after every gated timing above so the
    # slow differential runs cannot perturb them.  Off-mode overhead is
    # exactly one ``active_checker()`` lookup per ``TimingModel.run``
    # dispatch, so measure that lookup directly and scale it by a
    # generous per-cell dispatch allowance — a differential
    # cell-vs-cell timing would drown the nanoseconds in scheduler
    # noise.
    lookups = 50_000

    def _hook_calls():
        lookup = check_mod.active_checker
        for _ in range(lookups):
            lookup()

    hook_s = min(_timed(_hook_calls) for _ in range(3))
    hook_frac = (hook_s / lookups) * 50 / single_s

    # The on-mode ratio is gated against a soft ceiling, so sample it
    # with the same min-of-5 discipline as ``single_s`` — a min-of-2
    # here once recorded a phantom 4.72x drift on a shared core.
    unchecked_result = run_cell(spec)
    os.environ[check_mod.ENV_VAR] = "1"
    try:
        checked_result = run_cell(spec)
        checked_s = min(_timed(lambda: run_cell(spec)) for _ in range(5))
    finally:
        del os.environ[check_mod.ENV_VAR]
    checked_matches = checked_result == unchecked_result

    # Checked mode must bypass lane planning: a grid that lane-batches
    # by default runs per-cell under REPRO_CHECK, with the oracle
    # active and bit-identical results.
    os.environ[check_mod.ENV_VAR] = "1"
    try:
        with RESULT_CACHE.disabled():
            checked_points = figure10(n_refs=2_000, seed=5, jobs=1)
            checked_sweep_stats = last_run_stats()
    finally:
        del os.environ[check_mod.ENV_VAR]
    with RESULT_CACHE.disabled():
        lane_points = figure10(n_refs=2_000, seed=5, jobs=1)
        lane_sweep_stats = last_run_stats()
    checked_bypasses_lanes = (
        checked_sweep_stats.get("vectorized_cells", 0) == 0
        and checked_sweep_stats.get("batched_cells", 0) == 0
        and checked_sweep_stats.get("checks_run", 0) > 0
        and lane_sweep_stats.get("vectorized_cells", 0) == len(lane_points)
        and _points_key(checked_points) == _points_key(lane_points))

    payload = {
        "single_cell_s": round(single_s, 4),
        "single_cell_seed_s": SEED_SINGLE_CELL_S,
        "single_cell_base_s": BASE_SINGLE_CELL_S,
        "single_cell_speedup_vs_seed": round(SEED_SINGLE_CELL_S / single_s, 2),
        "single_cell_speedup_vs_base": round(BASE_SINGLE_CELL_S / single_s, 2),
        "single_cell_checked_s": round(checked_s, 4),
        "check_overhead_on_x": round(checked_s / single_s, 2),
        "check_overhead_ceiling_x": MAX_CHECK_OVERHEAD_X,
        "check_hook_off_frac": round(hook_frac, 5),
        "checked_matches_unchecked": checked_matches,
        "checked_bypasses_lanes": checked_bypasses_lanes,
        "fig10_20k_sweep_s": round(cold_s, 4),
        "fig10_20k_seed_s": SEED_FIG10_20K_S,
        "fig10_20k_base_s": BASE_FIG10_20K_S,
        "fig10_20k_speedup_vs_seed": round(SEED_FIG10_20K_S / cold_s, 2),
        "fig10_20k_speedup_vs_base": round(BASE_FIG10_20K_S / cold_s, 2),
        "fig10_lanes_s": round(cold_s, 4),
        "fig10_batched_s": round(batched_s, 4),
        "fig10_percell_s": round(percell_s, 4),
        "lanes_speedup_vs_batched": round(batched_s / cold_s, 2),
        "lanes_match_batched": lanes_match,
        "batched_speedup_vs_percell": round(percell_s / batched_s, 2),
        "batched_matches_percell": batch_match,
        "batches": batch_stats.get("batches", 0),
        "batched_cells": batch_stats.get("batched_cells", 0),
        "decode_reuse_hits": batch_stats.get("decode_reuse_hits", 0),
        "lane_width": batch_stats.get("lane_width", 0),
        "vectorized_cells": batch_stats.get("vectorized_cells", 0),
        "scalar_fallback_cells": batch_stats.get("scalar_fallback_cells", 0),
        "fig10_20k_warm_s": round(warm_s, 4),
        "warm_speedup": round(cold_s / warm_s, 1),
        "warm_cache_hits": warm_stats.get("result_cache_hits", 0),
        "cells": len(sequential),
        "cells_per_sec": round(len(sequential) / cold_s, 2),
        "parallel_jobs": jobs,
        "parallel_matches_sequential": jobs_match,
        "cached_matches_uncached": cache_match,
        "supervision_retries": (pool_stats.get("retries", 0)
                                + warm_stats.get("retries", 0)),
        "supervision_pool_restarts": (pool_stats.get("pool_restarts", 0)
                                      + warm_stats.get("pool_restarts", 0)),
        "latency_p95_s": pool_stats.get("latency_p95_s", 0.0),
    }
    record_bench("runner_smoke", payload, path=str(REPORT_PATH))
    return payload


def test_runner_speedups(benchmark):
    payload = benchmark.pedantic(run, rounds=1, iterations=1)

    # Invariance: same bits for any job count and with the cache on/off.
    assert payload["parallel_matches_sequential"]
    assert payload["cached_matches_uncached"]
    assert payload["warm_cache_hits"] == payload["cells"]

    # Columnar engine: cold sweep beats the committed baseline by 1.5x.
    assert payload["fig10_20k_speedup_vs_base"] >= 1.5

    # Batched kernel: bit-identical to the per-cell path and >= 1.5x
    # faster on the cold Figure 10 sweep (shared decode + warm replay +
    # vectorized random-fill draws per benchmark group).
    assert payload["batched_matches_percell"]
    assert payload["batched_speedup_vs_percell"] >= 1.5
    assert payload["batches"] >= 1

    # Lane kernel: the default path advances every eligible cell of a
    # batch through the lane kernel, bit-identical to the batched
    # scalar path and >= 1.5x faster on the cold Figure 10 sweep.
    assert payload["lanes_match_batched"]
    assert payload["lanes_speedup_vs_batched"] >= 1.5
    assert payload["vectorized_cells"] == payload["cells"]
    assert payload["scalar_fallback_cells"] == 0

    # Result cache: identical re-run is served from disk, >= 10x faster.
    assert payload["warm_speedup"] >= 10

    # CI perf smoke gate: no >30% regression against the baseline.  The
    # cold sweep now runs through the supervision layer, so this bar is
    # also the acceptance test that supervision overhead stays small.
    assert payload["single_cell_s"] <= BASE_SINGLE_CELL_S * MAX_REGRESSION
    assert payload["fig10_20k_sweep_s"] <= BASE_FIG10_20K_S * MAX_REGRESSION

    # A healthy benchmark run must never trip the supervisor.
    assert payload["supervision_retries"] == 0
    assert payload["supervision_pool_restarts"] == 0

    # Checked simulation mode: with REPRO_CHECK unset the dispatch hook
    # must cost under 2% of a cell; with it set the differential oracle
    # must reproduce the unchecked result bit-for-bit, stay under the
    # soft slowdown ceiling (it is a debugging mode, but a drift past
    # the ceiling means checked mode itself regressed), and bypass lane
    # planning entirely.
    assert payload["check_hook_off_frac"] <= 0.02
    assert payload["checked_matches_unchecked"]
    assert payload["check_overhead_on_x"] <= MAX_CHECK_OVERHEAD_X
    assert payload["checked_bypasses_lanes"]

    rows = [(name, str(payload[name])) for name in sorted(payload)]
    save_report("runner_smoke",
                format_table(("metric", "value"), rows,
                             title="Runner smoke benchmark"))
