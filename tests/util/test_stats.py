"""Tests for statistics helpers."""


import pytest

from repro.util.stats import (
    mean,
    normal_quantile,
    population_variance,
    sample_variance,
    welch_t,
)


class TestMoments:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_population_variance(self):
        assert population_variance([2.0, 4.0]) == 1.0

    def test_sample_variance(self):
        assert sample_variance([2.0, 4.0]) == 2.0

    def test_sample_variance_needs_two(self):
        with pytest.raises(ValueError):
            sample_variance([1.0])


class TestWelch:
    def test_identical_samples_zero(self):
        assert welch_t([1, 2, 3], [1, 2, 3]) == 0.0

    def test_separated_samples_large(self):
        assert welch_t([10, 11, 12], [0, 1, 2]) > 5

    def test_sign(self):
        assert welch_t([0, 1, 2], [10, 11, 12]) < 0


class TestNormalQuantile:
    def test_median(self):
        assert abs(normal_quantile(0.5)) < 1e-9

    def test_known_values(self):
        assert normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-4)
        assert normal_quantile(0.99) == pytest.approx(2.326348, abs=1e-4)

    def test_symmetry(self):
        assert normal_quantile(0.25) == pytest.approx(-normal_quantile(0.75),
                                                      abs=1e-9)

    def test_tails(self):
        assert normal_quantile(1e-6) < -4
        assert normal_quantile(1 - 1e-6) > 4

    def test_domain_validation(self):
        for bad in (0.0, 1.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                normal_quantile(bad)
