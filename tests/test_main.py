"""Tests for the ``python -m repro`` entry point."""

import subprocess
import sys


def test_module_entry_point_runs():
    result = subprocess.run([sys.executable, "-m", "repro"],
                            capture_output=True, text=True, timeout=120)
    assert result.returncode == 0
    assert "Random Fill Cache Architecture" in result.stdout
    assert "Figure 10" in result.stdout
    # the smoke demo shows the defence working
    assert "accuracy 1.00" in result.stdout      # demand fetch leaks
    assert "random fill" in result.stdout
