"""AES-128 substrate: functional cipher + traced victim implementation."""

from repro.crypto.aes import AES128, expand_decrypt_key, expand_key
from repro.crypto.aes_tables import (
    INV_SBOX,
    SBOX,
    TABLE_BYTES,
    TD0, TD1, TD2, TD3, TD4,
    TE0, TE1, TE2, TE3, TE4,
)
from repro.crypto.traced_aes import AesMemoryLayout, TracedAES128

__all__ = [
    "AES128",
    "AesMemoryLayout",
    "INV_SBOX",
    "SBOX",
    "TABLE_BYTES",
    "TD0", "TD1", "TD2", "TD3", "TD4",
    "TE0", "TE1", "TE2", "TE3", "TE4",
    "TracedAES128",
    "expand_decrypt_key",
    "expand_key",
]
