"""Convenience builder wiring L1 + L2 + DRAM into one object.

Experiments construct hierarchies from a
:class:`repro.experiments.config.SimulatorConfig`; this module provides
the lower-level assembly so tests and examples can build odd shapes
directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.controller import FillPolicy, L1Controller
from repro.cache.l2 import L2Cache
from repro.cache.set_associative import SetAssociativeCache
from repro.cache.tagstore import TagStore
from repro.memory.dram import DramConfig, DramModel


@dataclass
class Hierarchy:
    """A complete memory hierarchy: L1 controller, L2, DRAM."""

    l1: L1Controller
    l2: L2Cache
    dram: DramModel

    def flush_all(self) -> None:
        self.l1.flush()
        self.l2.flush()
        self.dram.reset()

    def reset_stats(self) -> None:
        self.l1.reset_stats()
        self.l2.reset_stats()


def build_hierarchy(l1_tag_store: Optional[TagStore] = None,
                    policy: Optional[FillPolicy] = None,
                    l1_size: int = 32 * 1024,
                    l1_assoc: int = 4,
                    line_size: int = 64,
                    l1_hit_latency: int = 1,
                    l2_size: int = 2 * 1024 * 1024,
                    l2_assoc: int = 8,
                    l2_hit_latency: int = 20,
                    mshr_entries: int = 4,
                    dram_config: DramConfig = DramConfig()) -> Hierarchy:
    """Assemble the Table IV hierarchy (defaults match the paper)."""
    if l1_tag_store is None:
        l1_tag_store = SetAssociativeCache(l1_size, l1_assoc, line_size)
    dram = DramModel(dram_config)
    l2 = L2Cache(dram=dram, size_bytes=l2_size, associativity=l2_assoc,
                 line_size=line_size, hit_latency=l2_hit_latency)
    l1 = L1Controller(l1_tag_store, l2, policy=policy,
                      hit_latency=l1_hit_latency, mshr_entries=mshr_entries,
                      line_size=line_size)
    return Hierarchy(l1=l1, l2=l2, dram=dram)
