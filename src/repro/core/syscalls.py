"""System interface: the Table II system calls and PCB context switching.

Table II offers two alternative calls (only one is needed in a real OS;
we provide both):

* ``set_rr(a, b)`` — arbitrary window bounds,
* ``set_window(lower_bound, n)`` — power-of-two window size ``2**n``.

Section IV-B.3 additionally requires that "the range registers are part
of the context of the processor and need to be saved to, and restored
from, the process control block (PCB) for a context switch" — that is
exactly what :meth:`RandomFillOS.context_switch` models, and what keeps
one process's window from leaking into (or being set by) another: "the
attacker cannot set the victim's window size" (Section VIII).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.engine import RandomFillEngine
from repro.core.window import RandomFillWindow


@dataclass
class ProcessControlBlock:
    """Saved per-process architectural state (just the range registers)."""

    pid: int
    window: RandomFillWindow = field(default_factory=RandomFillWindow.disabled_window)


class RandomFillOS:
    """Minimal OS layer owning PCBs and the engine's register file."""

    def __init__(self, engine: RandomFillEngine):
        self.engine = engine
        self._pcbs: Dict[int, ProcessControlBlock] = {}
        self._running: Dict[int, int] = {}  # thread_id -> pid

    # -- process management ----------------------------------------------

    def create_process(self, pid: int) -> ProcessControlBlock:
        if pid in self._pcbs:
            raise ValueError(f"pid {pid} already exists")
        pcb = ProcessControlBlock(pid)
        self._pcbs[pid] = pcb
        return pcb

    def pcb(self, pid: int) -> ProcessControlBlock:
        try:
            return self._pcbs[pid]
        except KeyError:
            raise KeyError(f"unknown pid {pid}") from None

    def running_pid(self, thread_id: int) -> int:
        try:
            return self._running[thread_id]
        except KeyError:
            raise KeyError(f"no process running on thread {thread_id}") from None

    def schedule(self, pid: int, thread_id: int = 0) -> None:
        """Put ``pid`` on a hardware thread, restoring its registers."""
        self._running[thread_id] = pid
        self.engine.set_window(thread_id, self.pcb(pid).window)

    def context_switch(self, out_pid: int, in_pid: int,
                       thread_id: int = 0) -> None:
        """Save the outgoing process's range registers, restore incoming."""
        if self._running.get(thread_id) != out_pid:
            raise ValueError(
                f"pid {out_pid} is not running on thread {thread_id}"
            )
        self.pcb(out_pid).window = self.engine.window_for(thread_id)
        self.schedule(in_pid, thread_id)

    # -- Table II system calls -----------------------------------------------

    def set_rr(self, a: int, b: int, thread_id: int = 0) -> None:
        """``set_RR(int a, int b)``: arbitrary window bounds."""
        self._apply(RandomFillWindow(a, b), thread_id)

    def set_window(self, lower_bound: int, n: int, thread_id: int = 0) -> None:
        """``set_window(int lowerBound, int n)``: window size ``2**n``."""
        self._apply(RandomFillWindow.from_pow2(lower_bound, n), thread_id)

    def disable(self, thread_id: int = 0) -> None:
        """Reset the registers to zero (demand-fetch behaviour)."""
        self._apply(RandomFillWindow.disabled_window(), thread_id)

    def _apply(self, window: RandomFillWindow, thread_id: int) -> None:
        self.engine.set_window(thread_id, window)
        pid = self._running.get(thread_id)
        if pid is not None:
            # Keep the PCB coherent so a later context switch round-trips.
            self._pcbs[pid].window = window
