"""Composition tests: random fill over every tag-store design.

The paper claims the random cache fill strategy "can be built on any
cache architecture".  These tests plug :class:`RandomFillPolicy` into
each secure tag store and check both that the machine still works and
that the security property (the demand line is never installed by its
own miss) holds on every substrate.
"""

import pytest

from repro.cache import AccessContext
from repro.cache.hierarchy import build_hierarchy
from repro.core.engine import RandomFillEngine
from repro.core.policy import RandomFillPolicy
from repro.core.window import RandomFillWindow
from repro.cpu.timing import TimingModel
from repro.secure.newcache import Newcache
from repro.secure.nomo import NoMoCache
from repro.secure.plcache import PLCache
from repro.secure.rpcache import RPCache
from repro.util.rng import HardwareRng

SUBSTRATES = {
    "sa": None,  # default SetAssociativeCache
    "newcache": lambda: Newcache(8 * 1024, seed=5),
    "plcache": lambda: PLCache(8 * 1024, 4),
    "nomo": lambda: NoMoCache(8 * 1024, 4, reserved_ways=1),
    "rpcache": lambda: RPCache(8 * 1024, 4, seed=5),
}


def build(substrate_name):
    factory = SUBSTRATES[substrate_name]
    engine = RandomFillEngine(HardwareRng(3))
    engine.set_window(0, RandomFillWindow(8, 7))
    h = build_hierarchy(
        l1_tag_store=factory() if factory else None,
        policy=RandomFillPolicy(engine),
        l1_size=8 * 1024, l1_assoc=4)
    return h


@pytest.mark.parametrize("substrate", sorted(SUBSTRATES))
class TestRandomFillOnEverySubstrate:
    def test_runs_and_caches_something(self, substrate):
        h = build(substrate)
        trace = [(0x10000 + (i * 64) % 2048, 4, 0) for i in range(3000)]
        result = TimingModel(h.l1).run(trace, AccessContext())
        assert result.ipc > 0
        assert h.l1.stats.random_fill_issued > 0
        assert h.l1.stats.hits > 0  # neighborhood fills produce hits

    def test_demand_line_not_installed_by_single_miss(self, substrate):
        h = build(substrate)
        target = 0x200000
        h.l1.access(target, now=0, ctx=AccessContext())
        h.l1.settle()
        line = target // 64
        if h.l1.tag_store.probe(line):
            # Only legal if the random fill itself chose offset 0 and
            # upgraded the NOFILL entry; the filled set must then be
            # exactly the window around the line.
            resident = list(h.l1.tag_store.resident_lines())
            assert all(line - 8 <= ln <= line + 7 for ln in resident)

    def test_fills_stay_in_window(self, substrate):
        h = build(substrate)
        demands = [0x300000 + i * 64 * 100 for i in range(40)]
        now = 0
        for addr in demands:
            r = h.l1.access(addr, now, AccessContext())
            now = r.ready_at + 200
        h.l1.settle()
        demand_lines = [a // 64 for a in demands]
        for resident in h.l1.tag_store.resident_lines():
            assert any(d - 8 <= resident <= d + 7 for d in demand_lines)
