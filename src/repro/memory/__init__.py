"""Memory substrate: address geometry helpers and the DRAM timing model."""

from repro.memory.address import AddressMap
from repro.memory.dram import DramModel, DramConfig

__all__ = ["AddressMap", "DramModel", "DramConfig"]
