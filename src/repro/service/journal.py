"""Durable sweep journal: a JSONL write-ahead log for the service.

The in-memory sweep registry of :class:`~repro.service.sweeps.SweepService`
dies with the process; this module is what makes it reconstructible.
Every state transition of every accepted sweep is appended to one JSONL
file under the spool directory (``journal.jsonl``) *before* the
transition takes effect, classic WAL style:

* ``submitted`` — the full encoded grid (the versioned codec payload),
  the client id and the cell count.  Written before the sweep is
  queued, so a crash between the journal append and the queue insert
  re-admits the sweep on restart (at-least-once admission — re-running
  a sweep is harmless because cells are pure and checkpointed);
* ``started``   — the sweep left the work queue and ``run_cells``
  began;
* ``finished``  — terminal state (``done`` / ``failed`` /
  ``cancelled``) from the job observer;
* ``cancelled`` — a compensating record: the sweep was refused after
  its ``submitted`` record landed (full queue), or cancelled while
  still queued.

Records are versioned (:data:`JOURNAL_VERSION`); replay skips records
it cannot understand rather than poisoning recovery.  Appends are a
single ``write`` of one complete line followed by ``flush`` +
``fsync``, so the only torn state a crash can leave is a partial final
line — and :meth:`SweepJournal.replay` tolerates exactly that: an
unterminated or corrupt trailing line is dropped and *reported*
(``corrupt_tail``), never fatal.  Mid-file corruption (bit rot) is
likewise skipped and counted.

:meth:`SweepJournal.checkpoint` compacts the log: it rewrites the file
(atomic tmp + rename) keeping only the records of *live* sweeps —
submitted or started but not yet terminal — which is what graceful
drain runs right before exit so queued sweeps survive to the next
process with zero loss.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.service.chaos import chaos_journal_write

#: bump when the record wire shape changes; replay skips unknown versions
JOURNAL_VERSION = 1

#: record types replay understands
RECORD_TYPES = frozenset({"submitted", "started", "finished", "cancelled"})

#: terminal ``finished`` states (mirrors the job-handle lifecycle)
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: finished/cancelled chains tolerated before an append auto-compacts
COMPACT_THRESHOLD = 256


class JournalError(ValueError):
    """A single record failed to encode or decode."""


def encode_record(record: Dict[str, Any]) -> str:
    """One journal record as its JSONL line (no trailing newline).

    The record must carry ``record`` (type) and ``sweep`` (id); the
    version stamp is added here.  Raises :class:`JournalError` on an
    unknown record type or an unencodable payload.
    """
    kind = record.get("record")
    if kind not in RECORD_TYPES:
        raise JournalError(f"unknown journal record type {kind!r}")
    if not record.get("sweep"):
        raise JournalError("journal record needs a non-empty 'sweep' id")
    payload = {"v": JOURNAL_VERSION, **record}
    try:
        return json.dumps(payload, sort_keys=True)
    except (TypeError, ValueError) as error:
        raise JournalError(f"unencodable journal record: {error}") from None


def decode_record(line: str) -> Dict[str, Any]:
    """Parse one JSONL line back into a record dict (validated).

    Raises :class:`JournalError` for anything replay must skip: corrupt
    JSON, a non-object line, a missing/unknown version, an unknown
    record type, or a missing sweep id.
    """
    try:
        payload = json.loads(line)
    except ValueError as error:
        raise JournalError(f"corrupt journal line: {error}") from None
    if not isinstance(payload, dict):
        raise JournalError(f"journal line is not an object: {payload!r}")
    if payload.get("v") != JOURNAL_VERSION:
        raise JournalError(f"unknown journal record version {payload.get('v')!r}")
    if payload.get("record") not in RECORD_TYPES:
        raise JournalError(f"unknown journal record type {payload.get('record')!r}")
    if not payload.get("sweep"):
        raise JournalError("journal record has no sweep id")
    record = dict(payload)
    record.pop("v")
    return record


@dataclass
class JournalSweep:
    """Replayed state of one sweep still owed work."""

    sweep_id: str
    state: str  # "queued" (submitted only) or "running" (started seen)
    client: str = "unknown"
    cells: int = 0
    payload: Any = None  # the encoded codec grid from the submitted record
    submitted_t: float = 0.0


@dataclass
class JournalReplay:
    """Everything :meth:`SweepJournal.replay` reconstructs."""

    live: List[JournalSweep] = field(default_factory=list)
    finished: int = 0  # terminal sweeps seen (their chains are droppable)
    records: int = 0  # well-formed records consumed
    dropped: int = 0  # corrupt/unknown complete lines skipped mid-file
    corrupt_tail: bool = False  # unterminated or corrupt final line dropped


class SweepJournal:
    """Append + replay + compact one ``journal.jsonl``; thread-safe.

    Appends come from the asyncio submission path and from the job
    runner's observer thread concurrently; one lock serializes them
    against each other and against :meth:`checkpoint`'s rewrite.
    """

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()
        self._terminal_since_compact = 0
        self.appends = 0
        self.compactions = 0

    # -- writing -------------------------------------------------------------

    def append(self, record_type: str, sweep_id: str, **fields: Any) -> None:
        """Durably append one record (write + flush + fsync).

        Raises :class:`JournalError` on an unencodable record and
        ``OSError`` when the spool cannot be written — the caller
        decides whether that is fatal (submission) or advisory.
        """
        line = encode_record({"record": record_type, "sweep": sweep_id, "t": time.time(), **fields})
        data = (line + "\n").encode("utf-8")
        with self._lock:
            self._write(data)
            self.appends += 1
            if record_type in ("finished", "cancelled"):
                self._terminal_since_compact += 1
        # Opportunistic compaction keeps the journal bounded by the
        # *live* sweep count rather than the service's whole history.
        if self._terminal_since_compact >= COMPACT_THRESHOLD:
            self.checkpoint()

    def _write(self, data: bytes) -> None:
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        # chaos_journal_write tears the payload (and kills the process)
        # under REPRO_CHAOS=torn_journal — a no-op otherwise.
        data = chaos_journal_write(data)
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)

    # -- replay --------------------------------------------------------------

    def replay(self) -> JournalReplay:
        """Reconstruct the registry state from disk.

        Never raises on content: a missing file is an empty replay,
        a torn trailing line sets ``corrupt_tail``, corrupt or
        unknown-version complete lines count into ``dropped``.
        """
        replay = JournalReplay()
        try:
            with open(self.path, "rb") as fh:
                data = fh.read()
        except OSError:
            return replay
        if not data:
            return replay
        terminated = data.endswith(b"\n")
        lines = data.split(b"\n")
        if lines and lines[-1] == b"":
            lines.pop()
        sweeps: Dict[str, JournalSweep] = {}
        order: List[str] = []
        terminal: Dict[str, bool] = {}
        for i, raw in enumerate(lines):
            last = i == len(lines) - 1
            if last and not terminated:
                # An unterminated final line is a torn write by
                # definition (appends always end in a newline) — even
                # if its bytes happen to parse.
                replay.corrupt_tail = True
                continue
            try:
                record = decode_record(raw.decode("utf-8"))
            except (JournalError, UnicodeDecodeError):
                # A *terminated* line that fails to decode is bit rot
                # or version skew, wherever it sits; only the
                # unterminated final line (handled above) is a tear.
                replay.dropped += 1
                continue
            replay.records += 1
            sweep_id = record["sweep"]
            kind = record["record"]
            if kind == "submitted":
                if sweep_id not in sweeps:
                    order.append(sweep_id)
                sweeps[sweep_id] = JournalSweep(
                    sweep_id=sweep_id,
                    state="queued",
                    client=record.get("client", "unknown"),
                    cells=int(record.get("cells", 0) or 0),
                    payload=record.get("payload"),
                    submitted_t=float(record.get("t", 0.0) or 0.0),
                )
                terminal[sweep_id] = False
            elif kind == "started":
                if sweep_id in sweeps:
                    sweeps[sweep_id].state = "running"
            else:  # finished / cancelled
                terminal[sweep_id] = True
        for sweep_id in order:
            if terminal.get(sweep_id):
                replay.finished += 1
            elif sweeps[sweep_id].payload is not None:
                replay.live.append(sweeps[sweep_id])
            else:
                # A submitted record without its grid cannot be
                # re-admitted; count it as dropped rather than crash.
                replay.dropped += 1
        return replay

    # -- compaction ----------------------------------------------------------

    def checkpoint(self) -> JournalReplay:
        """Atomically rewrite the journal keeping only live sweeps.

        Each surviving sweep is re-recorded as its ``submitted`` record
        plus a ``started`` marker when it had begun running, preserving
        submission order.  Returns the replay the rewrite was based on.
        """
        with self._lock:
            replay = self.replay()
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)
            tmp = f"{self.path}.compact.tmp"
            lines: List[str] = []
            for sweep in replay.live:
                lines.append(
                    encode_record(
                        {
                            "record": "submitted",
                            "sweep": sweep.sweep_id,
                            "t": sweep.submitted_t,
                            "client": sweep.client,
                            "cells": sweep.cells,
                            "payload": sweep.payload,
                        }
                    )
                )
                if sweep.state == "running":
                    lines.append(
                        encode_record(
                            {"record": "started", "sweep": sweep.sweep_id, "t": time.time()}
                        )
                    )
            body = "".join(line + "\n" for line in lines).encode("utf-8")
            fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
            try:
                os.write(fd, body)
                os.fsync(fd)
            finally:
                os.close(fd)
            os.replace(tmp, self.path)
            self._terminal_since_compact = 0
            self.compactions += 1
            return replay

    # -- introspection -------------------------------------------------------

    def stats_snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "path": self.path,
                "appends": self.appends,
                "compactions": self.compactions,
            }


def journal_path(spool_dir: str) -> str:
    """The journal's canonical location inside a spool directory."""
    return os.path.join(spool_dir, "journal.jsonl")


def load_payload_specs(payload: Any) -> Optional[List[Any]]:
    """Decode a journaled grid payload, ``None`` if it no longer parses
    (codec version bumped between runs, hand-edited journal, ...)."""
    from repro.service.codec import SpecValidationError, decode_sweep

    try:
        return decode_sweep(payload)
    except SpecValidationError:
        return None
