"""Tests for the NoMo static way partitioning."""

import pytest

from repro.cache.context import AccessContext
from repro.secure.nomo import NoMoCache


def one_set_cache(assoc=4, reserved=1):
    return NoMoCache(assoc * 64, assoc, 64, reserved_ways=reserved)


class TestNoMo:
    def test_reservation_validation(self):
        with pytest.raises(ValueError):
            NoMoCache(4 * 64, 4, reserved_ways=3, num_threads=2)
        with pytest.raises(ValueError):
            NoMoCache(4 * 64, 4, reserved_ways=-1)

    def test_thread_within_reservation_is_immune(self):
        c = one_set_cache(assoc=2, reserved=1)
        t0 = AccessContext(thread_id=0)
        t1 = AccessContext(thread_id=1)
        c.fill(0, t0)       # t0 holds exactly its reservation
        c.fill(2, t1)
        # t1 cannot evict t0's only line; must evict its own
        evicted = c.fill(4, t1)
        assert evicted == 2
        assert c.probe(0)

    def test_excess_lines_are_fair_game(self):
        c = one_set_cache(assoc=4, reserved=1)
        t0 = AccessContext(thread_id=0)
        t1 = AccessContext(thread_id=1)
        for line in (0, 4, 8):      # t0 holds 3 > reservation
            c.fill(line, t0)
        c.fill(12, t1)
        evicted = c.fill(16, t1)    # t1 may evict t0's excess (LRU first)
        assert evicted in (0, 4, 8)

    def test_own_lines_always_evictable(self):
        c = one_set_cache(assoc=2, reserved=1)
        t0 = AccessContext(thread_id=0)
        c.fill(0, t0)
        c.fill(2, t0)
        assert c.fill(4, t0) is not None

    def test_prime_probe_blocked_within_reservation(self):
        """NoMo's purpose: an SMT attacker cannot observe the victim's
        line through eviction while the victim stays within its ways."""
        c = one_set_cache(assoc=4, reserved=2)
        victim = AccessContext(thread_id=0)
        attacker = AccessContext(thread_id=1)
        c.fill(0, victim)
        c.fill(4, victim)   # victim occupies its 2 reserved ways
        for line in (8, 12, 16, 20):
            c.fill(line, attacker)
        assert c.probe(0) and c.probe(4)
