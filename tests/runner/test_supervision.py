"""Fault-injection tests for the supervised runner.

The specs below simulate the three worker failure modes the supervisor
must survive — an attempt that raises, an attempt that hangs past the
timeout, and an attempt that kills its worker process outright
(``os._exit``).  Cross-process attempt counting goes through marker
files in a per-test state directory (``open(..., "x")`` is atomic), so
the same spec misbehaves a configurable number of times and then
succeeds, whether the attempts land in one worker, several, or inline.
"""

import os
import time

import pytest

import repro.runner.pool as pool_mod
from repro.runner.pool import (
    CellTimeoutError,
    last_run_stats,
    resolve_cell_retries,
    resolve_cell_timeout,
    run_cells,
)
from repro.runner.result_cache import ResultCache
from repro.runner.telemetry import Telemetry, read_events


class SquareSpec:
    """Well-behaved pure cell."""

    def __init__(self, value):
        self.value = value

    def __repr__(self):
        return f"SquareSpec({self.value})"

    def run(self):
        return self.value * self.value


class CacheableSquareSpec(SquareSpec):
    """Pure cell that opts into the result cache and counts its runs
    through marker files (so checkpoint tests can prove a completed
    cell was never recomputed)."""

    def __init__(self, value, state_dir):
        super().__init__(value)
        self.state_dir = state_dir

    def __repr__(self):
        return f"CacheableSquareSpec({self.value})"

    def result_cache_token(self):
        return "supervision-test"

    def run(self):
        _count_attempt(self.state_dir, f"square-{self.value}")
        return self.value * self.value


def _count_attempt(state_dir, tag):
    """Record one attempt of ``tag``; returns how many came before."""
    n = 0
    while True:
        try:
            open(os.path.join(state_dir, f"{tag}.{n}"), "x").close()
            return n
        except FileExistsError:
            n += 1


def _attempts(state_dir, tag):
    return len([name for name in os.listdir(state_dir)
                if name.startswith(f"{tag}.")])


class FaultySpec:
    """Misbehaves for the first ``times`` attempts, then succeeds.

    ``mode`` is ``"raise"``, ``"hang"`` (sleep for a minute) or
    ``"kill"`` (``os._exit``, taking the whole worker process down).
    """

    def __init__(self, tag, state_dir, mode, times):
        self.tag = tag
        self.state_dir = state_dir
        self.mode = mode
        self.times = times

    def __repr__(self):
        return (f"FaultySpec({self.tag!r}, mode={self.mode!r}, "
                f"times={self.times})")

    def run(self):
        if _count_attempt(self.state_dir, self.tag) < self.times:
            if self.mode == "raise":
                raise RuntimeError(f"injected failure in {self.tag}")
            if self.mode == "hang":
                time.sleep(60)
            if self.mode == "kill":
                os._exit(139)
        return ("ok", self.tag)


@pytest.fixture
def nocache():
    return ResultCache(disk_dir=None, use_default_disk_dir=False)


@pytest.fixture
def state_dir(tmp_path):
    d = tmp_path / "state"
    d.mkdir()
    return str(d)


class TestKnobResolution:
    def test_timeout_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", "2.5")
        assert resolve_cell_timeout() == 2.5

    def test_timeout_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", "2.5")
        assert resolve_cell_timeout(7.0) == 7.0

    def test_timeout_unset_disables(self, monkeypatch):
        monkeypatch.delenv("REPRO_CELL_TIMEOUT", raising=False)
        assert resolve_cell_timeout() is None

    def test_timeout_nonpositive_disables(self):
        assert resolve_cell_timeout(0) is None
        assert resolve_cell_timeout(-3) is None

    def test_timeout_rejects_garbage_naming_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", "soon")
        with pytest.raises(ValueError, match="REPRO_CELL_TIMEOUT"):
            resolve_cell_timeout()

    def test_retries_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_RETRIES", "5")
        assert resolve_cell_retries() == 5

    def test_retries_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CELL_RETRIES", raising=False)
        assert resolve_cell_retries() == pool_mod._DEFAULT_RETRIES

    def test_retries_rejects_garbage_naming_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_RETRIES", "lots")
        with pytest.raises(ValueError, match="REPRO_CELL_RETRIES"):
            resolve_cell_retries()

    def test_retries_rejects_negative(self):
        with pytest.raises(ValueError):
            resolve_cell_retries(-1)


class TestRetry:
    def test_pool_recovers_raising_cell(self, nocache, state_dir, tmp_path):
        specs = [SquareSpec(1),
                 FaultySpec("flaky", state_dir, "raise", times=1),
                 SquareSpec(2)]
        log = str(tmp_path / "telemetry.jsonl")
        results = run_cells(specs, jobs=2, retries=2, result_cache=nocache,
                            telemetry=log)
        assert results == [1, ("ok", "flaky"), 4]
        stats = last_run_stats()
        assert stats["retries"] == 1
        assert stats["timeouts"] == 0
        events = read_events(log)
        retry = [e for e in events if e["event"] == "cell_retry"]
        assert len(retry) == 1
        assert retry[0]["index"] == 1
        assert "injected failure" in retry[0]["error"]

    def test_inline_recovers_raising_cell(self, nocache, state_dir):
        specs = [FaultySpec("flaky", state_dir, "raise", times=2),
                 SquareSpec(3)]
        results = run_cells(specs, jobs=1, retries=2, result_cache=nocache)
        assert results == [("ok", "flaky"), 9]
        assert last_run_stats()["retries"] == 2

    def test_retries_exhausted_raises(self, nocache, state_dir):
        specs = [FaultySpec("doomed", state_dir, "raise", times=99)]
        with pytest.raises(RuntimeError, match="injected failure"):
            run_cells(specs, jobs=1, retries=1, result_cache=nocache)
        assert _attempts(state_dir, "doomed") == 2    # initial + 1 retry

    def test_results_bit_identical_across_jobs(self, nocache, tmp_path):
        # Same grid, fresh fault state per run: the fault path must not
        # change what comes back, only how it gets computed.
        def grid(state_dir):
            os.makedirs(state_dir)
            return [SquareSpec(7),
                    FaultySpec("f", state_dir, "raise", times=1),
                    SquareSpec(8), SquareSpec(9)]
        inline = run_cells(grid(str(tmp_path / "a")), jobs=1, retries=2,
                           result_cache=nocache)
        pooled = run_cells(grid(str(tmp_path / "b")), jobs=2, retries=2,
                           result_cache=nocache)
        assert inline == pooled == [49, ("ok", "f"), 64, 81]


class TestTimeout:
    def test_hanging_cell_is_killed_and_retried(self, nocache, state_dir,
                                                tmp_path):
        specs = [SquareSpec(1),
                 FaultySpec("sleeper", state_dir, "hang", times=1),
                 SquareSpec(2)]
        log = str(tmp_path / "telemetry.jsonl")
        results = run_cells(specs, jobs=2, timeout=1.0, retries=2,
                            result_cache=nocache, telemetry=log)
        assert results == [1, ("ok", "sleeper"), 4]
        stats = last_run_stats()
        assert stats["timeouts"] == 1
        assert stats["pool_restarts"] >= 1
        events = read_events(log)
        assert any(e["event"] == "cell_timeout" and e["index"] == 1
                   for e in events)
        assert any(e["event"] == "pool_restart" and e["reason"] == "timeout"
                   for e in events)

    def test_always_hanging_cell_raises(self, nocache, state_dir):
        specs = [FaultySpec("stuck", state_dir, "hang", times=99)]
        started = time.monotonic()
        with pytest.raises(CellTimeoutError, match="REPRO_CELL_TIMEOUT"):
            run_cells(specs, jobs=2, timeout=0.4, retries=1,
                      result_cache=nocache)
        # Two attempts at 0.4s each plus pool churn — nowhere near the
        # 60s the cell would sleep if the timeout were not enforced.
        assert time.monotonic() - started < 20


class TestWorkerDeath:
    def test_killed_worker_recovers_full_results(self, nocache, state_dir,
                                                 tmp_path):
        specs = [SquareSpec(i) for i in range(6)]
        specs.insert(3, FaultySpec("killer", state_dir, "kill", times=1))
        log = str(tmp_path / "telemetry.jsonl")
        results = run_cells(specs, jobs=2, retries=2, result_cache=nocache,
                            telemetry=log)
        assert results == [0, 1, 4, ("ok", "killer"), 9, 16, 25]
        stats = last_run_stats()
        assert stats["pool_restarts"] >= 1
        assert any(e["event"] == "pool_restart"
                   and e["reason"] == "broken_pool"
                   for e in read_events(log))

    def test_matches_inline_run(self, nocache, tmp_path):
        def grid(state_dir, kill_times):
            os.makedirs(state_dir)
            return [SquareSpec(4),
                    FaultySpec("k", state_dir, "kill", times=kill_times),
                    SquareSpec(5)]
        # kill_times=0 keeps the inline run from killing the parent.
        inline = run_cells(grid(str(tmp_path / "a"), 0), jobs=1,
                           result_cache=nocache)
        pooled = run_cells(grid(str(tmp_path / "b"), 1), jobs=2, retries=2,
                           result_cache=nocache)
        assert inline == pooled == [16, ("ok", "k"), 25]

    def test_inline_fallback_after_restart_budget(self, nocache, state_dir,
                                                  tmp_path, monkeypatch):
        monkeypatch.setattr(pool_mod, "_MAX_POOL_RESTARTS", 0)
        specs = [SquareSpec(3),
                 FaultySpec("k", state_dir, "kill", times=1)]
        log = str(tmp_path / "telemetry.jsonl")
        results = run_cells(specs, jobs=2, retries=2, result_cache=nocache,
                            telemetry=log)
        assert results == [9, ("ok", "k")]
        stats = last_run_stats()
        assert stats["inline_fallback"] == 1
        assert any(e["event"] == "inline_fallback"
                   for e in read_events(log))


class TestCheckpointResume:
    def test_interrupted_sweep_resumes_where_it_stopped(self, tmp_path,
                                                        state_dir):
        cache = ResultCache(disk_dir=str(tmp_path / "results"))
        specs = [CacheableSquareSpec(1, state_dir),
                 CacheableSquareSpec(2, state_dir),
                 FaultySpec("fatal", state_dir, "raise", times=1)]
        # First run dies on the last cell — but the two finished cells
        # were checkpointed as they landed.
        with pytest.raises(RuntimeError, match="injected failure"):
            run_cells(specs, jobs=1, retries=0, result_cache=cache)
        assert _attempts(state_dir, "square-1") == 1
        assert _attempts(state_dir, "square-2") == 1

        # The re-run recomputes only the cell that had not finished.
        results = run_cells(specs, jobs=1, retries=0, result_cache=cache)
        assert results == [1, 4, ("ok", "fatal")]
        assert _attempts(state_dir, "square-1") == 1   # served from disk
        assert _attempts(state_dir, "square-2") == 1
        stats = last_run_stats()
        assert stats["result_cache_hits"] == 2
        # FaultySpec has no result_cache_token: visible as uncacheable.
        assert stats["result_cache_uncacheable"] == 1

    def test_kill_mid_sweep_then_resume(self, tmp_path, state_dir):
        cache = ResultCache(disk_dir=str(tmp_path / "results"))
        grid = [CacheableSquareSpec(i, state_dir) for i in range(5)]
        grid.append(FaultySpec("killer", state_dir, "kill", times=1))
        first = run_cells(grid, jobs=2, retries=2, result_cache=cache)
        assert first == [0, 1, 4, 9, 16, ("ok", "killer")]

        # A fresh process re-running the same grid only recomputes the
        # uncacheable cell; every checkpointed square is restored.
        second = run_cells(grid, jobs=2, retries=2, result_cache=cache)
        assert second == first
        assert all(_attempts(state_dir, f"square-{i}") == 1
                   for i in range(5))
