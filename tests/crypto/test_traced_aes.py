"""Tests for the traced AES victim."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.aes import AES128
from repro.crypto.aes_tables import SBOX
from repro.crypto.traced_aes import (
    AesMemoryLayout,
    TracedAES128,
)

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


def table_lookups(trace, layout, decrypt=False):
    base = layout.dec_table_base if decrypt else layout.enc_table_base
    return [r for r in trace if base <= r[0] < base + 5 * 1024]


class TestLayout:
    def test_regions(self):
        layout = AesMemoryLayout()
        enc = layout.enc_regions()
        assert len(enc) == 5
        assert enc.num_lines == 80  # ten 1-KB tables => 5 x 16 lines
        assert layout.all_regions().num_lines == 160

    def test_final_round_table(self):
        layout = AesMemoryLayout()
        t4 = layout.final_round_table()
        assert t4.num_lines == 16
        assert t4.base == layout.enc_table_base + 4 * 1024

    def test_table_addr(self):
        layout = AesMemoryLayout()
        assert layout.enc_table_addr(0, 0) == layout.enc_table_base
        assert layout.enc_table_addr(1, 2) == layout.enc_table_base + 1024 + 8


class TestTracedEncryption:
    def test_matches_functional_cipher(self):
        traced = TracedAES128(KEY)
        plain = AES128(KEY)
        pt = bytes(range(16))
        ct, _ = traced.encrypt_block_traced(pt)
        assert ct == plain.encrypt_block(pt)

    def test_160_table_lookups_per_block(self):
        traced = TracedAES128(KEY)
        _, trace = traced.encrypt_block_traced(bytes(16))
        assert len(table_lookups(trace, traced.layout)) == 160

    def test_final_round_uses_te4(self):
        traced = TracedAES128(KEY)
        sink = []
        traced.encrypt_block_traced(
            bytes(16), lookup_sink=lambda t, i: sink.append(t))
        assert sink.count(4) == 16  # exactly 16 lookups into T4

    def test_critical_fraction_near_24_percent(self):
        traced = TracedAES128(KEY)
        _, trace = traced.encrypt_block_traced(bytes(16))
        frac = 160 / len(trace)
        assert 0.20 < frac < 0.28  # Section VI: about 24%

    def test_final_round_relation(self):
        """c_i = S[x_u] ^ k10_i — the final-round attack's premise."""
        traced = TracedAES128(KEY)
        pt = bytes(range(16))
        ct, _ = traced.encrypt_block_traced(pt)
        indices = traced.final_round_indices(pt)
        k10 = [w for w in traced.round_keys[40:44]]
        k10_bytes = b"".join(w.to_bytes(4, "big") for w in k10)
        # final round lookups are emitted column-major; map back to bytes
        # byte position of the u-th lookup: column col, row pos
        positions = [(4 * col + pos) for col in range(4) for pos in range(4)]
        for u, idx in enumerate(indices):
            byte_pos = positions[u]
            assert ct[byte_pos] == SBOX[idx] ^ k10_bytes[byte_pos]

    def test_trace_records_wellformed(self):
        traced = TracedAES128(KEY)
        _, trace = traced.encrypt_block_traced(bytes(16))
        for addr, gap, write in trace:
            assert addr >= 0 and gap >= 1 and write in (0, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            TracedAES128(KEY, gap=0)
        with pytest.raises(ValueError):
            TracedAES128(KEY, extra_refs_per_block=-1)
        with pytest.raises(ValueError):
            TracedAES128(KEY).encrypt_block_traced(b"short")


class TestTracedDecryption:
    def test_roundtrip(self):
        traced = TracedAES128(KEY)
        pt = bytes(range(16))
        ct, _ = traced.encrypt_block_traced(pt)
        pt2, trace = traced.decrypt_block_traced(ct)
        assert pt2 == pt
        assert len(table_lookups(trace, traced.layout, decrypt=True)) == 160

    @settings(max_examples=10)
    @given(st.binary(min_size=16, max_size=16))
    def test_traced_matches_functional_decrypt(self, ct):
        traced = TracedAES128(KEY)
        assert traced.decrypt_block_traced(ct)[0] == \
            AES128(KEY).decrypt_block(ct)


class TestTracedCbc:
    def test_cbc_matches_functional(self):
        traced = TracedAES128(KEY)
        data = bytes(range(48))
        iv = bytes(16)
        ct, trace = traced.encrypt_cbc_traced(data, iv)
        assert ct == AES128(KEY).encrypt_cbc(data, iv)
        assert len(table_lookups(trace, traced.layout)) == 3 * 160

    def test_cbc_validation(self):
        traced = TracedAES128(KEY)
        with pytest.raises(ValueError):
            traced.encrypt_cbc_traced(b"odd length!", bytes(16))
        with pytest.raises(ValueError):
            traced.encrypt_cbc_traced(bytes(16), b"shortiv")
