"""Leakage sweep cells: scheme x window x seed, runner-distributable.

A :class:`LeakageCellSpec` is a frozen, picklable description of one
leakage measurement — which channel (the Equation (7) reference
channel, Flush-Reload, or cache occupancy), which scheme, which window
and seed.  ``spec.run()`` is a pure function of the spec, so cells go
through :func:`repro.runner.pool.run_cells` and are bit-identical for
any ``--jobs`` count, exactly like the figure sweeps.

Scheme validation, window rules and the analytic capacity bound all
follow the scheme-plugin registry (:mod:`repro.schemes`): a newly
registered functional scheme is sweepable here with no further code.

Attack modules are imported lazily inside ``run`` (the attacks package
itself consumes :mod:`repro.leakage.estimators`, so importing them at
module load would cycle).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.channel_capacity import channel_capacity_bits
from repro.core.window import RandomFillWindow
from repro.leakage.adapters import LEAKAGE_SCHEMES, RANDOM_FILL_SCHEMES
from repro.leakage.estimators import (
    JointCounts,
    conditional_guessing_entropy,
    guessing_entropy,
    mutual_information_bits,
    n_to_success,
    sample_window_channel,
    success_rate_curve,
)
from repro.schemes import NOFILL_RANDOM, RANDOM_FILL, get_scheme
from repro.util.rng import derive_seed

#: leakage channels a cell can measure
LEAKAGE_CHANNELS = ("eq7", "flush_reload", "occupancy")

#: default trials per channel (eq7 samples are nearly free; the cache
#: channels simulate hundreds of tag-store operations per trial)
DEFAULT_TRIALS = {"eq7": 6000, "flush_reload": 1500, "occupancy": 800}

#: Table III window sizes that enable random fill (size 1 = demand fetch)
RANDOM_FILL_WINDOW_SIZES = (2, 4, 8, 16, 32)

#: bump whenever leakage measurement code changes results for unchanged
#: specs (estimators, channel samplers, adapters, seed derivation) — it
#: keys the runner's content-addressed result cache.
LEAKAGE_CODE_VERSION = 1


@dataclass(frozen=True)
class LeakageCellSpec:
    """One leakage measurement point.

    ``window`` is the ``(a, b)`` bound pair; required (enabled) for the
    random fill schemes and for the ``eq7`` reference channel, and
    absent for every other fill strategy.
    """

    channel: str
    scheme: str = "random_fill"
    window: Optional[Tuple[int, int]] = None
    m_lines: int = 16
    cache_bytes: int = 8 * 1024
    trials: int = 0  # 0 -> DEFAULT_TRIALS[channel]
    seed: int = 0
    curve_points: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)
    curve_repeats: int = 200

    def __post_init__(self) -> None:
        if self.channel not in LEAKAGE_CHANNELS:
            raise ValueError(
                f"unknown channel {self.channel!r}; known: {LEAKAGE_CHANNELS}"
            )
        spec = get_scheme(self.scheme, functional=True)
        if self.m_lines <= 1:
            raise ValueError(f"m_lines must be > 1, got {self.m_lines}")
        needs_window = self.channel == "eq7" or spec.uses_window
        if needs_window and self.window is None:
            raise ValueError(
                f"channel {self.channel!r} / scheme {self.scheme!r} needs a window"
            )
        if not needs_window and self.window is not None:
            raise ValueError(f"scheme {self.scheme!r} cannot honour a window")

    @property
    def effective_trials(self) -> int:
        return self.trials if self.trials > 0 else DEFAULT_TRIALS[self.channel]

    @property
    def window_size(self) -> int:
        """W = a + b + 1 (1 means demand fetch)."""
        if self.window is None:
            return 1
        return self.window[0] + self.window[1] + 1

    def result_cache_token(self) -> str:
        """Code-version key for the runner's result cache (a leakage
        cell's result depends only on this module's measurement code,
        not on the trace generators)."""
        return f"leakage{LEAKAGE_CODE_VERSION}"

    def batch_group_key(self):
        """Grouping key for the batch planner (dispatch-unit batches).

        Leakage cells share no heavy per-group state, but cells of one
        (channel, scheme) pair are cheap-per-cell and numerous, so
        shipping them to a worker as one batch amortizes the dispatch,
        pickle, and telemetry round trips.  Each cell still runs its
        own independent RNG streams inside the batch.
        """
        return ("leakage", self.channel, self.scheme)

    # -- execution --------------------------------------------------------

    def run(self) -> "LeakageCellResult":
        """Measure this cell; pure function of the spec."""
        joint = self._collect_joint()
        curve = tuple(
            success_rate_curve(
                joint,
                self.curve_points,
                repeats=self.curve_repeats,
                seed=derive_seed(
                    self.seed, "curve", self.channel, self.scheme, self.window
                ),
            )
        )
        analytic = self._analytic_bits()
        return LeakageCellResult(
            channel=self.channel,
            scheme=self.scheme,
            window=self.window,
            window_size=self.window_size,
            m_lines=self.m_lines,
            trials=self.effective_trials,
            seed=self.seed,
            mi_bits=mutual_information_bits(joint),
            mi_plugin_bits=mutual_information_bits(joint, correction="none"),
            guessing_entropy=conditional_guessing_entropy(joint),
            blind_guessing_entropy=guessing_entropy(joint),
            analytic_bits=analytic,
            demand_bits=math.log2(self.m_lines),
            success_curve=curve,
            n_to_success_90=n_to_success(curve, target=0.9),
        )

    def _collect_joint(self) -> JointCounts:
        trials = self.effective_trials
        if self.channel == "eq7":
            return sample_window_channel(
                self.m_lines,
                RandomFillWindow(*self.window),
                trials,
                seed=derive_seed(self.seed, "eq7-cell", self.window),
            )
        from repro.leakage.adapters import build_functional_scheme
        from repro.secure.region import ProtectedRegion

        region = ProtectedRegion(0x10000, self.m_lines * 64)
        window = RandomFillWindow(*self.window) if self.window else None
        scheme = build_functional_scheme(
            self.scheme,
            region,
            window=window,
            cache_bytes=self.cache_bytes,
            seed=derive_seed(
                self.seed, "scheme", self.channel, self.scheme, self.window
            ),
        )
        if self.channel == "occupancy":
            from repro.leakage.occupancy import run_occupancy_trials

            result = run_occupancy_trials(
                scheme,
                trials=trials,
                seed=derive_seed(self.seed, "occ", self.scheme, self.window),
            )
            return result.joint
        # flush_reload (lazy: repro.attacks itself imports the estimators)
        from repro.attacks.flush_reload import run_flush_reload_trials

        result = run_flush_reload_trials(
            scheme.tag_store,
            region,
            scheme.window,
            trials=trials,
            seed=derive_seed(self.seed, "fr", self.scheme, self.window),
            victim_cache=scheme.victim_cache if scheme.custom_fill else None,
        )
        return result.joint

    def _analytic_bits(self) -> Optional[float]:
        """The closed-form Eq. 7/8 capacity, where the model applies.

        The Equation (7) channel describes a single secret access under
        random fill on a conventional substrate — so it is exact for
        ``eq7``, an upper bound for Flush-Reload on the SA random fill
        scheme (the attacker probing only the region can never beat the
        full-observation receiver), and ``log2 M`` for any demand-fetch
        flush-reload.  The occupancy channel has no closed form here,
        and neither do custom fill strategies (Random-and-Safe's decoy
        fill is outside the windowed model).
        """
        if self.channel == "occupancy":
            return None
        if self.channel == "eq7":
            return channel_capacity_bits(self.m_lines, RandomFillWindow(*self.window))
        strategy = get_scheme(self.scheme, functional=True).fill_strategy
        if strategy == RANDOM_FILL:
            return channel_capacity_bits(self.m_lines, RandomFillWindow(*self.window))
        if strategy == NOFILL_RANDOM:
            return None
        return math.log2(self.m_lines)


@dataclass(frozen=True)
class LeakageCellResult:
    """Every metric the leakage table reports for one cell."""

    channel: str
    scheme: str
    window: Optional[Tuple[int, int]]
    window_size: int
    m_lines: int
    trials: int
    seed: int
    mi_bits: float  # Miller-Madow corrected
    mi_plugin_bits: float
    guessing_entropy: float  # conditional on the observation
    blind_guessing_entropy: float  # no observation: (M + 1) / 2 baseline
    analytic_bits: Optional[float]  # Eq. 7/8 capacity where defined
    demand_bits: float  # log2 M, the Figure 5 normalizer
    success_curve: Tuple[Tuple[int, float, float], ...]
    n_to_success_90: Optional[int]

    def to_json(self) -> Dict:
        return {
            "channel": self.channel,
            "scheme": self.scheme,
            "window": list(self.window) if self.window else None,
            "window_size": self.window_size,
            "m_lines": self.m_lines,
            "trials": self.trials,
            "seed": self.seed,
            "mi_bits": self.mi_bits,
            "mi_plugin_bits": self.mi_plugin_bits,
            "guessing_entropy": self.guessing_entropy,
            "blind_guessing_entropy": self.blind_guessing_entropy,
            "analytic_bits": self.analytic_bits,
            "demand_bits": self.demand_bits,
            "success_curve": [list(point) for point in self.success_curve],
            "n_to_success_90": self.n_to_success_90,
        }


def window_pair(size: int) -> Optional[Tuple[int, int]]:
    """The bidirectional ``(a, b)`` pair for a Table III window size."""
    if size == 1:
        return None
    window = RandomFillWindow.bidirectional(size)
    return (window.a, window.b)


def leakage_grid(
    channels: Sequence[str] = LEAKAGE_CHANNELS,
    schemes: Sequence[str] = LEAKAGE_SCHEMES,
    window_sizes: Sequence[int] = RANDOM_FILL_WINDOW_SIZES,
    m_lines: int = 16,
    cache_bytes: int = 8 * 1024,
    seeds: Sequence[int] = (0,),
    trials: int = 0,
    curve_repeats: int = 200,
) -> List[LeakageCellSpec]:
    """Build the scheme x window x seed cell grid.

    ``eq7`` contributes one cell per window size (it has no scheme);
    random fill schemes contribute one cell per window size; every
    other scheme one cell each.  The default ``schemes`` is every
    registered functional scheme.  ``trials`` 0 keeps the per-channel
    defaults.
    """
    specs: List[LeakageCellSpec] = []
    for seed in seeds:
        for channel in channels:
            if channel not in LEAKAGE_CHANNELS:
                raise ValueError(f"unknown channel {channel!r}")
            if channel == "eq7":
                for size in window_sizes:
                    specs.append(
                        LeakageCellSpec(
                            channel="eq7",
                            scheme="random_fill",
                            window=window_pair(size),
                            m_lines=m_lines,
                            trials=trials,
                            seed=seed,
                            curve_repeats=curve_repeats,
                        )
                    )
                continue
            for scheme in schemes:
                windowed = get_scheme(scheme, functional=True).uses_window
                cell_windows = (
                    [window_pair(size) for size in window_sizes] if windowed else [None]
                )
                for window in cell_windows:
                    specs.append(
                        LeakageCellSpec(
                            channel=channel,
                            scheme=scheme,
                            window=window,
                            m_lines=m_lines,
                            cache_bytes=cache_bytes,
                            trials=trials,
                            seed=seed,
                            curve_repeats=curve_repeats,
                        )
                    )
    return specs


def run_leakage_cell(spec: LeakageCellSpec) -> LeakageCellResult:
    """Module-level cell entry point (picklable for worker processes)."""
    return spec.run()


def run_leakage_sweep(
    specs: Sequence[LeakageCellSpec],
    jobs: Optional[int] = None,
    telemetry=None,
    progress: Optional[bool] = None,
    batch: Optional[bool] = None,
) -> List[LeakageCellResult]:
    """Run a grid of leakage cells through the supervised runner.

    ``telemetry`` (a :class:`repro.runner.telemetry.Telemetry` or a
    JSONL path), ``progress`` and ``batch`` are forwarded to
    :func:`repro.runner.pool.run_cells`; when ``None`` they inherit the
    enclosing :func:`repro.runner.pool.run_context`, which is how the
    ``--telemetry`` (and ``--batch/--no-batch``) CLI flags reach this
    sweep.
    """
    from repro.runner.pool import run_cells

    return run_cells(specs, jobs=jobs, telemetry=telemetry, progress=progress, batch=batch)
