"""Prime-Probe attack: the contention based access-driven channel.

The attacker fills every cache set with its own lines (*prime*), lets
the victim make one secret-dependent access, then re-touches its lines
(*probe*): a miss reveals the set — and hence the address bits — the
victim used (Figure 1).

Succeeds against conventional set-associative caches (with or without
the random fill strategy: random fill de-correlates *which* line fills,
but the fill still lands in a predictable set when built on an SA tag
store — only within the window's neighborhood).  It fails against
mapping-randomizing designs (Newcache, RPcache), which is why the paper
positions random fill as a *complement* to those designs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.analysis.hit_probability import FunctionalRandomFillCache
from repro.cache.context import AccessContext
from repro.cache.tagstore import TagStore
from repro.core.window import RandomFillWindow
from repro.secure.region import ProtectedRegion
from repro.util.rng import HardwareRng, derive_seed

ATTACKER_BASE_LINE = 0x900_0000 // 64


@dataclass
class PrimeProbeResult:
    trials: int
    set_accuracy: float     # P(inferred set == victim's true set)
    num_sets: int

    @property
    def advantage(self) -> float:
        """Accuracy above random guessing (0 = no information)."""
        return self.set_accuracy - 1.0 / self.num_sets


def run_prime_probe_trials(tag_store: TagStore,
                           num_sets: int,
                           associativity: int,
                           region: ProtectedRegion,
                           window: RandomFillWindow = RandomFillWindow(0, 0),
                           trials: int = 500,
                           seed: int = 0) -> PrimeProbeResult:
    """Prime-Probe against one tag store design.

    ``num_sets``/``associativity`` describe the *attacker's belief*
    about the geometry (correct for SA caches; for Newcache or RPcache
    the mapping the attacker primes by is not the real one, which is
    the defence).  The victim's secret line is uniform over ``region``.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    rng = random.Random(derive_seed(seed, "prime-probe", "secrets"))
    attacker_ctx = AccessContext(thread_id=1, domain=1)
    victim_ctx = AccessContext(thread_id=0, domain=0)
    victim_cache = FunctionalRandomFillCache(
        tag_store, window, HardwareRng(derive_seed(seed, "victim")),
        ctx=victim_ctx)
    lines = list(region.lines)
    correct = 0

    # Attacker lines covering every (believed) set, `associativity` deep.
    prime_lines: List[List[int]] = [
        [ATTACKER_BASE_LINE + way * num_sets + s for way in range(associativity)]
        for s in range(num_sets)]

    for _ in range(trials):
        # Prime: fill each set with attacker data.
        for set_lines in prime_lines:
            for line in set_lines:
                if not tag_store.access(line, attacker_ctx):
                    tag_store.fill(line, attacker_ctx)
        # Victim: one secret-dependent access.
        secret = rng.randrange(len(lines))
        victim_line = lines[secret]
        victim_cache.access_line(victim_line)
        # Probe: count evicted attacker lines per set.
        miss_counts = [sum(1 for line in set_lines
                           if not tag_store.probe(line, attacker_ctx))
                       for set_lines in prime_lines]
        best = max(range(num_sets), key=lambda s: miss_counts[s])
        inferred_set = best if miss_counts[best] > 0 else -1
        true_set = victim_line % num_sets
        if inferred_set == true_set:
            correct += 1
    return PrimeProbeResult(trials=trials, set_accuracy=correct / trials,
                            num_sets=num_sets)
