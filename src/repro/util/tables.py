"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows the paper's tables and figures
report; this module renders them as aligned monospace tables so bench
output is readable in a terminal and in EXPERIMENTS.md code blocks.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table."""
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
