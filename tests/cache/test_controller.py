"""Tests for the L1 controller with pluggable fill strategies."""

from repro.cache.controller import FillPolicy, MissPlan
from repro.cache.hierarchy import build_hierarchy
from repro.cache.mshr import RequestType


def make_l1(**kwargs):
    return build_hierarchy(**kwargs).l1


class StubNofillPolicy(FillPolicy):
    """NOFILL every miss + one fixed extra fill request."""

    def __init__(self, extra):
        self.extra = extra

    def on_miss(self, line_addr, ctx):
        return MissPlan(RequestType.NOFILL, (self.extra,))


class TestDemandFetch:
    def test_miss_fills_after_completion(self):
        l1 = make_l1()
        r = l1.access(0, now=0)
        assert not r.l1_hit
        # after the data returns, the line is installed
        r2 = l1.access(0, now=r.ready_at + 1)
        assert r2.l1_hit

    def test_merge_while_in_flight(self):
        l1 = make_l1()
        r1 = l1.access(0, now=0)
        r2 = l1.access(8, now=1)  # same line
        assert r2.merged
        assert r2.ready_at >= r1.ready_at

    def test_hit_latency(self):
        l1 = make_l1()
        r = l1.access(0, now=0)
        r2 = l1.access(0, now=r.ready_at + 5)
        assert r2.ready_at == r.ready_at + 5 + l1.hit_latency

    def test_mshr_full_stalls(self):
        l1 = make_l1(mshr_entries=2)
        l1.access(0 * 64, now=0)
        l1.access(1 * 64, now=0)
        r = l1.access(2 * 64, now=0)
        assert r.stalled_for_mshr > 0

    def test_line_addr_reported(self):
        l1 = make_l1()
        assert l1.access(130, now=0).line_addr == 2


class TestNofill:
    def test_demand_line_not_installed(self):
        l1 = make_l1()
        l1.policy = StubNofillPolicy(extra=500)
        r = l1.access(0, now=0)
        l1.access(64 * 99, now=r.ready_at + 1000)  # drive drain forward
        assert not l1.tag_store.probe(0)

    def test_extra_line_installed(self):
        l1 = make_l1()
        l1.policy = StubNofillPolicy(extra=500)
        r = l1.access(0, now=0)
        l1.access(64 * 99, now=r.ready_at + 1000)
        l1.settle()
        assert l1.tag_store.probe(500)

    def test_fill_request_dropped_when_resident(self):
        l1 = make_l1()
        l1.tag_store.fill(500)
        l1.policy = StubNofillPolicy(extra=500)
        l1.access(0, now=0)
        assert l1.stats.random_fill_dropped >= 1
        assert l1.stats.random_fill_issued == 0

    def test_negative_fill_line_dropped(self):
        l1 = make_l1()
        l1.policy = StubNofillPolicy(extra=-3)
        l1.access(0, now=0)
        assert l1.stats.random_fill_dropped == 1

    def test_nofill_upgraded_by_fill_request_for_same_line(self):
        l1 = make_l1()
        l1.policy = StubNofillPolicy(extra=0)  # fill targets the demand line
        l1.access(0, now=0)
        l1.settle()
        assert l1.tag_store.probe(0)  # upgraded entry installed the line


class TestBypass:
    def test_bypass_policy(self):
        class BypassAll(FillPolicy):
            def bypass(self, line_addr, ctx):
                return True

            def on_miss(self, line_addr, ctx):  # pragma: no cover
                raise AssertionError("bypassed accesses never call on_miss")

        l1 = make_l1()
        l1.policy = BypassAll()
        r = l1.access(0, now=0)
        assert r.bypassed
        assert not l1.tag_store.probe(0)
        # repeated access still bypasses (no caching)
        r2 = l1.access(0, now=r.ready_at)
        assert r2.bypassed


class TestHousekeeping:
    def test_flush_clears_everything(self):
        l1 = make_l1()
        l1.access(0, now=0)
        l1.flush()
        assert len(l1.miss_queue) == 0
        assert l1.tag_store.occupancy() == 0

    def test_settle_completes_in_flight(self):
        l1 = make_l1()
        l1.access(0, now=0)
        l1.settle()
        assert len(l1.miss_queue) == 0
        assert l1.tag_store.probe(0)

    def test_stats_counters(self):
        l1 = make_l1()
        r = l1.access(0, now=0)
        l1.access(0, now=r.ready_at + 1)
        assert l1.stats.accesses == 2
        assert l1.stats.hits == 1
        assert l1.stats.demand_misses == 1

    def test_reset_stats(self):
        l1 = make_l1()
        l1.access(0, now=0)
        l1.reset_stats()
        assert l1.stats.accesses == 0


class TestFillReserve:
    def test_single_mshr_has_no_reserve(self):
        l1 = make_l1(mshr_entries=1)
        assert l1.fill_reserve == 0

    def test_multi_mshr_reserves_one(self):
        l1 = make_l1(mshr_entries=4)
        assert l1.fill_reserve == 1


class TestSettleTermination:
    """settle() must terminate when fill requests are pinned behind the
    MSHR demand reserve and nothing can retire — the state that used to
    spin forever via a bare ``continue``."""

    def _parked_state(self):
        l1 = make_l1(mshr_entries=2)   # fill_reserve=1 -> 1 slot for fills
        l1.policy = StubNofillPolicy(extra=999)
        l1.access(0 * 64, now=0)       # miss; extra fill request parks
        l1.access(1 * 64, now=0)       # second miss: MSHRs now full
        assert len(l1.miss_queue) == 2
        assert len(l1.fill_queue) >= 1
        return l1

    def test_bounded_settle_drops_parked_fills(self):
        l1 = self._parked_state()
        parked = len(l1.fill_queue)
        dropped0 = l1.stats.random_fill_dropped
        l1.settle(now=0)               # nothing completes by cycle 0
        assert len(l1.fill_queue) == 0
        assert len(l1.miss_queue) == 0
        assert l1.stats.random_fill_dropped == dropped0 + parked

    def test_unbounded_settle_completes(self):
        l1 = self._parked_state()
        l1.settle()
        assert len(l1.fill_queue) == 0
        assert len(l1.miss_queue) == 0
