"""L1 cache controller: timing, miss queue, and a pluggable fill strategy.

This is the block diagram of Figure 3 minus the random fill engine.  The
controller owns:

* the tag store (any :class:`~repro.cache.tagstore.TagStore`),
* the non-blocking miss queue (4 entries in Table IV),
* a *fill policy* deciding, per miss, whether the demand line fills the
  cache and which extra lines (if any) should be randomly filled,
* the random fill queue — a FIFO where extra fill requests "wait for idle
  cycles to lookup the tag array" (Section IV-B.2).  We drain it at every
  access boundary; a request that hits in the tag array or merges with an
  in-flight miss is dropped, exactly as in the paper.

The demand-fetch baseline is :class:`DemandFetchPolicy`; the paper's
contribution plugs in via :class:`repro.core.policy.RandomFillPolicy`.

``access`` is the single hottest function in the simulator (one call per
trace record, tens of millions per sweep), so its fast paths avoid
attribute chains, no-op method calls and dataclass construction: the
line shift is cached at construction, the empty fill/miss queues are
checked before paying for a drain call, and the policy's ``bypass`` /
``on_hit`` hooks are only invoked when the policy actually overrides
them (tracked by the ``policy`` setter).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.cache.context import AccessContext, DEFAULT_CONTEXT
from repro.cache.l2 import L2Cache
from repro.cache.mshr import MissQueue, RequestType
from repro.cache.stats import CacheStats
from repro.cache.tagstore import TagStore
from repro.memory.address import AddressMap


class MissPlan:
    """What the fill policy wants done for one demand miss.

    ``demand_type`` is NORMAL (fill + forward) or NOFILL (forward only);
    ``random_fill_lines`` are extra line addresses for the fill queue.

    Created once per demand miss; a plain ``__slots__`` class (not a
    dataclass) to keep construction off the profile.
    """

    __slots__ = ("demand_type", "random_fill_lines")

    def __init__(self, demand_type: RequestType,
                 random_fill_lines: Tuple[int, ...] = ()):
        self.demand_type = demand_type
        self.random_fill_lines = random_fill_lines

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MissPlan):
            return NotImplemented
        return (self.demand_type is other.demand_type
                and self.random_fill_lines == other.random_fill_lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MissPlan({self.demand_type!r}, "
                f"random_fill_lines={self.random_fill_lines!r})")


class FillPolicy:
    """Strategy interface consulted by the L1 controller."""

    def bypass(self, line_addr: int, ctx: AccessContext) -> bool:
        """True to skip the cache entirely (the disable-cache scheme)."""
        return False

    def on_miss(self, line_addr: int, ctx: AccessContext) -> MissPlan:
        raise NotImplementedError

    def on_hit(self, line_addr: int, ctx: AccessContext) -> None:
        """Hook for policies that react to hits (none in the paper)."""


#: Shared demand-fetch plan.  A NORMAL plan carries no per-miss state,
#: and the controller consumes plans synchronously, so every plain miss
#: can return this singleton instead of allocating.
NORMAL_PLAN = MissPlan(RequestType.NORMAL)


class DemandFetchPolicy(FillPolicy):
    """The conventional policy: every miss demand-fills the cache."""

    def on_miss(self, line_addr: int, ctx: AccessContext) -> MissPlan:
        return NORMAL_PLAN


class AccessResult:
    """Outcome of one L1 access.

    One instance is created per memory reference, so this is a plain
    ``__slots__`` class: frozen-dataclass construction costs roughly
    twice as much per object, which is measurable across a sweep.
    """

    __slots__ = ("ready_at", "l1_hit", "merged", "bypassed",
                 "stalled_for_mshr", "line_addr")

    def __init__(self, ready_at: int, l1_hit: bool, merged: bool = False,
                 bypassed: bool = False, stalled_for_mshr: int = 0,
                 line_addr: int = -1):
        self.ready_at = ready_at          # cycle the data reaches the CPU
        self.l1_hit = l1_hit
        self.merged = merged              # satisfied by an in-flight miss
        self.bypassed = bypassed
        self.stalled_for_mshr = stalled_for_mshr
        self.line_addr = line_addr        # line accessed (CPU bookkeeping)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AccessResult):
            return NotImplemented
        return all(getattr(self, f) == getattr(other, f)
                   for f in AccessResult.__slots__)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(f"{f}={getattr(self, f)!r}"
                           for f in AccessResult.__slots__)
        return f"AccessResult({fields})"


class L1Controller:
    """Non-blocking L1 data cache with a pluggable fill strategy."""

    def __init__(self, tag_store: TagStore, next_level: L2Cache,
                 policy: Optional[FillPolicy] = None,
                 hit_latency: int = 1,
                 mshr_entries: int = 4,
                 fill_queue_capacity: int = 8,
                 line_size: int = 64):
        self.tag_store = tag_store
        self.next_level = next_level
        # Bound-method caches: the tag store and next level are fixed
        # at construction, and each saves an attribute chain per access.
        self._tag_access = tag_store.access
        self._tag_probe = tag_store.probe
        self._tag_fill = tag_store.fill
        self._l2_access = next_level.access
        self.hit_latency = hit_latency
        self.miss_queue = MissQueue(mshr_entries)
        self.fill_queue: Deque[Tuple[int, AccessContext]] = deque()
        self.fill_queue_capacity = fill_queue_capacity
        # MSHRs held back from fill requests so demands never starve
        # (0 when there is only one MSHR — the Table III attack setup).
        self.fill_reserve = 1 if mshr_entries > 1 else 0
        self.amap = AddressMap(line_size=line_size, num_sets=1)
        self._line_shift = self.amap.line_bits
        self.stats = CacheStats()
        # True while the fill queue's head is known to be unable to make
        # progress (no MSHR beyond the demand reserve, not a merge, not
        # already resident).  That verdict can only change when an MSHR
        # retires or a demand miss allocates — both tracked below — so
        # the per-access re-probe of a parked head is skipped.
        self._fills_blocked = False
        self.policy = policy if policy is not None else DemandFetchPolicy()

    # -- policy dispatch ---------------------------------------------------

    @property
    def policy(self) -> FillPolicy:
        return self._policy

    @policy.setter
    def policy(self, policy: FillPolicy) -> None:
        """Install a policy, caching which optional hooks it overrides.

        The base-class ``bypass``/``on_hit`` are no-ops; skipping the
        virtual call for policies that keep the defaults removes two
        method dispatches from every access.
        """
        self._policy = policy
        cls = type(policy)
        self._policy_bypasses = cls.bypass is not FillPolicy.bypass
        self._policy_on_hit = (policy.on_hit
                               if cls.on_hit is not FillPolicy.on_hit
                               else None)
        self._policy_on_miss = policy.on_miss

    # -- internals ---------------------------------------------------------

    def _install(self, line_addr: int, ctx: AccessContext) -> None:
        """Fill callback invoked when an in-flight line's data returns."""
        evicted = self._tag_fill(line_addr, ctx)
        self.stats.fills += 1
        if evicted is not None:
            self.stats.evictions += 1

    def _drain(self, now: int) -> None:
        self.miss_queue.drain(now, self._install)

    def _issue_random_fills(self, now: int) -> None:
        """Give queued random fill requests their idle-cycle tag lookup.

        The head request is *peeked*, not popped: when no MSHR is free
        beyond the demand reserve it simply stays queued, avoiding the
        pop/requeue churn the old implementation paid on every access
        while the MSHRs were busy.  The probe/merge-lookup sequence per
        request is unchanged.
        """
        fill_queue = self.fill_queue
        miss_queue = self.miss_queue
        mq_entries = miss_queue._entries
        probe = self._tag_probe
        stats = self.stats
        limit = miss_queue.capacity - self.fill_reserve
        while fill_queue:
            line_addr, ctx = fill_queue[0]
            if probe(line_addr, ctx):
                fill_queue.popleft()
                stats.random_fill_dropped += 1
                continue
            in_flight = mq_entries.get(line_addr)
            if in_flight is not None:
                # Merge with the outstanding miss.  A NOFILL entry is
                # upgraded: its data is already on the way, and the
                # random fill request asks for it to be installed.
                fill_queue.popleft()
                if in_flight.request_type is RequestType.NOFILL:
                    in_flight.request_type = RequestType.RANDOM_FILL
                    stats.random_fill_issued += 1
                else:
                    stats.random_fill_dropped += 1
                continue
            if len(mq_entries) >= limit:
                # Keep a reserved MSHR free for demand misses so fill
                # traffic cannot stall the processor outright.
                break
            fill_queue.popleft()
            complete_at = self._l2_access(line_addr, now, ctx)
            stats.next_level_requests += 1
            stats.random_fill_issued += 1
            miss_queue.allocate(line_addr, complete_at,
                                RequestType.RANDOM_FILL, ctx)
        self._fills_blocked = bool(fill_queue)

    def _enqueue_random_fills(self, lines: Tuple[int, ...],
                              ctx: AccessContext) -> None:
        for line_addr in lines:
            if line_addr < 0:
                # Window underflow below address zero: nothing to fetch.
                self.stats.random_fill_dropped += 1
                continue
            if len(self.fill_queue) >= self.fill_queue_capacity:
                self.stats.random_fill_dropped += 1
                continue
            self.fill_queue.append((line_addr, ctx))

    # -- public API ----------------------------------------------------------

    def access(self, byte_addr: int, now: int,
               ctx: AccessContext = DEFAULT_CONTEXT) -> AccessResult:
        """One demand access at cycle ``now``; returns timing + outcome."""
        return self.access_line(byte_addr >> self._line_shift, now, ctx)

    def access_line(self, line_addr: int, now: int,
                    ctx: AccessContext = DEFAULT_CONTEXT) -> AccessResult:
        """``access`` for a pre-decoded *line* address.

        The batched timing path decodes a whole trace's line addresses
        in one vectorized pass (:mod:`repro.cpu.decode`) and calls this
        directly, skipping the per-access shift.
        """
        stats = self.stats
        stats.accesses += 1
        miss_queue = self.miss_queue
        mq_entries = miss_queue._entries
        if now >= miss_queue.next_completion:
            miss_queue.drain(now, self._install)
            self._fills_blocked = False

        if self._policy_bypasses and self._policy.bypass(line_addr, ctx):
            # Disable-cache scheme: straight to L2, no L1 state change.
            # The L2 still fills — the defence targets the L1 channel.
            ready = self._l2_access(line_addr, now, ctx, fill=True)
            stats.demand_misses += 1
            stats.next_level_requests += 1
            return AccessResult(ready_at=ready, l1_hit=False, bypassed=True,
                                line_addr=line_addr)

        if self._tag_access(line_addr, ctx):
            stats.hits += 1
            on_hit = self._policy_on_hit
            if on_hit is not None:
                on_hit(line_addr, ctx)
            if self.fill_queue and not self._fills_blocked:
                self._issue_random_fills(now)
            return AccessResult(now + self.hit_latency, True,
                                line_addr=line_addr)

        in_flight = mq_entries.get(line_addr)
        if in_flight is not None:
            # Secondary miss: merge; data usable when the line arrives.
            stats.mshr_merges += 1
            ready = max(in_flight.complete_at, now) + self.hit_latency
            return AccessResult(ready_at=ready, l1_hit=False, merged=True,
                                line_addr=line_addr)

        if self.fill_queue and not self._fills_blocked:
            # Requests claim MSHRs in arrival order: random fill requests
            # already waiting in the fill queue are older than this demand
            # miss, so they get first pick of free entries.
            self._issue_random_fills(now)
            in_flight = mq_entries.get(line_addr)
            if in_flight is not None:
                # A queued random fill for this very line just issued.
                stats.mshr_merges += 1
                ready = max(in_flight.complete_at, now) + self.hit_latency
                return AccessResult(ready_at=ready, l1_hit=False, merged=True,
                                    line_addr=line_addr)

        stall = 0
        if len(mq_entries) >= miss_queue.capacity:
            freed_at = miss_queue.next_completion
            stall = max(0, freed_at - now)
            now += stall
            miss_queue.drain(now, self._install)
            self._fills_blocked = False
            # The drained line might be the one we want.
            if self._tag_access(line_addr, ctx):
                stats.hits += 1
                return AccessResult(now + self.hit_latency, l1_hit=True,
                                    stalled_for_mshr=stall,
                                    line_addr=line_addr)

        plan = self._policy_on_miss(line_addr, ctx)
        complete_at = self._l2_access(line_addr, now, ctx)
        stats.demand_misses += 1
        stats.next_level_requests += 1
        miss_queue.allocate(line_addr, complete_at, plan.demand_type, ctx)
        self._fills_blocked = False
        if plan.random_fill_lines:
            self._enqueue_random_fills(plan.random_fill_lines, ctx)
        if self.fill_queue:
            self._issue_random_fills(now)
        return AccessResult(ready_at=complete_at, l1_hit=False,
                            stalled_for_mshr=stall, line_addr=line_addr)

    def settle(self, now: Optional[int] = None) -> None:
        """Complete all in-flight activity (end-of-run bookkeeping).

        With ``now=None`` everything outstanding is retired regardless of
        completion time.  With a bounded ``now`` whatever cannot complete
        by that cycle is dropped.  Every iteration of the unbounded loop
        is checked for progress: a full miss queue whose drain retires
        nothing (or fill requests pinned behind the MSHR reserve) used to
        re-enter the loop forever via a bare ``continue``; now the
        stragglers are dropped instead of spinning.
        """
        if now is not None:
            # Bounded settle: retire what completes by `now`, then drop
            # whatever cannot.
            self.miss_queue.drain(now, self._install)
            if self.fill_queue and not self.miss_queue.full:
                self._issue_random_fills(now)
                self.miss_queue.drain(now, self._install)
            self.stats.random_fill_dropped += len(self.fill_queue)
            self.fill_queue.clear()
            self.miss_queue.flush()
            self._fills_blocked = False
            return
        while self.fill_queue or len(self.miss_queue):
            progressed = False
            if len(self.miss_queue):
                horizon = max(self.miss_queue.earliest_completion(), 0)
                progressed |= bool(self.miss_queue.drain(horizon,
                                                        self._install))
            if self.fill_queue and not self.miss_queue.full:
                before = len(self.fill_queue)
                self._issue_random_fills(0)
                progressed |= len(self.fill_queue) != before
            if not progressed:  # pragma: no cover - defensive backstop
                self.stats.random_fill_dropped += len(self.fill_queue)
                self.fill_queue.clear()
                self.miss_queue.flush()
                break
        self._fills_blocked = False

    def flush(self) -> None:
        """Flush tag store and discard in-flight state (clean-cache reset)."""
        self.tag_store.flush()
        self.miss_queue.flush()
        self.fill_queue.clear()
        self._fills_blocked = False

    def reset_stats(self) -> None:
        self.stats.reset()
