"""Lane-parallel kernel: one call advances a whole batch group.

The PR 6 batched path amortizes trace decode and RNG pregeneration
across a group, but still runs the flat state machine
(:func:`repro.cpu.timing.run_flat_general`) once per member cell — an
N-cell group costs N Python interpreter passes over the same columns.
This module runs all eligible cells of a group as independent *lanes*
over the shared columns in a single kernel call.

numpy prepares the shared column work — the decoded trace is reused
as-is, the per-record step column is shared, and each lane's
pregenerated random-fill draw row is masked to fill offsets in one
vectorized pass (``(draw & mask) - a``, Table II bounds; see
:func:`masked_offsets`).  The per-record state machine itself runs in
a small C kernel (``lanes_kernel.c``), compiled once with the host
toolchain and loaded through :mod:`ctypes`; results are
**bit-identical** to the flat kernel because the C code is a
branch-for-branch transcription (drain order, fill-queue drop/merge
rules, MSHR-full stall, MLP charge table with its prune threshold, and
the settle loop) and every quantity fits int64 with all divisions on
non-negative operands.

Why C and not numpy record-steps: this kernel went through three
measured all-Python designs first — the issue-sketched
``(lanes, sets, assoc)`` numpy struct-of-arrays with ``tags == line``
hit-scan reductions ran ~3x *slower* than the scalar kernel (small-
array numpy op constants dominate at fig10 lane widths), a lockstep
presence-bitmask design (one dict lookup classifying all lanes per
record) reached only ~0.55x (per-lane indexing replaces the flat
kernel's bare locals on every event), and a fully tuned per-lane
rewrite (heap MSHR, O(1) ordered-dict sets, precomputed offsets,
steady-merge fast path) topped out at ~1.06x — fig10 traffic is
miss/merge-dominated, so per-event interpreter constants bound any
same-language kernel near 1x.  That tuned per-lane kernel ships as
:func:`_run_lane_python`, the fallback when no C compiler is
available; the native kernel is the performance path.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from repro.cpu.timing import (
    CHARGED_PRUNE_THRESHOLD,
    SimResult,
    prune_charged,
)

#: mirrors :data:`repro.cpu.timing._NEVER` (MissQueue.NEVER)
_NEVER = 1 << 62

#: flat-kernel request types (1 mirrors ``NOFILL``)
_RT_NORMAL, _RT_NOFILL, _RT_RANDOM_FILL = 0, 1, 2

#: diagnostics of the most recent kernel run, read by the profiler
#: display; overwritten per call
LAST_STATS: dict = {}

#: the native kernel rejects MSHR capacities above its drain scratch
#: bound (C returns -2); such configs take the Python fallback
_NATIVE_MQ_LIMIT = 64

_native_fn = None
_native_tried = False


class LaneCell:
    """Per-lane kernel inputs: the policy split of one lowered cell.

    ``offsets`` is the pregenerated random-fill offset row
    ``(draw & rf_mask) - rf_a`` as an int64 array (one entry per trace
    record, masked in one numpy pass from the cell's own derived RNG
    stream); ``None`` for demand-fetch lanes (``policy_kind`` 1).
    """

    __slots__ = ("policy_kind", "offsets")

    def __init__(self, policy_kind: int,
                 offsets: Optional[np.ndarray] = None):
        self.policy_kind = policy_kind
        self.offsets = offsets


def masked_offsets(draws: Sequence[int], rf_a: int,
                   rf_mask: int) -> np.ndarray:
    """One lane's fill-offset row: ``(draw & rf_mask) - rf_a`` vectorized.

    Bit-identical to the flat kernel's per-miss arithmetic: the raw
    draws are below ``2**width <= 2**32`` so int64 masking is exact.
    """
    return (np.asarray(draws, dtype=np.int64) & rf_mask) - rf_a


def _compile_native() -> Optional[ctypes.CDLL]:
    """Build (or reuse) the shared library for ``lanes_kernel.c``.

    The object is cached under ``$REPRO_LANES_CACHE`` (default: a
    ``repro-lanes`` directory in the system temp dir) keyed by source
    hash, so each kernel revision compiles once per machine.  Returns
    ``None`` when no C compiler is available or compilation fails —
    callers fall back to the Python kernel.
    """
    src = Path(__file__).with_name("lanes_kernel.c")
    try:
        body = src.read_bytes()
    except OSError:
        return None
    tag = hashlib.sha256(body).hexdigest()[:12]
    cache_dir = os.environ.get("REPRO_LANES_CACHE") or os.path.join(
        tempfile.gettempdir(), "repro-lanes")
    so_path = os.path.join(cache_dir, f"lanes_kernel_{tag}.so")
    if not os.path.exists(so_path):
        compiler = shutil.which("cc") or shutil.which("gcc")
        if compiler is None:
            return None
        tmp_path = f"{so_path}.{os.getpid()}.tmp"
        try:
            os.makedirs(cache_dir, exist_ok=True)
            proc = subprocess.run(
                [compiler, "-O2", "-shared", "-fPIC", "-o", tmp_path,
                 str(src)],
                capture_output=True, timeout=120)
            if proc.returncode != 0:
                return None
            os.replace(tmp_path, so_path)
        except (OSError, subprocess.SubprocessError):
            return None
        finally:
            if os.path.exists(tmp_path):
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
    try:
        return ctypes.CDLL(so_path)
    except OSError:
        return None


def _native():
    """The bound ``run_lanes`` entry point, or ``None`` (memoized)."""
    global _native_fn, _native_tried
    if _native_tried:
        return _native_fn
    _native_tried = True
    lib = _compile_native()
    if lib is None:
        return None
    i64 = ctypes.c_int64
    ptr = ctypes.POINTER(ctypes.c_int64)
    fn = lib.run_lanes
    fn.restype = ctypes.c_int
    fn.argtypes = [i64, ptr, ptr, i64, ptr, ptr, ptr] + [i64] * 17 + [ptr]
    _native_fn = fn
    return fn


def native_available() -> bool:
    """Whether the compiled kernel is (or can be made) loadable."""
    return _native() is not None


def _as_ptr(arr: np.ndarray):
    return arr.ctypes.data_as(ctypes.POINTER(ctypes.c_int64))


def _run_native(fn, lines_l, steps_l, instructions, l1_num_sets, l1_assoc,
                l2_sets, l2_num_sets, l2_assoc, l2_hit_latency,
                mq_capacity, fill_reserve, fill_queue_capacity, hit_cost,
                mlp, credit, cells, dram) -> Optional[List[SimResult]]:
    n_lanes = len(cells)
    n_records = len(lines_l)
    lines = np.asarray(lines_l, dtype=np.int64)
    steps = np.asarray(steps_l, dtype=np.int64)
    kinds = np.asarray([c.policy_kind for c in cells], dtype=np.int64)
    offsets = np.zeros((n_lanes, n_records), dtype=np.int64)
    for i, cell in enumerate(cells):
        if cell.offsets is not None:
            offsets[i, :len(cell.offsets)] = cell.offsets
    template = np.full(l2_num_sets * l2_assoc, -1, dtype=np.int64)
    for s, ways in enumerate(l2_sets):
        if ways:
            template[s * l2_assoc:s * l2_assoc + len(ways)] = ways
    out = np.zeros(n_lanes * 7, dtype=np.int64)
    rc = fn(n_records, _as_ptr(lines), _as_ptr(steps),
            n_lanes, _as_ptr(kinds), _as_ptr(offsets), _as_ptr(template),
            l1_num_sets, l1_assoc, l2_num_sets, l2_assoc,
            l2_hit_latency, mq_capacity, fill_reserve,
            fill_queue_capacity, hit_cost, mlp, credit,
            dram[0], dram[1], dram[2], dram[3], dram[4], dram[5],
            _as_ptr(out))
    if rc != 0:
        return None
    return [
        SimResult(
            instructions=instructions,
            cycles=int(out[l * 7 + 0]),
            l1_accesses=n_records,
            l1_hits=int(out[l * 7 + 1]),
            l1_demand_misses=int(out[l * 7 + 2]),
            l2_accesses=int(out[l * 7 + 3]),
            l2_demand_misses=int(out[l * 7 + 4]),
            memory_lines=int(out[l * 7 + 5]),
            random_fill_issued=int(out[l * 7 + 6]),
        )
        for l in range(n_lanes)
    ]


def _run_lane_python(lines_l, steps_plus, instructions, l1_num_sets,
                     l1_assoc, l2_sets, l2_num_sets, l2_assoc,
                     l2_hit_latency, mq_capacity, fill_reserve,
                     fill_queue_capacity, hit_cost, mlp, credit,
                     policy_kind, offsets, dram) -> SimResult:
    """One lane's trace pass — the tuned Python fallback.

    A transcription of :func:`run_flat_general` with faster but
    order-identical machinery: cache sets are :class:`OrderedDict`
    (O(1) membership, ``move_to_end`` refresh, first key = LRU victim —
    the flat MRU-first lists reversed), the MSHR adds a completion-
    ordered heap whose ``(completion, seq)`` order reproduces the flat
    kernel's stable completion sort, the step column arrives fused with
    the per-record ``hit_cost`` (every flat branch adds exactly one),
    fill offsets are premasked, and a ``steady`` set marks lines whose
    charge already equals their in-flight completion so a repeat merge
    retires in one membership test (after the drain check, surviving
    entries complete strictly after ``now``, so such a merge adds
    exactly the already-fused ``hit_cost``).
    """
    from heapq import heappop, heappush

    (dram_lines_per_row, dram_banks, dram_hit_latency, dram_miss_latency,
     dram_hit_busy, dram_miss_busy) = dram
    l1_set_mask = l1_num_sets - 1
    l2_set_mask = l2_num_sets - 1
    l1_sets = [OrderedDict() for _ in range(l1_num_sets)]
    l2 = [OrderedDict((line, True) for line in reversed(ways))
          for ways in l2_sets]
    mq: dict = {}
    mq_get = mq.get
    heap: list = []
    seq = 0
    fill_queue: list = []
    open_row: dict = {}
    bank_free: dict = {}
    bank_free_get = bank_free.get
    open_row_get = open_row.get
    steady: set = set()
    steady_add = steady.add
    steady_discard = steady.discard

    prune_at = CHARGED_PRUNE_THRESHOLD
    fill_cap = mq_capacity - fill_reserve
    l2_accesses = 0
    l2_misses = 0
    memory_lines = 0
    rf_issued = 0
    hits = 0
    demand_misses = 0
    off_i = 0
    nc = _NEVER
    ncx = _NEVER                  # nc + hit_cost, in fused-clock terms
    fills_blocked = False

    def l2_access(line, at):
        nonlocal l2_accesses, l2_misses, memory_lines
        l2_accesses += 1
        cache_set = l2[line & l2_set_mask]
        if line in cache_set:
            cache_set.move_to_end(line)
            return at + l2_hit_latency
        l2_misses += 1
        row = line // dram_lines_per_row
        bank = row % dram_banks
        start = bank_free_get(bank, 0)
        at += l2_hit_latency
        if start < at:
            start = at
        if open_row_get(bank) == row:
            done = start + dram_hit_latency
            bank_free[bank] = start + dram_hit_busy
        else:
            open_row[bank] = row
            done = start + dram_miss_latency
            bank_free[bank] = start + dram_miss_busy
        memory_lines += 1
        if len(cache_set) >= l2_assoc:
            cache_set.popitem(last=False)
        cache_set[line] = True
        return done

    def drain(at):
        nonlocal nc, ncx
        if at < nc:
            return 0
        done = 0
        while heap and heap[0][0] <= at:
            dline = heappop(heap)[2]
            done += 1
            steady_discard(dline)
            if mq.pop(dline)[1] != _RT_NOFILL:
                cache_set = l1_sets[dline & l1_set_mask]
                if dline not in cache_set:
                    if len(cache_set) >= l1_assoc:
                        cache_set.popitem(last=False)
                    cache_set[dline] = True
        nc = heap[0][0] if heap else _NEVER
        ncx = nc + hit_cost
        return done

    def issue_fills(at):
        nonlocal nc, ncx, fills_blocked, rf_issued, seq
        while fill_queue:
            head = fill_queue[0]
            if head in l1_sets[head & l1_set_mask]:
                del fill_queue[0]
                continue
            in_flight = mq_get(head)
            if in_flight is not None:
                del fill_queue[0]
                if in_flight[1] == _RT_NOFILL:
                    in_flight[1] = _RT_RANDOM_FILL
                    rf_issued += 1
                continue
            if len(mq) >= fill_cap:
                break
            del fill_queue[0]
            fill_at = l2_access(head, at)
            rf_issued += 1
            mq[head] = [fill_at, _RT_RANDOM_FILL]
            heappush(heap, (fill_at, seq, head))
            seq += 1
            if fill_at < nc:
                nc = fill_at
                ncx = nc + hit_cost
        fills_blocked = bool(fill_queue)

    now = 0
    charged: dict = {}
    charged_get = charged.get
    for line, sp in zip(lines_l, steps_plus):
        # ``sp`` fuses step + hit_cost: the flat-clock "now" at branch
        # entry is ``now - hit_cost``.
        now += sp
        if now >= ncx:
            drain(now - hit_cost)
            fills_blocked = False
        cache_set = l1_sets[line & l1_set_mask]
        if line in cache_set:
            hits += 1
            cache_set.move_to_end(line)
            if fill_queue and not fills_blocked:
                issue_fills(now - hit_cost)
            continue
        if line in steady:
            # charged[line] == mq[line][0] > now: the flat merge path
            # adds exactly hit_cost, already fused into the step.
            continue
        nb = now - hit_cost
        in_flight = mq_get(line)
        if in_flight is None and fill_queue and not fills_blocked:
            # Queued random fills are older than this demand miss, so
            # they claim MSHRs first — possibly turning it into a merge.
            issue_fills(nb)
            in_flight = mq_get(line)
        if in_flight is not None:
            completion = in_flight[0]
            if completion < nb:
                completion = nb
            if charged_get(line) != completion:
                charged[line] = completion
                remaining = completion - now - credit
                if remaining > 0:
                    now += (remaining + mlp - 1) // mlp
                if completion == in_flight[0]:
                    steady_add(line)
                else:
                    steady_discard(line)
            if len(charged) >= prune_at:
                charged = prune_charged(charged, now)
                charged_get = charged.get
                for k in tuple(steady):
                    if charged_get(k) != mq[k][0]:
                        steady_discard(k)
            continue
        stall = 0
        access_now = nb
        if len(mq) >= mq_capacity:
            stall = nc - nb
            if stall < 0:
                stall = 0
            access_now = nb + stall
            drain(access_now)
            fills_blocked = False
            if line in cache_set:
                # The drained line was the one we wanted; charge only
                # the hit (stall unused), with the MRU refresh.
                hits += 1
                cache_set.move_to_end(line)
                continue
        demand_misses += 1
        if policy_kind == 2:
            complete_at = l2_access(line, access_now)
            mq[line] = [complete_at, _RT_NOFILL]
            heappush(heap, (complete_at, seq, line))
            seq += 1
            if complete_at < nc:
                nc = complete_at
                ncx = nc + hit_cost
            fills_blocked = False
            fill_line = line + offsets[off_i]
            off_i += 1
            if fill_queue:
                # Parked requests are older; preserve FIFO order.
                if fill_line >= 0 and len(fill_queue) < fill_queue_capacity:
                    fill_queue.append(fill_line)
                issue_fills(access_now)
            elif fill_line < 0:
                pass                 # window underflow: dropped
            elif fill_line in l1_sets[fill_line & l1_set_mask]:
                pass                 # already resident: dropped
            else:
                in_flight = mq_get(fill_line)
                if in_flight is not None:
                    if in_flight[1] == _RT_NOFILL:
                        in_flight[1] = _RT_RANDOM_FILL
                        rf_issued += 1
                elif len(mq) >= fill_cap:
                    fill_queue.append(fill_line)
                    fills_blocked = True
                else:
                    fill_at = l2_access(fill_line, access_now)
                    rf_issued += 1
                    mq[fill_line] = [fill_at, _RT_RANDOM_FILL]
                    heappush(heap, (fill_at, seq, fill_line))
                    seq += 1
                    if fill_at < nc:
                        nc = fill_at
                        ncx = nc + hit_cost
        else:
            complete_at = l2_access(line, access_now)
            mq[line] = [complete_at, _RT_NORMAL]
            heappush(heap, (complete_at, seq, line))
            seq += 1
            if complete_at < nc:
                nc = complete_at
                ncx = nc + hit_cost
            fills_blocked = False
            if fill_queue:
                issue_fills(access_now)
        charged[line] = complete_at
        # The fresh entry's charge matches its completion by
        # construction: repeat merges are steady until it drains.
        steady_add(line)
        now += stall
        remaining = complete_at - now - credit
        if remaining > 0:
            now += (remaining + mlp - 1) // mlp
        if len(charged) >= prune_at:
            charged = prune_charged(charged, now)
            charged_get = charged.get
            for k in tuple(steady):
                if charged_get(k) != mq[k][0]:
                    steady_discard(k)

    # End-of-run settle (flat kernel's loop, verbatim): issued fills
    # and their L2/DRAM traffic count toward this run's totals.
    while fill_queue or mq:
        progressed = False
        if mq:
            horizon = nc if nc > 0 else 0
            progressed = drain(horizon) > 0
        if fill_queue and len(mq) < mq_capacity:
            before = len(fill_queue)
            issue_fills(0)
            progressed = progressed or len(fill_queue) != before
        if not progressed:       # pragma: no cover - defensive backstop
            break

    return SimResult(
        instructions=instructions,
        cycles=now,
        l1_accesses=len(lines_l),
        l1_hits=hits,
        l1_demand_misses=demand_misses,
        l2_accesses=l2_accesses,
        l2_demand_misses=l2_misses,
        memory_lines=memory_lines,
        random_fill_issued=rf_issued,
    )


def run_lanes_general(lines_l, steps_l, instructions,
                      l1_num_sets, l1_assoc,
                      l2_sets, l2_num_sets, l2_assoc,
                      l2_hit_latency, mq_capacity, fill_reserve,
                      fill_queue_capacity, hit_cost, mlp, credit,
                      cells: Sequence[LaneCell], dram,
                      backend: Optional[str] = None) -> List[SimResult]:
    """Advance every lane of a batch group over the shared columns.

    Shared arguments mirror :func:`run_flat_general`; ``l2_sets`` is
    the group's warmed L2 image (MRU-first int lists, *not* mutated —
    each lane works on its own copy) and ``cells`` holds one
    :class:`LaneCell` per lane.  ``backend`` forces ``"native"`` or
    ``"python"``; the default picks the compiled kernel when available.
    Returns one :class:`SimResult` per lane, bit-identical to running
    the flat kernel per cell.
    """
    if backend not in (None, "native", "python"):
        raise ValueError(
            f"backend must be None, 'native' or 'python', got {backend!r}")
    n_lanes = len(cells)
    if n_lanes == 0:
        return []
    used = "python"
    results = None
    if backend != "python" and mq_capacity <= _NATIVE_MQ_LIMIT:
        fn = _native()
        if fn is None:
            if backend == "native":
                raise RuntimeError("native lane kernel unavailable")
        else:
            results = _run_native(
                fn, lines_l, steps_l, instructions, l1_num_sets,
                l1_assoc, l2_sets, l2_num_sets, l2_assoc, l2_hit_latency,
                mq_capacity, fill_reserve, fill_queue_capacity, hit_cost,
                mlp, credit, cells, dram)
            if results is not None:
                used = "native"
    elif backend == "native":
        raise RuntimeError(
            f"native lane kernel rejects mq_capacity {mq_capacity}")
    if results is None:
        steps_plus = (np.asarray(steps_l, dtype=np.int64)
                      + hit_cost).tolist()
        results = []
        for cell in cells:
            offsets = (cell.offsets.tolist()
                       if cell.offsets is not None else ())
            results.append(_run_lane_python(
                lines_l, steps_plus, instructions, l1_num_sets, l1_assoc,
                l2_sets, l2_num_sets, l2_assoc, l2_hit_latency,
                mq_capacity, fill_reserve, fill_queue_capacity, hit_cost,
                mlp, credit, cell.policy_kind, offsets, dram))
    LAST_STATS.clear()
    LAST_STATS.update(records=len(lines_l), lanes=n_lanes, backend=used)
    return results
