"""Tests for checked-mode activation, parsing and the Checker itself."""

import pickle

import pytest

from repro.check import (
    DEFAULT_RATE,
    Checker,
    CheckViolation,
    active_checker,
    check_rate_from_env,
    check_totals,
    checked,
    checked_from_env,
    install_checker,
    parse_check_value,
    uninstall_checker,
)


class TestParseCheckValue:
    def test_empty_and_zero_mean_off(self):
        assert parse_check_value("") is None
        assert parse_check_value("0") is None
        assert parse_check_value("  ") is None

    def test_one_selects_default_rate(self):
        assert parse_check_value("1") == DEFAULT_RATE

    def test_larger_integers_are_the_rate(self):
        assert parse_check_value("4096") == 4096
        assert parse_check_value(" 17 ") == 17

    @pytest.mark.parametrize("raw", ["yes", "1.5", "on", "1k"])
    def test_garbage_rejected_naming_variable(self, raw):
        with pytest.raises(ValueError, match="REPRO_CHECK"):
            parse_check_value(raw)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="REPRO_CHECK"):
            parse_check_value("-1")

    def test_env_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK", raising=False)
        assert check_rate_from_env() is None
        monkeypatch.setenv("REPRO_CHECK", "1")
        assert check_rate_from_env() == DEFAULT_RATE
        monkeypatch.setenv("REPRO_CHECK", "256")
        assert check_rate_from_env() == 256


class TestCheckViolation:
    def test_message_carries_structure(self):
        error = CheckViolation("mshr", "l1.miss_queue", "broken",
                               index=42, expected="1", actual="2")
        text = str(error)
        assert "[mshr] l1.miss_queue: broken" in text
        assert "at access 42" in text
        assert "expected 1" in text and "actual 2" in text

    def test_pickle_roundtrip(self):
        error = CheckViolation("stats", "l1.stats", "off", index=7,
                               expected="3", actual="4", spec="CellSpec(...)")
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, CheckViolation)
        assert (clone.kind, clone.where, clone.index) == ("stats",
                                                          "l1.stats", 7)
        assert str(clone) == str(error)

    def test_with_spec_attaches_once(self):
        error = CheckViolation("mshr", "l1", "broken")
        tagged = error.with_spec("CellSpec(kind='general')")
        assert tagged.spec == "CellSpec(kind='general')"
        assert "spec CellSpec" in str(tagged)
        # Already-tagged violations keep their original spec.
        assert tagged.with_spec("other") is tagged

    def test_is_an_assertion_error(self):
        assert issubclass(CheckViolation, AssertionError)


class TestCheckerOffsets:
    def test_in_window_offsets_accumulate(self):
        checker = Checker()
        for offset in (-4, -1, 0, 3):
            checker.note_offset(offset, 4, 3)
        assert checker.violations == 0

    @pytest.mark.parametrize("offset", [-5, 4])
    def test_out_of_window_offset_raises(self, offset):
        checker = Checker()
        with pytest.raises(CheckViolation, match="window-bounds"):
            checker.note_offset(offset, 4, 3)
        assert checker.violations == 1

    def test_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            Checker(rate=0)


class TestChiSquare:
    def test_uniform_draws_pass(self):
        checker = Checker()
        for i in range(4000):
            checker.note_offset(i % 8 - 4, 4, 3)
        checker.finalize()

    def test_stuck_draw_path_trips(self):
        checker = Checker()
        for _ in range(4000):
            checker.note_offset(0, 4, 3)
        with pytest.raises(CheckViolation, match="uniformity"):
            checker.finalize()

    def test_small_samples_skipped(self):
        checker = Checker()
        for _ in range(100):              # far below MIN_CHI2_SAMPLES
            checker.note_offset(0, 4, 3)
        checker.finalize()

    def test_opt_out(self):
        checker = Checker(chi_square=False)
        for _ in range(4000):
            checker.note_offset(0, 4, 3)
        checker.finalize()


class TestActivation:
    def test_checked_installs_and_uninstalls(self):
        assert active_checker() is None
        with checked() as checker:
            assert active_checker() is checker
        assert active_checker() is None

    def test_double_install_rejected(self):
        with checked():
            with pytest.raises(RuntimeError):
                install_checker(Checker())

    def test_uninstall_without_install_is_noop(self):
        assert uninstall_checker() is None

    def test_totals_accumulate_across_activations(self):
        base = check_totals()["checks_run"]
        with checked() as checker:
            checker.checks_run += 3
        with checked() as checker:
            checker.checks_run += 2
        assert check_totals()["checks_run"] == base + 5

    def test_engine_draws_validated_while_installed(self):
        from repro.core.engine import RandomFillEngine
        from repro.core.window import RandomFillWindow
        from repro.util.rng import HardwareRng

        engine = RandomFillEngine(HardwareRng(1))
        engine.set_window(0, RandomFillWindow(4, 3))
        # Corrupt the derived draw constants: size says 12 but the
        # window registers say [-4, 3].  Unchecked, the bad draw path
        # runs silently; checked, the first out-of-window draw raises.
        engine._params[0] = (4, None, 12)
        with checked():
            with pytest.raises(CheckViolation, match="window-bounds"):
                for _ in range(64):
                    engine.random_offset(0)
        # The wrap is removed on uninstall: draws no longer validate.
        for _ in range(64):
            engine.random_offset(0)

    def test_failing_body_skips_chi_square_finalize(self):
        with pytest.raises(KeyError):
            with checked() as checker:
                for _ in range(4000):
                    checker.note_offset(0, 4, 3)   # would trip finalize
                raise KeyError("original failure")

    def test_checked_from_env_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK", raising=False)
        with checked_from_env() as checker:
            assert checker is None

    def test_checked_from_env_on(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "128")
        with checked_from_env() as checker:
            assert checker is not None
            assert checker.rate == 128
        assert active_checker() is None
