"""Checked mode through the supervised runner: env wiring, telemetry,
stats surfacing and the no-retry rule for violations."""

import pytest

from repro.check import CheckViolation
from repro.runner.cells import CellSpec, run_cell
from repro.runner.pool import last_run_stats, run_cells
from repro.runner.result_cache import ResultCache
from repro.runner.telemetry import read_events


def _nocache():
    return ResultCache(disk_dir=None, use_default_disk_dir=False)


def _spec(n_refs=2500):
    return CellSpec(kind="general", benchmark="hmmer", window=(4, 3),
                    n_refs=n_refs, seed=7)


class ViolatingSpec:
    """A cell whose run trips a checked-mode assertion."""

    def __repr__(self):
        return "ViolatingSpec()"

    def run(self):
        raise CheckViolation("mshr", "l1.miss_queue", "seeded divergence",
                             index=99)


class TestEnvWiring:
    def test_run_cell_results_unchanged_by_checking(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK", raising=False)
        unchecked = run_cell(_spec())
        monkeypatch.setenv("REPRO_CHECK", "512")
        checked_result = run_cell(_spec())
        assert checked_result == unchecked

    def test_malformed_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "fast")
        with pytest.raises(ValueError, match="REPRO_CHECK"):
            run_cell(_spec(n_refs=100))

    def test_checks_run_surface_in_last_run_stats(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "512")
        run_cells([_spec()], jobs=1, result_cache=_nocache())
        stats = last_run_stats()
        assert stats["checks_run"] > 0
        assert stats["violations"] == 0

    def test_unchecked_run_reports_zero_checks(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK", raising=False)
        run_cells([_spec()], jobs=1, result_cache=_nocache())
        assert last_run_stats()["checks_run"] == 0


class TestViolationHandling:
    def test_violation_fails_run_without_retry(self, tmp_path,
                                               monkeypatch):
        monkeypatch.delenv("REPRO_CHECK", raising=False)
        log = str(tmp_path / "events.jsonl")
        with pytest.raises(CheckViolation) as excinfo:
            run_cells([ViolatingSpec()], jobs=1, retries=3,
                      result_cache=_nocache(), telemetry=log)
        # The spec repr rides along for reproduction...
        assert "ViolatingSpec()" in str(excinfo.value)
        events = [e["event"] for e in read_events(log)]
        # ...the violation is a first-class telemetry event...
        assert "check_violation" in events
        # ...and deterministic divergences are never retried.
        assert "cell_retry" not in events
        assert last_run_stats()["violations"] == 1

    def test_violation_event_payload(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK", raising=False)
        log = str(tmp_path / "events.jsonl")
        with pytest.raises(CheckViolation):
            run_cells([ViolatingSpec()], jobs=1, result_cache=_nocache(),
                      telemetry=log)
        event = next(e for e in read_events(log)
                     if e["event"] == "check_violation")
        assert event["kind"] == "mshr"
        assert event["where"] == "l1.miss_queue"
        assert event["access_index"] == 99
        assert event["spec"] == "ViolatingSpec()"

    def test_ordinary_failures_still_retry(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK", raising=False)

        class FlakySpec:
            attempts = 0

            def run(self):
                type(self).attempts += 1
                if type(self).attempts == 1:
                    raise RuntimeError("transient")
                return "ok"

        log = str(tmp_path / "events.jsonl")
        results = run_cells([FlakySpec()], jobs=1, retries=2,
                            result_cache=_nocache(), telemetry=log)
        assert results == ["ok"]
        assert "cell_retry" in [e["event"] for e in read_events(log)]
