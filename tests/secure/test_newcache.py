"""Tests for the Newcache remapping tag store."""

import pytest

from repro.cache.context import AccessContext
from repro.secure.newcache import Newcache


def make(size=4096, **kwargs):
    return Newcache(size, seed=1, **kwargs)


class TestBasics:
    def test_fill_then_hit(self):
        nc = make()
        assert not nc.access(100)
        nc.fill(100)
        assert nc.access(100)
        assert nc.probe(100)

    def test_invalidate(self):
        nc = make()
        nc.fill(100)
        assert nc.invalidate(100)
        assert not nc.probe(100)
        assert not nc.invalidate(100)

    def test_flush(self):
        nc = make()
        for line in range(10):
            nc.fill(line)
        nc.flush()
        assert nc.occupancy() == 0

    def test_resident_lines(self):
        nc = make()
        nc.fill(3)
        nc.fill(7)
        assert sorted(nc.resident_lines()) == [3, 7]

    def test_refill_resident_is_noop(self):
        nc = make()
        nc.fill(5)
        assert nc.fill(5) is None
        assert nc.occupancy() == 1

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Newcache(1000)
        with pytest.raises(ValueError):
            Newcache(4096, extra_index_bits=-1)
        with pytest.raises(ValueError):
            Newcache(3 * 64)  # non power of two line count


class TestRemapping:
    def test_index_conflict_replaces_in_place(self):
        nc = make(extra_index_bits=0)
        # same logical index: lines differing only above index bits
        lines = nc.capacity_lines
        nc.fill(5)
        evicted = nc.fill(5 + lines)
        assert evicted == 5
        assert nc.probe(5 + lines) and not nc.probe(5)

    def test_extra_index_bits_avoid_conflict(self):
        nc = make(extra_index_bits=4)
        lines = nc.capacity_lines
        nc.fill(5)
        nc.fill(5 + lines)  # different logical index now
        assert nc.probe(5) and nc.probe(5 + lines)

    def test_capacity_respected(self):
        nc = make(size=8 * 64)
        for line in range(100):
            if not nc.access(line):
                nc.fill(line)
        assert nc.occupancy() <= 8

    def test_eviction_is_randomized(self):
        # Fill beyond capacity twice with different seeds: the victim
        # sets should differ (random replacement).
        survivors = []
        for seed in (1, 2):
            nc = Newcache(8 * 64, seed=seed)
            for line in range(16):
                nc.fill(line)
            survivors.append(tuple(sorted(nc.resident_lines())))
        assert survivors[0] != survivors[1]

    def test_domain_isolation(self):
        nc = make()
        victim = AccessContext(domain=0)
        attacker = AccessContext(domain=1)
        nc.fill(5, victim)
        # same address under another domain's RMT is a miss
        assert not nc.probe(5, attacker)
        assert nc.probe(5, victim)


class TestHardToClean:
    def test_eviction_walk_leaves_residue(self):
        """Random replacement means a one-pass eviction walk does not
        fully clean the cache (the paper's Table III note)."""
        nc = Newcache(64 * 64, seed=3)
        for line in range(64):
            nc.fill(line)
        # attacker walks a buffer exactly the cache size
        for line in range(1000, 1064):
            nc.fill(line)
        residue = sum(1 for line in range(64) if nc.probe(line))
        assert residue > 0
