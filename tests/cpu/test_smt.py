"""Tests for the SMT co-execution model."""

import pytest

from repro.cache.context import AccessContext
from repro.cache.hierarchy import build_hierarchy
from repro.cpu.smt import SmtThread, run_smt


def thread(trace, tid=0, repeat=False):
    return SmtThread(trace=trace, ctx=AccessContext(thread_id=tid),
                     repeat=repeat)


class TestRunSmt:
    def test_single_thread(self):
        h = build_hierarchy()
        trace = [(i * 64, 4, 0) for i in range(100)]
        results = run_smt(h.l1, [thread(trace)])
        assert results[0].instructions == 400
        assert results[0].ipc > 0

    def test_two_threads_share_cache(self):
        h = build_hierarchy()
        t0 = [(0, 4, 0)] * 100
        t1 = [(0, 4, 0)] * 100
        results = run_smt(h.l1, [thread(t0, 0), thread(t1, 1)])
        # the line is fetched once; both threads mostly hit
        assert results[0].l1_demand_misses <= 2

    def test_repeat_thread_runs_until_primary_done(self):
        h = build_hierarchy()
        primary = [(i * 64, 4, 0) for i in range(200)]
        background = [(0x100000, 4, 0)] * 10
        results = run_smt(h.l1, [thread(primary, 0),
                                 thread(background, 1, repeat=True)])
        assert results[1].instructions > 10 * 4  # looped at least once

    def test_contention_slows_primary(self):
        small = build_hierarchy(l1_size=4096, l1_assoc=1)
        trace = [(i % 32 * 64, 4, 0) for i in range(4000)]
        alone = run_smt(small.l1, [thread(trace, 0)])[0]
        small2 = build_hierarchy(l1_size=4096, l1_assoc=1)
        # A thrashing co-runner: large DRAM-bound footprint, dense refs.
        hostile = [(0x800000 + (i % 16384) * 64, 1, 0) for i in range(4000)]
        shared = run_smt(small2.l1, [thread(trace, 0),
                                     thread(hostile, 1, repeat=True)])[0]
        assert shared.cycles > alone.cycles

    def test_validation(self):
        h = build_hierarchy()
        with pytest.raises(ValueError):
            run_smt(h.l1, [])
        with pytest.raises(ValueError):
            run_smt(h.l1, [thread([(0, 1, 0)], repeat=True)])
        with pytest.raises(ValueError):
            SmtThread(trace=[], ctx=AccessContext())
