"""The durable sweep journal: encode/decode, replay, torn tails,
checkpoint compaction.

The hypothesis round-trip suite pins the satellite requirement that
every encodable journal record decodes back exactly; the torn-tail
tests cut a real journal at *every* byte offset and assert replay
never raises and never loses a fully-durable sweep.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.journal import (
    JOURNAL_VERSION,
    JournalError,
    SweepJournal,
    decode_record,
    encode_record,
    journal_path,
)

# -- record strategies --------------------------------------------------------

sweep_ids = st.text(
    alphabet="0123456789abcdef", min_size=1, max_size=16
)
json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
)
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=12,
)
field_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12
).filter(lambda name: name not in ("record", "sweep", "v"))
records = st.fixed_dictionaries(
    {
        "record": st.sampled_from(["submitted", "started", "finished", "cancelled"]),
        "sweep": sweep_ids,
    },
    optional={
        "client": st.text(max_size=20),
        "cells": st.integers(min_value=0, max_value=4096),
        "payload": json_values,
        "state": st.sampled_from(["done", "failed", "cancelled"]),
        "t": st.floats(min_value=0, max_value=4e9),
    },
)


class TestRecordRoundTrip:
    @given(record=records)
    @settings(max_examples=200, deadline=None)
    def test_encode_decode_round_trip(self, record):
        line = encode_record(dict(record))
        assert "\n" not in line  # one record, one line — by construction
        decoded = decode_record(line)
        assert decoded == record

    @given(record=records, extra=st.dictionaries(field_names, json_values, max_size=3))
    @settings(max_examples=100, deadline=None)
    def test_extra_fields_survive(self, record, extra):
        merged = {**extra, **record}
        assert decode_record(encode_record(merged)) == merged

    def test_unknown_type_refused(self):
        with pytest.raises(JournalError):
            encode_record({"record": "exploded", "sweep": "a"})
        with pytest.raises(JournalError):
            decode_record(json.dumps({"v": JOURNAL_VERSION, "record": "exploded", "sweep": "a"}))

    def test_missing_sweep_refused(self):
        with pytest.raises(JournalError):
            encode_record({"record": "submitted"})
        with pytest.raises(JournalError):
            decode_record(json.dumps({"v": JOURNAL_VERSION, "record": "submitted"}))

    def test_unknown_version_refused(self):
        line = json.dumps({"v": JOURNAL_VERSION + 1, "record": "submitted", "sweep": "a"})
        with pytest.raises(JournalError):
            decode_record(line)

    def test_unencodable_payload_refused(self):
        with pytest.raises(JournalError):
            encode_record({"record": "submitted", "sweep": "a", "payload": object()})

    def test_non_object_line_refused(self):
        for line in ("[]", "42", '"x"', "not json at all"):
            with pytest.raises(JournalError):
                decode_record(line)


# -- replay -------------------------------------------------------------------


def make_journal(tmp_path) -> SweepJournal:
    return SweepJournal(journal_path(str(tmp_path)))


class TestReplay:
    def test_missing_file_is_empty(self, tmp_path):
        replay = make_journal(tmp_path).replay()
        assert replay.live == [] and replay.records == 0
        assert not replay.corrupt_tail

    def test_lifecycle_state_machine(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append("submitted", "aaa", client="c1", cells=2, payload={"grid": 1})
        journal.append("submitted", "bbb", client="c2", cells=3, payload={"grid": 2})
        journal.append("started", "aaa")
        journal.append("finished", "aaa", state="done")
        replay = journal.replay()
        assert replay.finished == 1
        assert [s.sweep_id for s in replay.live] == ["bbb"]
        assert replay.live[0].state == "queued"
        assert replay.live[0].payload == {"grid": 2}
        assert replay.live[0].cells == 3

    def test_interrupted_running_sweep_is_live(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append("submitted", "aaa", client="c", cells=1, payload={})
        journal.append("started", "aaa")
        replay = journal.replay()
        assert [s.state for s in replay.live] == ["running"]

    def test_submission_order_preserved(self, tmp_path):
        journal = make_journal(tmp_path)
        ids = [f"s{i:02d}" for i in range(10)]
        for sweep_id in ids:
            journal.append("submitted", sweep_id, client="c", cells=1, payload=[])
        assert [s.sweep_id for s in journal.replay().live] == ids

    def test_cancelled_is_terminal(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append("submitted", "aaa", client="c", cells=1, payload={})
        journal.append("cancelled", "aaa", reason="queue_full")
        replay = journal.replay()
        assert replay.live == [] and replay.finished == 1

    def test_submitted_without_payload_dropped(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append("submitted", "aaa", client="c", cells=1)
        replay = journal.replay()
        assert replay.live == [] and replay.dropped == 1


class TestTornWrites:
    def build(self, tmp_path) -> SweepJournal:
        journal = make_journal(tmp_path)
        journal.append("submitted", "aaa", client="c", cells=2, payload={"p": [1, 2]})
        journal.append("started", "aaa")
        journal.append("submitted", "bbb", client="c", cells=1, payload={"p": [3]})
        return journal

    def test_truncation_at_every_offset_never_raises(self, tmp_path):
        journal = self.build(tmp_path)
        with open(journal.path, "rb") as fh:
            data = fh.read()
        full = journal.replay()
        assert [s.sweep_id for s in full.live] == ["aaa", "bbb"]
        newlines = [i for i, b in enumerate(data) if b == 0x0A]
        for cut in range(len(data) + 1):
            with open(journal.path, "wb") as fh:
                fh.write(data[:cut])
            replay = journal.replay()  # must never raise
            # Every sweep whose records were fully durable (terminated
            # by a newline at or before the cut) must survive.
            durable_lines = sum(1 for offset in newlines if offset < cut)
            if durable_lines >= 3:
                assert [s.sweep_id for s in replay.live] == ["aaa", "bbb"]
            elif durable_lines >= 1:
                assert [s.sweep_id for s in replay.live] == ["aaa"]
            # A clean cut at a line boundary is not a torn tail; any
            # trailing partial line is.
            torn_bytes = cut - (max((o for o in newlines if o < cut), default=-1) + 1)
            assert replay.corrupt_tail == (cut > 0 and torn_bytes > 0)
        # restore for other assertions
        with open(journal.path, "wb") as fh:
            fh.write(data)

    def test_unterminated_tail_is_torn_even_if_it_parses(self, tmp_path):
        journal = self.build(tmp_path)
        with open(journal.path, "rb") as fh:
            data = fh.read()
        assert data.endswith(b"\n")
        with open(journal.path, "wb") as fh:
            fh.write(data[:-1])  # strip ONLY the final newline
        replay = journal.replay()
        assert replay.corrupt_tail
        # the torn 'bbb' submitted record is dropped; 'aaa' survives
        assert [s.sweep_id for s in replay.live] == ["aaa"]

    def test_midfile_corruption_skipped_and_counted(self, tmp_path):
        journal = self.build(tmp_path)
        with open(journal.path, "rb") as fh:
            lines = fh.read().splitlines(keepends=True)
        lines.insert(1, b"{[corrupt garbage}\n")
        with open(journal.path, "wb") as fh:
            fh.write(b"".join(lines))
        replay = journal.replay()
        assert replay.dropped == 1 and not replay.corrupt_tail
        assert [s.sweep_id for s in replay.live] == ["aaa", "bbb"]

    def test_unknown_version_line_skipped(self, tmp_path):
        journal = self.build(tmp_path)
        alien = json.dumps({"v": 99, "record": "submitted", "sweep": "zzz", "payload": {}})
        with open(journal.path, "ab") as fh:
            fh.write(alien.encode() + b"\n")
        replay = journal.replay()
        assert replay.dropped == 1
        assert [s.sweep_id for s in replay.live] == ["aaa", "bbb"]

    def test_append_over_torn_tail_degrades_to_one_dropped_line(self, tmp_path):
        """Appending over a torn tail merges the torn bytes with the
        next record into one corrupt line — which is exactly why boot
        recovery checkpoints (rewrites clean) before any new appends.
        Replay must still never raise and must keep durable sweeps."""
        journal = self.build(tmp_path)
        with open(journal.path, "rb") as fh:
            data = fh.read()
        with open(journal.path, "wb") as fh:
            fh.write(data[:-4])  # tear the last record
        journal.append("submitted", "ccc", client="c", cells=1, payload={})
        replay = journal.replay()
        assert not replay.corrupt_tail  # the file ends clean again
        assert replay.dropped == 1  # torn bbb + ccc merged into garbage
        assert [s.sweep_id for s in replay.live] == ["aaa"]


class TestCheckpoint:
    def test_compaction_keeps_only_live(self, tmp_path):
        journal = make_journal(tmp_path)
        for i in range(20):
            sweep_id = f"s{i:02d}"
            journal.append("submitted", sweep_id, client="c", cells=1, payload={"i": i})
            journal.append("started", sweep_id)
            if i < 17:
                journal.append("finished", sweep_id, state="done")
        before = os.path.getsize(journal.path)
        journal.checkpoint()
        after = os.path.getsize(journal.path)
        assert after < before
        replay = journal.replay()
        assert [s.sweep_id for s in replay.live] == ["s17", "s18", "s19"]
        assert all(s.state == "running" for s in replay.live)
        assert replay.finished == 0  # history gone

    def test_checkpoint_preserves_payload_and_order(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append("submitted", "bb", client="x", cells=2, payload={"grid": "B"})
        journal.append("submitted", "aa", client="y", cells=3, payload={"grid": "A"})
        journal.checkpoint()
        live = journal.replay().live
        assert [(s.sweep_id, s.payload, s.cells, s.client) for s in live] == [
            ("bb", {"grid": "B"}, 2, "x"),
            ("aa", {"grid": "A"}, 3, "y"),
        ]

    def test_auto_compaction_bounds_the_file(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.service.journal.COMPACT_THRESHOLD", 8)
        journal = make_journal(tmp_path)
        for i in range(40):
            sweep_id = f"s{i:02d}"
            journal.append("submitted", sweep_id, client="c", cells=1, payload={})
            journal.append("finished", sweep_id, state="done")
        assert journal.compactions >= 4
        with open(journal.path, "rb") as fh:
            lines = [line for line in fh.read().split(b"\n") if line]
        assert len(lines) <= 2 * 8  # bounded by the threshold, not history

    def test_stats_snapshot(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append("submitted", "aaa", client="c", cells=1, payload={})
        stats = journal.stats_snapshot()
        assert stats["appends"] == 1 and stats["compactions"] == 0
        assert stats["path"] == journal.path
