"""Figure 5: normalized storage-channel capacity vs window size.

Closed-form evaluation of Equations (7)-(8) for security-critical
regions of M = 8, 16, 64, 128 lines, window sizes normalized to M.
The paper's observations: capacity drops by more than an order of
magnitude at twice the region size, and the boundary effect is smaller
for larger regions.
"""

from _reporting import save_report

from repro.analysis.channel_capacity import figure5_series
from repro.util.tables import format_table


def test_fig5_channel_capacity(benchmark):
    series = benchmark.pedantic(figure5_series, rounds=1, iterations=1)

    for m, points in series.items():
        values = [c for _, c in points]
        # Monotone non-increasing in window size.
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))
        # Boundary effect: never exactly closed.
        assert values[-1] > 0
        # Order-of-magnitude drop by twice the region size.
        at_2m = dict(points)[2.0]
        assert at_2m < 0.15
    # Larger regions leak less (relative) at the same normalized window.
    assert dict(series[128])[2.0] < dict(series[8])[2.0]

    sizes = [x for x, _ in series[8]]
    rows = [[f"{x:.2f}"] + [f"{dict(series[m])[x]:.4f}"
                            for m in (8, 16, 64, 128)]
            for x in sizes]
    save_report("fig5_channel_capacity", format_table(
        ["window/M", "M=8", "M=16", "M=64", "M=128"], rows,
        title="Figure 5: normalized channel capacity (Eq. 7-8)"))
