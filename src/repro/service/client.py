"""Blocking HTTP client for the sweep service (stdlib only).

A thin convenience wrapper over ``http.client`` used by the end-to-end
tests, the CI smoke harness, and anyone scripting against a running
``python -m repro serve``.  One connection per call, matching the
server's ``Connection: close`` behaviour.

Error responses raise :class:`ServiceClientError` carrying the HTTP
status and the server's structured ``{"error": ...}`` payload, so a
test can assert ``error.code == "rate_limited"`` instead of string-
matching a body.

The client retries transient failures with capped exponential backoff
plus jitter (``retries=0`` opts out):

* 429/503 responses are retried for *any* method — the server refused
  the work, so nothing was done twice — and a ``retry_after_s`` hint
  in the error payload overrides the computed backoff;
* dropped connections are retried only for idempotent GETs (a POST
  might have been applied before the line died);
* :meth:`stream_events` resumes a dropped event stream from the exact
  byte offset it had reached (the ``?from=`` parameter), so every
  event is still delivered exactly once, in order.

The backoff's randomness and sleeping are injectable (``rng``,
``sleep``) so the retry tests are deterministic and instant.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from repro.service.codec import encode_sweep

#: states that end a sweep's lifecycle
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: statuses safe to retry regardless of method (the request was refused)
RETRYABLE_STATUSES = frozenset({429, 503})

#: what a dropped/reset connection surfaces as from ``http.client``
CONNECTION_ERRORS = (ConnectionError, http.client.HTTPException, TimeoutError, OSError)


class ServiceClientError(Exception):
    """A non-2xx response from the service."""

    def __init__(self, status: int, payload: Any):
        self.status = status
        self.payload = payload if isinstance(payload, dict) else {}
        error = self.payload.get("error", {})
        self.code = error.get("code", "unknown")
        super().__init__(f"HTTP {status} {self.code}: {error.get('message', payload)}")

    def retry_after_s(self) -> Optional[float]:
        """The server's ``retry_after_s`` hint, if the payload has one."""
        value = self.payload.get("error", {}).get("retry_after_s")
        try:
            return max(0.0, float(value)) if value is not None else None
        except (TypeError, ValueError):
            return None


class ServiceClient:
    """Talk to one service instance at ``host:port``.

    ``retries`` is the number of *additional* attempts after the first
    (default 2); ``backoff_s`` the base delay, doubled per attempt and
    capped at ``backoff_cap_s``, with multiplicative jitter in
    [0.5, 1.5).  ``retries=0`` restores fail-fast behaviour.
    """

    def __init__(
        self,
        host: str,
        port: int,
        client_id: Optional[str] = None,
        timeout: float = 30.0,
        retries: int = 2,
        backoff_s: float = 0.1,
        backoff_cap_s: float = 5.0,
        rng: Optional[random.Random] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout
        self.retries = max(0, retries)
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self.rng = rng if rng is not None else random.Random()
        self.sleep = sleep

    # -- plumbing ------------------------------------------------------------

    def _headers(self) -> Dict[str, str]:
        headers = {"Accept": "application/json"}
        if self.client_id is not None:
            headers["X-Repro-Client"] = self.client_id
        return headers

    def _request_once(self, method: str, path: str, body: Optional[Any] = None) -> Any:
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            headers = self._headers()
            payload = None
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            decoded = json.loads(raw.decode("utf-8")) if raw else None
            if response.status >= 400:
                raise ServiceClientError(response.status, decoded)
            return decoded
        finally:
            connection.close()

    def _backoff(self, attempt: int, hint: Optional[float] = None) -> float:
        """Delay before retry ``attempt`` (0-based): the server's hint
        when given, else capped exponential backoff with jitter."""
        if hint is not None:
            return hint
        base = min(self.backoff_cap_s, self.backoff_s * (2.0**attempt))
        return base * (0.5 + self.rng.random())

    def _request(self, method: str, path: str, body: Optional[Any] = None) -> Any:
        for attempt in range(self.retries + 1):
            last = attempt == self.retries
            try:
                return self._request_once(method, path, body)
            except ServiceClientError as error:
                if last or error.status not in RETRYABLE_STATUSES:
                    raise
                self.sleep(self._backoff(attempt, hint=error.retry_after_s()))
            except CONNECTION_ERRORS:
                # Only idempotent reads are safe to replay blind: a
                # submission might have been accepted before the
                # connection died.
                if last or method != "GET":
                    raise
                self.sleep(self._backoff(attempt))
        raise AssertionError("unreachable")  # pragma: no cover

    # -- API -----------------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/metrics")

    def submit(self, specs: Sequence[Any]) -> Dict[str, Any]:
        """Encode and submit a grid of CellSpec/LeakageCellSpec values."""
        return self.submit_payload(encode_sweep(specs))

    def submit_payload(self, payload: Any) -> Dict[str, Any]:
        """Submit an already-encoded (or deliberately malformed) body."""
        return self._request("POST", "/sweeps", body=payload)

    def sweep(self, sweep_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/sweeps/{sweep_id}")

    def cancel(self, sweep_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/sweeps/{sweep_id}")

    def results_page(self, sweep_id: str, offset: int = 0, limit: int = 256) -> Dict[str, Any]:
        return self._request("GET", f"/sweeps/{sweep_id}/results?offset={offset}&limit={limit}")

    def results(self, sweep_id: str, page_size: int = 256) -> List[Any]:
        """Every encoded cell result, fetched page by page, in order."""
        results: List[Any] = []
        offset: Optional[int] = 0
        while offset is not None:
            page = self.results_page(sweep_id, offset=offset, limit=page_size)
            results.extend(page["results"])
            offset = page["next_offset"]
        return results

    def wait(self, sweep_id: str, timeout: float = 300.0, poll_s: float = 0.05) -> Dict[str, Any]:
        """Poll until the sweep reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.sweep(sweep_id)
            if status["state"] in TERMINAL_STATES:
                return status
            if time.monotonic() > deadline:
                raise TimeoutError(f"sweep {sweep_id} still {status['state']} after {timeout}s")
            time.sleep(poll_s)

    def stream_events(
        self, sweep_id: str, follow: bool = True, from_offset: int = 0
    ) -> Iterator[Dict[str, Any]]:
        """Yield telemetry events as the server streams them.

        Holds one connection open for the duration (the server chunks
        the sweep's JSONL file and follows it until the sweep
        finishes).  When the connection drops mid-stream and retries
        are enabled, the stream resumes from the byte offset it had
        reached — the chunked payload *is* the JSONL file, so the
        offset advances by exactly the raw bytes of each line consumed
        and no event is duplicated or lost across resumes.
        """
        offset = from_offset
        attempt = 0
        while True:
            progressed = False
            try:
                for raw_size, event in self._stream_once(sweep_id, follow, offset):
                    offset += raw_size
                    progressed = True
                    yield event
                return
            except CONNECTION_ERRORS:
                # Progress resets the retry budget: a long stream may
                # legitimately drop many times over its lifetime.
                if progressed:
                    attempt = 0
                if attempt >= self.retries:
                    raise
                self.sleep(self._backoff(attempt))
                attempt += 1

    def _stream_once(self, sweep_id: str, follow: bool, from_offset: int):
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            path = f"/sweeps/{sweep_id}/events?follow={1 if follow else 0}&from={from_offset}"
            connection.request("GET", path, headers=self._headers())
            response = connection.getresponse()
            if response.status >= 400:
                raise ServiceClientError(response.status, json.loads(response.read() or b"{}"))
            # Assemble lines from read1() rather than readline():
            # HTTPResponse.readline() peeks, and the chunked peek path
            # swallows IncompleteRead — a connection dropped mid-stream
            # would masquerade as a clean EOF and silently truncate the
            # event stream.  read1() raises, so the resume loop sees it.
            buffer = b""
            while True:
                data = response.read1(65536)
                if not data:
                    return  # the terminating 0-chunk: a genuine end
                buffer += data
                while True:
                    newline = buffer.find(b"\n")
                    if newline < 0:
                        break
                    raw, buffer = buffer[: newline + 1], buffer[newline + 1 :]
                    line = raw.strip()
                    if line:
                        yield len(raw), json.loads(line.decode("utf-8"))
        finally:
            connection.close()
