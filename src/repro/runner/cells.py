"""Sweep cells: the unit of work the parallel runner distributes.

A :class:`CellSpec` is a frozen, picklable description of one
simulation point.  :func:`run_cell` is a *pure function* of the spec:
it builds a fresh scheme, derives every RNG stream deterministically
from ``spec.seed``, and obtains the workload trace through the
content-addressed trace cache — so the same spec produces bit-identical
results in-process, in a worker process, and across runs.

Experiment modules are imported lazily inside :func:`run_cell` so the
experiment modules themselves can import this package at top level
without a cycle.

The runner is open to other cell families: any picklable spec exposing
a zero-argument ``run()`` method (e.g.
:class:`repro.leakage.sweep.LeakageCellSpec`) goes through
:func:`run_cell` and the worker pool exactly like a :class:`CellSpec`.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.experiments.config import BASELINE_CONFIG, SimulatorConfig

#: cell kinds understood by :func:`run_cell`
CELL_KINDS = ("general", "crypto", "concurrent", "profile")


@dataclass(frozen=True)
class CellSpec:
    """One (scheme, benchmark, window, seed) simulation point.

    ``window`` is the ``(a, b)`` bound pair (or ``None`` for schemes
    without one) rather than a :class:`RandomFillWindow`, keeping the
    spec a plain value that pickles cheaply to worker processes.
    """

    kind: str  # one of CELL_KINDS
    scheme: str = "random_fill"
    benchmark: str = ""  # general/concurrent/profile
    window: Optional[Tuple[int, int]] = None  # (a, b)
    n_refs: int = 100_000
    message_kb: int = 32  # crypto message size
    aes_kb: int = 4  # concurrent AES stress size
    seed: int = 0
    warm: bool = True  # general: warm the L2 first
    config: SimulatorConfig = field(default=BASELINE_CONFIG)

    def __post_init__(self) -> None:
        if self.kind not in CELL_KINDS:
            known = ", ".join(CELL_KINDS)
            raise ValueError(f"unknown cell kind {self.kind!r}; known: {known}")
        # Scheme names come from the plugin registry; rejecting unknown
        # names here (with the dynamic registered list) is what turns a
        # typo'd HTTP sweep into a structured 400 instead of a worker
        # crash.  Lazy import: the registry pulls in the cache stack.
        from repro.schemes import get_scheme

        get_scheme(self.scheme, timing=True)

    def result_cache_token(self) -> str:
        """Versions of everything this cell's result depends on.

        Together with ``repr(self)`` (every spec field, including the
        full simulator config) and the runner-wide ``SIM_CODE_VERSION``
        this keys the content-addressed result cache — bump any named
        version and old entries are orphaned instead of served stale.
        Imports are deferred: the experiment modules import this module
        at top level.
        """
        from repro.experiments.perf_crypto import AES_TRACE_VERSION
        from repro.workloads.spec import GENERATOR_VERSION
        return f"gen{GENERATOR_VERSION}|aes{AES_TRACE_VERSION}"

    def batch_group_key(self):
        """Grouping key for the batch planner, or ``None`` to opt out.

        General-perf cells sharing a trace (benchmark, length, seed)
        and geometry (config, warm split) can share one decode and one
        L2 warm replay, whatever their scheme or window — scheme
        eligibility is decided per cell inside the batch.  The key is a
        pure function of spec fields: no trace is loaded at planning
        time, so a fully cached grid never touches the workload cache.
        """
        if self.kind != "general":
            return None
        return ("general", self.benchmark, self.n_refs, self.seed, self.warm, self.config)


def run_cell(spec):
    """Execute one cell; the result type depends on the spec.

    For a :class:`CellSpec`, ``spec.kind`` selects the experiment:

    * ``general`` -> :class:`SimResult` (one Figure 10 cell),
    * ``crypto`` -> :class:`SimResult` (one Figure 6/7 cell),
    * ``concurrent`` -> ``float`` IPC (one Figure 8 cell),
    * ``profile`` -> :class:`ProfileResult` (one Figure 9 benchmark).

    Any other spec must expose a zero-argument ``run()``, whose return
    value is the cell result (e.g. the leakage cells).

    Cyclic garbage collection is paused for the duration of the cell:
    the simulators allocate millions of short-lived acyclic objects per
    cell, so generation-0 scans cost ~10% of wall clock and can never
    free anything the refcounts don't.  Results are unaffected.

    When ``REPRO_CHECK`` requests checked mode
    (:mod:`repro.check`), the whole cell runs under an installed
    checker — including the chi-square finalize pass — and any
    :exc:`~repro.check.CheckViolation` is re-raised carrying the cell
    spec's repr so the failing point can be reproduced directly.
    """
    from repro.check import CheckViolation, checked_from_env

    was_enabled = gc.isenabled()
    gc.disable()
    try:
        with checked_from_env():
            try:
                return _dispatch_cell(spec)
            except CheckViolation as error:
                raise error.with_spec(repr(spec)) from None
    finally:
        if was_enabled:
            gc.enable()


def _dispatch_cell(spec):
    if not isinstance(spec, CellSpec):
        run = getattr(spec, "run", None)
        if run is None:
            raise TypeError(
                f"cell spec {type(spec).__name__} is neither a CellSpec "
                f"nor exposes a run() method"
            )
        return run()
    kind = spec.kind
    if kind == "general":
        from repro.experiments.perf_general import run_general_workload
        from repro.workloads.cache import cached_workload
        window = spec.window if spec.window is not None else (0, 0)
        trace = cached_workload(spec.benchmark, n_refs=spec.n_refs, seed=spec.seed)
        return run_general_workload(
            spec.benchmark,
            window,
            config=spec.config,
            n_refs=spec.n_refs,
            seed=spec.seed,
            scheme_name=spec.scheme,
            trace=trace,
            warm=spec.warm,
        )
    if kind == "crypto":
        from repro.core.window import RandomFillWindow
        from repro.experiments.perf_crypto import (
            cached_cbc_trace,
            run_crypto_workload,
        )
        window = RandomFillWindow(*spec.window) if spec.window is not None else None
        trace = cached_cbc_trace(message_kb=spec.message_kb, seed=spec.seed)
        return run_crypto_workload(
            spec.scheme,
            spec.config,
            window=window,
            message_kb=spec.message_kb,
            seed=spec.seed,
            trace=trace,
        )
    if kind == "concurrent":
        from repro.experiments.perf_concurrent import run_concurrent
        from repro.experiments.perf_crypto import cached_cbc_trace
        from repro.workloads.cache import cached_workload
        spec_trace = cached_workload(spec.benchmark, n_refs=spec.n_refs, seed=spec.seed)
        aes_trace = cached_cbc_trace(message_kb=spec.aes_kb, seed=spec.seed, decrypt_too=True)
        return run_concurrent(
            spec.scheme,
            spec.benchmark,
            spec.config,
            n_refs=spec.n_refs,
            aes_kb=spec.aes_kb,
            seed=spec.seed,
            spec_trace=spec_trace,
            aes_trace=aes_trace,
        )
    # kind == "profile" (guaranteed by __post_init__)
    from repro.analysis.profiling import profile_reference_ratio
    from repro.core.window import RandomFillWindow
    from repro.workloads.cache import cached_workload
    window = RandomFillWindow(*spec.window) if spec.window is not None else RandomFillWindow(16, 15)
    cfg = spec.config
    trace = cached_workload(spec.benchmark, n_refs=spec.n_refs, seed=spec.seed)
    return profile_reference_ratio(
        trace,
        window,
        l1_size=cfg.l1d_size,
        l1_assoc=cfg.l1d_assoc,
        line_size=cfg.line_size,
        seed=spec.seed,
    )
