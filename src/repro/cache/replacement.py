"""Replacement policies for set-associative tag stores.

Policies operate on one set at a time.  A set is a list of
:class:`repro.cache.tagstore.LineState` ordered however the policy likes;
the policy owns the ordering discipline.  The baseline configuration
(Table IV) uses LRU; Newcache uses random replacement internally;
FIFO is provided for ablations.

Victim selection is *lock-aware*: PLcache lines whose ``locked`` flag is
set and whose owner differs from the requester are never chosen.  If every
line in the set is unevictable the policy returns ``None`` and the
controller treats the access as a no-fill miss (the PLcache semantics).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.util.rng import HardwareRng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.cache.tagstore import LineState


class ReplacementPolicy:
    """Interface: ordering + victim choice for one cache set."""

    name = "abstract"

    def on_hit(self, cache_set: "List[LineState]", index: int) -> None:
        """Update recency state after a hit on ``cache_set[index]``."""
        raise NotImplementedError

    def on_fill(self, cache_set: "List[LineState]", line: "LineState") -> None:
        """Insert a newly filled line into the set's ordering."""
        raise NotImplementedError

    def choose_victim(
        self, cache_set: "List[LineState]", evictable: "List[int]"
    ) -> Optional[int]:
        """Pick the index to evict among ``evictable`` indices, or None."""
        raise NotImplementedError


class LruPolicy(ReplacementPolicy):
    """Least-recently-used: MRU at index 0, LRU at the end."""

    name = "lru"

    def on_hit(self, cache_set, index):
        if index != 0:
            cache_set.insert(0, cache_set.pop(index))

    def on_fill(self, cache_set, line):
        cache_set.insert(0, line)

    def choose_victim(self, cache_set, evictable):
        if not evictable:
            return None
        # Highest index among evictable lines = least recently used.
        return max(evictable)


class FifoPolicy(ReplacementPolicy):
    """First-in-first-out: insertion order only, hits do not reorder."""

    name = "fifo"

    def on_hit(self, cache_set, index):
        pass

    def on_fill(self, cache_set, line):
        cache_set.insert(0, line)

    def choose_victim(self, cache_set, evictable):
        if not evictable:
            return None
        return max(evictable)


class RandomPolicy(ReplacementPolicy):
    """Uniformly random victim among evictable lines."""

    name = "random"

    def __init__(self, rng: HardwareRng):
        self._rng = rng

    def on_hit(self, cache_set, index):
        pass

    def on_fill(self, cache_set, line):
        cache_set.append(line)

    def choose_victim(self, cache_set, evictable):
        if not evictable:
            return None
        return evictable[self._rng.draw_below(len(evictable))]


def make_policy(name: str, rng: Optional[HardwareRng] = None) -> ReplacementPolicy:
    """Factory used by configuration code (``"lru"``/``"fifo"``/``"random"``)."""
    if name == "lru":
        return LruPolicy()
    if name == "fifo":
        return FifoPolicy()
    if name == "random":
        if rng is None:
            raise ValueError("random replacement needs an rng")
        return RandomPolicy(rng)
    raise ValueError(f"unknown replacement policy: {name!r}")
