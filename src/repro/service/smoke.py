"""End-to-end HTTP smoke harness: ``python -m repro.service.smoke``.

Boots a real service (ephemeral port, isolated result store and spool
directory), then drives it over real sockets exactly like an external
client would:

1. submit a small Figure-10 grid (``POST /sweeps``),
2. stream its telemetry while it runs (``GET /sweeps/{id}/events``),
3. fetch the paginated results and pin them **bit-identical** against
   a direct in-process ``run_cells`` of the same specs,
4. re-submit the identical grid and assert the warm run is served
   entirely from the shared result store — zero cells simulated, no
   pool work — and that ``/metrics`` shows the cache hits,
5. exercise the structured failure paths: malformed spec -> 400,
   unknown codec version -> 400.

Exits non-zero on the first broken assertion.  ``--artifact PATH``
copies the per-sweep telemetry JSONL next to the working directory so
CI can upload it.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
from typing import List

from repro.runner.cells import CellSpec
from repro.runner.pool import run_cells
from repro.runner.result_cache import ResultCache
from repro.service.app import serve_in_thread
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.codec import CODEC_VERSION, encode_result, encode_spec
from repro.service.store import DiskResultStore
from repro.service.sweeps import ServiceConfig, SweepService


def smoke_grid(n_refs: int) -> List[CellSpec]:
    """A miniature Figure-10 slice: 2 benchmarks x 2 window shapes."""
    return [
        CellSpec(kind="general", benchmark=benchmark, window=window, n_refs=n_refs, seed=3)
        for benchmark in ("astar", "bzip2")
        for window in ((0, 0), (4, 3))
    ]


def check(ok: bool, what: str) -> None:
    status = "ok" if ok else "FAIL"
    print(f"  [{status}] {what}")
    if not ok:
        sys.exit(f"service smoke failed: {what}")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(prog="python -m repro.service.smoke")
    parser.add_argument(
        "--n-refs", type=int, default=8000, help="trace length per cell (default 8000)"
    )
    parser.add_argument("--artifact", default="", help="copy the per-sweep telemetry JSONL here")
    args = parser.parse_args(argv)

    workdir = tempfile.mkdtemp(prefix="repro-smoke-")
    store = DiskResultStore(ResultCache(disk_dir=f"{workdir}/results"))
    config = ServiceConfig(
        host="127.0.0.1",
        port=0,
        jobs=2,
        queue_depth=4,
        max_cells_per_request=64,
        rate=50.0,
        burst=50.0,
        spool_dir=f"{workdir}/spool",
    )
    service = SweepService(config, store=store)
    handle = serve_in_thread(config, service=service)
    client = ServiceClient(handle.host, handle.port, client_id="ci-smoke")
    print(f"service smoke against {handle.base_url}")
    try:
        check(client.healthz()["ok"], "GET /healthz")

        specs = smoke_grid(args.n_refs)
        accepted = client.submit(specs)
        sweep_id = accepted["id"]
        check(
            accepted["cells"] == len(specs),
            f"POST /sweeps accepted {len(specs)} cells (id {sweep_id})",
        )

        seen = [event["event"] for event in client.stream_events(sweep_id)]
        check(
            "sweep_submitted" in seen and "run_finish" in seen and "sweep_finish" in seen,
            f"GET /sweeps/{{id}}/events streamed {len(seen)} events "
            f"(incl. sweep_submitted/run_finish/sweep_finish)",
        )
        check(
            any(event == "sweep_start" for event in seen),
            "sweep_start (queue_wait_s) present in the stream",
        )

        status = client.wait(sweep_id, timeout=600)
        check(
            status["state"] == "done",
            f"sweep finished: {status['state']} in {status['run_seconds']:.2f}s",
        )

        over_http = client.results(sweep_id, page_size=3)
        direct = run_cells(
            specs, jobs=1, result_cache=ResultCache(disk_dir=None, use_default_disk_dir=False)
        )
        expected = [encode_result(result) for result in direct]
        check(over_http == expected, "HTTP results bit-identical to direct run_cells")

        warm = client.submit(specs)
        warm_status = client.wait(warm["id"], timeout=120)
        stats = warm_status["last_run_stats"]
        check(
            stats["result_cache_hits"] == len(specs) and stats["result_cache_misses"] == 0,
            f"warm re-submission served {len(specs)}/{len(specs)} cells from the shared store",
        )
        warm_events = [event["event"] for event in client.stream_events(warm["id"])]
        check(
            "cell_start" not in warm_events and "batch_start" not in warm_events,
            "warm re-submission scheduled zero pool work",
        )
        metrics = client.metrics()
        check(
            metrics["result_store"]["hits"] >= len(specs),
            f"/metrics reports the store hits ({metrics['result_store']['hits']})",
        )

        try:
            client.submit_payload(
                {"version": CODEC_VERSION, "cells": [{"family": "cell", "kind": "nonsense"}]}
            )
            check(False, "malformed spec rejected")
        except ServiceClientError as error:
            check(
                error.status == 400 and error.code == "invalid_spec",
                f"malformed spec -> structured 400 ({error.code})",
            )
        try:
            client.submit_payload({"version": 999, "cells": [encode_spec(specs[0])]})
            check(False, "unknown codec version rejected")
        except ServiceClientError as error:
            check(error.status == 400, "unknown codec version -> 400")

        if args.artifact:
            source = service.get(sweep_id).events_path
            shutil.copyfile(source, args.artifact)
            print(f"  telemetry artifact: {args.artifact}")
        print("service smoke ok")
    finally:
        handle.stop()


if __name__ == "__main__":
    main()
