"""Cache-occupancy channel: the attacker sees only *how many* lines.

Unlike Flush-Reload or Prime-Probe, the occupancy attacker never learns
*which* of its lines was evicted — only the aggregate count.  It primes
the whole cache with its own data, lets the victim run a
secret-dependent working set, then probes its lines and counts the
misses.  Because the observation is address-free, mapping
randomization (Newcache, RPcache) does not degrade it: every victim
fill still displaces one attacker line somewhere.  What *does* degrade
it is the random fill strategy (window collisions make the fill count a
noisy function of the working-set size) and preload+lock (the victim's
accesses all hit, so nothing is displaced).  This follows the
systematic-evaluation methodology of Chakraborty et al. and the
replacement-policy observations of Peters et al. (see PAPERS.md).

The victim here models a secret-dependent *footprint*: secret ``s`` in
``[0, M)`` touches the first ``s + 1`` lines of the protected region —
the occupancy analogue of the single secret-indexed lookup the storage
channel uses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.leakage.adapters import FunctionalScheme, resident_array
from repro.leakage.estimators import (
    JointCounts,
    conditional_guessing_entropy,
    mutual_information_bits,
)
from repro.util.rng import derive_seed

#: attacker prime lines start here (far from every victim region in use)
ATTACKER_BASE_LINE = 0xB00_0000 // 64


@dataclass
class OccupancyResult:
    """Aggregate outcome of an occupancy-channel measurement campaign."""

    trials: int
    joint: JointCounts  # secret -> {attacker miss count: trials}
    mutual_information: float  # Miller-Madow corrected, bits
    mutual_information_plugin: float
    guessing_entropy: float  # conditional on the observation

    @property
    def secret_space(self) -> int:
        return len(self.joint)


def run_occupancy_trials(
    scheme: FunctionalScheme, trials: int = 1000, seed: int = 0
) -> OccupancyResult:
    """Run the occupancy channel against one functional scheme.

    Each trial: reset the victim's lines (fresh victim run), prime the
    cache with attacker lines, let the victim touch ``secret + 1``
    region lines through the scheme's fill strategy, then count how
    many attacker lines went missing.  The (secret, miss count) pairs
    feed the shared estimators.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    store = scheme.tag_store
    attacker_ctx = scheme.attacker_ctx
    region_lines = list(scheme.region.lines)
    m = len(region_lines)
    n_prime = scheme.capacity_lines
    prime_lines = [ATTACKER_BASE_LINE + i for i in range(n_prime)]
    prime_end = ATTACKER_BASE_LINE + n_prime
    rng = random.Random(derive_seed(seed, "occupancy", scheme.name, "secrets"))
    joint = JointCounts()
    from repro.check import active_checker

    checker = active_checker()

    for _ in range(trials):
        if checker is not None:
            checker.maybe_validate_store(store, where="occupancy.tag_store")
        scheme.reset_victim()
        # Prime: top the cache back up with attacker lines (after the
        # first trial only the previously displaced ones refill).  This
        # stays a per-line loop on purpose: ``access`` on a hit updates
        # recency state, which steers the victim's later evictions, so
        # a precomputed membership mask would change results.
        for line in prime_lines:
            if not store.access(line, attacker_ctx):
                store.fill(line, attacker_ctx)
        # Victim: a secret-dependent working set.
        secret = rng.randrange(m)
        for line in region_lines[: secret + 1]:
            scheme.victim_access(line)
        # Probe: the aggregate miss count is the whole observation.
        # ``probe`` is side-effect-free in every store and each prime
        # address is resident at most once, so the per-line probe scan
        # collapses into one numpy range-membership count over the
        # store's resident-line array.
        resident = resident_array(store)
        present = int(np.count_nonzero((resident >= ATTACKER_BASE_LINE) & (resident < prime_end)))
        joint.add(secret, n_prime - present)

    return OccupancyResult(
        trials=trials,
        joint=joint,
        mutual_information=mutual_information_bits(joint),
        mutual_information_plugin=mutual_information_bits(joint, correction="none"),
        guessing_entropy=conditional_guessing_entropy(joint),
    )
