"""Benchmark reporting: merge runner timings into ``BENCH_runner.json``.

The file is a flat ``{entry_name: payload}`` JSON object so repeated
benchmark runs update their own entry without clobbering the others.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict

#: default report file, at the repository root when run from there
DEFAULT_REPORT_PATH = "BENCH_runner.json"


def load_report(path: str = DEFAULT_REPORT_PATH) -> Dict[str, dict]:
    """Current report contents (empty dict when absent or corrupt)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return {}
    return data if isinstance(data, dict) else {}


def record_bench(name: str, payload: dict, path: str = DEFAULT_REPORT_PATH) -> Dict[str, dict]:
    """Merge ``payload`` under ``name`` in the report; returns the report.

    The write is atomic (temp file + ``os.replace``) so concurrent
    benchmark processes cannot interleave partial JSON.
    """
    report = load_report(path)
    report[name] = payload
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return report
