"""Blocking HTTP client for the sweep service (stdlib only).

A thin convenience wrapper over ``http.client`` used by the end-to-end
tests, the CI smoke harness, and anyone scripting against a running
``python -m repro serve``.  One connection per call, matching the
server's ``Connection: close`` behaviour.

Error responses raise :class:`ServiceClientError` carrying the HTTP
status and the server's structured ``{"error": ...}`` payload, so a
test can assert ``error.code == "rate_limited"`` instead of string-
matching a body.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.service.codec import encode_sweep

#: states that end a sweep's lifecycle
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


class ServiceClientError(Exception):
    """A non-2xx response from the service."""

    def __init__(self, status: int, payload: Any):
        self.status = status
        self.payload = payload if isinstance(payload, dict) else {}
        error = self.payload.get("error", {})
        self.code = error.get("code", "unknown")
        super().__init__(f"HTTP {status} {self.code}: {error.get('message', payload)}")


class ServiceClient:
    """Talk to one service instance at ``host:port``."""

    def __init__(
        self,
        host: str,
        port: int,
        client_id: Optional[str] = None,
        timeout: float = 30.0,
    ):
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------------

    def _headers(self) -> Dict[str, str]:
        headers = {"Accept": "application/json"}
        if self.client_id is not None:
            headers["X-Repro-Client"] = self.client_id
        return headers

    def _request(self, method: str, path: str, body: Optional[Any] = None) -> Any:
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            headers = self._headers()
            payload = None
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            decoded = json.loads(raw.decode("utf-8")) if raw else None
            if response.status >= 400:
                raise ServiceClientError(response.status, decoded)
            return decoded
        finally:
            connection.close()

    # -- API -----------------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/metrics")

    def submit(self, specs: Sequence[Any]) -> Dict[str, Any]:
        """Encode and submit a grid of CellSpec/LeakageCellSpec values."""
        return self.submit_payload(encode_sweep(specs))

    def submit_payload(self, payload: Any) -> Dict[str, Any]:
        """Submit an already-encoded (or deliberately malformed) body."""
        return self._request("POST", "/sweeps", body=payload)

    def sweep(self, sweep_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/sweeps/{sweep_id}")

    def cancel(self, sweep_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/sweeps/{sweep_id}")

    def results_page(self, sweep_id: str, offset: int = 0, limit: int = 256) -> Dict[str, Any]:
        return self._request("GET", f"/sweeps/{sweep_id}/results?offset={offset}&limit={limit}")

    def results(self, sweep_id: str, page_size: int = 256) -> List[Any]:
        """Every encoded cell result, fetched page by page, in order."""
        results: List[Any] = []
        offset: Optional[int] = 0
        while offset is not None:
            page = self.results_page(sweep_id, offset=offset, limit=page_size)
            results.extend(page["results"])
            offset = page["next_offset"]
        return results

    def wait(self, sweep_id: str, timeout: float = 300.0, poll_s: float = 0.05) -> Dict[str, Any]:
        """Poll until the sweep reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.sweep(sweep_id)
            if status["state"] in TERMINAL_STATES:
                return status
            if time.monotonic() > deadline:
                raise TimeoutError(f"sweep {sweep_id} still {status['state']} after {timeout}s")
            time.sleep(poll_s)

    def stream_events(
        self, sweep_id: str, follow: bool = True, from_offset: int = 0
    ) -> Iterator[Dict[str, Any]]:
        """Yield telemetry events as the server streams them.

        Holds one connection open for the duration (the server chunks
        the sweep's JSONL file and follows it until the sweep
        finishes).
        """
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            path = f"/sweeps/{sweep_id}/events?follow={1 if follow else 0}&from={from_offset}"
            connection.request("GET", path, headers=self._headers())
            response = connection.getresponse()
            if response.status >= 400:
                raise ServiceClientError(response.status, json.loads(response.read() or b"{}"))
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if not line:
                    continue
                yield json.loads(line.decode("utf-8"))
        finally:
            connection.close()
