"""Hardware prefetchers used for the Section VII comparison."""

from repro.prefetch.tagged import TaggedPrefetchPolicy, build_tagged_prefetch_l1

__all__ = ["TaggedPrefetchPolicy", "build_tagged_prefetch_l1"]
