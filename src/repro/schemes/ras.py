"""Random-and-Safe (RaS): no demand fill + decoy fills for secure loads.

RaS (arXiv 2309.16172, the direct Princeton successor to the random
fill cache) serves security-critical misses *without* installing the
demand line, and instead issues a decoy fill for a random line drawn
from the protected ("safe") region — so the cache-state change an
attacker can observe is independent of the address the victim touched.
Where the random fill window draws from a neighbourhood around the
demand address (leaking a windowed distribution, Eq. 7), RaS draws
uniformly over the whole protected region, taking the window limit
``W -> M`` in one step.

Two faces, matching the two halves of a :class:`SchemeSpec`:

* :class:`RandomAndSafeFill` — the functional victim model the leakage
  channels drive (mirrors
  :class:`repro.analysis.hit_probability.FunctionalRandomFillCache`);
* :class:`RandomAndSafePolicy` — the timing fill policy: protected
  misses forward NOFILL and queue one decoy fill, everything else is
  plain demand fetch.
"""

from __future__ import annotations

from typing import Sequence

from repro.cache.context import AccessContext
from repro.cache.controller import FillPolicy, MissPlan, NORMAL_PLAN
from repro.cache.mshr import RequestType
from repro.cache.tagstore import TagStore
from repro.util.rng import HardwareRng


class RandomAndSafeFill:
    """Hit/miss-only victim model: miss -> one uniform in-region decoy fill.

    The demand line is never installed.  Drop-in replacement for
    ``FunctionalRandomFillCache`` on the leakage channels' victim side.
    """

    def __init__(
        self,
        tag_store: TagStore,
        region_lines: Sequence[int],
        rng: HardwareRng,
        ctx: AccessContext,
    ):
        if not region_lines:
            raise ValueError("random_and_safe needs a non-empty protected region")
        self.tag_store = tag_store
        self.region_lines = tuple(region_lines)
        self.rng = rng
        self.ctx = ctx

    def access_line(self, line_addr: int) -> bool:
        """One victim access; returns hit/miss and applies the decoy fill."""
        if self.tag_store.access(line_addr, self.ctx):
            return True
        decoy = self.region_lines[self.rng.draw_below(len(self.region_lines))]
        if not self.tag_store.probe(decoy, self.ctx):
            self.tag_store.fill(decoy, self.ctx)
        return False


class RandomAndSafePolicy(FillPolicy):
    """Timing policy: NOFILL + one decoy fill for protected misses."""

    def __init__(self, protected, rng: HardwareRng):
        self.protected = protected
        self.rng = rng
        self._region_lines = tuple(
            line for region in protected for line in region.lines
        )
        if not self._region_lines:
            raise ValueError("random_and_safe needs a non-empty protected region")
        # Reused across misses, like RandomFillPolicy: the controller
        # consumes each plan before asking for the next.
        self._nofill_plan = MissPlan(RequestType.NOFILL)

    def on_miss(self, line_addr: int, ctx: AccessContext) -> MissPlan:
        if not self.protected.contains_line(line_addr):
            return NORMAL_PLAN
        decoy = self._region_lines[self.rng.draw_below(len(self._region_lines))]
        plan = self._nofill_plan
        plan.random_fill_lines = (decoy,)
        return plan
