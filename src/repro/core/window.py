"""Random fill window: the neighborhood ``[i - a, i + b]`` of Section IV.

A window is described by its two non-negative bounds ``a`` (lines before
the demand miss) and ``b`` (lines after).  The paper exposes two
configuration flavours (Table II):

* ``set_RR(a, b)`` — arbitrary bounds held directly in range registers
  RR1/RR2;
* ``set_window(lowerBound, n)`` — the Figure 4 optimization, where the
  window size is constrained to ``2**n`` so the bounded random number is
  a mask-and-add instead of a general modulo.

``RandomFillWindow`` is an immutable value object; the hardware-register
encoding (8-bit two's complement lower bound + mask) lives in
:func:`encode_range_registers` / :func:`decode_range_registers` so the
Figure 4 datapath can be modelled and tested bit-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass


#: Width of the range registers and the RNG in Figure 4.
REGISTER_WIDTH = 8


@dataclass(frozen=True)
class RandomFillWindow:
    """Neighborhood window ``[i - a, i + b]`` around a demand miss ``i``."""

    a: int
    b: int

    def __post_init__(self) -> None:
        if self.a < 0 or self.b < 0:
            raise ValueError(f"window bounds must be non-negative: a={self.a}, b={self.b}")
        limit = 1 << (REGISTER_WIDTH - 1)
        if self.a > limit or self.b >= limit:
            raise ValueError(
                f"window [{-self.a}, {self.b}] exceeds {REGISTER_WIDTH}-bit "
                f"range registers"
            )

    @property
    def size(self) -> int:
        """Number of candidate lines, ``W = a + b + 1``."""
        return self.a + self.b + 1

    @property
    def disabled(self) -> bool:
        """Zero registers disable random fill (demand fetch behaviour)."""
        return self.a == 0 and self.b == 0

    @property
    def is_power_of_two(self) -> bool:
        return self.size & (self.size - 1) == 0

    def contains_offset(self, offset: int) -> bool:
        """True if ``i + offset`` is inside the window of ``i``."""
        return -self.a <= offset <= self.b

    def covers_table(self, table_lines: int) -> bool:
        """Security condition of Section V-A: ``a, b >= M - 1``.

        When true, any pair of accesses within an ``M``-line table has
        ``P1 - P2 = 0`` — the timing channel is completely closed.
        """
        return self.a >= table_lines - 1 and self.b >= table_lines - 1

    # -- constructors ------------------------------------------------------

    @classmethod
    def disabled_window(cls) -> "RandomFillWindow":
        return DISABLED_WINDOW

    @classmethod
    def from_pow2(cls, lower_bound: int, n: int) -> "RandomFillWindow":
        """The ``set_window(lowerBound, n)`` form: size ``2**n``.

        ``lower_bound`` is ``-a`` (non-positive); ``b`` follows from
        ``a + b + 1 = 2**n``.
        """
        if lower_bound > 0:
            raise ValueError(f"lower bound must be <= 0, got {lower_bound}")
        if n < 0:
            raise ValueError(f"window exponent must be >= 0, got {n}")
        a = -lower_bound
        b = (1 << n) - 1 - a
        if b < 0:
            raise ValueError(
                f"window size 2**{n} too small for lower bound {lower_bound}"
            )
        return cls(a, b)

    @classmethod
    def forward(cls, size: int) -> "RandomFillWindow":
        """Forward-only window ``[i, i + size - 1]`` (Figure 10's [0, b])."""
        if size < 1:
            raise ValueError(f"window size must be >= 1, got {size}")
        return cls(0, size - 1)

    @classmethod
    def bidirectional(cls, size: int) -> "RandomFillWindow":
        """Bidirectional window ``[i - size/2, i + size/2 - 1]``.

        This is the form the security evaluation uses ("the randomized
        table lookups ... do not favor the forward direction over the
        backward direction, so a bidirectional random fill window has the
        best security", Section V-A).  ``size`` must be a power of two
        >= 2; size 1 degrades to the disabled/demand-fetch window.
        """
        if size == 1:
            return cls(0, 0)
        if size < 2 or size & (size - 1):
            raise ValueError(f"bidirectional window size must be a power of two, got {size}")
        half = size // 2
        return cls(half, half - 1)


#: Shared disabled-window instance.  ``RandomFillWindow`` is immutable,
#: so the zero window can be a singleton — the random fill engine asks
#: for it on every miss of a thread with cleared range registers.
DISABLED_WINDOW = RandomFillWindow(0, 0)


def validate_window(window: RandomFillWindow,
                    capacity_lines: "int | None" = None,
                    where: str = "window") -> RandomFillWindow:
    """Reject window configurations the hardware could not honour.

    ``RandomFillWindow.__post_init__`` already enforces non-negative
    bounds and the 8-bit register range; this adds the checks that need
    context the value object does not have:

    * a window of ``W = a + b + 1`` candidate lines larger than the
      cache it fills (``capacity_lines``) guarantees every random fill
      displaces a line the window itself just filled — a
      misconfiguration, not a security setting;

    raising :exc:`ValueError` with the offending numbers.  Returns the
    window so call sites can validate inline.
    """
    if capacity_lines is not None and window.size > capacity_lines:
        raise ValueError(
            f"{where}: window [{-window.a}, {window.b}] spans "
            f"{window.size} candidate lines but the cache holds only "
            f"{capacity_lines}; shrink the window or enlarge the cache")
    return window


def encode_range_registers(window: RandomFillWindow) -> "tuple[int, int]":
    """Encode a window into (RR1, RR2) as in Figure 4.

    RR1 holds the lower bound ``-a`` in two's complement; RR2 holds the
    window-size mask ``2**n - 1`` for power-of-two windows, or ``b``
    directly otherwise (the unoptimized ``set_RR`` encoding).
    """
    mask = (1 << REGISTER_WIDTH) - 1
    rr1 = (-window.a) & mask
    rr2 = (window.size - 1) if window.is_power_of_two else window.b
    return rr1, rr2 & mask


def decode_range_registers(rr1: int, rr2: int,
                           pow2: bool = True) -> RandomFillWindow:
    """Inverse of :func:`encode_range_registers`."""
    mask = (1 << REGISTER_WIDTH) - 1
    rr1 &= mask
    # Sign-extend the two's-complement lower bound.
    a = (1 << REGISTER_WIDTH) - rr1 if rr1 > (mask >> 1) else -rr1
    if a < 0:
        raise ValueError("RR1 encodes a positive lower bound")
    if pow2:
        size = (rr2 & mask) + 1
        if size & (size - 1):
            raise ValueError(
                f"RR2 0b{rr2 & mask:b} is not a window-size mask: the "
                f"Figure 4 mask-and-add datapath needs a power-of-two "
                f"window, got size {size} (use pow2=False for the "
                f"general set_RR encoding)")
        return RandomFillWindow(a, size - 1 - a)
    return RandomFillWindow(a, rr2 & mask)
