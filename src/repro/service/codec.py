"""Versioned JSON codec for sweep specs (and cell results).

The HTTP API transports :class:`~repro.runner.cells.CellSpec` and
:class:`~repro.leakage.sweep.LeakageCellSpec` grids as JSON.  Both spec
families are frozen dataclasses whose ``repr`` keys the content-
addressed result cache, so the codec's contract is stronger than
"parses back":

    ``decode_spec(encode_spec(spec)) == spec``  (field-for-field), and
    therefore produces the *identical* result-cache fingerprint.

That round trip is pinned by a test; it is what lets a warm grid
submitted over HTTP be served entirely from the shared
:class:`~repro.service.store.ResultStore` without re-simulating.

Every payload carries an explicit ``version``.  Decoding rejects a
missing or unknown version — and any malformed field — with
:class:`SpecValidationError`, which the HTTP layer surfaces as a
structured 400.  Bump :data:`CODEC_VERSION` when the wire shape
changes; old clients then get a clear error instead of a silently
misparsed grid.

Results travel one way (server -> client) and are encoded structurally
(:func:`encode_result`): known result dataclasses become tagged JSON
objects, scalars pass through, anything else falls back to ``repr``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import BASELINE_CONFIG, SimulatorConfig
from repro.leakage.sweep import LeakageCellResult, LeakageCellSpec
from repro.memory.dram import DramConfig
from repro.runner.cells import CellSpec

#: the spec wire-format version this server speaks
CODEC_VERSION = 1

#: spec families the codec understands: family tag -> dataclass
SPEC_FAMILIES = {"cell": CellSpec, "leakage": LeakageCellSpec}


class SpecValidationError(ValueError):
    """A sweep payload failed validation; ``.detail`` says where."""

    def __init__(self, message: str, cell_index: Optional[int] = None):
        self.detail = message
        self.cell_index = cell_index
        where = f"cells[{cell_index}]: " if cell_index is not None else ""
        super().__init__(f"{where}{message}")


# -- encoding -----------------------------------------------------------------


def _encode_value(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_encode_value(item) for item in value]
    return value


def encode_config(config: SimulatorConfig) -> Dict[str, Any]:
    payload = dataclasses.asdict(config)
    payload["dram"] = dataclasses.asdict(config.dram)
    return payload


def encode_spec(spec: Any) -> Dict[str, Any]:
    """One spec as a plain-JSON dict (with its ``family`` tag)."""
    if isinstance(spec, CellSpec):
        payload: Dict[str, Any] = {"family": "cell"}
        for field in dataclasses.fields(CellSpec):
            value = getattr(spec, field.name)
            if field.name == "config":
                payload["config"] = encode_config(value)
            else:
                payload[field.name] = _encode_value(value)
        return payload
    if isinstance(spec, LeakageCellSpec):
        payload = {"family": "leakage"}
        for field in dataclasses.fields(LeakageCellSpec):
            payload[field.name] = _encode_value(getattr(spec, field.name))
        return payload
    raise SpecValidationError(f"cannot encode spec of type {type(spec).__name__}")


def encode_sweep(specs: Sequence[Any]) -> Dict[str, Any]:
    """A whole grid as a ``POST /sweeps`` request body."""
    return {
        "version": CODEC_VERSION,
        "cells": [encode_spec(spec) for spec in specs],
    }


# -- decoding -----------------------------------------------------------------


def _require_int(payload: Dict, key: str, index: Optional[int]) -> Any:
    value = payload[key]
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecValidationError(f"field {key!r} must be an integer, got {value!r}", index)
    return value


def _check_types(payload: Dict, fields, index: Optional[int]) -> None:
    for field in fields:
        if field.name not in payload:
            continue
        value = payload[field.name]
        if field.type in ("int", int):
            _require_int(payload, field.name, index)
        elif field.type in ("bool", bool) and not isinstance(value, bool):
            raise SpecValidationError(
                f"field {field.name!r} must be a boolean, got {value!r}",
                index,
            )
        elif field.type in ("str", str) and not isinstance(value, str):
            raise SpecValidationError(
                f"field {field.name!r} must be a string, got {value!r}",
                index,
            )


def _decode_window(value: Any, index: Optional[int]) -> Optional[Tuple[int, int]]:
    if value is None:
        return None
    if (
        not isinstance(value, (list, tuple))
        or len(value) != 2
        or any(isinstance(bound, bool) or not isinstance(bound, int) for bound in value)
    ):
        raise SpecValidationError(
            f"'window' must be null or a [a, b] pair of integers, got {value!r}",
            index,
        )
    return (value[0], value[1])


def _decode_config(value: Any, index: Optional[int]) -> SimulatorConfig:
    if value is None:
        return BASELINE_CONFIG
    if not isinstance(value, dict):
        raise SpecValidationError(f"'config' must be an object, got {value!r}", index)
    payload = dict(value)
    dram_payload = payload.pop("dram", None)
    known = {field.name for field in dataclasses.fields(SimulatorConfig)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise SpecValidationError(f"unknown config fields: {', '.join(unknown)}", index)
    try:
        dram = DramConfig(**dram_payload) if dram_payload is not None else DramConfig()
        return SimulatorConfig(**payload, dram=dram)
    except (TypeError, ValueError) as error:
        raise SpecValidationError(f"bad config: {error}", index) from None


def decode_spec(payload: Any, index: Optional[int] = None) -> Any:
    """One spec dict back into its frozen dataclass (validated)."""
    if not isinstance(payload, dict):
        raise SpecValidationError(
            f"each cell must be an object, got {type(payload).__name__}",
            index,
        )
    payload = dict(payload)
    family = payload.pop("family", None)
    if family not in SPEC_FAMILIES:
        known = ", ".join(sorted(SPEC_FAMILIES))
        raise SpecValidationError(f"unknown spec family {family!r}; known: {known}", index)
    spec_cls = SPEC_FAMILIES[family]
    fields = dataclasses.fields(spec_cls)
    known_fields = {field.name for field in fields}
    unknown = sorted(set(payload) - known_fields)
    if unknown:
        raise SpecValidationError(f"unknown {family} spec fields: {', '.join(unknown)}", index)
    if "window" in payload:
        payload["window"] = _decode_window(payload["window"], index)
    if family == "cell":
        if "config" in payload:
            payload["config"] = _decode_config(payload["config"], index)
    else:
        if "curve_points" in payload:
            points = payload["curve_points"]
            if not isinstance(points, (list, tuple)):
                raise SpecValidationError(
                    f"'curve_points' must be a list of integers, got {points!r}",
                    index,
                )
            if any(isinstance(p, bool) or not isinstance(p, int) for p in points):
                raise SpecValidationError(
                    f"'curve_points' must be a list of integers, got {points!r}",
                    index,
                )
            payload["curve_points"] = tuple(points)
    _check_types(payload, fields, index)
    try:
        return spec_cls(**payload)
    except (TypeError, ValueError) as error:
        raise SpecValidationError(str(error), index) from None


def decode_sweep(payload: Any) -> List[Any]:
    """A ``POST /sweeps`` body back into a list of specs.

    Validates the envelope (codec version, ``cells`` list) and every
    cell; any problem raises :class:`SpecValidationError` naming the
    offending cell.
    """
    if not isinstance(payload, dict):
        raise SpecValidationError("request body must be a JSON object")
    version = payload.get("version")
    if version is None:
        raise SpecValidationError(
            f"missing spec codec 'version' (this server speaks version {CODEC_VERSION})"
        )
    if version != CODEC_VERSION:
        raise SpecValidationError(
            f"unknown spec codec version {version!r} (this server speaks version {CODEC_VERSION})"
        )
    cells = payload.get("cells")
    if not isinstance(cells, list) or not cells:
        raise SpecValidationError("'cells' must be a non-empty list")
    return [decode_spec(cell, index=i) for i, cell in enumerate(cells)]


# -- results ------------------------------------------------------------------


def encode_result(result: Any) -> Dict[str, Any]:
    """One cell result as a tagged JSON object.

    The encoding is *structural and deterministic*: two bit-identical
    results encode to equal JSON, which is how the end-to-end test pins
    HTTP-fetched results against a direct ``run_cells`` call.
    """
    if isinstance(result, LeakageCellResult):
        return {"type": "LeakageCellResult", **result.to_json()}
    if isinstance(result, (int, float)) and not isinstance(result, bool):
        return {"type": "scalar", "value": result}
    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        return {
            "type": type(result).__name__,
            **{key: _encode_value(value) for key, value in dataclasses.asdict(result).items()},
        }
    return {"type": type(result).__name__, "repr": repr(result)}
