"""Tests for the Eff(d) reference-ratio profiler (Figure 9)."""

from repro.analysis.profiling import profile_reference_ratio
from repro.core.window import RandomFillWindow
from repro.workloads.synthetic import locality_mixture, streaming

BASE = 0x100_0000


class TestProfiler:
    def test_eff_bounded(self):
        trace = streaming(5000, BASE, 100000, seed=1)
        profile = profile_reference_ratio(trace, RandomFillWindow(16, 16))
        for d, eff in profile.series():
            assert 0.0 <= eff <= 1.0
            assert -16 <= d <= 16

    def test_forward_stream_has_forward_locality(self):
        trace = streaming(20000, BASE, 100000, refs_per_line=4, seed=2)
        profile = profile_reference_ratio(trace, RandomFillWindow(16, 16))
        forward = sum(profile.eff(d) for d in range(1, 9))
        backward = sum(profile.eff(d) for d in range(-8, 0))
        assert forward > backward

    def test_narrow_locality_peaks_near_zero(self):
        trace = locality_mixture(20000, BASE, 2048, 64, 0.4, 0.4, 2,
                                 refs_per_line=2, seed=3)
        profile = profile_reference_ratio(trace, RandomFillWindow(16, 16))
        near = max(profile.eff(d) for d in (-2, -1, 0, 1, 2))
        far = max((profile.eff(d) for d in (-16, -15, 14, 15, 16)),
                  default=0.0)
        assert near > far

    def test_demand_window_tags_offset_zero(self):
        trace = streaming(2000, BASE, 100000, seed=4)
        profile = profile_reference_ratio(trace, RandomFillWindow(0, 0))
        assert set(profile.fetched) == {0}
        assert profile.eff(0) > 0.5  # stream re-references its lines

    def test_unfetched_offset_eff_zero(self):
        trace = streaming(100, BASE, 100000, seed=5)
        profile = profile_reference_ratio(trace, RandomFillWindow(1, 1))
        assert profile.eff(12) == 0.0

    def test_fetch_counts_match_series(self):
        trace = streaming(3000, BASE, 100000, seed=6)
        profile = profile_reference_ratio(trace, RandomFillWindow(4, 4))
        assert sum(profile.fetched.values()) >= \
            sum(profile.referenced.values())
