"""Non-blocking cache miss queue (MSHR file).

Models the structure Figure 3 extends: each entry records the missing
line address, when its data returns, and — the paper's addition — the
*request type* field that decides whether the returned line fills the
cache (``NORMAL``/``RANDOM_FILL``) or is only forwarded to the processor
(``NOFILL``).  Table IV gives 4 entries.

The queue is drained lazily: callers invoke :meth:`drain` with the
current cycle before touching the tag store, and completed entries whose
type fills the cache are installed then.  Requests to a line already in
flight merge into the existing entry (they are *not* new misses for MPKI
purposes — Section VII's MPKI definition excludes them).
"""

from __future__ import annotations

import operator
from enum import Enum
from typing import Callable, Dict, Optional

from repro.cache.context import AccessContext


class RequestType(Enum):
    """Miss-queue request types (Section IV-B.1)."""

    NORMAL = "normal"            # demand fetch: fill cache + data to CPU
    NOFILL = "nofill"            # data to CPU, no cache fill
    RANDOM_FILL = "random_fill"  # cache fill only, no data to CPU


class MissEntry:
    """One in-flight miss."""

    __slots__ = ("line_addr", "complete_at", "request_type", "ctx")

    def __init__(self, line_addr: int, complete_at: int,
                 request_type: RequestType, ctx: AccessContext):
        self.line_addr = line_addr
        self.complete_at = complete_at
        self.request_type = request_type
        self.ctx = ctx

    @property
    def fills_cache(self) -> bool:
        return self.request_type is not RequestType.NOFILL


FillCallback = Callable[[int, AccessContext], None]

#: sort key for retiring entries in completion order
_by_completion = operator.attrgetter("complete_at")


class MissQueue:
    """Fixed-capacity MSHR file with merge and lazy drain."""

    #: ``next_completion`` when the queue is empty — later than any
    #: reachable simulation cycle, so ``now >= next_completion`` is a
    #: single-comparison "anything to drain?" test on the hot path.
    NEVER = (1 << 62)

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: Dict[int, MissEntry] = {}
        # Cached min(complete_at) over entries; maintained by allocate/
        # drain/flush (merges and type upgrades never change complete_at).
        self.next_completion = self.NEVER

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def lookup(self, line_addr: int) -> Optional[MissEntry]:
        """Outstanding entry for this line, if any (merge check)."""
        return self._entries.get(line_addr)

    def earliest_completion(self) -> int:
        """Cycle the next entry completes; queue must be non-empty."""
        if not self._entries:
            raise ValueError("earliest_completion() on empty miss queue")
        return self.next_completion

    def allocate(self, line_addr: int, complete_at: int,
                 request_type: RequestType, ctx: AccessContext) -> MissEntry:
        """Insert a new entry; caller must have checked ``full``."""
        if self.full:
            raise RuntimeError("miss queue overflow — drain or stall first")
        if line_addr in self._entries:
            raise RuntimeError(f"duplicate miss entry for line 0x{line_addr:x}")
        entry = MissEntry(line_addr, complete_at, request_type, ctx)
        self._entries[line_addr] = entry
        if complete_at < self.next_completion:
            self.next_completion = complete_at
        return entry

    def drain(self, now: int, fill_callback: FillCallback) -> int:
        """Retire entries completed by cycle ``now``.

        Entries whose request type fills the cache are handed to
        ``fill_callback`` in completion order.  Returns the number of
        entries retired.
        """
        entries = self._entries
        if now < self.next_completion:
            return 0
        done = [e for e in entries.values() if e.complete_at <= now]
        if len(done) > 1:
            done.sort(key=_by_completion)
        for entry in done:
            del entries[entry.line_addr]
            if entry.request_type is not RequestType.NOFILL:
                fill_callback(entry.line_addr, entry.ctx)
        nxt = self.NEVER
        for entry in entries.values():
            if entry.complete_at < nxt:
                nxt = entry.complete_at
        self.next_completion = nxt
        return len(done)

    def flush(self) -> None:
        """Discard all in-flight entries (used when resetting state)."""
        self._entries.clear()
        self.next_completion = self.NEVER
