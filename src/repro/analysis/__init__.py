"""Security and locality analyses: P1-P2, channel capacity, Eff(d)."""

from repro.analysis.channel_capacity import (
    channel_capacity_bits,
    demand_fetch_capacity_bits,
    figure5_series,
    normalized_capacity,
    transition_probability,
)
from repro.analysis.hit_probability import (
    FunctionalRandomFillCache,
    P1P2Result,
    monte_carlo_p1_p2,
    newcache_tag_store_factory,
    sa_tag_store_factory,
)
from repro.analysis.profiling import ProfileResult, profile_reference_ratio

__all__ = [
    "FunctionalRandomFillCache",
    "P1P2Result",
    "ProfileResult",
    "channel_capacity_bits",
    "demand_fetch_capacity_bits",
    "figure5_series",
    "monte_carlo_p1_p2",
    "newcache_tag_store_factory",
    "normalized_capacity",
    "profile_reference_ratio",
    "sa_tag_store_factory",
    "transition_probability",
]
