"""Tests for the simulator configuration (Table IV)."""

import pytest

from repro.experiments.config import BASELINE_CONFIG, bench_scale, scaled


class TestTableIV:
    def test_baseline_values(self):
        cfg = BASELINE_CONFIG
        assert cfg.issue_width == 4
        assert cfg.l2_size == 2 * 1024 * 1024
        assert cfg.l2_assoc == 8
        assert cfg.line_size == 64
        assert cfg.replacement == "lru"
        assert cfg.mshr_entries == 4
        assert cfg.l1_hit_latency == 1
        assert cfg.l2_hit_latency == 20

    def test_with_l1d(self):
        cfg = BASELINE_CONFIG.with_l1d(8 * 1024, 1)
        assert (cfg.l1d_size, cfg.l1d_assoc) == (8 * 1024, 1)
        assert cfg.l2_size == BASELINE_CONFIG.l2_size

    def test_attacker_favoring(self):
        cfg = BASELINE_CONFIG.attacker_favoring()
        assert cfg.mshr_entries == 1
        assert cfg.overlap_credit == 0

    def test_frozen(self):
        with pytest.raises(Exception):
            BASELINE_CONFIG.l1d_size = 1


class TestScaling:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == 1.0
        assert scaled(100) == 100

    def test_env_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        assert scaled(100) == 50

    def test_minimum(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.001")
        assert scaled(100, minimum=10) == 10

    def test_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "-1")
        with pytest.raises(ValueError):
            bench_scale()
