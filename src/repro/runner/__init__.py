"""Parallel experiment runner.

The paper's evaluation is a grid of independent simulation *cells* —
(scheme, benchmark, window, seed) combinations that share no state.
This package turns a figure sweep into an explicit list of picklable
:class:`CellSpec` values and fans them over worker processes:

* :mod:`repro.runner.cells` — the cell vocabulary and the pure
  ``run_cell`` function every worker executes,
* :mod:`repro.runner.pool` — ``run_cells`` (supervised, ordered
  fan-out over a ``ProcessPoolExecutor``: per-cell retry with backoff,
  ``REPRO_CELL_TIMEOUT`` enforcement, crash recovery with pool
  restarts and inline fallback) plus the ``REPRO_JOBS`` /
  ``REPRO_CELL_RETRIES`` knobs,
* :mod:`repro.runner.batch` — batch planning and execution: pending
  cells sharing a ``batch_group_key()`` are grouped so one trace
  decode serves the whole group (``--batch/--no-batch``,
  ``REPRO_BATCH``), and eligible general-perf cells advance together
  as lanes of one kernel call (``--lanes``, ``REPRO_LANES``); a
  failed batch splits back to supervised per-cell retries,
* :mod:`repro.runner.telemetry` — JSONL event log of a run (cell
  start/finish/retry/timeout, pool restarts) and the live progress
  line behind ``--telemetry`` / the CLI,
* :mod:`repro.runner.jobs` — the non-blocking job-handle layer the
  sweep service uses: ``JobRunner.submit`` queues a grid on a bounded
  FIFO drained by one executor thread, returning a ``JobHandle`` with
  ``poll()`` / ``cancel()`` / ``result()``,
* :mod:`repro.runner.result_cache` — the content-addressed per-cell
  result cache that makes re-run sweeps incremental,
* :mod:`repro.runner.profiler` — ``--profile`` support: run one cell
  under cProfile and print the top cumulative hotspots,
* :mod:`repro.runner.report` — merge wall-clock / throughput numbers
  into ``BENCH_runner.json``.

Because ``run_cell`` is a pure function of its spec (fresh scheme,
deterministically derived RNG seeds, trace regenerated or loaded from
the content-addressed trace cache), a sweep's results are bit-identical
whether it runs inline, across 2 workers, or across 32 — and the result
cache can key a cell's result on a fingerprint of spec + code versions.
"""

from repro.runner.batch import (
    BatchItem,
    CellBatch,
    plan_batches,
    resolve_batch,
    resolve_lanes,
    run_batch,
)
from repro.runner.cells import CellSpec, run_cell
from repro.runner.jobs import JobHandle, JobQueueFull, JobRunner
from repro.runner.pool import (
    CellTimeoutError,
    last_run_stats,
    resolve_cell_retries,
    resolve_cell_timeout,
    resolve_jobs,
    run_cells,
    run_context,
)
from repro.runner.profiler import profile_batch, profile_cell
from repro.runner.report import record_bench
from repro.runner.result_cache import RESULT_CACHE, ResultCache
from repro.runner.telemetry import (
    Telemetry,
    read_events,
    read_events_incremental,
)

__all__ = [
    "BatchItem",
    "CellBatch",
    "CellSpec",
    "CellTimeoutError",
    "JobHandle",
    "JobQueueFull",
    "JobRunner",
    "RESULT_CACHE",
    "ResultCache",
    "Telemetry",
    "last_run_stats",
    "plan_batches",
    "profile_batch",
    "profile_cell",
    "read_events",
    "read_events_incremental",
    "record_bench",
    "resolve_batch",
    "resolve_cell_retries",
    "resolve_cell_timeout",
    "resolve_jobs",
    "resolve_lanes",
    "run_batch",
    "run_cell",
    "run_cells",
    "run_context",
]
