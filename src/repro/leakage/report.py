"""Leakage report: table formatting, validation, ``BENCH_leakage.json``.

The report layer turns a list of :class:`LeakageCellResult` into

* a human-readable table (the CLI output),
* a validation block checking the empirical estimates against the
  analytic Section V-B theory (the acceptance tests of the subsystem),
* the ``BENCH_leakage.json`` file, written atomically through the
  shared :func:`repro.runner.report.record_bench`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.leakage.sweep import LeakageCellResult
from repro.runner.report import record_bench
from repro.util.tables import format_table

#: default report file, next to ``BENCH_runner.json`` at the repo root
DEFAULT_LEAKAGE_REPORT = "BENCH_leakage.json"

#: |empirical - analytic| tolerance for the Eq. 7 reference channel.
#: Miller-Madow removes the first-order bias; what remains is sampling
#: noise plus the O(1/N^2) residual, comfortably inside 0.12 bits at
#: the default 6000 trials for every Table III window.
EQ7_TOLERANCE_BITS = 0.12

#: slack allowed when checking the cache channels against their bound
#: (finite-sample estimates may exceed a capacity slightly)
BOUND_SLACK_BITS = 0.15


def leakage_rows(results: Sequence[LeakageCellResult]) -> List[List[str]]:
    """Rows of the per-cell summary table, in result order."""
    rows = []
    for r in results:
        analytic = f"{r.analytic_bits:.3f}" if r.analytic_bits is not None else "-"
        n90 = (
            str(r.n_to_success_90)
            if r.n_to_success_90 is not None
            else f">{r.success_curve[-1][0]}"
        )
        rows.append(
            [
                r.channel,
                r.scheme,
                str(r.window_size),
                str(r.seed),
                f"{r.mi_bits:.3f}",
                analytic,
                f"{r.guessing_entropy:.2f}",
                n90,
            ]
        )
    return rows


def format_leakage_table(results: Sequence[LeakageCellResult]) -> str:
    return format_table(
        ["channel", "scheme", "W", "seed", "MI (bits)", "analytic", "guess entropy", "N to 90%"],
        leakage_rows(results),
        title="Leakage: empirical MI / guessing entropy / measurements",
    )


def validate_results(
    results: Sequence[LeakageCellResult],
    eq7_tolerance: float = EQ7_TOLERANCE_BITS,
    bound_slack: float = BOUND_SLACK_BITS,
) -> Dict:
    """Check the sweep against the paper's analytic predictions.

    * every ``eq7`` cell's Miller-Madow MI matches the Equation (7)/(8)
      closed-form capacity within ``eq7_tolerance`` bits;
    * every cell with an analytic bound stays below bound + slack;
    * per seed, the occupancy channel leaks strictly less through
      random fill (window >= 8) than through demand fetch — the paper's
      defence generalizes to the aggregate channel;
    * per seed, occupancy through ``plcache_preload`` is near zero
      (preloaded, locked lines displace nothing).
    """
    checks: List[Dict] = []

    def check(name: str, ok: bool, detail: str) -> None:
        checks.append({"check": name, "ok": bool(ok), "detail": detail})

    for r in results:
        if r.channel == "eq7":
            err = abs(r.mi_bits - r.analytic_bits)
            check(
                f"eq7 W={r.window_size} seed={r.seed} matches capacity",
                err <= eq7_tolerance,
                f"|{r.mi_bits:.4f} - {r.analytic_bits:.4f}| = {err:.4f} <= {eq7_tolerance}",
            )
        elif r.analytic_bits is not None:
            check(
                f"{r.channel} {r.scheme} W={r.window_size} seed={r.seed} below bound",
                r.mi_bits <= r.analytic_bits + bound_slack,
                f"{r.mi_bits:.4f} <= {r.analytic_bits:.4f} + {bound_slack}",
            )

    seeds = sorted({r.seed for r in results})
    for seed in seeds:
        occupancy = [r for r in results if r.channel == "occupancy" and r.seed == seed]
        demand = [r for r in occupancy if r.scheme == "demand_fetch"]
        randomized = [r for r in occupancy if r.scheme == "random_fill" and r.window_size >= 8]
        for d in demand:
            for rf in randomized:
                check(
                    f"occupancy random_fill W={rf.window_size} < demand_fetch seed={seed}",
                    rf.mi_bits < d.mi_bits,
                    f"{rf.mi_bits:.4f} < {d.mi_bits:.4f}",
                )
        for r in occupancy:
            if r.scheme == "plcache_preload":
                check(
                    f"occupancy plcache_preload ~0 seed={seed}",
                    r.mi_bits < 0.05,
                    f"{r.mi_bits:.4f} < 0.05",
                )
    return {
        "passed": sum(1 for c in checks if c["ok"]),
        "failed": sum(1 for c in checks if not c["ok"]),
        "checks": checks,
    }


def write_leakage_report(
    results: Sequence[LeakageCellResult],
    validation: Optional[Dict] = None,
    stats: Optional[Dict] = None,
    path: str = DEFAULT_LEAKAGE_REPORT,
) -> Dict:
    """Persist the sweep under the ``leakage`` entry of ``path``."""
    if validation is None:
        validation = validate_results(results)
    payload = {
        "cells": [r.to_json() for r in results],
        "validation": validation,
    }
    if stats:
        payload["runner"] = stats
    return record_bench("leakage", payload, path=path)
