"""Tests for the cache collision attacks.

Full-fidelity attack runs need tens of thousands of measurements (the
benchmarks do that); the unit tests here exercise the machinery against
a *rigged* victim whose timing dip is strong enough to recover in a few
hundred measurements.
"""

import random

import pytest

from repro.attacks.collision import (
    FinalRoundCollisionAttack,
    FirstRoundCollisionAttack,
    _TimingAccumulator,
)

KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")


class RiggedVictim:
    """AES victim with an exaggerated, noise-free collision signal.

    Time = base - DIP for every final-round pair (i, j) whose lookups
    collide exactly (c_i ^ c_j == k10_i ^ k10_j), plus small noise.
    """

    def __init__(self, key=KEY, dip=50, noise=3, seed=0):
        from repro.crypto.traced_aes import TracedAES128
        self.aes = TracedAES128(key)
        self.dip = dip
        self._rng = random.Random(seed)
        self.noise = noise

    def measure(self, plaintext):
        ct, _ = self.aes.encrypt_block_traced(plaintext)
        k10 = self.true_final_round_key()
        time = 1000 + self._rng.gauss(0, self.noise)
        for j in range(1, 16):
            if ct[0] ^ ct[j] == k10[0] ^ k10[j]:
                time -= self.dip
        return ct, time

    def true_final_round_key(self):
        return b"".join(w.to_bytes(4, "big")
                        for w in self.aes.round_keys[40:44])

    def true_key_byte_xor(self, i, j):
        k10 = self.true_final_round_key()
        return k10[i] ^ k10[j]

    def true_first_round_xor_nibble(self, i, j):
        key = b"".join(w.to_bytes(4, "big") for w in self.aes.round_keys[:4])
        return (key[i] ^ key[j]) >> 4


class TestTimingAccumulator:
    def test_argmin(self):
        acc = _TimingAccumulator(4)
        for bucket, value in ((0, 10), (1, 5), (2, 10), (3, 10)):
            acc.add(bucket, value)
        assert acc.argmin() == 1

    def test_averages_nan_for_empty(self):
        acc = _TimingAccumulator(2)
        acc.add(0, 4)
        avgs = acc.averages()
        assert avgs[0] == 4
        assert avgs[1] != avgs[1]  # NaN

    def test_separation(self):
        acc = _TimingAccumulator(3)
        for bucket, value in ((0, 10), (1, 10), (2, 1)):
            acc.add(bucket, value)
        assert acc.separation_sigmas() > 0.5


class TestFinalRoundAttack:
    def test_recovers_key_xor_on_rigged_victim(self):
        attack = FinalRoundCollisionAttack(RiggedVictim(), seed=1)
        result = attack.run(max_measurements=4000, check_every=2000)
        assert result.success
        assert result.correct_pairs == 15
        for est in result.pairs:
            assert est.recovered == est.true_value

    def test_timing_characteristic_dips_at_true_value(self):
        attack = FinalRoundCollisionAttack(RiggedVictim(), pairs=[(0, 1)],
                                           seed=2)
        attack.collect(3000)
        curve = attack.timing_characteristic((0, 1))
        assert len(curve) == 256
        true = attack.victim.true_key_byte_xor(0, 1)
        dips = min(curve, key=lambda p: p[1])
        assert dips[0] == true

    def test_cap_respected(self):
        class NoisyVictim(RiggedVictim):
            def measure(self, plaintext):
                ct, _ = super().measure(plaintext)
                return ct, self._rng.gauss(1000, 50)  # no signal

        attack = FinalRoundCollisionAttack(NoisyVictim(), seed=3)
        result = attack.run(max_measurements=600, check_every=300)
        assert result.measurements == 600

    def test_validation(self):
        attack = FinalRoundCollisionAttack(RiggedVictim(), seed=1)
        with pytest.raises(ValueError):
            attack.run(max_measurements=0)


class TestFirstRoundAttack:
    def test_rejects_cross_table_pairs(self):
        with pytest.raises(ValueError):
            FirstRoundCollisionAttack(RiggedVictim(), pairs=[(0, 1)])

    def test_accepts_same_table_pairs(self):
        attack = FirstRoundCollisionAttack(RiggedVictim(),
                                           pairs=[(0, 4), (1, 13)])
        assert attack.pairs == [(0, 4), (1, 13)]

    def test_recovers_nibble_on_rigged_first_round_victim(self):
        class FirstRoundRigged(RiggedVictim):
            def measure(self, plaintext):
                ct, _ = self.aes.encrypt_block_traced(plaintext)
                time = 1000 + self._rng.gauss(0, self.noise)
                key = b"".join(w.to_bytes(4, "big")
                               for w in self.aes.round_keys[:4])
                for i, j in ((0, 4), (0, 8), (0, 12), (1, 5), (2, 6), (3, 7)):
                    if (plaintext[i] ^ plaintext[j]) >> 4 == \
                            (key[i] ^ key[j]) >> 4:
                        time -= self.dip
                return ct, time

        attack = FirstRoundCollisionAttack(FirstRoundRigged(), seed=4)
        result = attack.run(max_measurements=3000, check_every=1500)
        assert result.success
