"""Tests for hierarchy assembly."""

from repro.cache.hierarchy import build_hierarchy
from repro.secure.newcache import Newcache


class TestBuild:
    def test_defaults_match_table_iv(self):
        h = build_hierarchy()
        assert h.l1.tag_store.capacity_lines == 32 * 1024 // 64
        assert h.l2.tag_store.capacity_lines == 2 * 1024 * 1024 // 64
        assert h.l2.hit_latency == 20
        assert h.l1.miss_queue.capacity == 4

    def test_custom_tag_store(self):
        nc = Newcache(8 * 1024, seed=1)
        h = build_hierarchy(l1_tag_store=nc)
        assert h.l1.tag_store is nc

    def test_flush_all(self):
        h = build_hierarchy()
        r = h.l1.access(0, now=0)
        h.l1.access(0, now=r.ready_at + 1)
        h.flush_all()
        assert h.l1.tag_store.occupancy() == 0
        assert not h.l2.probe(0)

    def test_reset_stats(self):
        h = build_hierarchy()
        h.l1.access(0, now=0)
        h.reset_stats()
        assert h.l1.stats.accesses == 0
        assert h.l2.stats.accesses == 0

    def test_l1_miss_reaches_l2(self):
        h = build_hierarchy()
        h.l1.access(0, now=0)
        assert h.l2.stats.accesses == 1
