"""Occupancy-channel tests: who the aggregate channel defeats and who not.

The qualitative expectations follow Chakraborty et al. / Peters et al.:
mapping randomization does not degrade an address-free channel, random
fill adds collision noise, and preload+lock closes it entirely.
"""


import pytest

from repro.core.window import RandomFillWindow
from repro.leakage.adapters import build_functional_scheme
from repro.leakage.occupancy import run_occupancy_trials
from repro.secure.region import ProtectedRegion

REGION = ProtectedRegion(0x10000, 1024)  # 16 lines


def measure(name, window=None, trials=600, seed=3):
    scheme = build_functional_scheme(name, REGION, window=window, seed=seed)
    return run_occupancy_trials(scheme, trials=trials, seed=seed)


class TestOccupancyChannel:
    def test_demand_fetch_leaks_fully(self):
        result = measure("demand_fetch")
        # The miss count equals the working-set size exactly: identity
        # channel over 16 secrets.
        assert result.mutual_information > 3.8
        assert result.guessing_entropy < 1.05

    def test_random_fill_degrades_the_channel(self):
        demand = measure("demand_fetch")
        filled = measure("random_fill", RandomFillWindow.bidirectional(8))
        assert filled.mutual_information < demand.mutual_information - 1.0
        assert filled.guessing_entropy > demand.guessing_entropy

    def test_mapping_randomization_does_not_stop_it(self):
        """Newcache and RPcache randomize *where* a line lands, but the
        occupancy attacker never asks where — only how many."""
        for name in ("newcache", "rpcache"):
            result = measure(name)
            assert result.mutual_information > 2.5, name

    def test_preload_and_lock_closes_it(self):
        result = measure("plcache_preload")
        assert result.mutual_information < 0.05
        # Blind guessing over 16 secrets: E[rank] ~ 8.5.
        assert result.guessing_entropy > 6.0

    def test_joint_records_every_trial(self):
        result = measure("demand_fetch", trials=200)
        assert result.trials == 200
        assert result.joint.total == 200
        assert result.secret_space <= REGION.num_lines

    def test_deterministic_for_seed(self):
        a = measure("random_fill", RandomFillWindow.bidirectional(4), seed=9)
        b = measure("random_fill", RandomFillWindow.bidirectional(4), seed=9)
        assert a.joint == b.joint
        assert a.mutual_information == b.mutual_information

    def test_validation(self):
        scheme = build_functional_scheme("demand_fetch", REGION)
        with pytest.raises(ValueError):
            run_occupancy_trials(scheme, trials=0)


class TestAdapters:
    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            build_functional_scheme("writeback", REGION)

    def test_random_fill_requires_window(self):
        with pytest.raises(ValueError):
            build_functional_scheme("random_fill", REGION)

    def test_demand_scheme_rejects_window(self):
        with pytest.raises(ValueError):
            build_functional_scheme("newcache", REGION,
                                    window=RandomFillWindow(2, 1))

    def test_preload_locks_the_region(self):
        scheme = build_functional_scheme("plcache_preload", REGION)
        assert set(REGION.lines) <= set(scheme.tag_store.resident_lines())
        assert set(scheme.tag_store.locked_lines()) == set(REGION.lines)

    def test_reset_restores_preload(self):
        scheme = build_functional_scheme("plcache_preload", REGION)
        for line in REGION.lines:
            scheme.tag_store.invalidate(line)
        scheme.reset_victim()
        assert set(scheme.tag_store.locked_lines()) == set(REGION.lines)

    def test_reset_clears_victim_fills(self):
        scheme = build_functional_scheme(
            "random_fill", REGION, window=RandomFillWindow.bidirectional(8))
        for line in list(REGION.lines)[:4]:
            scheme.victim_access(line)
        scheme.reset_victim()
        resident = set(scheme.tag_store.resident_lines())
        assert not (resident & scheme.victim_lines)

    def test_victim_lines_include_window_margins(self):
        window = RandomFillWindow.bidirectional(8)
        scheme = build_functional_scheme("random_fill", REGION, window=window)
        assert REGION.first_line - window.a in scheme.victim_lines
        assert REGION.first_line + REGION.num_lines - 1 + window.b \
            in scheme.victim_lines
