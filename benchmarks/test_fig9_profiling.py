"""Figure 9: effectiveness (reference ratio) of random fills, Eff(d).

Profiles each SPEC-like benchmark with offsets tagged up to |d| <= 16:
the fraction of randomly filled lines at offset d referenced before
eviction (Equation 9).

Paper's shape: most workloads have spatial locality spanning about four
neighbor lines or less; the streaming benchmarks (lbm, libquantum) show
wide locality far beyond a line, especially forward.
"""

from _reporting import save_report

from repro.experiments.config import scaled
from repro.experiments.perf_general import figure9
from repro.util.tables import format_table
from repro.workloads.spec import STREAMING_BENCHMARKS


def run():
    return figure9(n_refs=scaled(100_000, minimum=10_000), seed=5)


def test_fig9_profiling(benchmark):
    profiles = benchmark.pedantic(run, rounds=1, iterations=1)

    for name, profile in profiles.items():
        for d, eff in profile.series():
            assert 0.0 <= eff <= 1.0
    # Streaming benchmarks keep high effectiveness deep into the
    # forward window; narrow-locality ones decay quickly.
    for name in STREAMING_BENCHMARKS:
        far_forward = [profiles[name].eff(d) for d in range(8, 16)]
        assert max(far_forward) > 0.5
    for name in ("sjeng", "hmmer"):
        far_forward = [profiles[name].eff(d) for d in range(8, 16)]
        assert max(far_forward, default=0.0) < 0.5
    # Forward locality beats backward for the streams.
    for name in STREAMING_BENCHMARKS:
        fwd = sum(profiles[name].eff(d) for d in range(1, 9))
        bwd = sum(profiles[name].eff(d) for d in range(-8, 0))
        assert fwd > bwd

    offsets = list(range(-16, 17))
    rows = []
    for name, profile in profiles.items():
        for d in offsets:
            if profile.fetched.get(d):
                rows.append((name, d, f"{profile.eff(d):.3f}",
                             profile.fetched[d]))
    save_report("fig9_profiling", format_table(
        ["benchmark", "d", "Eff(d)", "fetched"], rows,
        title="Figure 9: random-fill reference ratio Eff(d), |d| <= 16"))
