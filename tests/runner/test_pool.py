"""Tests for job resolution and the ordered cell fan-out."""

import os

import pytest

from repro.runner.cells import CELL_KINDS, CellSpec, run_cell
from repro.runner.pool import last_run_stats, resolve_jobs, run_cells


class TestResolveJobs:
    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_beats_cpu_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs() == 7

    def test_defaults_to_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == (os.cpu_count() or 1)

    def test_rejects_nonpositive(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        with pytest.raises(ValueError):
            resolve_jobs(0)
        with pytest.raises(ValueError):
            resolve_jobs(-2)


class TestCellSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            CellSpec(kind="nope")

    def test_kinds_are_valid(self):
        for kind in CELL_KINDS:
            CellSpec(kind=kind, benchmark="hmmer", window=(0, 3))


def _specs(n_refs=2000):
    return [CellSpec(kind="general", benchmark=benchmark, window=window,
                     n_refs=n_refs, seed=4)
            for benchmark in ("hmmer", "lbm")
            for window in ((0, 0), (0, 3))]


class TestRunCells:
    def test_inline_matches_run_cell(self):
        specs = _specs()
        assert run_cells(specs, jobs=1) == [run_cell(s) for s in specs]

    def test_pool_preserves_spec_order(self):
        specs = _specs()
        assert run_cells(specs, jobs=2) == run_cells(specs, jobs=1)

    def test_empty_spec_list(self):
        assert run_cells([], jobs=4) == []

    def test_last_run_stats(self):
        specs = _specs()
        run_cells(specs, jobs=1)
        stats = last_run_stats()
        assert stats["cells"] == len(specs)
        assert stats["jobs"] == 1
        assert stats["seconds"] > 0
        assert stats["cells_per_sec"] > 0
