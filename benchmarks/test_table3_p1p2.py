"""Table III: P1 - P2 and attack measurement counts vs window size.

Monte Carlo P1 - P2 for the random fill strategy on the 4-way SA cache
and on Newcache, window sizes 1..32 (size 1 = demand fetch), plus a
live capped collision attack on one representative pair and the
Equation (5) extrapolation of the required measurements.

Paper values (SA): 0.652 / 0.332 / 0.127 / 0.044 / 0.012 / 0.006, with
attack cost 65k -> 1.9M -> 16.7M -> no success after 2^24.
"""

import math

from _reporting import save_report

from repro.experiments.config import scaled
from repro.experiments.security import table3
from repro.util.tables import format_table


def run():
    attack_caps = {1: scaled(25_000, 1_000), 2: scaled(8_000, 500),
                   4: scaled(4_000, 500), 8: 0, 16: 0, 32: 0}
    return table3(substrates=("sa", "newcache"),
                  mc_trials=scaled(4_000, minimum=300),
                  attack_caps=attack_caps, seed=11)


def test_table3_p1_minus_p2(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    by_key = {(r.substrate, r.window_size): r for r in rows}
    for substrate in ("sa", "newcache"):
        values = [by_key[(substrate, w)].p1_minus_p2
                  for w in (1, 2, 4, 8, 16, 32)]
        # Demand fetch leaks strongly; the signal decays with window size
        # and vanishes when the window covers the table (paper's shape).
        assert values[0] > 0.4
        assert values[0] > values[1] > values[2] > values[3]
        assert abs(values[5]) < 0.03
        # Equation (5): required measurements diverge as the signal dies.
        assert by_key[(substrate, 1)].extrapolated_n < \
            by_key[(substrate, 4)].extrapolated_n

    table_rows = []
    for r in rows:
        extrapolated = ("inf" if math.isinf(r.extrapolated_n)
                        else f"{r.extrapolated_n:,.0f}")
        table_rows.append((r.substrate, r.window_size,
                           f"{r.p1_minus_p2:.3f}",
                           r.measurements_text() if r.attack_cap else "-",
                           extrapolated))
    save_report("table3_p1p2", format_table(
        ["substrate", "window", "P1-P2", "attack measurements",
         "Eq(5) extrapolated N"],
        table_rows,
        title=("Table III: P1-P2 and measurements for random fill + "
               "{4-way SA, Newcache}")))
