"""General-program performance: Figures 9, 10 and the Section VII
prefetcher comparison.

Figure 9 profiles Eff(d) — the fraction of randomly filled lines at
offset ``d`` referenced before eviction.  Figure 10 sweeps forward and
bidirectional windows over the SPEC-like benchmarks and reports L1 MPKI
and IPC (random fill enabled for *all* accesses, as the paper does by
setting the range registers at program start).  Section VII compares
the best random fill window against a tagged next-line prefetcher on
the streaming benchmarks.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from itertools import islice
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.profiling import ProfileResult
from repro.core.window import RandomFillWindow
from repro.cpu.timing import SimResult, TimingModel
from repro.cpu.trace import Trace
from repro.experiments.config import BASELINE_CONFIG, SimulatorConfig
from repro.experiments.schemes import build_scheme
from repro.runner.cells import CellSpec
from repro.runner.pool import run_cells
from repro.workloads.cache import cached_workload

#: Figure 10's window sweep: [0,0] is demand fetch; [0,b] forward;
#: [-a,b] bidirectional.
FIGURE10_WINDOWS: Tuple[Tuple[int, int], ...] = (
    (0, 0), (0, 1), (0, 3), (0, 7), (0, 15), (0, 31),
    (1, 0), (2, 1), (4, 3), (8, 7), (16, 15),
)

FIGURE10_ORDER = ("astar", "bzip2", "h264ref", "sjeng",
                  "milc", "hmmer", "lbm", "libquantum")


def window_label(a: int, b: int) -> str:
    return f"[{-a},{b}]"


def figure9(benchmarks: Sequence[str] = FIGURE10_ORDER,
            n_refs: int = 100_000,
            window: RandomFillWindow = RandomFillWindow(16, 15),
            config: SimulatorConfig = BASELINE_CONFIG,
            seed: int = 0,
            jobs: Optional[int] = None) -> Dict[str, ProfileResult]:
    """Eff(d) profiles per benchmark (Figure 9).

    One cell per benchmark, fanned over the parallel runner.
    """
    specs = [CellSpec(kind="profile", benchmark=benchmark,
                      window=(window.a, window.b), n_refs=n_refs,
                      seed=seed, config=config)
             for benchmark in benchmarks]
    results = run_cells(specs, jobs=jobs)
    return dict(zip(benchmarks, results))


@dataclass
class GeneralPerfPoint:
    benchmark: str
    window: Tuple[int, int]          # (a, b)
    result: SimResult
    normalized_ipc: float = 0.0

    @property
    def label(self) -> str:
        return window_label(*self.window)


#: Memo of warm-prefix line footprints, keyed by trace identity (the
#: stored trace reference keeps the id valid; an id reused by a *new*
#: object fails the identity check and recomputes).  A Figure 10 sweep
#: warms the same trace once per window, so the dedup scan — pure
#: function of the trace — is shared across cells.
_WARM_FOOTPRINTS: "OrderedDict[tuple, tuple]" = OrderedDict()
_WARM_FOOTPRINTS_MAX = 8


def _warm_footprint(trace, split: int, line_bits: int) -> List[int]:
    """Consecutive-deduped line addresses of ``trace[:split]``.

    Columnar traces delegate to the vectorized (and trace-memoized)
    :meth:`repro.cpu.decode.TraceDecode.warm_footprint`; the scan below
    serves ad-hoc record lists.
    """
    if isinstance(trace, Trace):
        return trace.decoded(line_bits).warm_footprint(split)
    key = (id(trace), split, line_bits)
    memo = _WARM_FOOTPRINTS
    hit = memo.get(key)
    if hit is not None and hit[0] is trace:
        memo.move_to_end(key)
        return hit[1]
    lines: List[int] = []
    append = lines.append
    seen_last = -1
    for addr, _gap, _write in islice(trace, split):
        line = addr >> line_bits
        if line != seen_last:
            seen_last = line
            append(line)
    memo[key] = (trace, lines)
    while len(memo) > _WARM_FOOTPRINTS_MAX:
        memo.popitem(last=False)
    return lines


def warm_l2(scheme, trace) -> None:
    """Pre-warm the L2 with a trace prefix's line footprint.

    The paper's SPEC runs cover two billion instructions, so the L2 is
    in steady state for virtually the whole measurement.  Our traces
    are shorter, so the measured portion is preceded by a warm-up
    prefix that is replayed functionally into the L2: reused working
    sets become resident (as they would be), while touch-once streams
    leave the yet-unvisited region cold (as it would be).
    """
    store = scheme.hierarchy.l2.tag_store
    line_bits = scheme.config.line_size.bit_length() - 1
    access = store.access
    fill = store.fill
    seen_last = -1
    for addr, _gap, _write in trace:
        line = addr >> line_bits
        if line == seen_last:
            continue
        seen_last = line
        if not access(line):
            fill(line)


def run_general_workload(benchmark: str, window: Tuple[int, int],
                         config: SimulatorConfig = BASELINE_CONFIG,
                         n_refs: int = 100_000, seed: int = 0,
                         scheme_name: str = "random_fill",
                         trace=None, warm: bool = True) -> SimResult:
    """One benchmark x window cell of Figure 10.

    "We insert the system call for setting the range registers ... at
    the beginning of the program, which essentially enables random fill
    for all the memory accesses."
    """
    a, b = window
    scheme = build_scheme(scheme_name, config, seed=seed)
    if scheme.os is not None:
        scheme.os.set_rr(a, b)
    if trace is None:
        trace = cached_workload(benchmark, n_refs=n_refs, seed=seed)
    if warm:
        # Warm on the first half, measure the second — reused working
        # sets are resident, touch-once stream fronts stay cold.  The
        # measured half is a zero-copy view (columnar slice, memoized
        # on the shared trace so every window cell of a sweep reuses
        # one view and its decode) or an islice for record lists; the
        # trace may be shared through the trace cache and must not be
        # duplicated (or mutated) per cell.
        split = len(trace) // 2
        store = scheme.hierarchy.l2.tag_store
        line_bits = scheme.config.line_size.bit_length() - 1
        access = store.access
        fill = store.fill
        for line in _warm_footprint(trace, split, line_bits):
            if not access(line):
                fill(line)
        trace = trace[split:] if isinstance(trace, Trace) \
            else islice(trace, split, None)
    timing = TimingModel(scheme.l1, issue_width=config.issue_width,
                         overlap_credit=config.overlap_credit)
    return timing.run(trace)


def figure10_specs(benchmarks: Sequence[str] = FIGURE10_ORDER,
                   windows: Sequence[Tuple[int, int]] = FIGURE10_WINDOWS,
                   config: SimulatorConfig = BASELINE_CONFIG,
                   n_refs: int = 100_000,
                   seed: int = 0) -> List[CellSpec]:
    """The Figure 10 cell grid in sweep order (benchmark-major).

    Shared by :func:`figure10` and the CLI's batch-aware ``--profile``,
    which plans these specs into batches and profiles the first one.
    """
    return [CellSpec(kind="general", benchmark=benchmark, window=window,
                     n_refs=n_refs, seed=seed, config=config)
            for benchmark in benchmarks for window in windows]


def figure10(benchmarks: Sequence[str] = FIGURE10_ORDER,
             windows: Sequence[Tuple[int, int]] = FIGURE10_WINDOWS,
             config: SimulatorConfig = BASELINE_CONFIG,
             n_refs: int = 100_000,
             seed: int = 0,
             jobs: Optional[int] = None) -> List[GeneralPerfPoint]:
    """The Figure 10 sweep: L1 MPKI and IPC per benchmark per window.

    Each (benchmark, window) cell fans out over the parallel runner;
    results are regrouped in sweep order, so the output is identical to
    the sequential nested loop for any ``jobs``.
    """
    specs = figure10_specs(benchmarks, windows, config=config,
                           n_refs=n_refs, seed=seed)
    results = iter(run_cells(specs, jobs=jobs))
    points: List[GeneralPerfPoint] = []
    for benchmark in benchmarks:
        base_ipc: Optional[float] = None
        for window in windows:
            result = next(results)
            if base_ipc is None:
                base_ipc = result.ipc
            points.append(GeneralPerfPoint(
                benchmark=benchmark, window=window, result=result,
                normalized_ipc=result.ipc / base_ipc))
    return points


def prefetcher_comparison(benchmarks: Sequence[str] = ("lbm", "libquantum"),
                          best_windows: Dict[str, Tuple[int, int]] = None,
                          config: SimulatorConfig = BASELINE_CONFIG,
                          n_refs: int = 100_000,
                          seed: int = 0,
                          jobs: Optional[int] = None) -> List[Dict[str, float]]:
    """Section VII: tagged prefetcher vs random fill on streaming apps.

    The paper: tagged prefetcher improves IPC by 11% (lbm) / 26%
    (libquantum); random fill by 17% / 57% (libquantum's best window is
    [0, 15]).
    """
    if best_windows is None:
        best_windows = {"lbm": (0, 15), "libquantum": (0, 15)}
    specs: List[CellSpec] = []
    for benchmark in benchmarks:
        specs.append(CellSpec(kind="general", benchmark=benchmark,
                              window=(0, 0), n_refs=n_refs, seed=seed,
                              config=config))
        specs.append(CellSpec(kind="general", scheme="tagged_prefetch",
                              benchmark=benchmark, window=(0, 0),
                              n_refs=n_refs, seed=seed, config=config))
        specs.append(CellSpec(kind="general", benchmark=benchmark,
                              window=best_windows[benchmark], n_refs=n_refs,
                              seed=seed, config=config))
    results = iter(run_cells(specs, jobs=jobs))
    rows: List[Dict[str, float]] = []
    for benchmark in benchmarks:
        base = next(results)
        tagged = next(results)
        rf = next(results)
        rows.append({
            "benchmark": benchmark,
            "baseline_ipc": base.ipc,
            "tagged_speedup": tagged.ipc / base.ipc,
            "random_fill_speedup": rf.ipc / base.ipc,
            "baseline_l1_mpki": base.l1_mpki,
            "random_fill_l1_mpki": rf.l1_mpki,
            "baseline_l2_mpki": base.l2_mpki,
            "random_fill_l2_mpki": rf.l2_mpki,
        })
    return rows
