"""Sweep service core: submission, registry, telemetry, metrics.

:class:`SweepService` is the HTTP-free heart of ``repro.service``:
it validates submitted grids through the versioned codec, enforces
per-client rate limits and the per-request cell ceiling, queues work on
a :class:`~repro.runner.jobs.JobRunner`, and tracks every sweep in a
registry the API handlers read.  All of it is plain synchronous code
guarded by locks, callable from the asyncio handlers and from tests
alike.

Each accepted sweep gets its own JSONL telemetry file under the spool
directory.  The service writes the ``sweep_submitted`` /
``sweep_start`` (with ``queue_wait_s``) / ``sweep_finish`` prologue
rows; ``run_cells`` appends its ordinary run events to the same file —
so one file is the complete audit trail of one sweep, and the
``/events`` endpoint simply streams it.

Crash safety (PR 10) adds two mechanisms on top of the registry:

* every accepted sweep is journaled to the write-ahead log
  (:mod:`repro.service.journal`) *before* it is queued, and its
  ``started``/``finished`` transitions are journaled from the job
  observer — so on boot :meth:`SweepService._recover` can replay the
  journal, re-admit every queued sweep in submission order and
  resubmit the interrupted running one, whose already-finished cells
  come back warm from the result-cache checkpoints;
* :meth:`begin_drain` / :meth:`finish_drain` implement graceful
  SIGTERM shutdown: submissions get a structured 503 ``draining``, the
  running sweep finishes, queued sweeps stay journaled for the next
  process, and the journal is checkpoint-compacted on the way out.
"""

from __future__ import annotations

import os
import secrets
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.runner.jobs import JobHandle, JobQueueFull, JobRunner
from repro.runner.telemetry import Telemetry
from repro.service.codec import SpecValidationError, decode_sweep, encode_result
from repro.service.journal import SweepJournal, journal_path, load_payload_specs
from repro.service.ratelimit import ClientQuotas
from repro.service.store import DiskResultStore, ResultStore


@dataclass
class ServiceConfig:
    """Every knob of one service instance (CLI flags mirror these)."""

    host: str = "127.0.0.1"
    port: int = 8322
    jobs: Optional[int] = None  # worker processes per sweep
    queue_depth: int = 16  # sweeps waiting, beyond the running one
    max_cells_per_request: int = 4096
    rate: float = 10.0  # submissions per second per client
    burst: float = 20.0
    spool_dir: Optional[str] = None  # per-sweep telemetry files
    keep_sweeps: int = 256  # finished sweeps kept in the registry
    port_file: Optional[str] = None  # write the bound port here once listening
    recover: bool = True  # replay the sweep journal on boot


class ServiceError(Exception):
    """A request the service refuses; carries the structured payload."""

    def __init__(self, status: int, code: str, message: str, **extra: Any):
        super().__init__(message)
        self.status = status
        self.code = code
        self.extra = extra

    def payload(self) -> Dict[str, Any]:
        return {"error": {"code": self.code, "message": str(self), **self.extra}}


@dataclass
class Sweep:
    """Registry entry: one accepted sweep and its job handle."""

    sweep_id: str
    handle: JobHandle
    client: str
    cells: int
    events_path: str
    created_at: float = field(default_factory=time.time)
    recovered: bool = False  # re-admitted from the journal on boot

    def status(self) -> Dict[str, Any]:
        poll = self.handle.poll()
        return {
            "id": self.sweep_id,
            "state": poll["state"],
            "cells": self.cells,
            "client": self.client,
            "created_at": self.created_at,
            "recovered": self.recovered,
            "queue_wait_s": poll["queue_wait_s"],
            "run_seconds": poll["run_seconds"],
            "error": poll["error"],
            "last_run_stats": poll["stats"],
        }


class SweepService:
    """Everything the HTTP handlers delegate to."""

    def __init__(
        self,
        config: ServiceConfig,
        store: Optional[ResultStore] = None,
        runner: Optional[JobRunner] = None,
    ):
        self.config = config
        self.store = store if store is not None else DiskResultStore()
        self.runner = runner if runner is not None else JobRunner(queue_depth=config.queue_depth)
        self.quotas = ClientQuotas(rate=config.rate, burst=config.burst)
        self.spool_dir = config.spool_dir or tempfile.mkdtemp(prefix="repro-service-")
        os.makedirs(self.spool_dir, exist_ok=True)
        self.started_at = time.time()
        self.journal = SweepJournal(journal_path(self.spool_dir))
        self._lock = threading.Lock()
        self._sweeps: Dict[str, Sweep] = {}
        self._order: List[str] = []
        self._sweep_seconds: List[float] = []
        self._counters = {
            "submitted": 0,
            "rejected": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
        }
        self._draining = False
        self._recovered_sweeps = 0
        self._resubmitted_cells = 0
        self._warm_cells = 0
        self._corrupt_tail_events = 0
        if config.recover:
            self._recover()

    # -- telemetry helpers ---------------------------------------------------

    def _events_path(self, sweep_id: str) -> str:
        return os.path.join(self.spool_dir, f"sweep-{sweep_id}.jsonl")

    def _service_log(self) -> str:
        return os.path.join(self.spool_dir, "service.jsonl")

    def _emit(self, path: str, event: str, **fields: Any) -> None:
        with Telemetry(path=path, progress=False) as telemetry:
            telemetry.emit(event, **fields)

    def _reject(self, client: str, reason: str, **fields: Any) -> None:
        with self._lock:
            self._counters["rejected"] += 1
        self._emit(
            self._service_log(),
            "sweep_rejected",
            reason=reason,
            client=client,
            **fields,
        )

    # -- submission ----------------------------------------------------------

    def submit(self, payload: Any, client: str) -> Dict[str, Any]:
        """Validate and queue one sweep; the 202 response body.

        Raises :class:`ServiceError` with the structured 400/429
        payloads for malformed specs, rate-limited clients, oversized
        grids, and a full work queue — and 503 ``draining`` once a
        shutdown signal has flipped the service into draining mode.

        The sweep is journaled *before* it is queued (WAL ordering): a
        crash between the append and the queue insert re-admits it on
        restart rather than losing it.  A full queue writes a
        compensating ``cancelled`` record.
        """
        if self._draining:
            self._reject(client, "draining")
            raise ServiceError(
                503,
                "draining",
                "service is draining for shutdown; retry against the next instance",
                retry_after_s=1.0,
            )
        retry_after = self.quotas.admit(client)
        if retry_after is not None:
            self._reject(client, "rate_limited", retry_after_s=retry_after)
            raise ServiceError(
                429,
                "rate_limited",
                f"client {client!r} exceeded {self.config.rate:g} "
                f"submissions/s (burst {self.config.burst:g})",
                retry_after_s=retry_after,
            )
        try:
            specs = decode_sweep(payload)
        except SpecValidationError as error:
            self.quotas.account_rejected(client)
            self._reject(client, "invalid_spec", detail=str(error))
            raise ServiceError(400, "invalid_spec", str(error)) from None
        if len(specs) > self.config.max_cells_per_request:
            self.quotas.account_rejected(client)
            self._reject(client, "too_many_cells", cells=len(specs))
            raise ServiceError(
                400,
                "too_many_cells",
                f"{len(specs)} cells exceeds the per-request ceiling of "
                f"{self.config.max_cells_per_request} (--max-cells-per-request)",
                cells=len(specs),
                max_cells_per_request=self.config.max_cells_per_request,
            )

        sweep_id = secrets.token_hex(6)
        events_path = self._events_path(sweep_id)
        try:
            self.journal.append(
                "submitted", sweep_id, client=client, cells=len(specs), payload=payload
            )
        except OSError as error:
            self.quotas.account_rejected(client)
            self._reject(client, "journal_unavailable", detail=repr(error))
            raise ServiceError(
                503,
                "journal_unavailable",
                f"cannot journal the sweep (spool write failed): {error}",
            ) from None
        try:
            handle = self.runner.submit(
                specs,
                on_transition=self._make_observer(sweep_id, events_path),
                jobs=self.config.jobs,
                result_cache=self.store,
                telemetry=events_path,
                progress=False,
            )
        except JobQueueFull as error:
            self._journal_advisory("cancelled", sweep_id, reason="queue_full")
            self.quotas.account_rejected(client)
            self._reject(client, "queue_full", queue_depth=self.runner.queue_depth)
            raise ServiceError(
                429,
                "queue_full",
                str(error),
                queue_depth=self.runner.queue_depth,
            ) from None
        self.quotas.account_accepted(client, len(specs))
        self._emit(
            events_path,
            "sweep_submitted",
            sweep=sweep_id,
            cells=len(specs),
            client=client,
        )
        sweep = Sweep(
            sweep_id=sweep_id,
            handle=handle,
            client=client,
            cells=len(specs),
            events_path=events_path,
        )
        with self._lock:
            self._counters["submitted"] += 1
            self._sweeps[sweep_id] = sweep
            self._order.append(sweep_id)
            self._prune_locked()
        return {
            "id": sweep_id,
            "state": handle.state,
            "cells": len(specs),
            "links": {
                "status": f"/sweeps/{sweep_id}",
                "results": f"/sweeps/{sweep_id}/results",
                "events": f"/sweeps/{sweep_id}/events",
            },
        }

    def _journal_advisory(self, record_type: str, sweep_id: str, **fields: Any) -> None:
        """Journal a transition, swallowing spool errors: past admission
        the journal is advisory (the worst a lost record costs is one
        harmless at-least-once re-run on recovery)."""
        try:
            self.journal.append(record_type, sweep_id, **fields)
        except OSError:
            pass

    def _make_observer(self, sweep_id: str, events_path: str):
        def observer(handle: JobHandle, state: str) -> None:
            if state == "running":
                self._journal_advisory("started", sweep_id)
                self._emit(
                    events_path,
                    "sweep_start",
                    sweep=sweep_id,
                    queue_wait_s=round(handle.queue_wait_s or 0.0, 6),
                )
                return
            self._journal_advisory("finished", sweep_id, state=state)
            counter = {
                "done": "completed",
                "failed": "failed",
                "cancelled": "cancelled",
            }.get(state)
            with self._lock:
                if counter is not None:
                    self._counters[counter] += 1
                if state == "done" and handle.run_seconds is not None:
                    self._sweep_seconds.append(handle.run_seconds)
                    del self._sweep_seconds[:-1000]
            self._emit(
                events_path,
                "sweep_finish",
                sweep=sweep_id,
                state=state,
                error=handle.error,
                run_seconds=handle.run_seconds,
                **handle.stats,
            )

        return observer

    def _prune_locked(self) -> None:
        while len(self._order) > self.config.keep_sweeps:
            for candidate in self._order:
                if self._sweeps[candidate].handle.finished:
                    self._order.remove(candidate)
                    del self._sweeps[candidate]
                    break
            else:
                return  # nothing finished yet; keep everything live

    # -- restart recovery ----------------------------------------------------

    def _recover(self) -> None:
        """Replay the journal and re-admit every sweep still owed work.

        Runs once from ``__init__`` before the server binds, so clients
        never observe a half-recovered registry.  Queued sweeps come
        back in submission order; an interrupted running sweep is
        resubmitted and its already-checkpointed cells are served warm
        from the result store (only the lost tail re-simulates).
        """
        replay = self.journal.replay()
        if replay.corrupt_tail or replay.dropped:
            self._corrupt_tail_events += 1
            self._emit(
                self._service_log(),
                "journal_corrupt_tail",
                corrupt_tail=replay.corrupt_tail,
                dropped=replay.dropped,
            )
        if not replay.live:
            if replay.records:
                self.journal.checkpoint()  # drop the dead history
            return
        recovered = 0
        resubmitted_cells = 0
        warm_cells = 0
        for entry in replay.live:
            specs = load_payload_specs(entry.payload)
            if specs is None:
                self._journal_advisory("cancelled", entry.sweep_id, reason="invalid_payload")
                self._emit(
                    self._service_log(),
                    "sweep_rejected",
                    reason="invalid_spec",
                    client=entry.client,
                    sweep=entry.sweep_id,
                    detail="journaled payload no longer decodes",
                )
                continue
            events_path = self._events_path(entry.sweep_id)
            warm = self.store.warm_count(specs)
            try:
                handle = self.runner.submit(
                    specs,
                    on_transition=self._make_observer(entry.sweep_id, events_path),
                    jobs=self.config.jobs,
                    result_cache=self.store,
                    telemetry=events_path,
                    progress=False,
                )
            except (JobQueueFull, RuntimeError) as error:
                # More journaled sweeps than queue slots: the rest stay
                # journaled and come back on the next restart.
                self._emit(
                    self._service_log(),
                    "sweep_rejected",
                    reason="queue_full",
                    client=entry.client,
                    sweep=entry.sweep_id,
                    detail=f"recovery deferred: {error}",
                )
                break
            sweep = Sweep(
                sweep_id=entry.sweep_id,
                handle=handle,
                client=entry.client,
                cells=len(specs),
                events_path=events_path,
                recovered=True,
            )
            with self._lock:
                self._sweeps[entry.sweep_id] = sweep
                self._order.append(entry.sweep_id)
            self._emit(
                events_path,
                "sweep_resumed",
                sweep=entry.sweep_id,
                prior_state=entry.state,
                cells=len(specs),
                warm_cells=warm,
                client=entry.client,
            )
            recovered += 1
            warm_cells += warm
            resubmitted_cells += len(specs) - warm
        with self._lock:
            self._recovered_sweeps += recovered
            self._resubmitted_cells += resubmitted_cells
            self._warm_cells += warm_cells
        if recovered:
            self._emit(
                self._service_log(),
                "service_recovered",
                recovered_sweeps=recovered,
                resubmitted_cells=resubmitted_cells,
                warm_cells=warm_cells,
            )
        self.journal.checkpoint()

    # -- lookup --------------------------------------------------------------

    def get(self, sweep_id: str) -> Sweep:
        with self._lock:
            sweep = self._sweeps.get(sweep_id)
        if sweep is None:
            raise ServiceError(404, "unknown_sweep", f"no sweep {sweep_id!r}")
        return sweep

    def results_page(self, sweep_id: str, offset: int = 0, limit: int = 256) -> Dict[str, Any]:
        """One page of a finished sweep's encoded cell results."""
        sweep = self.get(sweep_id)
        state = sweep.handle.state
        if state != "done":
            raise ServiceError(
                409,
                "not_finished",
                f"sweep {sweep_id} is {state}; results exist only for completed sweeps",
                state=state,
            )
        results = sweep.handle.result()
        if offset < 0 or limit < 1:
            raise ServiceError(
                400,
                "bad_page",
                f"offset must be >= 0 and limit >= 1, got offset={offset} limit={limit}",
            )
        page = results[offset : offset + limit]
        next_offset = offset + len(page)
        return {
            "id": sweep_id,
            "total": len(results),
            "offset": offset,
            "count": len(page),
            "next_offset": next_offset if next_offset < len(results) else None,
            "results": [encode_result(result) for result in page],
        }

    def cancel(self, sweep_id: str) -> Dict[str, Any]:
        sweep = self.get(sweep_id)
        if sweep.handle.cancel():
            # The handle settled immediately (it was still queued):
            # journal the terminal record now — the executor's observer
            # will confirm it later, and duplicate terminal records are
            # idempotent under replay.
            self._journal_advisory("cancelled", sweep_id, reason="client_cancel")
        return sweep.status()

    # -- health & metrics ----------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return {
            "ok": True,
            "uptime_s": round(time.time() - self.started_at, 3),
            "queue_depth": self.runner.queued(),
            "running": self.runner.running() is not None,
            "draining": self._draining,
        }

    def metrics(self) -> Dict[str, Any]:
        with self._lock:
            counters = dict(self._counters)
            states: Dict[str, int] = {}
            for sweep in self._sweeps.values():
                state = sweep.handle.state
                states[state] = states.get(state, 0) + 1
            seconds = sorted(self._sweep_seconds)
        latency = {"count": len(seconds)}
        for name, q in (("p50_s", 0.50), ("p95_s", 0.95), ("p99_s", 0.99)):
            if seconds:
                rank = min(len(seconds) - 1, int(round(q * (len(seconds) - 1))))
                latency[name] = round(seconds[rank], 6)
            else:
                latency[name] = 0.0
        with self._lock:
            recovery = {
                "recovered_sweeps": self._recovered_sweeps,
                "resubmitted_cells": self._resubmitted_cells,
                "warm_cells": self._warm_cells,
                "journal_corrupt_tail": self._corrupt_tail_events,
                "draining": self._draining,
            }
        return {
            "queue": {
                "depth": self.runner.queued(),
                "capacity": self.runner.queue_depth,
                "running": self.runner.running() is not None,
            },
            "sweeps": {**counters, "states": states},
            "result_store": self.store.stats_snapshot(),
            "sweep_latency": latency,
            "recovery": recovery,
            "journal": self.journal.stats_snapshot(),
            "clients": self.quotas.snapshot(),
            "limits": {
                "rate_per_s": self.config.rate,
                "burst": self.config.burst,
                "max_cells_per_request": self.config.max_cells_per_request,
            },
        }

    # -- lifecycle -----------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Flip into draining mode (idempotent): refuse new submissions
        with 503, stop starting queued sweeps, let the running one
        finish.  Returns immediately; :meth:`finish_drain` blocks."""
        with self._lock:
            if self._draining:
                return
            self._draining = True
        queued = self.runner.drain()
        self._emit(
            self._service_log(),
            "service_draining",
            queued=len(queued),
            running=self.runner.running() is not None,
        )

    def finish_drain(self, timeout: Optional[float] = None) -> None:
        """Wait for the running sweep, checkpoint the journal (queued
        sweeps survive to the next process), and stop the runner."""
        self.runner.wait_idle(timeout)
        self.journal.checkpoint()
        self._emit(self._service_log(), "service_drained", queued=self.runner.queued())
        self.runner.shutdown(wait=True, cancel_queued=False)

    def shutdown(self, wait: bool = True) -> None:
        # A draining shutdown must not cancel queued sweeps: their
        # journal records are the next process's work list, and a
        # cancel would write terminal records that erase them.
        self.runner.shutdown(wait=wait, cancel_queued=not self._draining)
