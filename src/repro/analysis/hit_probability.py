"""Monte Carlo estimation of P1 - P2 (Section V-A, Table III).

P1 and P2 are the conditional cache-hit probabilities of the later
access ``x_j`` of a pair of security-critical accesses:

    P1 = P(x_j hit | <x_i> = <x_j>)      (cache collision)
    P2 = P(x_j hit | <x_i> != <x_j>)     (no collision)

The attacker's signal is ``(P1 - P2)(t_miss - t_hit)`` (Equation 4);
random fill drives P1 - P2 to zero as the window grows.

Following the paper, the Monte Carlo runs full AES block encryptions of
random plaintext from a clean cache and averages over all pairs of the
16 final-round lookups into T4 (Te4).  The cache model here is
*functional* (hit/miss only): fills happen instantly, which matches the
paper's warm-up analysis and is what P1/P2 are defined over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.cache.context import DEFAULT_CONTEXT, AccessContext
from repro.cache.set_associative import SetAssociativeCache
from repro.cache.tagstore import TagStore
from repro.core.window import RandomFillWindow
from repro.crypto.traced_aes import AesMemoryLayout, TracedAES128
from repro.secure.newcache import Newcache
from repro.util.rng import HardwareRng, derive_seed

import random


class FunctionalRandomFillCache:
    """Hit/miss-only cache with the random cache fill strategy.

    On a miss the demand line is *not* installed; a uniformly random
    line within the window is installed instead (if absent).  A
    disabled window degrades to demand fetch.  This is the minimal
    model that Section V-A's probability derivation describes.
    """

    def __init__(self, tag_store: TagStore, window: RandomFillWindow,
                 rng: HardwareRng, ctx: AccessContext = DEFAULT_CONTEXT):
        self.tag_store = tag_store
        self.window = window
        self.rng = rng
        self.ctx = ctx

    def _draw_offset(self) -> int:
        """One windowed draw (Figure 4 mask path for power-of-two sizes).

        Factored out so checked mode (:mod:`repro.check`) can wrap it
        and validate every offset against the Table II window bounds.
        """
        window = self.window
        if window.is_power_of_two:
            return self.rng.draw_masked(window.size - 1) - window.a
        return self.rng.draw_below(window.size) - window.a

    def access_line(self, line_addr: int) -> bool:
        """Perform one access; returns hit/miss and applies the fill."""
        if self.tag_store.access(line_addr, self.ctx):
            return True
        window = self.window
        if window.disabled:
            self.tag_store.fill(line_addr, self.ctx)
            return False
        fill_line = line_addr + self._draw_offset()
        if fill_line >= 0 and not self.tag_store.probe(fill_line, self.ctx):
            self.tag_store.fill(fill_line, self.ctx)
        return False


@dataclass
class P1P2Result:
    """Monte Carlo output for one (cache, window) configuration."""

    p1: float
    p2: float
    collision_samples: int
    no_collision_samples: int
    trials: int

    @property
    def p1_minus_p2(self) -> float:
        return self.p1 - self.p2


TagStoreFactory = Callable[[], TagStore]


def sa_tag_store_factory(size_bytes: int = 32 * 1024,
                         associativity: int = 4) -> TagStoreFactory:
    """Factory for the paper's '4-way SA' Table III configuration."""
    return lambda: SetAssociativeCache(size_bytes, associativity)


def newcache_tag_store_factory(size_bytes: int = 32 * 1024,
                               seed: int = 1234) -> TagStoreFactory:
    """Factory for the 'Newcache' Table III configuration."""
    counter = [0]

    def make() -> TagStore:
        counter[0] += 1
        return Newcache(size_bytes, seed=derive_seed(seed, counter[0]))
    return make


def monte_carlo_p1_p2(tag_store_factory: TagStoreFactory,
                      window: RandomFillWindow,
                      trials: int = 20_000,
                      seed: int = 0,
                      key: Optional[bytes] = None,
                      layout: AesMemoryLayout = AesMemoryLayout()) -> P1P2Result:
    """Estimate P1 - P2 over the final-round T4 lookup pairs.

    Each trial encrypts one random-plaintext block starting from a clean
    cache; for every ordered pair (u, w), u < w, of the 16 final-round
    lookups, the hit/miss of lookup ``w`` lands in the collision or
    no-collision bucket according to line equality with lookup ``u``.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    master = random.Random(seed)
    key = key if key is not None else bytes(master.randrange(256)
                                            for _ in range(16))
    aes = TracedAES128(key, layout=layout)
    line_bits = 6  # 64-byte lines
    hit_sum = [0, 0]      # [no-collision, collision]
    samples = [0, 0]

    for trial in range(trials):
        plaintext = bytes(master.randrange(256) for _ in range(16))
        lookups: List[Tuple[int, int]] = []
        aes.encrypt_block_traced(
            plaintext,
            lookup_sink=lambda tbl, idx: lookups.append((tbl, idx)))
        cache = FunctionalRandomFillCache(
            tag_store_factory(), window,
            HardwareRng(derive_seed(seed, "fill", trial)))
        final_lines: List[int] = []
        final_hits: List[bool] = []
        for tbl, idx in lookups:
            line = layout.enc_table_addr(tbl, idx) >> line_bits
            hit = cache.access_line(line)
            if tbl == 4:
                final_lines.append(line)
                final_hits.append(hit)
        n = len(final_lines)
        for w in range(1, n):
            line_w = final_lines[w]
            hit_w = 1 if final_hits[w] else 0
            for u in range(w):
                bucket = 1 if final_lines[u] == line_w else 0
                hit_sum[bucket] += hit_w
                samples[bucket] += 1

    p1 = hit_sum[1] / samples[1] if samples[1] else 0.0
    p2 = hit_sum[0] / samples[0] if samples[0] else 0.0
    return P1P2Result(p1=p1, p2=p2,
                      collision_samples=samples[1],
                      no_collision_samples=samples[0],
                      trials=trials)
