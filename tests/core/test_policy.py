"""Tests for the random fill policy."""

from repro.cache.context import AccessContext
from repro.cache.mshr import RequestType
from repro.core.engine import RandomFillEngine
from repro.core.policy import RandomFillPolicy
from repro.core.window import RandomFillWindow
from repro.util.rng import HardwareRng


def make_policy(seed=0):
    engine = RandomFillEngine(HardwareRng(seed))
    return RandomFillPolicy(engine), engine


class TestRandomFillPolicy:
    def test_disabled_window_degrades_to_demand_fetch(self):
        policy, _ = make_policy()
        plan = policy.on_miss(100, AccessContext())
        assert plan.demand_type is RequestType.NORMAL
        assert plan.random_fill_lines == ()

    def test_enabled_window_nofill_plus_one_request(self):
        policy, engine = make_policy()
        engine.set_window(0, RandomFillWindow(16, 15))
        plan = policy.on_miss(100, AccessContext())
        assert plan.demand_type is RequestType.NOFILL
        assert len(plan.random_fill_lines) == 1
        assert 84 <= plan.random_fill_lines[0] <= 115

    def test_window_selected_by_thread(self):
        policy, engine = make_policy()
        engine.set_window(1, RandomFillWindow(2, 1))
        assert policy.on_miss(5, AccessContext(thread_id=0)).demand_type \
            is RequestType.NORMAL
        assert policy.on_miss(5, AccessContext(thread_id=1)).demand_type \
            is RequestType.NOFILL
