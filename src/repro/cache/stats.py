"""Counters shared by every cache level."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Event counters for one cache level.

    ``demand_misses`` follows the paper's MPKI definition: misses that
    cause a fetch request to the next level, *excluding* outstanding
    misses to the same cache line (those are counted in ``mshr_merges``).
    """

    accesses: int = 0
    hits: int = 0
    demand_misses: int = 0
    mshr_merges: int = 0
    fills: int = 0
    evictions: int = 0
    random_fill_issued: int = 0
    random_fill_dropped: int = 0
    next_level_requests: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def mpki(self, instructions: int) -> float:
        """Misses per kilo-instruction, per the paper's definition."""
        if instructions <= 0:
            raise ValueError(f"instructions must be positive, got {instructions}")
        return 1000.0 * self.demand_misses / instructions

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)
