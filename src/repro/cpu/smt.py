"""Two-thread SMT co-execution model (the Figure 8 experiment).

Two hardware threads share the L1 data cache and everything below it.
Each thread runs its own trace with its own architectural context
(thread id, random fill window registers).  The scheduler is
fine-grained: at every step the thread with the smallest local clock
issues its next memory reference, which interleaves the two access
streams the way simultaneous multithreading does.

The *primary* thread (the SPEC program in Figure 8) runs its trace to
completion; *background* threads (the AES stress loop) restart their
trace whenever it runs out, modelling "the cryptographic program
continuously does both AES decryption and encryption".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.cache.context import AccessContext
from repro.cache.controller import L1Controller
from repro.cpu.timing import (
    CHARGED_PRUNE_THRESHOLD,
    SimResult,
    _MlpWindow,
    prune_charged,
)
from repro.cpu.trace import Trace, TraceRecord


@dataclass
class SmtThread:
    """One hardware thread's workload for an SMT run."""

    trace: Sequence[TraceRecord]
    ctx: AccessContext
    repeat: bool = False  # restart the trace when exhausted

    def __post_init__(self) -> None:
        if not len(self.trace):
            raise ValueError("SMT thread trace must be non-empty")


class _ThreadState:
    __slots__ = ("thread", "trace", "write_ctx", "cursor", "now", "backlog",
                 "instructions", "done", "window", "charged")

    def __init__(self, thread: SmtThread, mlp: int, credit: int):
        self.thread = thread
        # The scheduler indexes one record at a time; a columnar trace
        # is materialized once so each step costs a list index, not a
        # numpy scalar extraction.
        trace = thread.trace
        self.trace = trace.records() if isinstance(trace, Trace) else trace
        ctx = thread.ctx
        self.write_ctx = AccessContext(
            thread_id=ctx.thread_id, domain=ctx.domain,
            critical=ctx.critical, is_write=True)
        self.cursor = 0
        self.now = 0
        self.backlog = 0
        self.instructions = 0
        self.done = False
        self.window = _MlpWindow(mlp, credit)
        self.charged: dict = {}


def run_smt(l1: L1Controller, threads: Sequence[SmtThread],
            issue_width: int = 4, overlap_credit: int = 8) -> List[SimResult]:
    """Co-run threads until every non-repeating trace completes.

    Returns one :class:`SimResult` per thread; cache counters are whole-
    run totals attributed to the L1/L2 (shared), so per-thread results
    carry instructions/cycles (hence IPC) while the first result carries
    the shared cache statistics.
    """
    if not threads:
        raise ValueError("run_smt needs at least one thread")
    if not any(not t.repeat for t in threads):
        raise ValueError("at least one thread must have a finite trace")
    l2 = l1.next_level
    l1_acc0, l1_hit0 = l1.stats.accesses, l1.stats.hits
    l1_miss0 = l1.stats.demand_misses
    l2_acc0, l2_miss0 = l2.stats.accesses, l2.stats.demand_misses
    mem0 = l2.dram.lines_transferred
    rf0 = l1.stats.random_fill_issued

    # Each SMT thread gets half the core's MSHR-level parallelism.
    mlp = max(1, l1.miss_queue.capacity // 2)
    states = [_ThreadState(t, mlp, overlap_credit) for t in threads]
    active = [s for s in states if not s.thread.repeat]
    hit_cost = l1.hit_latency

    while any(not s.done for s in active):
        state = min((s for s in states if not s.done), key=lambda s: s.now)
        trace = state.trace
        if state.cursor >= len(trace):
            if state.thread.repeat:
                state.cursor = 0
            else:
                state.done = True
                continue
        addr, gap, write = trace[state.cursor]
        state.cursor += 1
        state.instructions += gap
        state.backlog += gap
        state.now += state.backlog // issue_width
        state.backlog %= issue_width
        ctx = state.write_ctx if write else state.thread.ctx
        result = l1.access(addr, state.now, ctx)
        if result.l1_hit:
            state.now += hit_cost
        elif result.merged:
            completion = result.ready_at - hit_cost
            state.now += hit_cost
            if state.charged.get(result.line_addr) != completion:
                state.charged[result.line_addr] = completion
                state.now = state.window.note_miss(state.now, completion)
        else:
            state.charged[result.line_addr] = result.ready_at
            state.now += hit_cost + result.stalled_for_mshr
            state.now = state.window.note_miss(state.now, result.ready_at)
        if len(state.charged) >= CHARGED_PRUNE_THRESHOLD:
            # Bound per-thread charge tracking exactly as TimingModel.run
            # does: stale completions never change timing.
            state.charged = prune_charged(state.charged, state.now)
    for state in states:
        state.now = state.window.settle(state.now)
    l1.settle()

    shared = SimResult(
        instructions=0, cycles=0,
        l1_accesses=l1.stats.accesses - l1_acc0,
        l1_hits=l1.stats.hits - l1_hit0,
        l1_demand_misses=l1.stats.demand_misses - l1_miss0,
        l2_accesses=l2.stats.accesses - l2_acc0,
        l2_demand_misses=l2.stats.demand_misses - l2_miss0,
        memory_lines=l2.dram.lines_transferred - mem0,
        random_fill_issued=l1.stats.random_fill_issued - rf0,
    )
    results = []
    for i, state in enumerate(states):
        results.append(SimResult(
            instructions=state.instructions,
            cycles=state.now,
            l1_accesses=shared.l1_accesses if i == 0 else 0,
            l1_hits=shared.l1_hits if i == 0 else 0,
            l1_demand_misses=shared.l1_demand_misses if i == 0 else 0,
            l2_accesses=shared.l2_accesses if i == 0 else 0,
            l2_demand_misses=shared.l2_demand_misses if i == 0 else 0,
            memory_lines=shared.memory_lines if i == 0 else 0,
            random_fill_issued=shared.random_fill_issued if i == 0 else 0,
        ))
    return results
