"""Flush-Reload attack: the reuse based *storage* channel (Table I).

Attacker and victim share the security-critical data (e.g. lookup
tables in a shared library).  The attacker (1) flushes the shared lines
from the cache, (2) lets the victim run, (3) reloads each line and
times it — a fast reload means the victim touched that line.

Against demand fetch the observed line *is* the accessed line (channel
capacity log2 M).  Against random fill the filled line is uniform over
the victim's window, so the attacker's observation carries little
information (Section V-B).  :func:`run_flush_reload_trials` measures
the empirical accuracy and mutual information (via the shared
:mod:`repro.leakage.estimators`), which the Figure 5 capacity bound
caps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.analysis.hit_probability import FunctionalRandomFillCache
from repro.cache.tagstore import TagStore
from repro.core.window import RandomFillWindow
from repro.leakage.estimators import JointCounts, mutual_information_bits
from repro.secure.region import ProtectedRegion
from repro.util.rng import HardwareRng, derive_seed


@dataclass
class FlushReloadResult:
    """Aggregate outcome over many Flush-Reload rounds."""

    trials: int
    exact_accuracy: float        # P(inferred line == secret line)
    mutual_information: float    # Miller-Madow corrected I(secret; obs), bits
    observations_per_secret: Dict[int, Dict[Tuple[int, ...], int]]

    @property
    def joint(self) -> JointCounts:
        """The (secret, observation) counts as shared-estimator input."""
        return JointCounts.from_nested(self.observations_per_secret)


def run_flush_reload_trials(tag_store: TagStore,
                            region: ProtectedRegion,
                            window: RandomFillWindow,
                            trials: int = 2000,
                            seed: int = 0,
                            victim_cache=None) -> FlushReloadResult:
    """Run the Flush-Reload loop against a (possibly random fill) cache.

    Each round: flush the shared region, victim accesses one uniformly
    random secret line (through the fill strategy under test), attacker
    reloads every line of the region and records which were cached.
    The attacker's guess is the first observed hot line (under demand
    fetch there is exactly one and it is correct).  All randomness is
    derived from ``seed`` via :func:`repro.util.rng.derive_seed`.

    ``victim_cache`` overrides the victim's fill model (any object with
    ``access_line``); schemes with a registry ``victim_cache_factory``
    (e.g. Random-and-Safe) pass theirs in, everything else keeps the
    windowed default built here.
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    rng = random.Random(derive_seed(seed, "flush-reload", "secrets"))
    cache = victim_cache if victim_cache is not None else \
        FunctionalRandomFillCache(
            tag_store, window, HardwareRng(derive_seed(seed, "victim-fill")))
    lines = list(region.lines)
    m = len(lines)
    correct = 0
    joint = JointCounts()
    from repro.check import active_checker
    checker = active_checker()

    for _ in range(trials):
        if checker is not None:
            checker.maybe_validate_store(tag_store,
                                         where="flush_reload.tag_store")
        # Flush phase: evict the whole shared region.
        for line in lines:
            tag_store.invalidate(line)
        # Victim phase: one secret-dependent access.
        secret = rng.randrange(m)
        cache.access_line(lines[secret])
        # Reload phase: probe which shared lines became cached.  (The
        # attacker cannot see fills outside the shared region unless it
        # also shares that memory; the paper's best case for the
        # attacker assumes it can — we restrict to the region, plus the
        # window margins that still fall on shared lines.)
        observed = tuple(i for i, line in enumerate(lines)
                         if tag_store.probe(line))
        guess = observed[0] if observed else -1
        if guess == secret:
            correct += 1
        joint.add(secret, observed)

    nested = {secret: joint.row(secret) for secret in joint.secrets}
    return FlushReloadResult(
        trials=trials,
        exact_accuracy=correct / trials,
        mutual_information=mutual_information_bits(joint),
        observations_per_secret=nested,
    )
