"""Concurrent-program performance: Figure 8.

An SMT core co-runs a SPEC-like program (thread 0, the measured one)
with a cryptographic stress loop (thread 1) that "continuously does
both AES decryption and encryption of 32 KB random data", with all ten
AES tables security-critical.  The figure reports the SPEC program's
throughput (IPC) normalized to the demand-fetch baseline co-run.

Schemes compared (the paper's legend): baseline, PLcache+preload,
Randomfill+SA, Newcache, Randomfill+Newcache; cache configs 16 KB DM
and 32 KB 4-way SA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cache.context import AccessContext
from repro.core.window import RandomFillWindow
from repro.cpu.smt import SmtThread, run_smt
from repro.crypto.traced_aes import AesMemoryLayout
from repro.experiments.config import BASELINE_CONFIG, SimulatorConfig
from repro.experiments.perf_crypto import cached_cbc_trace
from repro.experiments.schemes import build_scheme
from repro.runner.cells import CellSpec
from repro.runner.pool import run_cells
from repro.workloads.cache import cached_workload
from repro.workloads.spec import FIGURE8_ORDER

FIGURE8_SCHEMES = ("baseline", "plcache_preload", "random_fill",
                   "newcache", "random_fill_newcache")
FIGURE8_CONFIGS = ((16 * 1024, 1), (32 * 1024, 4))
#: "A bidirectional random fill window with a size of 32 lines is used"
FIGURE8_WINDOW = RandomFillWindow.bidirectional(32)


@dataclass
class ConcurrentPoint:
    scheme: str
    benchmark: str
    l1_size: int
    l1_assoc: int
    ipc: float
    normalized_throughput: float = 0.0


def run_concurrent(scheme_name: str, benchmark: str,
                   config: SimulatorConfig,
                   n_refs: int = 60_000,
                   aes_kb: int = 4,
                   seed: int = 0,
                   spec_trace=None, aes_trace=None) -> float:
    """Co-run one benchmark with the AES stress thread; returns the
    benchmark's IPC."""
    layout = AesMemoryLayout()
    protected = layout.all_regions()
    scheme = build_scheme(scheme_name, config, seed=seed,
                          protected=protected)
    if scheme.os is not None:
        # Only the cryptographic thread (1) enables random fill.
        scheme.os.set_rr(FIGURE8_WINDOW.a, FIGURE8_WINDOW.b, thread_id=1)
    if spec_trace is None:
        spec_trace = cached_workload(benchmark, n_refs=n_refs, seed=seed)
    if aes_trace is None:
        aes_trace = cached_cbc_trace(message_kb=aes_kb, seed=seed,
                                     decrypt_too=True)
    # PLcache+preload: the crypto thread locks all ten tables up front.
    scheme.prepare(ctx=AccessContext(thread_id=1))
    threads = [
        SmtThread(trace=spec_trace, ctx=AccessContext(thread_id=0)),
        SmtThread(trace=aes_trace, ctx=AccessContext(thread_id=1),
                  repeat=True),
    ]
    results = run_smt(scheme.l1, threads,
                      issue_width=config.issue_width,
                      overlap_credit=config.overlap_credit)
    return results[0].ipc


def figure8(benchmarks: Sequence[str] = FIGURE8_ORDER,
            cache_configs: Sequence[Tuple[int, int]] = FIGURE8_CONFIGS,
            schemes: Sequence[str] = FIGURE8_SCHEMES,
            n_refs: int = 60_000,
            aes_kb: int = 4,
            seed: int = 0,
            config: SimulatorConfig = BASELINE_CONFIG,
            jobs: Optional[int] = None) -> List[ConcurrentPoint]:
    """The Figure 8 sweep; normalized to the baseline scheme per cell.

    Cells fan out over the parallel runner (``jobs``/``REPRO_JOBS``).
    """
    specs: List[CellSpec] = []
    for size, assoc in cache_configs:
        cfg = config.with_l1d(size, assoc)
        for benchmark in benchmarks:
            for scheme_name in schemes:
                specs.append(CellSpec(
                    kind="concurrent", scheme=scheme_name,
                    benchmark=benchmark, n_refs=n_refs, aes_kb=aes_kb,
                    seed=seed, config=cfg))
    results = iter(run_cells(specs, jobs=jobs))
    points: List[ConcurrentPoint] = []
    for size, assoc in cache_configs:
        for benchmark in benchmarks:
            base_ipc: Optional[float] = None
            for scheme_name in schemes:
                ipc = next(results)
                if scheme_name == "baseline":
                    base_ipc = ipc
                points.append(ConcurrentPoint(
                    scheme=scheme_name, benchmark=benchmark,
                    l1_size=size, l1_assoc=assoc, ipc=ipc,
                    normalized_throughput=ipc / base_ipc))
    return points
