"""Per-client rate limiting and quota accounting for the service.

Each client (the ``X-Repro-Client`` header, falling back to the peer
address) gets a token bucket: ``rate`` submissions per second refill,
``burst`` capacity.  A submission that finds the bucket empty is
refused — the HTTP layer answers with a structured 429 carrying
``retry_after_s``.

Alongside the buckets, :class:`ClientQuotas` keeps per-client
accounting (sweeps accepted/rejected, cells submitted) which
``/metrics`` reports, so a service operator can see who is producing
the load without any external infrastructure.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional


class TokenBucket:
    """Classic token bucket; ``allow()`` is called under the owner's lock."""

    def __init__(self, rate: float, burst: float):
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.last_refill = time.monotonic()

    def allow(self, now: Optional[float] = None) -> bool:
        now = time.monotonic() if now is None else now
        self.tokens = min(self.burst, self.tokens + (now - self.last_refill) * self.rate)
        self.last_refill = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def retry_after_s(self) -> float:
        """Seconds until one token is available (0 when rate is 0)."""
        if self.rate <= 0:
            return 0.0
        return max(0.0, (1.0 - self.tokens) / self.rate)


class ClientQuotas:
    """Token bucket + usage counters per client id, thread-safe."""

    def __init__(self, rate: float, burst: float):
        if rate <= 0:
            raise ValueError(f"rate must be > 0 submissions/s, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = burst
        self._lock = threading.Lock()
        self._buckets: Dict[str, TokenBucket] = {}
        self._usage: Dict[str, Dict[str, int]] = {}

    def _usage_for(self, client: str) -> Dict[str, int]:
        return self._usage.setdefault(client, {"accepted": 0, "rejected": 0, "cells": 0})

    def admit(self, client: str) -> Optional[float]:
        """``None`` if the submission may proceed, else the suggested
        retry-after in seconds (and the rejection is accounted)."""
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = self._buckets[client] = TokenBucket(self.rate, self.burst)
            if bucket.allow():
                return None
            self._usage_for(client)["rejected"] += 1
            return round(bucket.retry_after_s(), 3)

    def account_accepted(self, client: str, cells: int) -> None:
        with self._lock:
            usage = self._usage_for(client)
            usage["accepted"] += 1
            usage["cells"] += cells

    def account_rejected(self, client: str) -> None:
        """A non-rate rejection (bad spec, full queue) — counted so the
        quota view reflects every refused submission."""
        with self._lock:
            self._usage_for(client)["rejected"] += 1

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        with self._lock:
            return {client: dict(usage) for client, usage in self._usage.items()}
