"""Ordered fan-out of sweep cells over worker processes.

``run_cells`` is the single entry point every figure sweep funnels
through.  Results always come back in spec order, so callers regroup
them positionally regardless of which worker finished first.

Job count resolution (first match wins):

1. an explicit ``jobs=`` argument (``--jobs`` on the CLI),
2. the ``REPRO_JOBS`` environment variable,
3. ``os.cpu_count()``.

``jobs == 1`` (or a single cell) runs inline — no executor, no pickle
round-trip — which is also what keeps the whole suite usable on
single-core machines and under debuggers.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence

from repro.runner.cells import run_cell

#: statistics of the most recent ``run_cells`` call in this process
_LAST_RUN: Dict[str, float] = {}


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve the worker count: argument > ``REPRO_JOBS`` > cpu count."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            jobs = int(env)
        else:
            jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def run_cells(specs: Sequence, jobs: Optional[int] = None,
              chunksize: Optional[int] = None) -> List:
    """Run every cell; returns results in the order of ``specs``.

    Accepts :class:`CellSpec` instances or any other picklable spec
    :func:`run_cell` understands (specs with a ``run()`` method).

    ``jobs`` follows :func:`resolve_jobs`; ``chunksize`` (pool mode
    only) defaults to ``len(specs) // (jobs * 4)`` so each worker gets
    several batches, balancing stragglers against pickle overhead.
    """
    jobs = resolve_jobs(jobs)
    started = time.perf_counter()
    if jobs == 1 or len(specs) <= 1:
        results = [run_cell(spec) for spec in specs]
        jobs_used = 1
    else:
        jobs_used = min(jobs, len(specs))
        if chunksize is None:
            chunksize = max(1, len(specs) // (jobs_used * 4))
        with ProcessPoolExecutor(max_workers=jobs_used) as pool:
            results = list(pool.map(run_cell, specs, chunksize=chunksize))
    elapsed = time.perf_counter() - started
    _LAST_RUN.clear()
    _LAST_RUN.update(
        cells=len(specs), jobs=jobs_used, seconds=elapsed,
        cells_per_sec=(len(specs) / elapsed) if elapsed > 0 else 0.0)
    return results


def last_run_stats() -> Dict[str, float]:
    """Timing of the most recent :func:`run_cells` call (a copy)."""
    return dict(_LAST_RUN)
