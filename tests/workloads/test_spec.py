"""Tests for the named SPEC-like benchmark registry."""

import pytest

from repro.cpu.trace import validate_trace
from repro.workloads.spec import (
    FIGURE8_ORDER,
    SPEC_BENCHMARKS,
    STREAMING_BENCHMARKS,
    make_workload,
)


class TestRegistry:
    def test_eight_benchmarks(self):
        assert len(SPEC_BENCHMARKS) == 8

    def test_figure8_order_complete(self):
        assert sorted(FIGURE8_ORDER) == sorted(SPEC_BENCHMARKS)

    def test_streaming_subset(self):
        assert set(STREAMING_BENCHMARKS) <= set(SPEC_BENCHMARKS)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            make_workload("gcc")

    def test_all_generate_valid_traces(self):
        for name in SPEC_BENCHMARKS:
            trace = make_workload(name, n_refs=500, seed=1)
            assert len(trace) == 500
            list(validate_trace(trace))

    def test_deterministic(self):
        assert make_workload("astar", 300, seed=5) == \
            make_workload("astar", 300, seed=5)

    def test_seeds_differ(self):
        assert make_workload("astar", 300, seed=1) != \
            make_workload("astar", 300, seed=2)


class TestCharacter:
    def test_streaming_benchmarks_move_forward(self):
        for name in STREAMING_BENCHMARKS:
            trace = make_workload(name, n_refs=2000, seed=1)
            lines = [addr // 64 for addr, _, _ in trace]
            assert lines[-1] - lines[0] > 50

    def test_hmmer_has_tiny_footprint(self):
        trace = make_workload("hmmer", n_refs=5000, seed=1)
        lines = {addr // 64 for addr, _, _ in trace}
        assert len(lines) <= 512

    def test_libquantum_footprint_exceeds_l1(self):
        trace = make_workload("libquantum", n_refs=20000, seed=1)
        lines = {addr // 64 for addr, _, _ in trace}
        assert len(lines) > 512  # bigger than a 32 KB L1
