"""Tests for the versioned JSON spec codec (round trips, validation)."""

import dataclasses

import pytest

from repro.experiments.config import BASELINE_CONFIG
from repro.leakage.sweep import LeakageCellSpec, leakage_grid
from repro.memory.dram import DramConfig
from repro.runner.cells import CellSpec
from repro.runner.result_cache import ResultCache
from repro.service.codec import (
    CODEC_VERSION,
    SpecValidationError,
    decode_spec,
    decode_sweep,
    encode_result,
    encode_spec,
    encode_sweep,
)

CELL_SPECS = [
    CellSpec(kind="general", benchmark="astar", window=(4, 3), n_refs=2000),
    CellSpec(kind="general", benchmark="bzip2", window=None, warm=False),
    CellSpec(kind="crypto", scheme="plcache_preload", window=None, message_kb=8,
             seed=7),
    CellSpec(kind="concurrent", scheme="random_fill", benchmark="sjeng",
             window=(16, 15), aes_kb=2),
    CellSpec(kind="profile", benchmark="lbm", window=(8, 7), seed=3),
    CellSpec(kind="general", benchmark="astar", window=(0, 0),
             config=BASELINE_CONFIG.with_l1d(8 * 1024, 1)),
    CellSpec(kind="general", benchmark="astar", window=(2, 1),
             config=dataclasses.replace(
                 BASELINE_CONFIG, dram=DramConfig(t_cas=30, num_banks=4))),
]

LEAKAGE_SPECS = leakage_grid(seeds=(0, 1), window_sizes=(2, 8))[:12] + [
    LeakageCellSpec(channel="occupancy", scheme="newcache", window=None,
                    m_lines=8, trials=11, curve_points=(1, 4),
                    curve_repeats=17),
]


class TestRoundTrip:
    @pytest.mark.parametrize("spec", CELL_SPECS + LEAKAGE_SPECS,
                             ids=lambda s: repr(s)[:60])
    def test_decode_encode_is_identity(self, spec):
        assert decode_spec(encode_spec(spec)) == spec

    @pytest.mark.parametrize("spec", CELL_SPECS + LEAKAGE_SPECS,
                             ids=lambda s: repr(s)[:60])
    def test_round_trip_preserves_result_cache_key(self, spec):
        # The pin the warm-grid path rests on: an HTTP-submitted spec
        # must hit the same content-addressed entry as a local one.
        decoded = decode_spec(encode_spec(spec))
        assert repr(decoded) == repr(spec)
        assert ResultCache.fingerprint(decoded) == ResultCache.fingerprint(spec)

    def test_sweep_envelope_round_trip(self):
        specs = CELL_SPECS[:2] + LEAKAGE_SPECS[:2]
        payload = encode_sweep(specs)
        assert payload["version"] == CODEC_VERSION
        assert decode_sweep(payload) == specs

    def test_encoded_payload_is_json_clean(self):
        import json
        text = json.dumps(encode_sweep(CELL_SPECS + LEAKAGE_SPECS))
        assert decode_sweep(json.loads(text)) == CELL_SPECS + LEAKAGE_SPECS


class TestEnvelopeValidation:
    def test_missing_version(self):
        with pytest.raises(SpecValidationError, match="missing spec codec"):
            decode_sweep({"cells": [encode_spec(CELL_SPECS[0])]})

    def test_unknown_version_names_both_versions(self):
        with pytest.raises(SpecValidationError) as excinfo:
            decode_sweep({"version": 999, "cells": []})
        assert "999" in str(excinfo.value)
        assert str(CODEC_VERSION) in str(excinfo.value)

    def test_body_must_be_object(self):
        with pytest.raises(SpecValidationError, match="JSON object"):
            decode_sweep([1, 2])

    def test_cells_must_be_nonempty_list(self):
        with pytest.raises(SpecValidationError, match="non-empty"):
            decode_sweep({"version": CODEC_VERSION, "cells": []})

    def test_error_names_the_offending_cell(self):
        payload = encode_sweep([CELL_SPECS[0], CELL_SPECS[1]])
        payload["cells"][1]["kind"] = "bogus"
        with pytest.raises(SpecValidationError, match=r"cells\[1\]"):
            decode_sweep(payload)


class TestSpecValidation:
    def test_unknown_family(self):
        with pytest.raises(SpecValidationError, match="unknown spec family"):
            decode_spec({"family": "nope"})

    def test_unknown_field_rejected(self):
        payload = encode_spec(CELL_SPECS[0])
        payload["surprise"] = 1
        with pytest.raises(SpecValidationError, match="surprise"):
            decode_spec(payload)

    def test_window_must_be_pair(self):
        payload = encode_spec(CELL_SPECS[0])
        payload["window"] = [1, 2, 3]
        with pytest.raises(SpecValidationError, match="window"):
            decode_spec(payload)

    def test_window_bounds_must_be_ints(self):
        payload = encode_spec(CELL_SPECS[0])
        payload["window"] = [1.5, 2]
        with pytest.raises(SpecValidationError, match="window"):
            decode_spec(payload)

    def test_int_fields_reject_strings_and_bools(self):
        payload = encode_spec(CELL_SPECS[0])
        payload["n_refs"] = "many"
        with pytest.raises(SpecValidationError, match="n_refs"):
            decode_spec(payload)
        payload["n_refs"] = True
        with pytest.raises(SpecValidationError, match="n_refs"):
            decode_spec(payload)

    def test_dataclass_validation_is_surfaced(self):
        # __post_init__ errors (unknown scheme) become SpecValidationError.
        payload = encode_spec(LEAKAGE_SPECS[0])
        payload["scheme"] = "unheard_of"
        with pytest.raises(SpecValidationError, match="unheard_of"):
            decode_spec(payload)

    def test_unknown_config_field_rejected(self):
        payload = encode_spec(CELL_SPECS[0])
        payload["config"]["warp_drive"] = 9
        with pytest.raises(SpecValidationError, match="warp_drive"):
            decode_spec(payload)

    def test_omitted_config_defaults_to_baseline(self):
        payload = encode_spec(CELL_SPECS[0])
        del payload["config"]
        assert decode_spec(payload).config == BASELINE_CONFIG

    def test_curve_points_must_be_int_list(self):
        payload = encode_spec(LEAKAGE_SPECS[0])
        payload["curve_points"] = ["a"]
        with pytest.raises(SpecValidationError, match="curve_points"):
            decode_spec(payload)


class TestResultEncoding:
    def test_scalar(self):
        assert encode_result(0.75) == {"type": "scalar", "value": 0.75}

    def test_sim_result_dataclass(self):
        from repro.cpu.timing import SimResult
        result = SimResult(instructions=10, cycles=20, l1_accesses=5,
                           l1_hits=4, l1_demand_misses=1, l2_accesses=1,
                           l2_demand_misses=1, memory_lines=1)
        encoded = encode_result(result)
        assert encoded["type"] == "SimResult"
        assert encoded["instructions"] == 10
        assert encoded["cycles"] == 20

    def test_leakage_result_uses_to_json(self):
        spec = LeakageCellSpec(channel="eq7", scheme="random_fill",
                               window=(1, 0), trials=20, curve_points=(1,),
                               curve_repeats=5)
        encoded = encode_result(spec.run())
        assert encoded["type"] == "LeakageCellResult"
        assert encoded["window"] == [1, 0]
        assert "mi_bits" in encoded

    def test_determinism_pins_bit_identity(self):
        spec = LeakageCellSpec(channel="eq7", scheme="random_fill",
                               window=(2, 1), trials=30, curve_points=(1, 2),
                               curve_repeats=5)
        assert encode_result(spec.run()) == encode_result(spec.run())

    def test_unencodable_falls_back_to_repr(self):
        encoded = encode_result(object())
        assert encoded["type"] == "object"
        assert "repr" in encoded
