"""Functional per-scheme cache builders for the leakage channels.

The leakage attacks operate on the *functional* (hit/miss-only) level,
like the Section V-A Monte Carlo: what matters for the channel is which
lines are resident, not the cycle counts.  A :class:`FunctionalScheme`
bundles a freshly built tag store, the victim's fill strategy (demand
fetch, a random fill window, or a scheme-specific model), the
attacker/victim access contexts and the per-trial victim reset — one
uniform surface the Flush-Reload and occupancy loops can run against
any design through.

Which schemes exist, how their stores are built and which fill strategy
their victim runs all come from the scheme-plugin registry
(:mod:`repro.schemes`): ``LEAKAGE_SCHEMES`` is computed from the
registered specs, and registering a new :class:`~repro.schemes.SchemeSpec`
with a ``store_factory`` makes it buildable here with no further code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, FrozenSet, Optional

import numpy as np

from repro.analysis.hit_probability import FunctionalRandomFillCache
from repro.cache.context import AccessContext
from repro.cache.tagstore import TagStore
from repro.core.window import (
    DISABLED_WINDOW,
    RandomFillWindow,
    validate_window,
)
from repro.schemes import StoreGeometry, functional_scheme_names, get_scheme
from repro.schemes import random_fill_scheme_names
from repro.secure.region import ProtectedRegion
from repro.util.rng import HardwareRng, derive_seed

#: every registered scheme with a functional store (registry order)
LEAKAGE_SCHEMES = functional_scheme_names()

#: schemes whose victim runs the random fill strategy
RANDOM_FILL_SCHEMES = random_fill_scheme_names()

VICTIM_CTX = AccessContext(thread_id=0, domain=0)
ATTACKER_CTX = AccessContext(thread_id=1, domain=1)
_LOCK_CTX = AccessContext(thread_id=0, domain=0, lock=True)


def resident_array(store: TagStore) -> np.ndarray:
    """The store's resident line addresses as an int64 array.

    Preserves ``resident_lines()`` iteration order, so callers that go
    on to mutate the store line by line (e.g. invalidation) visit lines
    in exactly the order the per-line loop would have.
    """
    return np.fromiter(store.resident_lines(), dtype=np.int64)


@dataclass
class FunctionalScheme:
    """A built functional scheme plus the knobs the leakage loops need.

    ``victim_cache`` is any object exposing ``access_line(line) -> bool``
    — the default windowed :class:`FunctionalRandomFillCache` or a
    scheme's custom victim model (e.g. Random-and-Safe's decoy fill).
    """

    name: str
    tag_store: TagStore
    window: RandomFillWindow
    region: ProtectedRegion
    victim_cache: Any
    victim_ctx: AccessContext = VICTIM_CTX
    attacker_ctx: AccessContext = ATTACKER_CTX
    #: every line a victim access can install (region plus window margins)
    victim_lines: FrozenSet[int] = field(default_factory=frozenset)
    preloaded: bool = False
    #: the victim model is scheme-specific (not the windowed default)
    custom_fill: bool = False

    @property
    def capacity_lines(self) -> int:
        return self.tag_store.capacity_lines

    def victim_access(self, line_addr: int) -> bool:
        """One victim access through the scheme's fill strategy."""
        return self.victim_cache.access_line(line_addr)

    def reset_victim(self) -> None:
        """Return the victim's cache state to its trial-start condition.

        Models a fresh victim run: every line the victim could have
        installed is invalidated; for ``plcache_preload`` the preload
        routine then re-runs (the paper's defence re-preloads on every
        context switch / program start).
        """
        store = self.tag_store
        victim_lines = self.victim_lines
        # A frozenset listcomp beats numpy membership here: the victim
        # set is tiny and ``in`` is O(1), while np.isin pays sort/search
        # constants (measured 8us vs 29us per reset at 128 lines).
        resident = [line for line in store.resident_lines() if line in victim_lines]
        for line in resident:
            store.invalidate(line)
        if self.preloaded:
            self._preload()

    def _preload(self) -> None:
        for line in self.region.lines:
            if not self.tag_store.access(line, _LOCK_CTX):
                self.tag_store.fill(line, _LOCK_CTX)


def build_functional_scheme(
    name: str,
    region: ProtectedRegion,
    window: Optional[RandomFillWindow] = None,
    cache_bytes: int = 8 * 1024,
    associativity: int = 4,
    seed: int = 0,
) -> FunctionalScheme:
    """Construct a registered functional scheme around ``region``.

    ``window`` is required by the random fill schemes and rejected (if
    enabled) by every other fill strategy.  Every RNG the scheme owns is
    derived from ``seed`` via :func:`repro.util.rng.derive_seed`; the
    derivation strings are per-scheme stable (golden-pinned), so a
    registry migration can never silently move measured results.
    Unknown names raise :class:`ValueError` listing the registered
    functional schemes.
    """
    spec = get_scheme(name, functional=True)
    if spec.uses_window:
        if window is None or window.disabled:
            raise ValueError(f"scheme {name!r} needs an enabled window")
    elif window is not None and not window.disabled:
        raise ValueError(f"scheme {name!r} cannot honour a random fill window")
    window = window if spec.uses_window else DISABLED_WINDOW

    geometry = StoreGeometry(
        cache_bytes=cache_bytes,
        associativity=associativity,
        seed=derive_seed(seed, "leakage", name, "store"),
    )
    store: TagStore = spec.store_factory(geometry)

    validate_window(
        window, capacity_lines=store.capacity_lines, where=f"scheme {name!r}"
    )
    fill_rng = HardwareRng(derive_seed(seed, "leakage", name, "victim-fill"))
    if spec.victim_cache_factory is not None:
        victim_cache = spec.victim_cache_factory(
            store, window, fill_rng, region, VICTIM_CTX
        )
    else:
        victim_cache = FunctionalRandomFillCache(
            store, window, fill_rng, ctx=VICTIM_CTX
        )
    first = region.first_line
    victim_lines = frozenset(
        range(max(0, first - window.a), first + region.num_lines + window.b)
    )
    scheme = FunctionalScheme(
        name=name,
        tag_store=store,
        window=window,
        region=region,
        victim_cache=victim_cache,
        victim_lines=victim_lines,
        preloaded=spec.preload,
        custom_fill=spec.has_custom_fill,
    )
    if scheme.preloaded:
        scheme._preload()
    return scheme
