"""PLcache: partition-locked cache (Wang & Lee, ISCA'07) + preload.

Each cache line carries a process identifier and a locking bit.  Special
load/store instructions set (lock) or clear (unlock) the bit when the
access hits or fills; locked lines are never evicted by other processes.
The lock-aware machinery lives in the base
:class:`~repro.cache.set_associative.SetAssociativeCache` (its
replacement is lock-aware and honours ``ctx.lock``/``ctx.unlock``);
this module adds the PLcache type and the *preload* routine used by the
"PLcache+preload" constant-time defence the paper compares against
(Section III-B): load-and-lock every security-critical line, re-run on
context switches.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cache.context import AccessContext
from repro.cache.controller import L1Controller
from repro.cache.set_associative import SetAssociativeCache


class PLCache(SetAssociativeCache):
    """Set-associative cache with per-line locking.

    Identical to the base SA cache; the subclass exists so configuration
    code and reports can name the design, and to host PLcache-specific
    inspection helpers.
    """

    def locked_lines(self) -> "list[int]":
        return [line.line_addr
                for cache_set in self._sets
                for line in cache_set if line.locked]

    def unlock_all(self, owner: int) -> None:
        """Release every lock held by ``owner`` (process teardown)."""
        for cache_set in self._sets:
            for line in cache_set:
                if line.locked and line.owner == owner:
                    line.locked = False


def preload_and_lock(l1: L1Controller,
                     regions: "RegionSet | Iterable[ProtectedRegion]",
                     ctx: AccessContext, now: int) -> int:
    """Preload every line of ``regions`` with locking loads.

    Models the "PLcache+preload" software routine: one special
    (locking) load per security-critical cache line, executed at program
    start and on every context switch.  Returns the cycle at which the
    preload completes; the caller charges this to the victim's runtime.
    """
    lock_ctx = replace(ctx, lock=True, unlock=False)
    line_size = l1.amap.line_size
    for region in regions:
        for line_addr in region.lines:
            result = l1.access(line_addr * line_size, now, lock_ctx)
            now = result.ready_at
    return now
