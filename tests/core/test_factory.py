"""Tests for the one-call random fill hierarchy constructor."""

from repro.cache import AccessContext
from repro.core import build_random_fill_hierarchy
from repro.core.window import RandomFillWindow
from repro.secure.newcache import Newcache


class TestFactory:
    def test_defaults_demand_fetch(self):
        system = build_random_fill_hierarchy(seed=1)
        assert system.engine.window_for(0).disabled
        system.l1.access(0, now=0)
        system.l1.settle()
        assert system.l1.tag_store.probe(0)  # demand fill happened

    def test_window_via_os(self):
        system = build_random_fill_hierarchy(seed=1)
        system.os.set_window(-16, 5)
        assert system.engine.window_for(0) == RandomFillWindow(16, 15)
        system.l1.access(0x10000, now=0)
        system.l1.settle()
        # demand line not installed (nofill); something nearby may be
        assert system.l1.stats.demand_misses == 1

    def test_custom_tag_store(self):
        nc = Newcache(8 * 1024, seed=3)
        system = build_random_fill_hierarchy(seed=1, l1_tag_store=nc)
        assert system.l1.tag_store is nc

    def test_random_fill_generates_window_hits(self):
        system = build_random_fill_hierarchy(seed=2)
        system.os.set_rr(16, 15)
        ctx = AccessContext()
        now = 0
        for _ in range(4):
            for line in range(32):
                r = system.l1.access(0x10000 + line * 64, now, ctx)
                now = r.ready_at + 50
        assert system.l1.stats.hits > 0
        assert system.l1.stats.random_fill_issued > 0
