"""Tests for the Table I attack classification registry."""

from repro.attacks import CLASSIFICATION


class TestTableI:
    def test_four_quadrants(self):
        assert len(CLASSIFICATION) == 4

    def test_quadrant_contents(self):
        assert CLASSIFICATION[("contention", "access-driven")] == "prime-probe"
        assert CLASSIFICATION[("contention", "timing-driven")] == "evict-time"
        assert CLASSIFICATION[("reuse", "access-driven")] == "flush-reload"
        assert CLASSIFICATION[("reuse", "timing-driven")] == "cache-collision"

    def test_axes(self):
        mechanisms = {k[0] for k in CLASSIFICATION}
        observations = {k[1] for k in CLASSIFICATION}
        assert mechanisms == {"contention", "reuse"}
        assert observations == {"access-driven", "timing-driven"}
