"""Tests for the ResultStore interface and its disk backend."""

import threading

from repro.runner.cells import CellSpec
from repro.runner.pool import run_cells
from repro.runner.result_cache import ResultCache
from repro.service.store import DiskResultStore


def make_store(tmp_path):
    return DiskResultStore(ResultCache(disk_dir=str(tmp_path / "results")))


class TestDiskResultStore:
    def test_delegates_to_cache(self, tmp_path):
        store = make_store(tmp_path)
        spec = CellSpec(kind="general", benchmark="astar", window=(2, 1),
                        n_refs=500, seed=5)
        assert store.enabled
        fingerprint, cached = store.lookup_spec(spec)
        assert fingerprint is not None and cached is None
        store.store(fingerprint, {"cycles": 123})
        again, cached = store.lookup_spec(spec)
        assert again == fingerprint
        assert cached == {"cycles": 123}

    def test_defaults_to_process_wide_cache(self):
        from repro.runner.result_cache import RESULT_CACHE
        assert DiskResultStore().cache is RESULT_CACHE

    def test_run_cells_accepts_store_as_cache(self, tmp_path):
        store = make_store(tmp_path)
        specs = [CellSpec(kind="general", benchmark="astar", window=(0, 0),
                          n_refs=400, seed=2)]
        cold = run_cells(specs, jobs=1, result_cache=store, progress=False)
        warm = run_cells(specs, jobs=1, result_cache=store, progress=False)
        assert cold == warm
        snapshot = store.stats_snapshot()
        assert snapshot["hits"] >= 1
        assert snapshot["backend"] == "disk"

    def test_stats_snapshot_shape(self, tmp_path):
        store = make_store(tmp_path)
        snapshot = store.stats_snapshot()
        for key in ("hits", "misses", "store_failures", "corrupt_evicted",
                    "enabled", "hit_rate", "backend"):
            assert key in snapshot
        assert snapshot["hit_rate"] == 0.0

    def test_hit_rate(self, tmp_path):
        store = make_store(tmp_path)
        spec = CellSpec(kind="general", benchmark="astar", window=(1, 0),
                        n_refs=300)
        fingerprint, _ = store.lookup_spec(spec)      # miss
        store.store(fingerprint, 1.0)
        store.lookup_spec(spec)                       # hit
        snapshot = store.stats_snapshot()
        assert snapshot["hits"] == 1
        assert snapshot["misses"] == 1
        assert snapshot["hit_rate"] == 0.5


class TestStatsThreadSafety:
    def test_concurrent_counter_bumps_are_exact(self, tmp_path):
        # Satellite 1: the snapshot /metrics reads must agree with the
        # CLI's counters even when many threads hammer the cache.
        cache = ResultCache(disk_dir=str(tmp_path / "results"))
        per_thread, threads = 500, 8

        def hammer():
            for _ in range(per_thread):
                cache._count("hits")
                cache._count("misses")

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        snapshot = cache.stats_snapshot()
        assert snapshot["hits"] == per_thread * threads
        assert snapshot["misses"] == per_thread * threads

    def test_concurrent_lookup_store_roundtrips(self, tmp_path):
        cache = ResultCache(disk_dir=str(tmp_path / "results"))
        store = DiskResultStore(cache)
        specs = [CellSpec(kind="general", benchmark="astar", window=(w, 0),
                          n_refs=100, seed=s)
                 for w in range(4) for s in range(4)]
        for spec in specs:
            fingerprint, _ = store.lookup_spec(spec)
            store.store(fingerprint, repr(spec))
        errors = []

        def reader():
            try:
                for _ in range(50):
                    for spec in specs:
                        _, cached = store.lookup_spec(spec)
                        assert cached == repr(spec)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        workers = [threading.Thread(target=reader) for _ in range(6)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert not errors
        assert store.stats_snapshot()["hits"] == 6 * 50 * len(specs)
