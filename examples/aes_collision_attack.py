#!/usr/bin/env python3
"""Cache collision attack against AES — and the random fill defence.

Mounts the final-round collision attack of Section II-C / Figure 2
against a simulated AES service:

1. on a conventional demand-fetch cache, the average encryption time
   dips at c0 ^ c1 == k10_0 ^ k10_1, leaking a key-byte XOR;
2. on the random fill cache with a window covering the table, the dip
   disappears (P1 - P2 = 0, Section V-A).

The run uses 15,000 measurements per configuration (~1 minute); the
paper used 2^17 on gem5 and our Figure 2 benchmark uses 40k+.  At this
size the demand-fetch dip is visible in the rank statistics even when
the exact argmin has not settled yet.

Run:  python examples/aes_collision_attack.py [measurements]
"""

import sys

from repro.attacks import FinalRoundCollisionAttack
from repro.experiments.security import build_attack_victim

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


def attack(window_size, measurements):
    victim = build_attack_victim(window_size, "sa", key=KEY, seed=7)
    atk = FinalRoundCollisionAttack(victim, pairs=[(0, 1)], seed=3)
    atk.collect(measurements)
    estimate = atk.estimates()[0]
    curve = dict(atk.timing_characteristic((0, 1)))
    rank = sorted(curve, key=curve.get).index(estimate.true_value)
    return estimate, curve, rank


def main():
    measurements = int(sys.argv[1]) if len(sys.argv) > 1 else 15_000
    print("Final-round cache collision attack (Bonneau-Mironov style)")
    print("=" * 64)
    for label, size in (("demand fetch cache", 1),
                        ("random fill cache, window size 32", 32)):
        estimate, curve, rank = attack(size, measurements)
        print(f"\n{label} ({measurements} measurements)")
        print(f"  true k10_0 ^ k10_1        {estimate.true_value}")
        print(f"  argmin of timing curve    {estimate.recovered}")
        print(f"  rank of true value        {rank} / 256 "
              f"(0 = fully recovered)")
        print(f"  dip at true value         {curve[estimate.true_value]:+.2f}"
              " cycles vs bucket mean")
    print("\nOn demand fetch the true XOR sinks toward rank 0 as")
    print("measurements accumulate; on the random fill cache its rank")
    print("stays uniformly random no matter how long the attacker runs")
    print("(Table III: no success after 2^24 measurements).")


if __name__ == "__main__":
    main()
