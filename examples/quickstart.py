#!/usr/bin/env python3
"""Quickstart: build a random fill cache and watch it work.

Builds the paper's Table IV hierarchy with a random fill L1, configures
a [-16, +15] window through the OS interface (Table II), runs a small
table-lookup workload, and contrasts the cache statistics with plain
demand fetch.

Run:  python examples/quickstart.py
"""

import random

from repro import AccessContext, build_random_fill_hierarchy
from repro.cpu.timing import TimingModel


def run(window_exponent):
    """Run 20k random lookups into a 4 KB table; return the sim result."""
    system = build_random_fill_hierarchy(seed=42)
    system.os.create_process(pid=1)
    system.os.schedule(pid=1)
    if window_exponent is not None:
        # set_window(lowerBound, n): window [i - 16, i + 15] for n = 5.
        system.os.set_window(-(1 << (window_exponent - 1)), window_exponent)

    rng = random.Random(7)
    table_base = 0x10000
    trace = [(table_base + rng.randrange(4096), 4, 0) for _ in range(20_000)]
    result = TimingModel(system.l1).run(trace, AccessContext())
    return system, result


def main():
    print("Random Fill Cache Architecture - quickstart")
    print("=" * 60)
    for label, exponent in (("demand fetch (window [0,0])", None),
                            ("random fill  (window [-16,+15])", 5)):
        system, result = run(exponent)
        stats = system.l1.stats
        print(f"\n{label}")
        print(f"  IPC                  {result.ipc:.3f}")
        print(f"  L1 hit rate          {stats.hit_rate:.3f}")
        print(f"  L1 demand misses     {stats.demand_misses}")
        print(f"  random fills issued  {stats.random_fill_issued}")
        print(f"  random fills dropped {stats.random_fill_dropped}")
    print("\nWith the window enabled, misses no longer install the demanded"
          "\nline; uniformly random neighbors are installed instead - the"
          "\ncache still works (random lookups hit prefetched lines), but"
          "\nits state no longer remembers which lines were demanded.")


if __name__ == "__main__":
    main()
