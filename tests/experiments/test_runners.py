"""Small-scale integration tests of the per-figure experiment runners."""

import pytest

from repro.experiments.config import BASELINE_CONFIG
from repro.experiments.perf_concurrent import figure8, run_concurrent
from repro.experiments.perf_crypto import (
    figure6,
    figure7,
    make_cbc_trace,
    run_crypto_workload,
)
from repro.experiments.perf_general import (
    figure9,
    figure10,
    run_general_workload,
    window_label,
)
from repro.experiments.security import table3


class TestCryptoRunners:
    def test_make_cbc_trace_size(self):
        trace = make_cbc_trace(message_kb=1, seed=0)
        assert len(trace) == 64 * 668  # 64 blocks x refs/block

    def test_run_crypto_workload(self):
        result = run_crypto_workload("baseline", BASELINE_CONFIG,
                                     message_kb=1, seed=0)
        assert result.ipc > 0
        assert result.instructions > 0

    def test_figure6_structure(self):
        points = figure6(sizes=(8 * 1024,), assocs=(1,),
                         schemes=("baseline", "random_fill"),
                         message_kb=1, seed=0)
        assert len(points) == 2
        base = next(p for p in points if p.scheme == "baseline")
        assert base.normalized_ipc == pytest.approx(1.0)

    def test_figure7_normalizes_to_window_one(self):
        series = figure7(window_sizes=(1, 4),
                         configs=(("8KB DM", "random_fill", 8 * 1024, 1),),
                         message_kb=1, seed=0)
        points = series["8KB DM"]
        assert points[0] == (1, pytest.approx(1.0))


class TestGeneralRunners:
    def test_run_general_workload(self):
        result = run_general_workload("hmmer", (0, 0), n_refs=4000, seed=0)
        assert result.ipc > 0

    def test_figure10_structure(self):
        points = figure10(benchmarks=("hmmer",), windows=((0, 0), (0, 3)),
                          n_refs=4000, seed=0)
        assert len(points) == 2
        assert points[0].normalized_ipc == pytest.approx(1.0)
        assert points[1].label == "[0,3]"

    def test_figure9_profiles(self):
        profiles = figure9(benchmarks=("lbm",), n_refs=6000, seed=0)
        assert "lbm" in profiles
        assert profiles["lbm"].fetched  # something was randomly filled

    def test_window_label(self):
        assert window_label(16, 15) == "[-16,15]"
        assert window_label(0, 7) == "[0,7]"


class TestConcurrentRunner:
    def test_run_concurrent(self):
        ipc = run_concurrent("baseline", "hmmer", BASELINE_CONFIG,
                             n_refs=3000, aes_kb=1, seed=0)
        assert ipc > 0

    def test_figure8_normalizes_baseline(self):
        points = figure8(benchmarks=("hmmer",),
                         cache_configs=((32 * 1024, 4),),
                         schemes=("baseline", "random_fill"),
                         n_refs=3000, aes_kb=1, seed=0)
        base = next(p for p in points if p.scheme == "baseline")
        assert base.normalized_throughput == pytest.approx(1.0)


class TestSecurityRunner:
    def test_table3_mc_only(self):
        rows = table3(substrates=("sa",), window_sizes=(1, 32),
                      mc_trials=150, attack_caps={}, seed=0)
        assert len(rows) == 2
        demand, covered = rows
        assert demand.p1_minus_p2 > 0.4
        assert abs(covered.p1_minus_p2) < 0.1
        assert demand.extrapolated_n < covered.extrapolated_n
        assert "no success" in covered.measurements_text()
