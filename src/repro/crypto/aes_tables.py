"""AES lookup tables, computed from first principles.

OpenSSL-style T-table AES uses ten 1-KB tables (Section II-C): Te0..Te3
for encryption rounds 1..9, Te4 for the final round; Td0..Td3 and Td4
for decryption.  Each table has 256 four-byte entries.  We derive them
from the S-box (itself computed from GF(2^8) inversion + the affine map,
not hard-coded) so the construction is testable against FIPS-197.
"""

from __future__ import annotations

from typing import List, Tuple


def _gf_mul(a: int, b: int) -> int:
    """Multiply in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        carry = a & 0x80
        a = (a << 1) & 0xFF
        if carry:
            a ^= 0x1B
        b >>= 1
    return result


def _gf_inverse(a: int) -> int:
    """Multiplicative inverse in GF(2^8); 0 maps to 0."""
    if a == 0:
        return 0
    # Brute-force is fine: runs once at import for 256 values.
    for candidate in range(1, 256):
        if _gf_mul(a, candidate) == 1:
            return candidate
    raise ArithmeticError(f"no inverse for {a:#x}")  # pragma: no cover


def _affine(x: int) -> int:
    """The S-box affine transformation over GF(2)."""
    result = 0
    for bit in range(8):
        b = ((x >> bit) ^ (x >> ((bit + 4) % 8)) ^ (x >> ((bit + 5) % 8)) ^
             (x >> ((bit + 6) % 8)) ^ (x >> ((bit + 7) % 8)) ^ (0x63 >> bit)) & 1
        result |= b << bit
    return result


def _build_sboxes() -> Tuple[List[int], List[int]]:
    sbox = [_affine(_gf_inverse(x)) for x in range(256)]
    inv = [0] * 256
    for x, s in enumerate(sbox):
        inv[s] = x
    return sbox, inv


SBOX, INV_SBOX = _build_sboxes()


def _build_encrypt_tables() -> Tuple[List[int], ...]:
    """Te0..Te3 (MixColumns folded in) and Te4 (S-box replicated)."""
    te0, te1, te2, te3, te4 = [], [], [], [], []
    for x in range(256):
        s = SBOX[x]
        s2 = _gf_mul(s, 2)
        s3 = _gf_mul(s, 3)
        word = (s2 << 24) | (s << 16) | (s << 8) | s3
        te0.append(word)
        te1.append(((word >> 8) | (word << 24)) & 0xFFFFFFFF)
        te2.append(((word >> 16) | (word << 16)) & 0xFFFFFFFF)
        te3.append(((word >> 24) | (word << 8)) & 0xFFFFFFFF)
        te4.append(s * 0x01010101)
    return te0, te1, te2, te3, te4


def _build_decrypt_tables() -> Tuple[List[int], ...]:
    """Td0..Td3 (InvMixColumns folded in) and Td4 (inverse S-box)."""
    td0, td1, td2, td3, td4 = [], [], [], [], []
    for x in range(256):
        s = INV_SBOX[x]
        se = _gf_mul(s, 0x0E)
        s9 = _gf_mul(s, 0x09)
        sd = _gf_mul(s, 0x0D)
        sb = _gf_mul(s, 0x0B)
        word = (se << 24) | (s9 << 16) | (sd << 8) | sb
        td0.append(word)
        td1.append(((word >> 8) | (word << 24)) & 0xFFFFFFFF)
        td2.append(((word >> 16) | (word << 16)) & 0xFFFFFFFF)
        td3.append(((word >> 24) | (word << 8)) & 0xFFFFFFFF)
        td4.append(s * 0x01010101)
    return td0, td1, td2, td3, td4


TE0, TE1, TE2, TE3, TE4 = _build_encrypt_tables()
TD0, TD1, TD2, TD3, TD4 = _build_decrypt_tables()

#: Table identifiers in memory-layout order; each table is 1 KB
#: (256 entries x 4 bytes), matching "ten 1-KB lookup tables".
ENCRYPT_TABLE_NAMES = ("Te0", "Te1", "Te2", "Te3", "Te4")
DECRYPT_TABLE_NAMES = ("Td0", "Td1", "Td2", "Td3", "Td4")
TABLE_ENTRIES = 256
TABLE_ENTRY_BYTES = 4
TABLE_BYTES = TABLE_ENTRIES * TABLE_ENTRY_BYTES


def inv_mix_columns_word(word: int) -> int:
    """InvMixColumns applied to one 32-bit column (for the key schedule)."""
    b0 = (word >> 24) & 0xFF
    b1 = (word >> 16) & 0xFF
    b2 = (word >> 8) & 0xFF
    b3 = word & 0xFF
    m = _gf_mul
    return (((m(b0, 0x0E) ^ m(b1, 0x0B) ^ m(b2, 0x0D) ^ m(b3, 0x09)) << 24) |
            ((m(b0, 0x09) ^ m(b1, 0x0E) ^ m(b2, 0x0B) ^ m(b3, 0x0D)) << 16) |
            ((m(b0, 0x0D) ^ m(b1, 0x09) ^ m(b2, 0x0E) ^ m(b3, 0x0B)) << 8) |
            (m(b0, 0x0B) ^ m(b1, 0x0D) ^ m(b2, 0x09) ^ m(b3, 0x0E)))
