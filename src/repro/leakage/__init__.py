"""Unified leakage quantification: estimators, channels, sweeps.

The paper's security argument is quantitative — the Equation (5)
measurement counts, the Equation (7)/(8) storage-channel capacity,
Table III's P1 - P2 decay — and this package is the empirical side of
that argument.  It provides:

* :mod:`repro.leakage.estimators` — shared estimators for empirical
  mutual information (plug-in, with Miller-Madow bias correction),
  guessing entropy and success-rate-vs-measurements curves over
  (secret, observation) sample streams;
* :mod:`repro.leakage.adapters` — functional per-scheme cache builders
  so one attack loop runs against demand fetch, random fill (any
  window) and the ``secure/`` designs unchanged;
* :mod:`repro.leakage.occupancy` — the cache *occupancy* channel: the
  attacker observes only the aggregate number of its own lines evicted,
  not which ones (Chakraborty et al.; Peters et al.);
* :mod:`repro.leakage.sweep` / :mod:`repro.leakage.report` — picklable
  leakage cells wired through :mod:`repro.runner`, producing the
  per-scheme x window x seed leakage table behind
  ``python -m repro leakage`` and ``BENCH_leakage.json``.
"""

from repro.leakage.adapters import (
    LEAKAGE_SCHEMES,
    FunctionalScheme,
    build_functional_scheme,
)
from repro.leakage.estimators import (
    JointCounts,
    conditional_guessing_entropy,
    entropy_bits,
    guessing_entropy,
    mutual_information_bits,
    n_to_success,
    sample_window_channel,
    success_rate_curve,
)
from repro.leakage.occupancy import OccupancyResult, run_occupancy_trials
from repro.leakage.sweep import (
    LEAKAGE_CHANNELS,
    LeakageCellResult,
    LeakageCellSpec,
    leakage_grid,
    run_leakage_cell,
    run_leakage_sweep,
)

__all__ = [
    "FunctionalScheme",
    "JointCounts",
    "LEAKAGE_CHANNELS",
    "LEAKAGE_SCHEMES",
    "LeakageCellResult",
    "LeakageCellSpec",
    "OccupancyResult",
    "build_functional_scheme",
    "conditional_guessing_entropy",
    "entropy_bits",
    "guessing_entropy",
    "leakage_grid",
    "mutual_information_bits",
    "n_to_success",
    "run_leakage_cell",
    "run_leakage_sweep",
    "run_occupancy_trials",
    "sample_window_channel",
    "success_rate_curve",
]
