"""Figure 6: AES-CBC performance under the four defences.

Normalized IPC of OpenSSL-style AES-CBC over random input for
baseline / PLcache+preload / disable-cache / random-fill ([-16,+15])
across cache sizes {8,16,32} KB and associativities {1,2,4}.

Paper's shape: disable-cache ~55% of baseline everywhere;
PLcache+preload sensitive to size/associativity (worst at 8 KB DM);
random fill within a few percent of baseline (worst at 8 KB DM), and
indistinguishable from baseline at 32 KB.

Default message size is 8 KB (paper: 32 KB) to keep the bench fast;
REPRO_BENCH_SCALE=4 restores paper scale.
"""

from _reporting import save_report

from repro.experiments.config import scaled
from repro.experiments.perf_crypto import figure6
from repro.util.tables import format_table


def run():
    return figure6(message_kb=scaled(8, minimum=1), seed=5)


def test_fig6_crypto_performance(benchmark):
    points = benchmark.pedantic(run, rounds=1, iterations=1)

    def norm(scheme, size, assoc):
        return next(p.normalized_ipc for p in points
                    if p.scheme == scheme and p.l1_size == size
                    and p.l1_assoc == assoc)

    for size in (8 * 1024, 16 * 1024, 32 * 1024):
        for assoc in (1, 2, 4):
            # Disable-cache is the big loser everywhere (~45% in paper).
            assert norm("disable_cache", size, assoc) < 0.8
            # Random fill stays within striking distance of baseline.
            assert norm("random_fill", size, assoc) > 0.8
            # And clearly beats the constant-time defence.
            assert norm("random_fill", size, assoc) > \
                norm("disable_cache", size, assoc)
    # Random fill at 32 KB 4-way: no degradation (paper: none).  The
    # coupon-collector warm-up is amortized over the message, so the
    # threshold tightens with the (scalable) workload size.
    threshold = 0.97 if scaled(8, minimum=1) >= 8 else 0.93
    assert norm("random_fill", 32 * 1024, 4) > threshold
    # PLcache's sensitivity: 8 KB DM is its worst cell.
    assert norm("plcache_preload", 8 * 1024, 1) < \
        norm("plcache_preload", 32 * 1024, 4)

    rows = [(f"{p.l1_size // 1024}KB", f"{p.l1_assoc}-way", p.scheme,
             f"{p.normalized_ipc:.3f}") for p in points]
    save_report("fig6_crypto_performance", format_table(
        ["L1 size", "assoc", "scheme", "normalized IPC"], rows,
        title="Figure 6: AES-CBC normalized IPC by scheme and cache config"))
