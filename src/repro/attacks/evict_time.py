"""Evict-Time attack: the contention based timing-driven channel.

The attacker evicts one cache set by filling it with its own data, then
triggers the victim and measures the victim's *total* execution time.
If the victim's secret-dependent access maps to the evicted set, the
victim takes a cache miss and runs statistically longer (Section II-B).

Like Prime-Probe this is defeated by mapping randomization (Newcache /
RPcache), not by the random fill strategy alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.attacks.victim import TableLookupVictim
from repro.cache.context import AccessContext
from repro.util.rng import derive_seed

ATTACKER_BASE_LINE = 0xA00_0000 // 64


@dataclass
class EvictTimeResult:
    trials_per_set: int
    inferred_set: int
    true_set: int
    avg_time_per_set: List[float]

    @property
    def success(self) -> bool:
        return self.inferred_set == self.true_set


def run_evict_time(victim: TableLookupVictim, secret: int,
                   num_sets: int, associativity: int,
                   trials_per_set: int = 30,
                   seed: int = 0) -> EvictTimeResult:
    """Evict each set in turn; the slowest victim runs reveal the set.

    The victim performs its secret lookup (always the same ``secret``)
    after the attacker evicted one candidate set; the set with the
    highest average victim time is the inference.
    """
    if trials_per_set <= 0:
        raise ValueError("trials_per_set must be positive")
    rng = random.Random(derive_seed(seed, "evict-time", "attacker"))
    l1 = victim.l1
    attacker_ctx = AccessContext(thread_id=1, domain=1)
    victim_line = victim.region.first_line + secret

    def one_round(target_set: int) -> int:
        # Warm the victim's line so only the eviction matters.
        store = l1.tag_store
        if not store.access(victim_line, victim.ctx):
            store.fill(victim_line, victim.ctx)
        # Evict: fill the target set with attacker lines.
        for way in range(associativity + 1):
            line = ATTACKER_BASE_LINE + way * num_sets + target_set \
                + rng.randrange(4) * num_sets * (associativity + 2)
            if not store.access(line, attacker_ctx):
                store.fill(line, attacker_ctx)
        # Time: trigger the victim and measure.
        return victim.run_once(secret).cycles

    # Untimed warm-up round so cold-hierarchy effects (L2, DRAM row
    # state) don't bias the first sets probed; then interleave rounds
    # across sets so residual drift averages out.
    for target_set in range(num_sets):
        one_round(target_set)
    totals = [0] * num_sets
    for _ in range(trials_per_set):
        for target_set in range(num_sets):
            totals[target_set] += one_round(target_set)
    avg_times: List[float] = [t / trials_per_set for t in totals]

    inferred = max(range(num_sets), key=lambda s: avg_times[s])
    return EvictTimeResult(
        trials_per_set=trials_per_set,
        inferred_set=inferred,
        true_set=victim_line % num_sets,
        avg_time_per_set=avg_times,
    )
