"""Shared-state lowering for batched cell execution.

A Figure-10-style sweep runs many cells that differ only in window,
seed knob, or scheme while replaying the *same* trace through the same
cache geometry.  The per-cell path re-derives the decode columns and
re-warms the L2 for every one of them; this module computes that shared
work once per batch group and lowers each eligible cell onto the flat
kernel (:func:`repro.cpu.timing.run_flat_general`):

* :class:`GeneralGroupState` — the per-(trace, config, warm) inputs:
  decoded line/step columns of the measured slice and the warmed L2
  contents as plain int lists (copied per cell, the copy is cheap),
* :func:`run_batched_cell` — build the cell's scheme, check that it is
  exactly the stock set-associative/LRU configuration the flat kernel
  transcribes, pregenerate its random-fill draw row from its own
  derived RNG stream, and run.  Anything else returns ``None`` and the
  caller falls back to :func:`repro.runner.cells.run_cell`.

Results are bit-identical to the per-cell path: the kernel is an exact
transcription of the fused kernel plus settle, the warm replay mirrors
``warm_l2``, and the draw row reproduces the scalar ``draw()`` stream
(:meth:`repro.util.rng.HardwareRng.pregenerate`).
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.controller import DemandFetchPolicy
from repro.cache.l2 import L2Cache
from repro.cache.set_associative import SetAssociativeCache
from repro.core.policy import RandomFillPolicy
from repro.cpu.timing import SimResult, run_flat_general
from repro.cpu.trace import Trace
from repro.memory.dram import DramModel

#: thread whose window registers drive a batched run (the timing model's
#: default context)
_THREAD_ID = 0


class GeneralGroupState:
    """Shared inputs of one batch group: decode columns + warm L2 state.

    Built once per (trace, config, warm) group; every cell of the group
    reads the same column lists (never mutated) and receives its own
    copy of the warmed L2 sets (mutated by its kernel run).
    """

    __slots__ = ("config", "lines", "steps", "instructions",
                 "l2_num_sets", "l2_assoc", "_warm_l2_sets")

    def __init__(self, trace: Trace, config, warm: bool):
        self.config = config
        line_shift = config.line_size.bit_length() - 1
        if warm:
            # Warm on the first half, measure the second — the same
            # split (and the same memoized slice/decode objects) as
            # run_general_workload.
            split = len(trace) // 2
            footprint = trace.decoded(line_shift).warm_footprint(split)
            measured = trace[split:]
        else:
            footprint = ()
            measured = trace
        decode = measured.decoded(line_shift)
        self.lines: List[int] = decode.lines_list()
        self.steps: List[int] = decode.issue_steps(config.issue_width)
        self.instructions: int = measured.instruction_count
        self.l2_num_sets = (config.l2_size // config.line_size) \
            // config.l2_assoc
        self.l2_assoc = config.l2_assoc
        # Flat replay of warm_l2: access-or-fill per footprint line on
        # MRU-first int lists (hits move to front, fills evict the LRU
        # tail), matching SetAssociativeCache under LRU exactly.
        l2_mask = self.l2_num_sets - 1
        l2_assoc = self.l2_assoc
        sets: List[List[int]] = [[] for _ in range(self.l2_num_sets)]
        for line in footprint:
            cache_set = sets[line & l2_mask]
            if line in cache_set:
                if cache_set[0] != line:
                    cache_set.remove(line)
                    cache_set.insert(0, line)
            else:
                if len(cache_set) >= l2_assoc:
                    cache_set.pop()
                cache_set.insert(0, line)
        self._warm_l2_sets = sets

    def l2_sets_copy(self) -> List[List[int]]:
        """A fresh mutable copy of the warmed L2 contents."""
        return [list(cache_set) for cache_set in self._warm_l2_sets]


def group_state_for(spec) -> GeneralGroupState:
    """Build the shared state for a batch group from one member spec."""
    from repro.workloads.cache import cached_workload
    trace = cached_workload(spec.benchmark, n_refs=spec.n_refs,
                            seed=spec.seed)
    return GeneralGroupState(trace, spec.config, spec.warm)


def run_batched_cell(spec, group: GeneralGroupState) -> Optional[SimResult]:
    """Run one cell through the flat kernel, or ``None`` if ineligible.

    The cell's scheme is built exactly as ``run_general_workload``
    builds it (same ``build_scheme`` seed derivation, same ``set_rr``),
    then lowered: only the stock set-associative/LRU L1 and L2 with a
    demand-fetch or power-of-two random-fill policy qualify — the same
    configurations the fused kernel covers, minus the non-power-of-two
    windows that draw via ``draw_below``.  An ineligible cell returns
    ``None`` and the caller runs it per-cell inside the batch.
    """
    from repro.experiments.schemes import build_scheme
    from repro.runner.cells import CellSpec

    if not isinstance(spec, CellSpec) or spec.kind != "general":
        return None
    if spec.config != group.config:
        return None
    scheme = build_scheme(spec.scheme, spec.config, seed=spec.seed)
    window = spec.window if spec.window is not None else (0, 0)
    if scheme.os is not None:
        scheme.os.set_rr(*window)

    l1 = scheme.l1
    tag = l1.tag_store
    if type(tag) is not SetAssociativeCache \
            or not (tag._lru_hits and tag._mru_fills and tag._max_victims) \
            or l1._policy_bypasses or l1._policy_on_hit is not None:
        return None
    l2 = l1.next_level
    if type(l2) is not L2Cache:
        return None
    l2_tag = l2.tag_store
    if type(l2_tag) is not SetAssociativeCache \
            or not (l2_tag._lru_hits and l2_tag._mru_fills
                    and l2_tag._max_victims) \
            or l2_tag._set_mask + 1 != group.l2_num_sets \
            or l2_tag.associativity != group.l2_assoc:
        return None
    dram = l2.dram
    if type(dram) is not DramModel:
        return None
    # The kernel starts from empty in-flight/warm state; a freshly
    # built scheme always satisfies this.
    if len(l1.miss_queue) or l1.fill_queue or dram._open_row \
            or dram._bank_free_at:
        return None

    policy = l1._policy
    policy_kind = 1
    rf_a = rf_mask = 0
    draws: List[int] = ()
    if type(policy) is RandomFillPolicy:
        engine = policy.engine
        rf_window = engine.window_for(_THREAD_ID)
        if not (rf_window.a == 0 and rf_window.b == 0):
            rf_a, rf_mask, _size = engine._params[_THREAD_ID]
            if rf_mask is None:
                return None          # non-power-of-two: draw_below path
            policy_kind = 2
            # One raw draw per demand miss; one per record is always
            # enough.  The row comes from this cell's own derived RNG
            # stream and reproduces scalar draw() bit-exactly.
            draws = engine._rng.pregenerate(len(group.lines))
    elif type(policy) is not DemandFetchPolicy:
        return None

    cfg = dram.config
    dram_params = (
        cfg.row_size_bytes // cfg.line_size, cfg.num_banks,
        cfg.row_hit_latency, cfg.row_miss_latency,
        cfg.t_burst, cfg.t_rp + cfg.t_rcd + cfg.t_burst,
    )
    config = spec.config
    return run_flat_general(
        group.lines, group.steps, group.instructions,
        l1_num_sets=tag._set_mask + 1, l1_assoc=tag.associativity,
        l2_sets=group.l2_sets_copy(), l2_num_sets=group.l2_num_sets,
        l2_assoc=group.l2_assoc, l2_hit_latency=l2.hit_latency,
        mq_capacity=l1.miss_queue.capacity, fill_reserve=l1.fill_reserve,
        fill_queue_capacity=l1.fill_queue_capacity,
        hit_cost=l1.hit_latency,
        mlp=max(1, l1.miss_queue.capacity // 2),
        credit=config.overlap_credit,
        policy_kind=policy_kind, rf_a=rf_a, rf_mask=rf_mask, draws=draws,
        dram=dram_params,
    )
