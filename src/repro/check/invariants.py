"""Structural invariants for the cache model (the sanitizer layer).

Each function raises :exc:`~repro.check.CheckViolation` on the first
violated invariant.  The catalogue:

tag store
    * no duplicate resident lines (globally, and per set for
      set-associative stores);
    * no set holds more lines than the associativity;
    * for the stock set-associative mapping, every line sits in the
      set its address selects;
    * occupancy never exceeds ``capacity_lines``.

MSHR file
    * occupancy <= capacity, and every entry is keyed by its own line;
    * the cached ``next_completion`` equals the true minimum (or
      ``NEVER`` when empty);
    * no line is simultaneously in flight and resident — the invariant
      behind Section IV-B's "nofill" guarantee: a NOFILL demand miss
      must never have allocated its line.

fill queue
    * length <= ``fill_queue_capacity``;
    * only non-negative line addresses are parked (window underflow is
      dropped at enqueue);
    * ``_fills_blocked`` implies a non-empty queue.

stats conservation
    * L1: ``hits + demand_misses + mshr_merges == accesses`` and
      ``fills <= next_level_requests``;
    * L2: ``hits + demand_misses == accesses`` and
      ``fills <= demand_misses``;
    * with a random-fill policy installed:
      ``random_fill_issued + random_fill_dropped <= demand_misses``
      (each miss requests exactly one windowed fill, Table II);
    * no counter is negative.
"""

from __future__ import annotations

from typing import Optional

from repro.check import CheckViolation

#: Mirror of ``MissQueue.NEVER``.
_NEVER = 1 << 62


def validate_tag_store(store, where: str = "tag-store",
                       index: Optional[int] = None) -> None:
    """Tag uniqueness / occupancy / recency-structure checks."""
    from repro.cache.set_associative import SetAssociativeCache

    if isinstance(store, SetAssociativeCache):
        assoc = store.associativity
        num_sets = store.size_bytes // (store.line_size * assoc)
        mask = num_sets - 1
        stock_mapping = type(store) is SetAssociativeCache
        for set_index, cache_set in enumerate(store._sets):
            if len(cache_set) > assoc:
                raise CheckViolation(
                    "occupancy", where,
                    f"set {set_index} holds {len(cache_set)} lines, "
                    f"associativity {assoc}", index=index)
            seen = set()
            for line_state in cache_set:
                line = line_state.line_addr
                if line in seen:
                    raise CheckViolation(
                        "tag-duplicate", where,
                        f"line 0x{line:x} resident twice in set {set_index}",
                        index=index)
                seen.add(line)
                if stock_mapping and (line & mask) != set_index:
                    raise CheckViolation(
                        "set-mapping", where,
                        f"line 0x{line:x} resident in set {set_index}, "
                        f"maps to set {line & mask}", index=index)
        return
    from repro.schemes.chameleon import ChameleonCache
    from repro.schemes.skewed import SkewedRandomCache

    if isinstance(store, SkewedRandomCache):
        seen = set()
        for way, row, line in store.resident_rows():
            if line in seen:
                raise CheckViolation(
                    "tag-duplicate", where,
                    f"line 0x{line:x} resident in more than one way",
                    index=index)
            seen.add(line)
            if store._row(line, way) != row:
                raise CheckViolation(
                    "set-mapping", where,
                    f"line 0x{line:x} resident at way {way} row {row}, "
                    f"epoch {store.epoch} keys hash it to row "
                    f"{store._row(line, way)}", index=index)
        return
    if isinstance(store, ChameleonCache):
        victim = store.victim_contents()
        if len(victim) > store.victim_entries:
            raise CheckViolation(
                "occupancy", where,
                f"victim cache holds {len(victim)} lines, capacity "
                f"{store.victim_entries}", index=index)
        seen = set(victim)
        if len(seen) != len(victim):
            duplicate = next(ln for ln in victim if victim.count(ln) > 1)
            raise CheckViolation(
                "tag-duplicate", where,
                f"line 0x{duplicate:x} resident twice in the victim cache",
                index=index)
        mask = store._set_mask
        for set_index in range(mask + 1):
            contents = store.set_contents(set_index)
            if len(contents) > store.associativity:
                raise CheckViolation(
                    "occupancy", where,
                    f"set {set_index} holds {len(contents)} lines, "
                    f"associativity {store.associativity}", index=index)
            for line in contents:
                if line in seen:
                    raise CheckViolation(
                        "tag-duplicate", where,
                        f"line 0x{line:x} resident more than once",
                        index=index)
                seen.add(line)
                if (line & mask) != set_index:
                    raise CheckViolation(
                        "set-mapping", where,
                        f"line 0x{line:x} resident in set {set_index}, "
                        f"maps to set {line & mask}", index=index)
        return
    # Generic TagStore (e.g. Newcache): global uniqueness + occupancy.
    lines = list(store.resident_lines())
    if len(lines) != len(set(lines)):
        duplicate = next(ln for ln in lines if lines.count(ln) > 1)
        raise CheckViolation(
            "tag-duplicate", where,
            f"line 0x{duplicate:x} resident more than once", index=index)
    capacity = getattr(store, "capacity_lines", None)
    if capacity is not None and len(lines) > capacity:
        raise CheckViolation(
            "occupancy", where,
            f"{len(lines)} resident lines exceed capacity {capacity}",
            index=index)


def _validate_mshr(l1, index: Optional[int]) -> None:
    miss_queue = l1.miss_queue
    entries = miss_queue._entries
    if len(entries) > miss_queue.capacity:
        raise CheckViolation(
            "mshr", "l1.miss_queue",
            f"{len(entries)} entries exceed capacity {miss_queue.capacity}",
            index=index)
    true_next = _NEVER
    for line, entry in entries.items():
        if entry.line_addr != line:
            raise CheckViolation(
                "mshr", "l1.miss_queue",
                f"entry keyed 0x{line:x} holds line 0x{entry.line_addr:x}",
                index=index)
        if entry.complete_at < true_next:
            true_next = entry.complete_at
    if miss_queue.next_completion != true_next:
        raise CheckViolation(
            "mshr", "l1.miss_queue",
            "cached next_completion out of date",
            index=index, expected=str(true_next),
            actual=str(miss_queue.next_completion))
    if entries:
        probe = l1.tag_store.probe
        for line in entries:
            if probe(line):
                raise CheckViolation(
                    "nofill-security", "l1",
                    f"line 0x{line:x} is simultaneously resident and in "
                    f"flight (a miss allocated before its data returned)",
                    index=index)


def _validate_fill_queue(l1, index: Optional[int]) -> None:
    fill_queue = l1.fill_queue
    if len(fill_queue) > l1.fill_queue_capacity:
        raise CheckViolation(
            "fill-queue", "l1.fill_queue",
            f"{len(fill_queue)} parked requests exceed capacity "
            f"{l1.fill_queue_capacity}", index=index)
    for line, _ctx in fill_queue:
        if line < 0:
            raise CheckViolation(
                "fill-queue", "l1.fill_queue",
                f"negative line address 0x{line:x} parked (window "
                f"underflow must be dropped at enqueue)", index=index)
    if l1._fills_blocked and not fill_queue:
        raise CheckViolation(
            "fill-queue", "l1",
            "_fills_blocked set with an empty fill queue", index=index)


def _validate_stats(l1, index: Optional[int]) -> None:
    from repro.core.policy import RandomFillPolicy

    stats = l1.stats
    for field in stats._FIELDS:
        value = getattr(stats, field)
        if value < 0:
            raise CheckViolation(
                "stats", "l1.stats", f"{field} is negative ({value})",
                index=index)
    accounted = stats.hits + stats.demand_misses + stats.mshr_merges
    if accounted != stats.accesses:
        raise CheckViolation(
            "stats", "l1.stats",
            "hits + demand_misses + mshr_merges != accesses",
            index=index, expected=str(stats.accesses), actual=str(accounted))
    if stats.fills > stats.next_level_requests:
        raise CheckViolation(
            "stats", "l1.stats",
            f"fills ({stats.fills}) exceed issued requests "
            f"({stats.next_level_requests})", index=index)
    if type(l1._policy) is RandomFillPolicy:
        requested = stats.random_fill_issued + stats.random_fill_dropped
        if requested > stats.demand_misses:
            raise CheckViolation(
                "stats", "l1.stats",
                f"random fills requested ({requested}) exceed demand "
                f"misses ({stats.demand_misses})", index=index)

    l2 = l1.next_level
    l2_stats = getattr(l2, "stats", None)
    if l2_stats is None:
        return
    for field in l2_stats._FIELDS:
        value = getattr(l2_stats, field)
        if value < 0:
            raise CheckViolation(
                "stats", "l2.stats", f"{field} is negative ({value})",
                index=index)
    if l2_stats.hits + l2_stats.demand_misses != l2_stats.accesses:
        raise CheckViolation(
            "stats", "l2.stats", "hits + demand_misses != accesses",
            index=index, expected=str(l2_stats.accesses),
            actual=str(l2_stats.hits + l2_stats.demand_misses))
    if l2_stats.fills > l2_stats.demand_misses:
        raise CheckViolation(
            "stats", "l2.stats",
            f"fills ({l2_stats.fills}) exceed demand misses "
            f"({l2_stats.demand_misses})", index=index)


def validate_l1(l1, index: Optional[int] = None) -> None:
    """Full sweep: tag store, MSHR file, fill queue, stats laws."""
    validate_tag_store(l1.tag_store, where="l1.tag_store", index=index)
    _validate_mshr(l1, index)
    _validate_fill_queue(l1, index)
    _validate_stats(l1, index)
