"""Tests for the set-associative tag store."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.context import AccessContext
from repro.cache.set_associative import SetAssociativeCache


def make_cache(size=4096, assoc=4, line=64):
    return SetAssociativeCache(size, assoc, line)


class TestBasics:
    def test_miss_then_hit_after_fill(self):
        c = make_cache()
        assert not c.access(10)
        c.fill(10)
        assert c.access(10)

    def test_probe_does_not_perturb_lru(self):
        c = SetAssociativeCache(2 * 64, 2, 64)  # one set, two ways
        c.fill(0)
        c.fill(2)   # same set (num_sets=1)
        c.probe(0)  # must NOT refresh line 0
        c.fill(4)   # evicts LRU
        assert not c.probe(0)
        assert c.probe(2) and c.probe(4)

    def test_lru_eviction_order(self):
        c = SetAssociativeCache(2 * 64, 2, 64)
        c.fill(0)
        c.fill(2)
        c.access(0)          # 0 becomes MRU
        evicted = c.fill(4)
        assert evicted == 2

    def test_fill_existing_line_is_noop(self):
        c = make_cache()
        c.fill(5)
        assert c.fill(5) is None
        assert c.occupancy() == 1

    def test_invalidate(self):
        c = make_cache()
        c.fill(7)
        assert c.invalidate(7)
        assert not c.invalidate(7)
        assert not c.probe(7)

    def test_flush(self):
        c = make_cache()
        for i in range(10):
            c.fill(i)
        c.flush()
        assert c.occupancy() == 0

    def test_resident_lines(self):
        c = make_cache()
        for i in (1, 2, 3):
            c.fill(i)
        assert sorted(c.resident_lines()) == [1, 2, 3]

    def test_direct_mapped_conflicts(self):
        c = SetAssociativeCache(4 * 64, 1, 64)  # 4 sets, DM
        c.fill(0)
        assert c.fill(4) == 0  # same set, evicts

    def test_set_contents_mru_first(self):
        c = SetAssociativeCache(2 * 64, 2, 64)
        c.fill(0)
        c.fill(2)
        assert c.set_contents(0) == [2, 0]


class TestGeometryValidation:
    def test_bad_size(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1000, 4, 64)

    def test_zero_size(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(0, 1, 64)


class TestLocking:
    def test_locking_access_sets_bit(self):
        c = make_cache()
        c.fill(3)
        c.access(3, AccessContext(thread_id=1, lock=True))
        assert c.line_state(3).locked

    def test_fill_with_lock(self):
        c = make_cache()
        c.fill(3, AccessContext(thread_id=2, lock=True))
        state = c.line_state(3)
        assert state.locked and state.owner == 2

    def test_unlock(self):
        c = make_cache()
        ctx = AccessContext(thread_id=1, lock=True)
        c.fill(3, ctx)
        c.access(3, AccessContext(thread_id=1, unlock=True))
        assert not c.line_state(3).locked

    def test_unlock_by_other_owner_ignored(self):
        c = make_cache()
        c.fill(3, AccessContext(thread_id=1, lock=True))
        c.access(3, AccessContext(thread_id=2, unlock=True))
        assert c.line_state(3).locked

    def test_locked_line_immune_to_normal_eviction(self):
        c = SetAssociativeCache(2 * 64, 2, 64)
        c.fill(0, AccessContext(thread_id=1, lock=True))
        c.fill(2)
        # set full: one locked, one normal; normal line is the victim
        evicted = c.fill(4)
        assert evicted == 2
        assert c.probe(0)

    def test_all_locked_refuses_fill(self):
        c = SetAssociativeCache(2 * 64, 2, 64)
        lock = AccessContext(thread_id=1, lock=True)
        c.fill(0, lock)
        c.fill(2, lock)
        # normal access cannot displace locked lines
        assert c.fill(4) is None
        assert not c.probe(4)

    def test_owner_locking_access_can_displace_own_locked(self):
        c = SetAssociativeCache(2 * 64, 2, 64)
        lock = AccessContext(thread_id=1, lock=True)
        c.fill(0, lock)
        c.fill(2, lock)
        evicted = c.fill(4, lock)
        assert evicted in (0, 2)


@settings(max_examples=50)
@given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                max_size=200))
def test_occupancy_never_exceeds_capacity(lines):
    c = SetAssociativeCache(8 * 64, 2, 64)
    for line in lines:
        if not c.access(line):
            c.fill(line)
    assert c.occupancy() <= 8
    # every set respects associativity
    for s in range(4):
        assert len(c.set_contents(s)) <= 2


@settings(max_examples=50)
@given(st.lists(st.integers(min_value=0, max_value=31), min_size=1,
                max_size=100))
def test_most_recent_fill_is_resident(lines):
    c = SetAssociativeCache(4 * 64, 2, 64)
    for line in lines:
        if not c.access(line):
            c.fill(line)
    assert c.probe(lines[-1])
