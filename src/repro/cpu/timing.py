"""Trace-driven CPU timing model.

Stands in for the paper's gem5 4-way out-of-order core (Table IV) with a
model that keeps what the evaluation measures:

* non-memory instructions retire at ``issue_width`` per cycle,
* an L1 hit costs ``l1_hit_latency`` (1 cycle),
* demand misses overlap: the out-of-order core keeps up to ``mlp``
  demand misses in flight before the reorder buffer backs up; only then
  does it stall until the earliest outstanding miss returns (minus an
  ``overlap_credit`` of further latency the window hides).  This is the
  memory-level parallelism that makes the paper's "disable cache"
  baseline lose 45% rather than 10x, and that lets the nofill re-misses
  of the random fill strategy merge cheaply (Section VII),
* misses to a line already in flight merge in the L1 miss queue and pay
  only a hit cost (the "do not take a whole cache miss latency" remark),
* MPKI uses the paper's definition (demand misses that issue a request
  to L2, excluding merges).

Absolute IPC is therefore a proxy, but the quantities the figures plot —
normalized IPC between fill strategies and MPKI — depend on cache
behaviour, which is modelled faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro import check as _check
from repro.cache.context import AccessContext, DEFAULT_CONTEXT
from repro.cache.controller import DemandFetchPolicy, L1Controller
from repro.cache.mshr import RequestType
from repro.cache.set_associative import SetAssociativeCache
from repro.core.policy import RandomFillPolicy
from repro.cpu.trace import Trace, TraceRecord


@dataclass
class SimResult:
    """Outcome of one timed trace run."""

    instructions: int
    cycles: int
    l1_accesses: int
    l1_hits: int
    l1_demand_misses: int
    l2_accesses: int
    l2_demand_misses: int
    memory_lines: int
    random_fill_issued: int = 0

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def l1_mpki(self) -> float:
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.l1_demand_misses / self.instructions

    @property
    def l2_mpki(self) -> float:
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.l2_demand_misses / self.instructions


#: ``charged`` (line -> completion cycle already paid for) only needs
#: entries for lines still in flight; once this many entries accumulate
#: the past ones are swept out.  Entries whose completion cycle has
#: passed never change timing (their exposed stall is <= 0), so eviction
#: is invisible to results — it only bounds memory on long traces with
#: many unique lines.
CHARGED_PRUNE_THRESHOLD = 8192


def prune_charged(charged: dict, now: int) -> dict:
    """Drop charge records whose completion cycle has already passed."""
    return {line: ready for line, ready in charged.items() if ready > now}


class _MlpWindow:
    """Amortized cost model for overlapping demand misses.

    The out-of-order core keeps up to ``limit`` independent misses in
    flight, so a miss's *exposed* stall is its remaining latency divided
    by that parallelism (minus the ``credit`` cycles the window hides
    outright).  A burst of ``limit`` back-to-back L2 hits then costs one
    L2 latency in total — the behaviour that keeps the paper's
    disable-cache baseline at ~45% slowdown rather than 10x — while an
    isolated miss still has a visible cost, preserving the MPKI -> IPC
    coupling Figure 10 relies on.
    """

    __slots__ = ("limit", "credit")

    def __init__(self, limit: int, credit: int):
        self.limit = limit
        self.credit = credit

    def note_miss(self, now: int, ready_at: int) -> int:
        """Charge one miss's exposed stall; returns the new ``now``."""
        remaining = ready_at - now - self.credit
        if remaining <= 0:
            return now
        return now + (remaining + self.limit - 1) // self.limit

    def settle(self, now: int) -> int:
        """End of run; amortized charging has no deferred stalls."""
        return now


#: mirrors :data:`repro.cache.mshr.MissQueue.NEVER` for the flat kernel
_NEVER = 1 << 62

#: flat-kernel request types (plain ints; 1 mirrors ``NOFILL``)
_RT_NORMAL, _RT_NOFILL, _RT_RANDOM_FILL = 0, 1, 2


def run_flat_general(lines_l, steps_l, instructions,
                     l1_num_sets, l1_assoc, l2_sets, l2_num_sets, l2_assoc,
                     l2_hit_latency, mq_capacity, fill_reserve,
                     fill_queue_capacity, hit_cost, mlp, credit,
                     policy_kind, rf_a, rf_mask, draws, dram) -> SimResult:
    """Self-contained flat kernel for the stock SA/LRU configuration.

    The batched runner (:mod:`repro.cpu.batch`) lowers an eligible
    scheme to plain values — int-list cache sets, a dict MSHR, inlined
    L2/DRAM timing, and a pregenerated random-fill draw row — and runs
    the measured trace here.  The per-access state machine transcribes
    ``TimingModel._run_columnar_fused`` exactly (including the settle
    phase and the drop/merge rules of the fill queue), so results are
    bit-identical to the per-cell path; what it removes is every
    per-miss method call and ``LineState``/``MissEntry`` allocation,
    and it swaps the attribute-compare tag scans for C-level int-list
    membership tests.

    ``l2_sets`` is owned (and mutated) by the kernel — callers pass a
    per-cell copy of any shared warm state.  ``policy_kind`` follows
    the fused kernel: 1 is a plain demand fill, 2 the random-fill
    window with power-of-two mask ``rf_mask`` and lower bound ``rf_a``;
    ``draws`` must then hold at least one raw RNG value per demand
    miss (one per trace record is always enough).  ``dram`` is the
    ``(lines_per_row, banks, hit_latency, miss_latency, hit_busy,
    miss_busy)`` timing tuple of the open-page model.
    """
    (dram_lines_per_row, dram_banks, dram_hit_latency, dram_miss_latency,
     dram_hit_busy, dram_miss_busy) = dram
    l1_set_mask = l1_num_sets - 1
    l2_set_mask = l2_num_sets - 1
    l1_sets = [[] for _ in range(l1_num_sets)]
    mq = {}                       # line -> [complete_at, request_type]
    mq_get = mq.get
    fill_queue = []               # queued random-fill line addresses
    open_row = {}
    bank_free = {}
    bank_free_get = bank_free.get
    open_row_get = open_row.get

    prune_at = CHARGED_PRUNE_THRESHOLD
    fill_cap = mq_capacity - fill_reserve
    l2_accesses = 0
    l2_misses = 0
    memory_lines = 0
    rf_issued = 0
    hits = 0
    demand_misses = 0
    draw_i = 0
    nc = _NEVER
    fills_blocked = False

    def l2_access(line, at):
        # L2Cache.access with the tag scan and DramModel.access inlined.
        nonlocal l2_accesses, l2_misses, memory_lines
        l2_accesses += 1
        cache_set = l2_sets[line & l2_set_mask]
        if line in cache_set:
            if cache_set[0] != line:
                cache_set.remove(line)
                cache_set.insert(0, line)
            return at + l2_hit_latency
        l2_misses += 1
        row = line // dram_lines_per_row
        bank = row % dram_banks
        start = bank_free_get(bank, 0)
        at += l2_hit_latency
        if start < at:
            start = at
        if open_row_get(bank) == row:
            done = start + dram_hit_latency
            bank_free[bank] = start + dram_hit_busy
        else:
            open_row[bank] = row
            done = start + dram_miss_latency
            bank_free[bank] = start + dram_miss_busy
        memory_lines += 1
        if len(cache_set) >= l2_assoc:
            cache_set.pop()
        cache_set.insert(0, line)
        return done

    def drain(at):
        # MissQueue.drain + L1 install: retire entries completed by
        # ``at`` in completion order (stable on insertion order).
        nonlocal nc
        if at < nc:
            return 0
        done = [item for item in mq.items() if item[1][0] <= at]
        if len(done) > 1:
            done.sort(key=_flat_completion)
        for dline, entry in done:
            del mq[dline]
            if entry[1] != _RT_NOFILL:
                cache_set = l1_sets[dline & l1_set_mask]
                if dline not in cache_set:
                    if len(cache_set) >= l1_assoc:
                        cache_set.pop()
                    cache_set.insert(0, dline)
        nxt = _NEVER
        for entry in mq.values():
            if entry[0] < nxt:
                nxt = entry[0]
        nc = nxt
        return len(done)

    def issue_fills(at):
        # L1Controller._issue_random_fills: probe / merge-upgrade /
        # demand-reserve per queued request, head peeked not popped.
        nonlocal nc, fills_blocked, rf_issued
        while fill_queue:
            head = fill_queue[0]
            if head in l1_sets[head & l1_set_mask]:
                del fill_queue[0]
                continue
            in_flight = mq_get(head)
            if in_flight is not None:
                del fill_queue[0]
                if in_flight[1] == _RT_NOFILL:
                    in_flight[1] = _RT_RANDOM_FILL
                    rf_issued += 1
                continue
            if len(mq) >= fill_cap:
                break
            del fill_queue[0]
            fill_at = l2_access(head, at)
            rf_issued += 1
            mq[head] = [fill_at, _RT_RANDOM_FILL]
            if fill_at < nc:
                nc = fill_at
        fills_blocked = bool(fill_queue)

    now = 0
    charged: dict = {}
    charged_get = charged.get
    for line, step in zip(lines_l, steps_l):
        now += step
        if now >= nc:
            drain(now)
            fills_blocked = False
        cache_set = l1_sets[line & l1_set_mask]
        if line in cache_set:
            hits += 1
            if cache_set[0] != line:
                cache_set.remove(line)
                cache_set.insert(0, line)
            if fill_queue and not fills_blocked:
                issue_fills(now)
            now += hit_cost
            continue
        in_flight = mq_get(line)
        if in_flight is None and fill_queue and not fills_blocked:
            # Queued random fills are older than this demand miss, so
            # they claim MSHRs first — possibly turning it into a merge.
            issue_fills(now)
            in_flight = mq_get(line)
        if in_flight is not None:
            completion = in_flight[0]
            if completion < now:
                completion = now
            if charged_get(line) == completion:
                now += hit_cost
            else:
                charged[line] = completion
                now += hit_cost
                remaining = completion - now - credit
                if remaining > 0:
                    now += (remaining + mlp - 1) // mlp
            if len(charged) >= prune_at:
                charged = prune_charged(charged, now)
                charged_get = charged.get
            continue
        stall = 0
        access_now = now
        if len(mq) >= mq_capacity:
            stall = nc - now
            if stall < 0:
                stall = 0
            access_now = now + stall
            drain(access_now)
            fills_blocked = False
            if line in cache_set:
                # The drained line was the one we wanted; charge only
                # the hit (stall unused), with the LRU move.
                hits += 1
                if cache_set[0] != line:
                    cache_set.remove(line)
                    cache_set.insert(0, line)
                now += hit_cost
                continue
        demand_misses += 1
        if policy_kind == 2:
            complete_at = l2_access(line, access_now)
            mq[line] = [complete_at, _RT_NOFILL]
            if complete_at < nc:
                nc = complete_at
            fills_blocked = False
            fill_line = line + (draws[draw_i] & rf_mask) - rf_a
            draw_i += 1
            if fill_queue:
                # Parked requests are older; preserve FIFO order.
                if fill_line >= 0 and len(fill_queue) < fill_queue_capacity:
                    fill_queue.append(fill_line)
                issue_fills(access_now)
            elif fill_line < 0:
                pass                 # window underflow: dropped
            elif fill_line in l1_sets[fill_line & l1_set_mask]:
                pass                 # already resident: dropped
            else:
                in_flight = mq_get(fill_line)
                if in_flight is not None:
                    if in_flight[1] == _RT_NOFILL:
                        in_flight[1] = _RT_RANDOM_FILL
                        rf_issued += 1
                elif len(mq) >= fill_cap:
                    fill_queue.append(fill_line)
                    fills_blocked = True
                else:
                    fill_at = l2_access(fill_line, access_now)
                    rf_issued += 1
                    mq[fill_line] = [fill_at, _RT_RANDOM_FILL]
                    if fill_at < nc:
                        nc = fill_at
        else:
            complete_at = l2_access(line, access_now)
            mq[line] = [complete_at, _RT_NORMAL]
            if complete_at < nc:
                nc = complete_at
            fills_blocked = False
            if fill_queue:
                issue_fills(access_now)
        charged[line] = complete_at
        now += hit_cost + stall
        remaining = complete_at - now - credit
        if remaining > 0:
            now += (remaining + mlp - 1) // mlp
        if len(charged) >= prune_at:
            charged = prune_charged(charged, now)
            charged_get = charged.get

    # End-of-run settle (L1Controller.settle with now=None): the issued
    # fills and their L2/DRAM traffic count toward this run's totals.
    while fill_queue or mq:
        progressed = False
        if mq:
            horizon = nc if nc > 0 else 0
            progressed = drain(horizon) > 0
        if fill_queue and len(mq) < mq_capacity:
            before = len(fill_queue)
            issue_fills(0)
            progressed = progressed or len(fill_queue) != before
        if not progressed:       # pragma: no cover - defensive backstop
            break

    return SimResult(
        instructions=instructions,
        cycles=now,
        l1_accesses=len(lines_l),
        l1_hits=hits,
        l1_demand_misses=demand_misses,
        l2_accesses=l2_accesses,
        l2_demand_misses=l2_misses,
        memory_lines=memory_lines,
        random_fill_issued=rf_issued,
    )


def _flat_completion(item):
    """Sort key for retiring flat-kernel MSHR entries in completion order."""
    return item[1][0]


class TimingModel:
    """Drives one hardware thread's trace through an L1 controller."""

    def __init__(self, l1: L1Controller, issue_width: int = 4,
                 overlap_credit: int = 8, mlp: Optional[int] = None):
        if issue_width < 1:
            raise ValueError(f"issue_width must be >= 1, got {issue_width}")
        if overlap_credit < 0:
            raise ValueError(f"overlap_credit must be >= 0, got {overlap_credit}")
        self.l1 = l1
        self.issue_width = issue_width
        self.overlap_credit = overlap_credit
        # Default MLP: half the MSHRs.  Dependent code cannot keep the
        # full MSHR file busy with demand misses, and the slack is what
        # lets random fill / prefetch requests find free entries.
        self.mlp = mlp if mlp is not None else max(1, l1.miss_queue.capacity // 2)
        if self.mlp < 1:
            raise ValueError(f"mlp must be >= 1, got {self.mlp}")

    def run(self, trace: Iterable[TraceRecord],
            ctx: AccessContext = DEFAULT_CONTEXT,
            start_cycle: int = 0) -> SimResult:
        """Run a trace to completion; counters are deltas for this run.

        A columnar :class:`~repro.cpu.trace.Trace` takes the batched
        path (pre-decoded line addresses and issue-cycle steps, and —
        for the stock set-associative/LRU configuration — a fused
        access kernel); any other iterable of ``(addr, gap, write)``
        records takes the per-record path.  Both produce bit-identical
        results for equal traces.

        With a checker installed (``REPRO_CHECK``, see
        :mod:`repro.check`) the run is delegated to the checked driver,
        which executes the same kernels in sampled chunks with the
        invariant sanitizer and — for the fused configuration — the
        differential oracle in lockstep.  Checked results are
        bit-identical to unchecked ones.
        """
        checker = _check.active_checker()
        if checker is not None:
            from repro.check.oracle import checked_run

            return checked_run(self, trace, ctx, start_cycle, checker)
        if isinstance(trace, Trace):
            return self._run_columnar(trace, ctx, start_cycle)
        return self._run_records(trace, ctx, start_cycle)

    def _run_records(self, trace: Iterable[TraceRecord],
                     ctx: AccessContext = DEFAULT_CONTEXT,
                     start_cycle: int = 0, _carry: Optional[dict] = None,
                     _settle: bool = True) -> SimResult:
        l1 = self.l1
        l2 = l1.next_level
        width = self.issue_width
        hit_cost = l1.hit_latency
        window = _MlpWindow(self.mlp, self.overlap_credit)
        # The loop below is the simulator's innermost kernel; everything
        # it touches per record is hoisted into locals, and the MLP
        # charging arithmetic of _MlpWindow.note_miss is inlined.
        access = l1.access
        mlp = self.mlp
        credit = self.overlap_credit
        prune_at = CHARGED_PRUNE_THRESHOLD

        l1_acc0 = l1.stats.accesses
        l1_hit0 = l1.stats.hits
        l1_miss0 = l1.stats.demand_misses
        l2_acc0 = l2.stats.accesses
        l2_miss0 = l2.stats.demand_misses
        mem0 = l2.dram.lines_transferred
        rf0 = l1.stats.random_fill_issued

        write_ctx = AccessContext(thread_id=ctx.thread_id, domain=ctx.domain,
                                  critical=ctx.critical, is_write=True)
        now = start_cycle
        instructions = 0
        # Fractional issue cycles accumulate so four 1-gap records cost
        # one cycle, not four.  The checked driver runs this kernel in
        # chunks and threads the backlog (and the charge dict below)
        # through ``_carry`` so chunked execution stays bit-identical.
        issue_backlog = 0 if _carry is None else _carry["backlog"]
        # line -> completion already charged, so a burst of references
        # to one in-flight line pays its wait only once — but the FIRST
        # reference to a line someone else fetched (e.g. a too-late
        # next-line prefetch) pays the remaining latency.  Pruned once
        # it exceeds CHARGED_PRUNE_THRESHOLD entries so it cannot grow
        # with every unique line of a long trace.
        charged: dict = {} if _carry is None else _carry["charged"]
        for addr, gap, write in trace:
            instructions += gap
            issue_backlog += gap
            now += issue_backlog // width
            issue_backlog %= width
            result = access(addr, now, write_ctx if write else ctx)
            if result.l1_hit:
                now += hit_cost
            elif result.merged:
                completion = result.ready_at - hit_cost
                if charged.get(result.line_addr) == completion:
                    now += hit_cost
                else:
                    charged[result.line_addr] = completion
                    now += hit_cost
                    remaining = completion - now - credit
                    if remaining > 0:
                        now += (remaining + mlp - 1) // mlp
            else:
                charged[result.line_addr] = result.ready_at
                now += hit_cost + result.stalled_for_mshr
                remaining = result.ready_at - now - credit
                if remaining > 0:
                    now += (remaining + mlp - 1) // mlp
            if len(charged) >= prune_at:
                charged = prune_charged(charged, now)
        if _carry is not None:
            _carry["charged"] = charged
            _carry["backlog"] = issue_backlog
        if _settle:
            now = window.settle(now)
            l1.settle()
        return SimResult(
            instructions=instructions,
            cycles=now - start_cycle,
            l1_accesses=l1.stats.accesses - l1_acc0,
            l1_hits=l1.stats.hits - l1_hit0,
            l1_demand_misses=l1.stats.demand_misses - l1_miss0,
            l2_accesses=l2.stats.accesses - l2_acc0,
            l2_demand_misses=l2.stats.demand_misses - l2_miss0,
            memory_lines=l2.dram.lines_transferred - mem0,
            random_fill_issued=l1.stats.random_fill_issued - rf0,
        )

    def _fast_path_eligible(self, ctx: AccessContext) -> bool:
        """True when the fused kernel may replace per-access dispatch.

        The kernel inlines exactly the stock configuration: a plain
        set-associative tag store (no subclass) with LRU hits, a policy
        with no ``bypass``/``on_hit`` overrides, and a context without
        lock/unlock side effects.  This covers the baseline and every
        random-fill window; PLcache, Newcache, the prefetcher and the
        disable-cache scheme fall back to the per-record dispatch.
        """
        l1 = self.l1
        return (type(l1.tag_store) is SetAssociativeCache
                and l1.tag_store._lru_hits
                and not l1._policy_bypasses
                and l1._policy_on_hit is None
                and not ctx.lock and not ctx.unlock)

    def _run_columnar(self, trace: Trace, ctx: AccessContext,
                      start_cycle: int) -> SimResult:
        """Batched run: consume pre-decoded columns instead of records."""
        l1 = self.l1
        decode = trace.decoded(l1._line_shift)
        lines_l = decode.lines_list()
        steps_l = decode.issue_steps(self.issue_width)
        writes_l = decode.writes_list()
        if self._fast_path_eligible(ctx):
            return self._run_columnar_fused(trace, lines_l, steps_l,
                                            writes_l, ctx, start_cycle)
        l2 = l1.next_level
        hit_cost = l1.hit_latency
        window = _MlpWindow(self.mlp, self.overlap_credit)
        access_line = l1.access_line
        mlp = self.mlp
        credit = self.overlap_credit
        prune_at = CHARGED_PRUNE_THRESHOLD

        l1_acc0 = l1.stats.accesses
        l1_hit0 = l1.stats.hits
        l1_miss0 = l1.stats.demand_misses
        l2_acc0 = l2.stats.accesses
        l2_miss0 = l2.stats.demand_misses
        mem0 = l2.dram.lines_transferred
        rf0 = l1.stats.random_fill_issued

        write_ctx = AccessContext(thread_id=ctx.thread_id, domain=ctx.domain,
                                  critical=ctx.critical, is_write=True)
        now = start_cycle
        charged: dict = {}
        for line, step, write in zip(lines_l, steps_l, writes_l):
            now += step
            result = access_line(line, now, write_ctx if write else ctx)
            if result.l1_hit:
                now += hit_cost
            elif result.merged:
                completion = result.ready_at - hit_cost
                if charged.get(line) == completion:
                    now += hit_cost
                else:
                    charged[line] = completion
                    now += hit_cost
                    remaining = completion - now - credit
                    if remaining > 0:
                        now += (remaining + mlp - 1) // mlp
            else:
                charged[line] = result.ready_at
                now += hit_cost + result.stalled_for_mshr
                remaining = result.ready_at - now - credit
                if remaining > 0:
                    now += (remaining + mlp - 1) // mlp
            if len(charged) >= prune_at:
                charged = prune_charged(charged, now)
        now = window.settle(now)
        l1.settle()
        return SimResult(
            instructions=trace.instruction_count,
            cycles=now - start_cycle,
            l1_accesses=l1.stats.accesses - l1_acc0,
            l1_hits=l1.stats.hits - l1_hit0,
            l1_demand_misses=l1.stats.demand_misses - l1_miss0,
            l2_accesses=l2.stats.accesses - l2_acc0,
            l2_demand_misses=l2.stats.demand_misses - l2_miss0,
            memory_lines=l2.dram.lines_transferred - mem0,
            random_fill_issued=l1.stats.random_fill_issued - rf0,
        )

    def _run_columnar_fused(self, trace: Trace, lines_l, steps_l, writes_l,
                            ctx: AccessContext, start_cycle: int,
                            _carry: Optional[dict] = None,
                            _settle: bool = True) -> SimResult:
        """Fused kernel: controller access inlined into the timing loop.

        Replicates ``L1Controller.access_line`` + the MLP charging
        arithmetic for the stock set-associative/LRU configuration (see
        ``_fast_path_eligible``) with no per-access call or
        ``AccessResult`` allocation.  Local mirrors of the miss queue's
        ``next_completion`` (``nc``) and the controller's
        ``_fills_blocked`` flag are refreshed after every operation
        that can move them (drain / fill issue / allocate), so the
        controller object stays consistent for the settle phase and for
        any later per-record accesses.

        Two deliberate divergences from per-record bookkeeping, both
        result-invisible: ``stats.accesses``/``stats.hits`` are added
        in one batch at the end (nothing reads them mid-run), and the
        ``charged`` prune check is skipped on hit records (hits never
        grow ``charged``, and pruning only ever removes entries whose
        completion has passed, which cannot change timing — see
        ``CHARGED_PRUNE_THRESHOLD``).
        """
        l1 = self.l1
        l2 = l1.next_level
        hit_cost = l1.hit_latency
        window = _MlpWindow(self.mlp, self.overlap_credit)
        mlp = self.mlp
        credit = self.overlap_credit
        prune_at = CHARGED_PRUNE_THRESHOLD

        tag_store = l1.tag_store
        sets = tag_store._sets
        set_mask = tag_store._set_mask
        tag_access = l1._tag_access
        miss_queue = l1.miss_queue
        mq_entries = miss_queue._entries
        mq_get = mq_entries.get
        mq_capacity = miss_queue.capacity
        allocate = miss_queue.allocate
        drain = miss_queue.drain
        install = l1._install
        issue_fills = l1._issue_random_fills
        enqueue_fills = l1._enqueue_random_fills
        policy_on_miss = l1._policy_on_miss
        l2_access = l1._l2_access
        fill_queue = l1.fill_queue
        stats = l1.stats
        l2_stats = l2.stats

        l1_acc0 = stats.accesses
        l1_hit0 = stats.hits
        l1_miss0 = stats.demand_misses
        l2_acc0 = l2_stats.accesses
        l2_miss0 = l2_stats.demand_misses
        mem0 = l2.dram.lines_transferred
        rf0 = stats.random_fill_issued

        # Specialize the demand-miss path by fill policy.  Kind 1 is a
        # plain NORMAL miss with no extra fills (demand fetch, or random
        # fill with the window registers at zero); kind 2 is the paper's
        # mechanism with the Figure 4 masked draw and the single-request
        # fill issue inlined (every RandomFillPolicy plan carries
        # exactly one line); kind 0 is the generic enqueue-then-drain
        # path for any other policy, and for non-power-of-two windows
        # (which draw via ``draw_below``).  The kind-2 RNG draw moves
        # after the demand L2 access (the L2/DRAM path never touches the
        # fill engine's RNG, so the draw sequence per miss is
        # unchanged).
        NORMAL = RequestType.NORMAL
        NOFILL = RequestType.NOFILL
        RANDOM_FILL = RequestType.RANDOM_FILL
        policy = l1._policy
        policy_kind = 0
        rf_buf = rf_refill = None
        rf_mask = rf_a = 0
        if type(policy) is DemandFetchPolicy:
            policy_kind = 1
        elif type(policy) is RandomFillPolicy:
            engine = policy.engine
            rf_window = engine.window_for(ctx.thread_id)
            if rf_window.a == 0 and rf_window.b == 0:
                policy_kind = 1
            else:
                rf_a, rf_mask, _ = engine._params[ctx.thread_id]
                if rf_mask is not None:
                    policy_kind = 2
                    rng = engine._rng
                    rf_buf = rng._buffer
                    rf_refill = rng._refill
        fill_cap = mq_capacity - l1.fill_reserve
        demand_misses = 0
        nlr = 0
        rf_issued = 0
        rf_dropped = 0

        write_ctx = AccessContext(thread_id=ctx.thread_id, domain=ctx.domain,
                                  critical=ctx.critical, is_write=True)
        now = start_cycle
        # The checked driver runs this kernel chunk by chunk; the charge
        # dict is threaded through ``_carry`` (prunes replace the dict,
        # so the holder is re-read on entry and written back on exit).
        charged: dict = {} if _carry is None else _carry["charged"]
        charged_get = charged.get
        hits_local = 0
        nc = miss_queue.next_completion
        fills_blocked = l1._fills_blocked
        for line, step, write in zip(lines_l, steps_l, writes_l):
            now += step
            if now >= nc:
                drain(now, install)
                l1._fills_blocked = fills_blocked = False
                nc = miss_queue.next_completion
            # Inlined SetAssociativeCache.access, LRU fast path.
            cache_set = sets[line & set_mask]
            index = 0
            hit = False
            for line_state in cache_set:
                if line_state.line_addr == line:
                    hit = True
                    break
                index += 1
            if hit:
                hits_local += 1
                if index:
                    cache_set.insert(0, cache_set.pop(index))
                if fill_queue and not fills_blocked:
                    issue_fills(now)
                    fills_blocked = l1._fills_blocked
                    nc = miss_queue.next_completion
                now += hit_cost
                continue
            record_ctx = write_ctx if write else ctx
            in_flight = mq_get(line)
            if in_flight is None and fill_queue and not fills_blocked:
                # Queued random fills are older than this demand miss,
                # so they claim MSHRs first — and one of them may be
                # for this very line, turning the miss into a merge.
                issue_fills(now)
                fills_blocked = l1._fills_blocked
                nc = miss_queue.next_completion
                in_flight = mq_get(line)
            if in_flight is not None:
                stats.mshr_merges += 1
                completion = in_flight.complete_at
                if completion < now:
                    completion = now
                if charged_get(line) == completion:
                    now += hit_cost
                else:
                    charged[line] = completion
                    now += hit_cost
                    remaining = completion - now - credit
                    if remaining > 0:
                        now += (remaining + mlp - 1) // mlp
                if len(charged) >= prune_at:
                    charged = prune_charged(charged, now)
                    charged_get = charged.get
                continue
            stall = 0
            access_now = now
            if len(mq_entries) >= mq_capacity:
                stall = nc - now
                if stall < 0:
                    stall = 0
                access_now = now + stall
                drain(access_now, install)
                l1._fills_blocked = fills_blocked = False
                nc = miss_queue.next_completion
                if tag_access(line, record_ctx):
                    # The drained line was the one we wanted; the
                    # timing loop charges only the hit (stall unused).
                    hits_local += 1
                    now += hit_cost
                    continue
            demand_misses += 1
            nlr += 1
            if policy_kind == 2:
                complete_at = l2_access(line, access_now, record_ctx)
                allocate(line, complete_at, NOFILL, record_ctx)
                l1._fills_blocked = fills_blocked = False
                nc = miss_queue.next_completion
                if not rf_buf:
                    rf_refill()
                fill_line = line + (rf_buf.pop() & rf_mask) - rf_a
                if fill_queue:
                    # Parked requests are older; preserve FIFO order.
                    enqueue_fills((fill_line,), record_ctx)
                    issue_fills(access_now)
                    fills_blocked = l1._fills_blocked
                    nc = miss_queue.next_completion
                elif fill_line < 0:
                    # Window underflow below address zero.
                    rf_dropped += 1
                else:
                    # Inlined single-request _issue_random_fills: the
                    # probe / merge-upgrade / demand-reserve sequence
                    # for exactly one queued request on an empty queue.
                    resident = False
                    for line_state in sets[fill_line & set_mask]:
                        if line_state.line_addr == fill_line:
                            resident = True
                            break
                    if resident:
                        rf_dropped += 1
                    else:
                        in_flight = mq_get(fill_line)
                        if in_flight is not None:
                            if in_flight.request_type is NOFILL:
                                in_flight.request_type = RANDOM_FILL
                                rf_issued += 1
                            else:
                                rf_dropped += 1
                        elif len(mq_entries) >= fill_cap:
                            fill_queue.append((fill_line, record_ctx))
                            l1._fills_blocked = fills_blocked = True
                        else:
                            fill_at = l2_access(fill_line, access_now,
                                                record_ctx)
                            nlr += 1
                            rf_issued += 1
                            allocate(fill_line, fill_at, RANDOM_FILL,
                                     record_ctx)
                            nc = miss_queue.next_completion
            elif policy_kind == 1:
                complete_at = l2_access(line, access_now, record_ctx)
                allocate(line, complete_at, NORMAL, record_ctx)
                l1._fills_blocked = fills_blocked = False
                nc = miss_queue.next_completion
                if fill_queue:
                    issue_fills(access_now)
                    fills_blocked = l1._fills_blocked
                    nc = miss_queue.next_completion
            else:
                plan = policy_on_miss(line, record_ctx)
                complete_at = l2_access(line, access_now, record_ctx)
                allocate(line, complete_at, plan.demand_type, record_ctx)
                l1._fills_blocked = fills_blocked = False
                nc = miss_queue.next_completion
                if plan.random_fill_lines:
                    enqueue_fills(plan.random_fill_lines, record_ctx)
                if fill_queue:
                    issue_fills(access_now)
                    fills_blocked = l1._fills_blocked
                    nc = miss_queue.next_completion
            charged[line] = complete_at
            now += hit_cost + stall
            remaining = complete_at - now - credit
            if remaining > 0:
                now += (remaining + mlp - 1) // mlp
            if len(charged) >= prune_at:
                charged = prune_charged(charged, now)
                charged_get = charged.get
        stats.accesses += len(lines_l)
        stats.hits += hits_local
        stats.demand_misses += demand_misses
        stats.next_level_requests += nlr
        stats.random_fill_issued += rf_issued
        stats.random_fill_dropped += rf_dropped
        if _carry is not None:
            _carry["charged"] = charged
        if _settle:
            now = window.settle(now)
            l1.settle()
        return SimResult(
            instructions=trace.instruction_count,
            cycles=now - start_cycle,
            l1_accesses=stats.accesses - l1_acc0,
            l1_hits=stats.hits - l1_hit0,
            l1_demand_misses=stats.demand_misses - l1_miss0,
            l2_accesses=l2_stats.accesses - l2_acc0,
            l2_demand_misses=l2_stats.demand_misses - l2_miss0,
            memory_lines=l2.dram.lines_transferred - mem0,
            random_fill_issued=stats.random_fill_issued - rf0,
        )
