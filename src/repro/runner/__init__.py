"""Parallel experiment runner.

The paper's evaluation is a grid of independent simulation *cells* —
(scheme, benchmark, window, seed) combinations that share no state.
This package turns a figure sweep into an explicit list of picklable
:class:`CellSpec` values and fans them over worker processes:

* :mod:`repro.runner.cells` — the cell vocabulary and the pure
  ``run_cell`` function every worker executes,
* :mod:`repro.runner.pool` — ``run_cells`` (ordered fan-out over a
  ``ProcessPoolExecutor``) and the ``REPRO_JOBS`` job-count knob,
* :mod:`repro.runner.report` — merge wall-clock / throughput numbers
  into ``BENCH_runner.json``.

Because ``run_cell`` is a pure function of its spec (fresh scheme,
deterministically derived RNG seeds, trace regenerated or loaded from
the content-addressed trace cache), a sweep's results are bit-identical
whether it runs inline, across 2 workers, or across 32.
"""

from repro.runner.cells import CellSpec, run_cell
from repro.runner.pool import last_run_stats, resolve_jobs, run_cells
from repro.runner.report import record_bench

__all__ = [
    "CellSpec",
    "last_run_stats",
    "record_bench",
    "resolve_jobs",
    "run_cell",
    "run_cells",
]
