"""Skewed keyed-index randomization (CEASER / ScatterCache family).

Each way hashes the line address through its own keyed index function,
so a line's candidate slots are spread ("skewed") across the ways and
an attacker cannot construct eviction sets from address arithmetic
alone (Qureshi, MICRO'18; Werner et al., USENIX Sec'19).  Replacement
picks uniformly among the candidate ways.  Periodic *epoch rekeying*
draws fresh keys after a fixed number of fills, bounding how long any
learned eviction set stays useful.

Modeling notes, scoped to what the leakage channels observe:

* The keyed hash is a xor-multiply-shift over the line address — not
  cryptographic, but uniform and cheap, which is all the functional
  channels measure.
* CEASER remaps lines gradually during an epoch change; we model the
  epoch boundary as rekey-plus-flush, the conservative end of that
  design space (the whole cache pays cold misses after a rekey).

It remains a demand-fetch design: mapping randomization does not blunt
reuse-based attacks (Flush-Reload still sees the demand line) and, as
with Newcache/RPcache, the occupancy channel is untouched.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import random

from repro.cache.context import AccessContext, DEFAULT_CONTEXT
from repro.cache.tagstore import TagStore
from repro.util.rng import HardwareRng, derive_seed

_GOLDEN = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


class SkewedRandomCache(TagStore):
    """Set-associative store with one keyed index hash per way.

    Parameters
    ----------
    size_bytes, associativity, line_size:
        Geometry; ways-many skews over ``capacity / associativity`` rows.
    seed:
        Derives the replacement RNG and every epoch's way keys.
    rekey_period:
        Fills between epoch rekeys (default ``100 * capacity_lines``);
        a rekey flushes the cache, modeling a full CEASER remap.
    """

    def __init__(
        self,
        size_bytes: int,
        associativity: int = 4,
        line_size: int = 64,
        seed: int = 0,
        rekey_period: Optional[int] = None,
    ):
        if size_bytes <= 0 or size_bytes % (associativity * line_size):
            raise ValueError(
                f"size {size_bytes} not divisible into {associativity}-way "
                f"sets of {line_size}-byte lines"
            )
        self.size_bytes = size_bytes
        self.associativity = associativity
        self.line_size = line_size
        self.capacity_lines = size_bytes // line_size
        self.num_rows = self.capacity_lines // associativity
        if self.num_rows & (self.num_rows - 1):
            raise ValueError("skewed cache needs a power-of-two row count")
        self._row_shift = 64 - max(1, self.num_rows.bit_length() - 1)
        self._seed = seed
        self._rng = HardwareRng(derive_seed(seed, "skewed", "repl"))
        self.epoch = 0
        self._keys = self._draw_keys(0)
        self.rekey_period = (
            rekey_period if rekey_period is not None else 100 * self.capacity_lines
        )
        if self.rekey_period <= 0:
            raise ValueError(f"rekey_period must be positive, got {self.rekey_period}")
        self._fills_this_epoch = 0
        #: ways[w][row] -> resident line address or None
        self._ways: List[List[Optional[int]]] = [
            [None] * self.num_rows for _ in range(associativity)
        ]

    # -- keyed indexing ----------------------------------------------------

    def _draw_keys(self, epoch: int) -> List[int]:
        key_rng = random.Random(derive_seed(self._seed, "skewed", "keys", epoch))
        return [key_rng.getrandbits(64) for _ in range(self.associativity)]

    def _row(self, line_addr: int, way: int) -> int:
        if self.num_rows == 1:
            return 0
        hashed = ((line_addr ^ self._keys[way]) * _GOLDEN) & _MASK64
        return hashed >> self._row_shift

    def rekey(self) -> None:
        """Start a new epoch: fresh way keys, cold cache."""
        self.epoch += 1
        self._keys = self._draw_keys(self.epoch)
        self._fills_this_epoch = 0
        for way in self._ways:
            for row in range(self.num_rows):
                way[row] = None

    # -- TagStore interface ------------------------------------------------

    def probe(self, line_addr: int, ctx: AccessContext = DEFAULT_CONTEXT) -> bool:
        for way in range(self.associativity):
            if self._ways[way][self._row(line_addr, way)] == line_addr:
                return True
        return False

    def access(self, line_addr: int, ctx: AccessContext = DEFAULT_CONTEXT) -> bool:
        # Random replacement keeps no recency state: access == probe.
        return self.probe(line_addr, ctx)

    def fill(self, line_addr: int, ctx: AccessContext = DEFAULT_CONTEXT) -> Optional[int]:
        if self._fills_this_epoch >= self.rekey_period:
            self.rekey()
        rows = [self._row(line_addr, way) for way in range(self.associativity)]
        for way, row in enumerate(rows):
            if self._ways[way][row] == line_addr:
                return None
        self._fills_this_epoch += 1
        for way, row in enumerate(rows):
            if self._ways[way][row] is None:
                self._ways[way][row] = line_addr
                return None
        way = self._rng.draw_below(self.associativity)
        evicted = self._ways[way][rows[way]]
        self._ways[way][rows[way]] = line_addr
        return evicted

    def invalidate(self, line_addr: int) -> bool:
        for way in range(self.associativity):
            row = self._row(line_addr, way)
            if self._ways[way][row] == line_addr:
                self._ways[way][row] = None
                return True
        return False

    def flush(self) -> None:
        for way in self._ways:
            for row in range(self.num_rows):
                way[row] = None

    def resident_lines(self) -> Iterator[int]:
        for way in self._ways:
            for line in way:
                if line is not None:
                    yield line

    # -- checked-mode support ----------------------------------------------

    def resident_rows(self) -> Iterator["tuple[int, int, int]"]:
        """(way, row, line) triples, for the invariant sanitizer."""
        for way_index, way in enumerate(self._ways):
            for row, line in enumerate(way):
                if line is not None:
                    yield (way_index, row, line)
