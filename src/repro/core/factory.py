"""One-call constructors for random fill cache hierarchies."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.hierarchy import Hierarchy, build_hierarchy
from repro.cache.tagstore import TagStore
from repro.core.engine import RandomFillEngine
from repro.core.policy import RandomFillPolicy
from repro.core.syscalls import RandomFillOS
from repro.memory.dram import DramConfig
from repro.util.rng import HardwareRng


@dataclass
class RandomFillHierarchy:
    """A full hierarchy plus the random-fill control plane."""

    hierarchy: Hierarchy
    engine: RandomFillEngine
    os: RandomFillOS

    @property
    def l1(self):
        return self.hierarchy.l1

    @property
    def l2(self):
        return self.hierarchy.l2

    @property
    def dram(self):
        return self.hierarchy.dram


def build_random_fill_hierarchy(
        seed: int = 0,
        l1_tag_store: Optional[TagStore] = None,
        l1_size: int = 32 * 1024,
        l1_assoc: int = 4,
        line_size: int = 64,
        l2_size: int = 2 * 1024 * 1024,
        l2_assoc: int = 8,
        l2_hit_latency: int = 20,
        mshr_entries: int = 4,
        dram_config: DramConfig = DramConfig()) -> RandomFillHierarchy:
    """Build the Table IV hierarchy with a random fill L1.

    The returned object exposes the OS layer so callers use the paper's
    own interface (``os.set_window(-16, 5)``) to configure the window.
    By default the registers are zero, i.e. pure demand-fetch behaviour.
    """
    rng = HardwareRng(seed)
    engine = RandomFillEngine(rng)
    policy = RandomFillPolicy(engine)
    hierarchy = build_hierarchy(
        l1_tag_store=l1_tag_store, policy=policy,
        l1_size=l1_size, l1_assoc=l1_assoc, line_size=line_size,
        l2_size=l2_size, l2_assoc=l2_assoc, l2_hit_latency=l2_hit_latency,
        mshr_entries=mshr_entries, dram_config=dram_config)
    return RandomFillHierarchy(hierarchy=hierarchy, engine=engine,
                               os=RandomFillOS(engine))
