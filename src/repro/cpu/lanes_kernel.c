/* Lane-parallel group kernel: the flat state machine of
 * repro/cpu/timing.py:run_flat_general, transcribed to C and run once
 * per lane over the shared decoded trace columns.
 *
 * The transcription is branch-for-branch: the MissQueue drain order
 * (stable completion sort on insertion order), the fill-queue
 * drop/merge rules, the MSHR-full stall, the MLP charge table with its
 * prune threshold, and the end-of-run settle loop all mirror the
 * Python kernel exactly, so results are bit-identical per lane.  Every
 * quantity fits int64 (lines < 2^32, cycles grow by at most a few
 * hundred per record) and every division runs on non-negative
 * operands, so C arithmetic matches Python's exactly.
 *
 * Compiled on demand by repro/cpu/lanes.py with the host toolchain and
 * loaded via ctypes; when no compiler is available the Python per-lane
 * kernel in that module is the fallback.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define RT_NORMAL 0
#define RT_NOFILL 1
#define RT_RANDOM_FILL 2

/* mirrors MissQueue.NEVER */
#define NEVER (((int64_t)1) << 62)

/* mirrors repro.cpu.timing.CHARGED_PRUNE_THRESHOLD */
#define PRUNE_AT 8192
/* open-addressing table: load factor <= 0.25 at the prune bound */
#define CH_CAP 32768
#define CH_MASK (CH_CAP - 1)

typedef struct {
    int64_t key[CH_CAP];        /* -1 = empty (lines are >= 0) */
    int64_t val[CH_CAP];
    int64_t count;
} ChargeMap;

static void ch_clear(ChargeMap *m)
{
    memset(m->key, 0xff, sizeof(m->key));
    m->count = 0;
}

static inline uint64_t ch_slot(int64_t key)
{
    return (((uint64_t)key) * 0x9E3779B97F4A7C15ULL >> 32) & CH_MASK;
}

/* returns 1 and *val on hit, 0 on miss */
static inline int ch_get(const ChargeMap *m, int64_t key, int64_t *val)
{
    uint64_t i = ch_slot(key);
    while (m->key[i] != -1) {
        if (m->key[i] == key) {
            *val = m->val[i];
            return 1;
        }
        i = (i + 1) & CH_MASK;
    }
    return 0;
}

static inline void ch_put(ChargeMap *m, int64_t key, int64_t val)
{
    uint64_t i = ch_slot(key);
    while (m->key[i] != -1) {
        if (m->key[i] == key) {
            m->val[i] = val;
            return;
        }
        i = (i + 1) & CH_MASK;
    }
    m->key[i] = key;
    m->val[i] = val;
    m->count++;
}

/* prune_charged: drop entries whose completion has passed */
static void ch_prune(ChargeMap *m, ChargeMap *scratch, int64_t now)
{
    int64_t i;
    ch_clear(scratch);
    for (i = 0; i < CH_CAP; i++) {
        if (m->key[i] != -1 && m->val[i] > now)
            ch_put(scratch, m->key[i], m->val[i]);
    }
    memcpy(m, scratch, sizeof(*m));
}

typedef struct {
    /* shared columns */
    const int64_t *lines;
    int64_t n_records;
    /* geometry / policy scalars */
    int64_t l1_set_mask, l1_assoc;
    int64_t l2_set_mask, l2_assoc;
    int64_t l2_hit_latency;
    int64_t mq_capacity, fill_cap, fill_queue_capacity;
    int64_t hit_cost, mlp, credit;
    int64_t dram_lines_per_row, dram_banks;
    int64_t dram_hit_latency, dram_miss_latency;
    int64_t dram_hit_busy, dram_miss_busy;
    /* per-lane state */
    int64_t *l1;                /* l1_num_sets * l1_assoc, MRU first */
    int64_t *l2;                /* l2_num_sets * l2_assoc, MRU first */
    int64_t *mq_line, *mq_complete, *mq_type;   /* insertion order */
    int64_t mq_n;
    int64_t *fq;                /* ring buffer */
    int64_t fq_head, fq_n, fq_cap;
    int64_t *open_row, *bank_free;
    ChargeMap *charged, *scratch;
    int64_t nc;
    int fills_blocked;
    /* counters */
    int64_t hits, demand_misses, l2_accesses, l2_misses;
    int64_t memory_lines, rf_issued;
} Lane;

static inline int64_t fq_at(const Lane *ln, int64_t i)
{
    return ln->fq[(ln->fq_head + i) % ln->fq_cap];
}

static inline void fq_push(Lane *ln, int64_t line)
{
    ln->fq[(ln->fq_head + ln->fq_n) % ln->fq_cap] = line;
    ln->fq_n++;
}

static inline void fq_pop(Lane *ln)
{
    ln->fq_head = (ln->fq_head + 1) % ln->fq_cap;
    ln->fq_n--;
}

/* MRU-first set scan; -1 marks empty ways */
static inline int set_hit(int64_t *ways, int64_t assoc, int64_t line)
{
    int64_t i;
    for (i = 0; i < assoc; i++) {
        if (ways[i] == line)
            return 1;
        if (ways[i] == -1)
            return 0;
    }
    return 0;
}

/* hit refresh: move to MRU (slot 0) */
static inline void set_touch(int64_t *ways, int64_t assoc, int64_t line)
{
    int64_t i;
    if (ways[0] == line)
        return;
    for (i = 1; i < assoc; i++) {
        if (ways[i] == line) {
            memmove(ways + 1, ways, i * sizeof(int64_t));
            ways[0] = line;
            return;
        }
    }
}

/* install at MRU, evicting the LRU tail when full */
static inline void set_install(int64_t *ways, int64_t assoc, int64_t line)
{
    int64_t n = assoc;
    while (n > 0 && ways[n - 1] == -1)
        n--;
    if (n >= assoc)
        n = assoc - 1;
    memmove(ways + 1, ways, n * sizeof(int64_t));
    ways[0] = line;
}

/* L2Cache.access with DramModel.access inlined */
static int64_t l2_access(Lane *ln, int64_t line, int64_t at)
{
    int64_t *ways = ln->l2 + (line & ln->l2_set_mask) * ln->l2_assoc;
    int64_t row, bank, start, done;
    ln->l2_accesses++;
    if (set_hit(ways, ln->l2_assoc, line)) {
        set_touch(ways, ln->l2_assoc, line);
        return at + ln->l2_hit_latency;
    }
    ln->l2_misses++;
    row = line / ln->dram_lines_per_row;
    bank = row % ln->dram_banks;
    start = ln->bank_free[bank];
    at += ln->l2_hit_latency;
    if (start < at)
        start = at;
    if (ln->open_row[bank] == row) {
        done = start + ln->dram_hit_latency;
        ln->bank_free[bank] = start + ln->dram_hit_busy;
    } else {
        ln->open_row[bank] = row;
        done = start + ln->dram_miss_latency;
        ln->bank_free[bank] = start + ln->dram_miss_busy;
    }
    ln->memory_lines++;
    set_install(ways, ln->l2_assoc, line);
    return done;
}

static inline int mq_find(const Lane *ln, int64_t line)
{
    int64_t i;
    for (i = 0; i < ln->mq_n; i++)
        if (ln->mq_line[i] == line)
            return (int)i;
    return -1;
}

static inline void mq_put(Lane *ln, int64_t line, int64_t complete_at,
                          int64_t type)
{
    ln->mq_line[ln->mq_n] = line;
    ln->mq_complete[ln->mq_n] = complete_at;
    ln->mq_type[ln->mq_n] = type;
    ln->mq_n++;
    if (complete_at < ln->nc)
        ln->nc = complete_at;
}

/* MissQueue.drain + L1 install: retire completed entries in stable
 * completion order (ties break on insertion order) — the install
 * order matters when two retiring lines share an L1 set. */
static int64_t drain(Lane *ln, int64_t at)
{
    int64_t done_line[64], done_at[64], done_type[64];
    int64_t n_done = 0, i, j, w = 0, nxt = NEVER;
    if (at < ln->nc)
        return 0;
    for (i = 0; i < ln->mq_n; i++) {
        if (ln->mq_complete[i] <= at) {
            /* stable insertion sort by completion */
            j = n_done;
            while (j > 0 && done_at[j - 1] > ln->mq_complete[i]) {
                done_at[j] = done_at[j - 1];
                done_line[j] = done_line[j - 1];
                done_type[j] = done_type[j - 1];
                j--;
            }
            done_at[j] = ln->mq_complete[i];
            done_line[j] = ln->mq_line[i];
            done_type[j] = ln->mq_type[i];
            n_done++;
        } else {
            ln->mq_line[w] = ln->mq_line[i];
            ln->mq_complete[w] = ln->mq_complete[i];
            ln->mq_type[w] = ln->mq_type[i];
            if (ln->mq_complete[i] < nxt)
                nxt = ln->mq_complete[i];
            w++;
        }
    }
    for (i = 0; i < n_done; i++) {
        if (done_type[i] != RT_NOFILL) {
            int64_t dline = done_line[i];
            int64_t *ways =
                ln->l1 + (dline & ln->l1_set_mask) * ln->l1_assoc;
            if (!set_hit(ways, ln->l1_assoc, dline))
                set_install(ways, ln->l1_assoc, dline);
        }
    }
    ln->mq_n = w;
    ln->nc = nxt;
    return n_done;
}

/* L1Controller._issue_random_fills */
static void issue_fills(Lane *ln, int64_t at)
{
    while (ln->fq_n > 0) {
        int64_t head = fq_at(ln, 0);
        int idx;
        if (set_hit(ln->l1 + (head & ln->l1_set_mask) * ln->l1_assoc,
                    ln->l1_assoc, head)) {
            fq_pop(ln);
            continue;
        }
        idx = mq_find(ln, head);
        if (idx >= 0) {
            fq_pop(ln);
            if (ln->mq_type[idx] == RT_NOFILL) {
                ln->mq_type[idx] = RT_RANDOM_FILL;
                ln->rf_issued++;
            }
            continue;
        }
        if (ln->mq_n >= ln->fill_cap)
            break;
        fq_pop(ln);
        ln->rf_issued++;
        mq_put(ln, head, l2_access(ln, head, at), RT_RANDOM_FILL);
    }
    ln->fills_blocked = ln->fq_n > 0;
}

/* one lane's full trace pass; returns 0 on success */
static int run_one_lane(Lane *ln, const int64_t *steps,
                        int64_t policy_kind, const int64_t *offsets,
                        int64_t *out)
{
    int64_t now = 0, off_i = 0, i;
    const int64_t *lines = ln->lines;
    for (i = 0; i < ln->n_records; i++) {
        int64_t line = lines[i];
        int64_t *ways;
        int64_t completion, stall, access_now, complete_at, remaining;
        int idx;
        now += steps[i];
        if (now >= ln->nc) {
            drain(ln, now);
            ln->fills_blocked = 0;
        }
        ways = ln->l1 + (line & ln->l1_set_mask) * ln->l1_assoc;
        if (set_hit(ways, ln->l1_assoc, line)) {
            ln->hits++;
            set_touch(ways, ln->l1_assoc, line);
            if (ln->fq_n > 0 && !ln->fills_blocked)
                issue_fills(ln, now);
            now += ln->hit_cost;
            continue;
        }
        idx = mq_find(ln, line);
        if (idx < 0 && ln->fq_n > 0 && !ln->fills_blocked) {
            /* queued random fills are older than this demand miss */
            issue_fills(ln, now);
            idx = mq_find(ln, line);
        }
        if (idx >= 0) {
            int64_t prior;
            completion = ln->mq_complete[idx];
            if (completion < now)
                completion = now;
            if (ch_get(ln->charged, line, &prior) && prior == completion) {
                now += ln->hit_cost;
            } else {
                ch_put(ln->charged, line, completion);
                now += ln->hit_cost;
                remaining = completion - now - ln->credit;
                if (remaining > 0)
                    now += (remaining + ln->mlp - 1) / ln->mlp;
            }
            if (ln->charged->count >= PRUNE_AT)
                ch_prune(ln->charged, ln->scratch, now);
            continue;
        }
        stall = 0;
        access_now = now;
        if (ln->mq_n >= ln->mq_capacity) {
            stall = ln->nc - now;
            if (stall < 0)
                stall = 0;
            access_now = now + stall;
            drain(ln, access_now);
            ln->fills_blocked = 0;
            if (set_hit(ways, ln->l1_assoc, line)) {
                /* the drained line was the one we wanted */
                ln->hits++;
                set_touch(ways, ln->l1_assoc, line);
                now += ln->hit_cost;
                continue;
            }
        }
        ln->demand_misses++;
        if (policy_kind == 2) {
            int64_t fill_line;
            complete_at = l2_access(ln, line, access_now);
            mq_put(ln, line, complete_at, RT_NOFILL);
            ln->fills_blocked = 0;
            fill_line = line + offsets[off_i];
            off_i++;
            if (ln->fq_n > 0) {
                /* parked requests are older; preserve FIFO order */
                if (fill_line >= 0 && ln->fq_n < ln->fill_queue_capacity)
                    fq_push(ln, fill_line);
                issue_fills(ln, access_now);
            } else if (fill_line < 0) {
                /* window underflow: dropped */
            } else if (set_hit(ln->l1
                               + (fill_line & ln->l1_set_mask)
                               * ln->l1_assoc,
                               ln->l1_assoc, fill_line)) {
                /* already resident: dropped */
            } else {
                idx = mq_find(ln, fill_line);
                if (idx >= 0) {
                    if (ln->mq_type[idx] == RT_NOFILL) {
                        ln->mq_type[idx] = RT_RANDOM_FILL;
                        ln->rf_issued++;
                    }
                } else if (ln->mq_n >= ln->fill_cap) {
                    fq_push(ln, fill_line);
                    ln->fills_blocked = 1;
                } else {
                    ln->rf_issued++;
                    mq_put(ln, fill_line,
                           l2_access(ln, fill_line, access_now),
                           RT_RANDOM_FILL);
                }
            }
        } else {
            complete_at = l2_access(ln, line, access_now);
            mq_put(ln, line, complete_at, RT_NORMAL);
            ln->fills_blocked = 0;
            if (ln->fq_n > 0)
                issue_fills(ln, access_now);
        }
        ch_put(ln->charged, line, complete_at);
        now += ln->hit_cost + stall;
        remaining = complete_at - now - ln->credit;
        if (remaining > 0)
            now += (remaining + ln->mlp - 1) / ln->mlp;
        if (ln->charged->count >= PRUNE_AT)
            ch_prune(ln->charged, ln->scratch, now);
    }

    /* end-of-run settle: issued fills and their L2/DRAM traffic count
     * toward this run's totals */
    while (ln->fq_n > 0 || ln->mq_n > 0) {
        int progressed = 0;
        if (ln->mq_n > 0) {
            int64_t horizon = ln->nc > 0 ? ln->nc : 0;
            progressed = drain(ln, horizon) > 0;
        }
        if (ln->fq_n > 0 && ln->mq_n < ln->mq_capacity) {
            int64_t before = ln->fq_n;
            issue_fills(ln, 0);
            progressed = progressed || ln->fq_n != before;
        }
        if (!progressed)
            break;                      /* defensive backstop */
    }

    out[0] = now;
    out[1] = ln->hits;
    out[2] = ln->demand_misses;
    out[3] = ln->l2_accesses;
    out[4] = ln->l2_misses;
    out[5] = ln->memory_lines;
    out[6] = ln->rf_issued;
    return 0;
}

/* Entry point: run every lane of a batch group over the shared trace.
 * offsets holds n_lanes rows of n_records pregenerated fill offsets
 * (row contents unused for demand-fetch lanes); l2_template is the
 * warmed L2 image (l2_num_sets * l2_assoc, MRU first, -1 = empty way)
 * copied per lane; out receives 7 values per lane: cycles, hits,
 * demand_misses, l2_accesses, l2_misses, memory_lines, rf_issued.
 * Returns 0 on success, -1 on allocation failure. */
int run_lanes(int64_t n_records, const int64_t *lines,
              const int64_t *steps,
              int64_t n_lanes, const int64_t *policy_kinds,
              const int64_t *offsets, const int64_t *l2_template,
              int64_t l1_num_sets, int64_t l1_assoc,
              int64_t l2_num_sets, int64_t l2_assoc,
              int64_t l2_hit_latency, int64_t mq_capacity,
              int64_t fill_reserve, int64_t fill_queue_capacity,
              int64_t hit_cost, int64_t mlp, int64_t credit,
              int64_t dram_lines_per_row, int64_t dram_banks,
              int64_t dram_hit_latency, int64_t dram_miss_latency,
              int64_t dram_hit_busy, int64_t dram_miss_busy,
              int64_t *out)
{
    int64_t lane;
    int rc = 0;
    Lane ln;
    int64_t fq_cap = fill_queue_capacity + 1;
    if (mq_capacity > 64)
        return -2;                      /* drain scratch bound */
    memset(&ln, 0, sizeof(ln));
    ln.lines = lines;
    ln.n_records = n_records;
    ln.l1_set_mask = l1_num_sets - 1;
    ln.l1_assoc = l1_assoc;
    ln.l2_set_mask = l2_num_sets - 1;
    ln.l2_assoc = l2_assoc;
    ln.l2_hit_latency = l2_hit_latency;
    ln.mq_capacity = mq_capacity;
    ln.fill_cap = mq_capacity - fill_reserve;
    ln.fill_queue_capacity = fill_queue_capacity;
    ln.hit_cost = hit_cost;
    ln.mlp = mlp;
    ln.credit = credit;
    ln.dram_lines_per_row = dram_lines_per_row;
    ln.dram_banks = dram_banks;
    ln.dram_hit_latency = dram_hit_latency;
    ln.dram_miss_latency = dram_miss_latency;
    ln.dram_hit_busy = dram_hit_busy;
    ln.dram_miss_busy = dram_miss_busy;
    ln.fq_cap = fq_cap;

    ln.l1 = malloc(l1_num_sets * l1_assoc * sizeof(int64_t));
    ln.l2 = malloc(l2_num_sets * l2_assoc * sizeof(int64_t));
    ln.mq_line = malloc(mq_capacity * sizeof(int64_t));
    ln.mq_complete = malloc(mq_capacity * sizeof(int64_t));
    ln.mq_type = malloc(mq_capacity * sizeof(int64_t));
    ln.fq = malloc(fq_cap * sizeof(int64_t));
    ln.open_row = malloc(dram_banks * sizeof(int64_t));
    ln.bank_free = malloc(dram_banks * sizeof(int64_t));
    ln.charged = malloc(sizeof(ChargeMap));
    ln.scratch = malloc(sizeof(ChargeMap));
    if (!ln.l1 || !ln.l2 || !ln.mq_line || !ln.mq_complete || !ln.mq_type
        || !ln.fq || !ln.open_row || !ln.bank_free || !ln.charged
        || !ln.scratch) {
        rc = -1;
        goto done;
    }

    for (lane = 0; lane < n_lanes; lane++) {
        memset(ln.l1, 0xff, l1_num_sets * l1_assoc * sizeof(int64_t));
        memcpy(ln.l2, l2_template,
               l2_num_sets * l2_assoc * sizeof(int64_t));
        memset(ln.open_row, 0xff, dram_banks * sizeof(int64_t));
        memset(ln.bank_free, 0, dram_banks * sizeof(int64_t));
        ch_clear(ln.charged);
        ln.mq_n = 0;
        ln.fq_head = 0;
        ln.fq_n = 0;
        ln.nc = NEVER;
        ln.fills_blocked = 0;
        ln.hits = 0;
        ln.demand_misses = 0;
        ln.l2_accesses = 0;
        ln.l2_misses = 0;
        ln.memory_lines = 0;
        ln.rf_issued = 0;
        rc = run_one_lane(&ln, steps, policy_kinds[lane],
                          offsets + lane * n_records, out + lane * 7);
        if (rc != 0)
            goto done;
    }

done:
    free(ln.l1);
    free(ln.l2);
    free(ln.mq_line);
    free(ln.mq_complete);
    free(ln.mq_type);
    free(ln.fq);
    free(ln.open_row);
    free(ln.bank_free);
    free(ln.charged);
    free(ln.scratch);
    return rc;
}
