"""Attack statistics: the Equation (5) measurement-count model.

    N ~= 2 * Z_alpha^2 / ((P1 - P2)(t_miss - t_hit) / sigma_T)^2

gives the number of timing measurements a cache collision attack needs
for a success likelihood ``alpha``.  As P1 - P2 -> 0 the required
number of measurements diverges — the random fill cache's security
argument for the timing channel.
"""

from __future__ import annotations

import math

from repro.util.stats import normal_quantile


def measurements_needed(p1_minus_p2: float,
                        t_miss: float, t_hit: float,
                        sigma_t: float, alpha: float = 0.99) -> float:
    """Equation (5); returns ``math.inf`` when the signal is zero.

    Parameters mirror the paper: ``p1_minus_p2`` is the attacker's hit
    probability signal, ``t_miss - t_hit`` the cache timing gap,
    ``sigma_t`` the standard deviation of the total execution time, and
    ``alpha`` the desired likelihood of discovering the key.
    """
    if sigma_t <= 0:
        raise ValueError(f"sigma_t must be positive, got {sigma_t}")
    if t_miss <= t_hit:
        raise ValueError("t_miss must exceed t_hit")
    if not 0.5 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0.5, 1), got {alpha}")
    signal = p1_minus_p2 * (t_miss - t_hit) / sigma_t
    if signal == 0.0:
        return math.inf
    z = normal_quantile(alpha)
    return 2.0 * z * z / (signal * signal)


def signal_to_noise(p1_minus_p2: float, t_miss: float, t_hit: float,
                    sigma_t: float) -> float:
    """The attacker's per-measurement SNR, Equation (4) over sigma_T."""
    if sigma_t <= 0:
        raise ValueError(f"sigma_t must be positive, got {sigma_t}")
    return p1_minus_p2 * (t_miss - t_hit) / sigma_t
