"""Newcache: dynamic memory-to-cache remapping (Wang & Lee, MICRO'08).

Newcache is a *logically direct-mapped* cache with more index bits than
the physical cache needs (``extra_index_bits``), plus a remapping table
(one per protected trust domain, one shared by all unprotected
processes) that maps a logical index to a physical cache line.  Misses
are handled by the SecRAND security-aware random replacement algorithm:

* **index miss** (no physical line holds this (RMT, index)): a uniformly
  random physical line is evicted and remapped to the new index;
* **tag miss** (the mapped line holds a different tag): the mapped
  line's data is replaced in place for same-domain accesses; for
  cross-domain conflicts SecRAND evicts a random line instead, so the
  attacker learns nothing from where a victim line lands.

This reproduces the properties the paper relies on: randomized
contention (defeats contention based attacks), random replacement
(makes a full cache clean hard — the Table III note), and a higher
effective associativity from the longer index (fewer conflict misses).
It remains a demand-fetch cache, hence still vulnerable to reuse based
attacks — which is the paper's point.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.cache.context import AccessContext, DEFAULT_CONTEXT
from repro.cache.tagstore import TagStore
from repro.util.rng import HardwareRng


class _PhysLine:
    """One physical cache line: which logical slot it holds."""

    __slots__ = ("rmt_id", "index", "line_addr")

    def __init__(self, rmt_id: int, index: int, line_addr: int):
        self.rmt_id = rmt_id
        self.index = index
        self.line_addr = line_addr


class Newcache(TagStore):
    """Logical direct-mapped tag store with a remapping table.

    Parameters
    ----------
    size_bytes, line_size:
        Physical geometry.
    extra_index_bits:
        k: the logical index is ``log2(lines) + k`` bits (the paper's
        Newcache uses k = 4 by default; more bits → fewer conflicts).
    rng:
        Randomness source for SecRAND replacement.
    """

    def __init__(self, size_bytes: int, line_size: int = 64,
                 extra_index_bits: int = 4,
                 rng: Optional[HardwareRng] = None, seed: int = 0):
        if size_bytes <= 0 or size_bytes % line_size:
            raise ValueError(f"size {size_bytes} not a multiple of line size")
        self.line_size = line_size
        self.capacity_lines = size_bytes // line_size
        if self.capacity_lines & (self.capacity_lines - 1):
            raise ValueError("Newcache needs a power-of-two line count")
        if extra_index_bits < 0:
            raise ValueError(f"extra_index_bits must be >= 0, got {extra_index_bits}")
        phys_bits = self.capacity_lines.bit_length() - 1
        self.index_bits = phys_bits + extra_index_bits
        self._index_mask = (1 << self.index_bits) - 1
        self._rng = rng if rng is not None else HardwareRng(seed)
        self._phys: List[Optional[_PhysLine]] = [None] * self.capacity_lines
        self._mapping: Dict[Tuple[int, int], int] = {}
        self._free: List[int] = list(range(self.capacity_lines))

    # -- geometry helpers ----------------------------------------------------

    def _slot(self, line_addr: int, ctx: AccessContext) -> Tuple[int, int, int]:
        """(rmt_id, logical index, tag) of a line address."""
        index = line_addr & self._index_mask
        tag = line_addr >> self.index_bits
        return ctx.domain, index, tag

    # -- TagStore interface ----------------------------------------------

    def probe(self, line_addr: int, ctx: AccessContext = DEFAULT_CONTEXT) -> bool:
        rmt_id, index, _ = self._slot(line_addr, ctx)
        phys = self._mapping.get((rmt_id, index))
        if phys is None:
            return False
        entry = self._phys[phys]
        return entry is not None and entry.line_addr == line_addr

    # Logical-DM lookup has no recency state, so access == probe.
    def access(self, line_addr: int, ctx: AccessContext = DEFAULT_CONTEXT) -> bool:
        return self.probe(line_addr, ctx)

    def _evict_phys(self, phys: int) -> Optional[int]:
        entry = self._phys[phys]
        if entry is None:
            return None
        del self._mapping[(entry.rmt_id, entry.index)]
        self._phys[phys] = None
        return entry.line_addr

    def _random_victim(self) -> int:
        if self._free:
            # Fill empty frames first (a cold cache fills before evicting);
            # choose among them randomly so placement stays unpredictable.
            pick = self._rng.draw_below(len(self._free))
            self._free[pick], self._free[-1] = self._free[-1], self._free[pick]
            return self._free.pop()
        return self._rng.draw_below(self.capacity_lines)

    def fill(self, line_addr: int,
             ctx: AccessContext = DEFAULT_CONTEXT) -> Optional[int]:
        rmt_id, index, _ = self._slot(line_addr, ctx)
        key = (rmt_id, index)
        phys = self._mapping.get(key)
        if phys is not None:
            entry = self._phys[phys]
            if entry is not None and entry.line_addr == line_addr:
                return None  # already resident
            # Tag miss: replace the mapped line's data in place (SecRAND's
            # same-domain path; cross-domain sharing of an RMT does not
            # occur in our experiments).
            evicted = entry.line_addr if entry is not None else None
            self._phys[phys] = _PhysLine(rmt_id, index, line_addr)
            return evicted
        # Index miss: random victim anywhere, remap.
        victim = self._random_victim()
        evicted = self._evict_phys(victim)
        self._phys[victim] = _PhysLine(rmt_id, index, line_addr)
        self._mapping[key] = victim
        return evicted

    def invalidate(self, line_addr: int) -> bool:
        # The line may be mapped under any domain's RMT; scan mappings for
        # this address (invalidation is off the critical path).
        for (rmt_id, index), phys in list(self._mapping.items()):
            entry = self._phys[phys]
            if entry is not None and entry.line_addr == line_addr:
                self._evict_phys(phys)
                self._free.append(phys)
                return True
        return False

    def flush(self) -> None:
        self._mapping.clear()
        self._phys = [None] * self.capacity_lines
        self._free = list(range(self.capacity_lines))

    def resident_lines(self) -> Iterator[int]:
        for entry in self._phys:
            if entry is not None:
                yield entry.line_addr
