"""Batched execution tests: planner, knobs, bit-identity, fault splits.

The batched fast path must be invisible except in speed: every grid
below is run with batching on and off (and across jobs counts) and the
results compared for equality, the cache short-circuit is proven to
never reach planning or trace decode, and fault-injected batches are
shown to split back into the ordinary per-cell retry machinery.
"""

import os
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.runner.pool as pool_mod
from repro.runner.batch import (
    MAX_BATCH,
    BatchItem,
    CellBatch,
    plan_batches,
    resolve_batch,
    run_batch,
)
from repro.runner.cells import CellSpec, run_cell
from repro.runner.pool import last_run_stats, run_cells
from repro.runner.result_cache import ResultCache
from repro.runner.telemetry import read_events


class BatchSquareSpec:
    """Pure, batchable toy cell (groups by an arbitrary label)."""

    def __init__(self, value, group="g"):
        self.value = value
        self.group = group

    def __repr__(self):
        return f"BatchSquareSpec({self.value}, group={self.group!r})"

    def batch_group_key(self):
        return ("square", self.group)

    def run(self):
        return self.value * self.value


class CacheableBatchSquareSpec(BatchSquareSpec):
    """Batchable cell that opts into the result cache and counts its
    executions through marker files (atomic across processes)."""

    def __init__(self, value, state_dir, group="g"):
        super().__init__(value, group)
        self.state_dir = state_dir

    def __repr__(self):
        return f"CacheableBatchSquareSpec({self.value}, group={self.group!r})"

    def result_cache_token(self):
        return "batch-test"

    def run(self):
        _count_attempt(self.state_dir, f"square-{self.value}")
        return self.value * self.value


class FaultyBatchSpec:
    """Batchable cell that misbehaves for its first ``times`` attempts.

    ``mode`` is ``"raise"``, ``"hang"`` (sleep a minute) or ``"kill"``
    (``os._exit``, taking the worker down).  Attempts are counted via
    marker files so the count spans the batch attempt *and* the
    per-cell retries after a split.
    """

    def __init__(self, tag, state_dir, mode, times, group="g"):
        self.tag = tag
        self.state_dir = state_dir
        self.mode = mode
        self.times = times
        self.group = group

    def __repr__(self):
        return (f"FaultyBatchSpec({self.tag!r}, mode={self.mode!r}, "
                f"times={self.times})")

    def batch_group_key(self):
        return ("square", self.group)

    def run(self):
        if _count_attempt(self.state_dir, self.tag) < self.times:
            if self.mode == "raise":
                raise RuntimeError(f"injected failure in {self.tag}")
            if self.mode == "hang":
                time.sleep(60)
            if self.mode == "kill":
                os._exit(139)
        return ("ok", self.tag)


def _count_attempt(state_dir, tag):
    """Record one attempt of ``tag``; returns how many came before."""
    n = 0
    while True:
        try:
            open(os.path.join(state_dir, f"{tag}.{n}"), "x").close()
            return n
        except FileExistsError:
            n += 1


def _attempts(state_dir, tag):
    return len([name for name in os.listdir(state_dir)
                if name.startswith(f"{tag}.")])


@pytest.fixture
def nocache():
    return ResultCache(disk_dir=None, use_default_disk_dir=False)


@pytest.fixture
def state_dir(tmp_path):
    d = tmp_path / "state"
    d.mkdir()
    return str(d)


class TestResolveBatch:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH", raising=False)
        assert resolve_batch() is True

    def test_env_off_values(self, monkeypatch):
        for value in ("0", "off", "no", "false", " OFF "):
            monkeypatch.setenv("REPRO_BATCH", value)
            assert resolve_batch() is False

    def test_env_on_values(self, monkeypatch):
        for value in ("1", "on", "yes", "true"):
            monkeypatch.setenv("REPRO_BATCH", value)
            assert resolve_batch() is True

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "0")
        assert resolve_batch(True) is True
        monkeypatch.setenv("REPRO_BATCH", "1")
        assert resolve_batch(False) is False

    def test_garbage_env_raises_naming_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "sometimes")
        with pytest.raises(ValueError, match="REPRO_BATCH"):
            resolve_batch()


class TestPlanner:
    def test_groups_by_key_and_keeps_optouts_single(self):
        class PlainSpec:                       # no batch_group_key at all
            def run(self):
                return None

        class OptOutSpec(PlainSpec):
            def batch_group_key(self):
                return None

        specs = [BatchSquareSpec(0, "a"), PlainSpec(),
                 BatchSquareSpec(1, "b"), BatchSquareSpec(2, "a"),
                 OptOutSpec(), BatchSquareSpec(3, "b")]
        items = plan_batches(specs, range(len(specs)))
        batches = [i for i in items if isinstance(i, BatchItem)]
        singles = [i for i in items if not isinstance(i, BatchItem)]
        assert sorted(singles) == [1, 4]
        assert sorted(tuple(b.indices) for b in batches) == \
            [(0, 3), (2, 5)]
        assert all(b.batch.kind == "square" for b in batches)

    def test_order_is_by_first_index(self):
        specs = [BatchSquareSpec(i, "a" if i % 2 else "b")
                 for i in range(6)]
        items = plan_batches(specs, range(len(specs)))
        firsts = [i.indices[0] if isinstance(i, BatchItem) else i
                  for i in items]
        assert firsts == sorted(firsts)

    def test_chunks_at_max_batch(self):
        specs = [BatchSquareSpec(i) for i in range(MAX_BATCH * 2 + 6)]
        items = plan_batches(specs, range(len(specs)))
        sizes = [len(i.indices) for i in items if isinstance(i, BatchItem)]
        assert sizes == [MAX_BATCH, MAX_BATCH, 6]

    def test_singleton_tail_chunk_stays_plain(self):
        specs = [BatchSquareSpec(i) for i in range(MAX_BATCH + 1)]
        items = plan_batches(specs, range(len(specs)))
        batches = [i for i in items if isinstance(i, BatchItem)]
        assert [len(b.indices) for b in batches] == [MAX_BATCH]
        assert items[-1] == MAX_BATCH      # the leftover index, unbatched

    def test_jobs_cap_spreads_small_grids(self):
        specs = [BatchSquareSpec(i) for i in range(8)]
        items = plan_batches(specs, range(len(specs)), jobs=4)
        sizes = [len(i.indices) for i in items if isinstance(i, BatchItem)]
        assert sizes == [2, 2, 2, 2]       # ceil(8 / 4) per batch

    def test_only_pending_indices_are_planned(self):
        specs = [BatchSquareSpec(i) for i in range(6)]
        items = plan_batches(specs, [1, 3, 5])
        (batch,) = items
        assert batch.indices == (1, 3, 5)


class TestBatchedRun:
    def test_inline_batches_and_counts(self, nocache, tmp_path):
        specs = [BatchSquareSpec(i) for i in range(5)]
        log = str(tmp_path / "telemetry.jsonl")
        results = run_cells(specs, jobs=1, result_cache=nocache,
                            telemetry=log)
        assert results == [0, 1, 4, 9, 16]
        stats = last_run_stats()
        assert stats["batches"] == 1
        assert stats["batched_cells"] == 5
        events = read_events(log)
        assert any(e["event"] == "batch_start" for e in events)
        finish = [e for e in events if e["event"] == "batch_finish"]
        assert len(finish) == 1 and finish[0]["size"] == 5
        cell_finish = [e for e in events if e["event"] == "cell_finish"]
        assert len(cell_finish) == 5
        for event in cell_finish:
            assert event["batch_id"] == finish[0]["batch_id"]
            assert event["batch_size"] == 5
            assert "batch_amortized_decode" in event

    def test_pooled_matches_unbatched(self, nocache):
        specs = [BatchSquareSpec(i, "a" if i < 4 else "b")
                 for i in range(8)]
        plain = run_cells(specs, jobs=1, result_cache=nocache, batch=False)
        assert last_run_stats()["batches"] == 0
        pooled = run_cells(specs, jobs=2, result_cache=nocache, batch=True)
        assert last_run_stats()["batches"] >= 1
        assert plain == pooled == [i * i for i in range(8)]

    def test_check_env_forces_per_cell(self, nocache, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "64")
        specs = [BatchSquareSpec(i) for i in range(4)]
        results = run_cells(specs, jobs=1, result_cache=nocache)
        assert results == [0, 1, 4, 9]
        assert last_run_stats()["batches"] == 0

    def test_single_pending_cell_never_batches(self, nocache):
        results = run_cells([BatchSquareSpec(3)], jobs=1,
                            result_cache=nocache)
        assert results == [9]
        assert last_run_stats()["batches"] == 0


class TestCacheShortCircuit:
    def test_fully_cached_grid_skips_planning(self, tmp_path, state_dir,
                                              monkeypatch):
        cache = ResultCache(disk_dir=str(tmp_path / "results"))
        specs = [CacheableBatchSquareSpec(i, state_dir) for i in range(4)]
        first = run_cells(specs, jobs=1, result_cache=cache)
        assert first == [0, 1, 4, 9]
        assert last_run_stats()["batches"] == 1
        assert all(_attempts(state_dir, f"square-{i}") == 1
                   for i in range(4))

        # Second run: every cell is checkpointed, so the planner must
        # never even be consulted (pending is empty).
        def boom(*_args, **_kwargs):
            raise AssertionError("plan_batches called on a cached grid")
        monkeypatch.setattr(pool_mod, "plan_batches", boom)
        log = str(tmp_path / "telemetry.jsonl")
        second = run_cells(specs, jobs=1, result_cache=cache, telemetry=log)
        assert second == first
        stats = last_run_stats()
        assert stats["batches"] == 0
        assert stats["result_cache_hits"] == 4
        assert all(_attempts(state_dir, f"square-{i}") == 1
                   for i in range(4))
        assert not any(e["event"] == "batch_start"
                       for e in read_events(log))

    def test_fully_cached_general_grid_never_decodes(self, tmp_path,
                                                     monkeypatch):
        cache = ResultCache(disk_dir=str(tmp_path / "results"))
        specs = [CellSpec(kind="general", benchmark="astar", window=window,
                          n_refs=1500, seed=3)
                 for window in ((0, 0), (0, 3), (4, 3))]
        first = run_cells(specs, jobs=1, result_cache=cache)

        def boom(*_args, **_kwargs):
            raise AssertionError("trace loaded for a fully cached grid")
        monkeypatch.setattr("repro.workloads.cache.cached_workload", boom)
        second = run_cells(specs, jobs=1, result_cache=cache)
        assert second == first
        assert last_run_stats()["result_cache_hits"] == 3


#: window shapes covering demand fetch, forward, bidirectional and the
#: non-power-of-two fallback (W = 5 has no rf_mask -> per-cell path)
WINDOWS = ((0, 0), (0, 7), (4, 3), (2, 2), (16, 15))


class TestBitIdentity:
    """Batched == per-cell, bit for bit, across schemes and windows."""

    @settings(max_examples=8, deadline=None)
    @given(windows=st.lists(st.sampled_from(WINDOWS), min_size=2,
                            max_size=4, unique=True),
           warm=st.booleans(),
           seed=st.integers(min_value=0, max_value=3))
    def test_general_grid(self, windows, warm, seed):
        nocache = ResultCache(disk_dir=None, use_default_disk_dir=False)
        specs = [CellSpec(kind="general", benchmark=benchmark,
                          scheme=scheme, window=window, n_refs=1200,
                          seed=seed, warm=warm)
                 for benchmark in ("astar", "lbm")
                 for window in windows
                 for scheme in ("random_fill",)]
        specs += [CellSpec(kind="general", benchmark="astar",
                           scheme=scheme, window=(0, 0), n_refs=1200,
                           seed=seed, warm=warm)
                  for scheme in ("baseline", "tagged_prefetch")]
        batched = run_cells(specs, jobs=1, result_cache=nocache,
                            batch=True)
        assert last_run_stats()["batches"] >= 1
        percell = run_cells(specs, jobs=1, result_cache=nocache,
                            batch=False)
        assert last_run_stats()["batches"] == 0
        assert batched == percell

    def test_general_grid_across_jobs(self):
        nocache = ResultCache(disk_dir=None, use_default_disk_dir=False)
        specs = [CellSpec(kind="general", benchmark="astar", window=window,
                          n_refs=1500, seed=0)
                 for window in WINDOWS]
        runs = [run_cells(specs, jobs=jobs, result_cache=nocache,
                          batch=batch)
                for jobs in (1, 2) for batch in (True, False)]
        assert all(run == runs[0] for run in runs[1:])

    def test_leakage_grid(self):
        from repro.leakage.sweep import LeakageCellSpec, window_pair
        nocache = ResultCache(disk_dir=None, use_default_disk_dir=False)
        specs = [LeakageCellSpec(channel="eq7", window=window_pair(size),
                                 trials=120, curve_repeats=10)
                 for size in (2, 4, 8)]
        batched = run_cells(specs, jobs=1, result_cache=nocache,
                            batch=True)
        assert last_run_stats()["batches"] == 1
        percell = run_cells(specs, jobs=1, result_cache=nocache,
                            batch=False)
        assert batched == percell

    def test_run_batch_mixed_eligibility(self):
        # One group, four cells: two take the flat kernel, the
        # non-power-of-two window and the policy scheme fall back to
        # run_cell *inside* the batch — results identical either way.
        specs = [
            CellSpec(kind="general", benchmark="astar", window=(16, 15),
                     n_refs=1500, seed=1),
            CellSpec(kind="general", benchmark="astar", window=(2, 2),
                     n_refs=1500, seed=1),
            CellSpec(kind="general", benchmark="astar", window=(0, 0),
                     n_refs=1500, seed=1),
            CellSpec(kind="general", benchmark="astar",
                     scheme="tagged_prefetch", window=(0, 0),
                     n_refs=1500, seed=1),
        ]
        batch = CellBatch("b0", "general", tuple(specs))
        results, metas, batch_meta = run_batch(batch)
        assert [m["batch_amortized_decode"] for m in metas] == \
            [True, False, True, False]
        assert batch_meta["decode_reuses"] == 1
        assert results == [run_cell(spec) for spec in specs]


class TestBatchFaults:
    def test_inline_raise_splits_without_charging_attempts(
            self, nocache, state_dir, tmp_path):
        specs = [BatchSquareSpec(1),
                 FaultyBatchSpec("flaky", state_dir, "raise", times=1),
                 BatchSquareSpec(2)]
        log = str(tmp_path / "telemetry.jsonl")
        results = run_cells(specs, jobs=1, retries=0, result_cache=nocache,
                            telemetry=log)
        # The batch attempt consumed the injected failure; after the
        # split each cell completes first try, with retries=0 to prove
        # the split charged nobody an attempt.
        assert results == [1, ("ok", "flaky"), 4]
        stats = last_run_stats()
        assert stats["retries"] == 0
        events = read_events(log)
        split = [e for e in events if e["event"] == "batch_split"]
        assert len(split) == 1
        assert split[0]["reason"] == "error"
        assert split[0]["cells"] == [0, 1, 2]
        assert "injected failure" in split[0]["error"]

    def test_split_then_per_cell_retry_telemetry(self, nocache, state_dir,
                                                 tmp_path):
        specs = [BatchSquareSpec(1),
                 FaultyBatchSpec("flaky", state_dir, "raise", times=2),
                 BatchSquareSpec(2)]
        log = str(tmp_path / "telemetry.jsonl")
        results = run_cells(specs, jobs=1, retries=2, result_cache=nocache,
                            telemetry=log)
        assert results == [1, ("ok", "flaky"), 4]
        stats = last_run_stats()
        assert stats["retries"] == 1          # one *per-cell* retry
        events = read_events(log)
        assert any(e["event"] == "batch_split" for e in events)
        retry = [e for e in events if e["event"] == "cell_retry"]
        assert len(retry) == 1 and retry[0]["index"] == 1
        assert _attempts(state_dir, "flaky") == 3   # batch + 2 per-cell

    def test_pooled_raise_splits_and_completes(self, nocache, state_dir,
                                               tmp_path):
        specs = [FaultyBatchSpec("boom", state_dir, "raise", times=1)]
        specs += [BatchSquareSpec(i) for i in range(1, 4)]
        log = str(tmp_path / "telemetry.jsonl")
        results = run_cells(specs, jobs=2, retries=2, result_cache=nocache,
                            telemetry=log)
        assert results == [("ok", "boom"), 1, 4, 9]
        assert any(e["event"] == "batch_split"
                   for e in read_events(log))

    def test_hung_batch_times_out_splits_and_completes(
            self, nocache, state_dir, tmp_path):
        specs = [FaultyBatchSpec("sleeper", state_dir, "hang", times=1),
                 BatchSquareSpec(1), BatchSquareSpec(2)]
        log = str(tmp_path / "telemetry.jsonl")
        results = run_cells(specs, jobs=2, timeout=0.5, retries=2,
                            result_cache=nocache, telemetry=log)
        assert results == [("ok", "sleeper"), 1, 4]
        stats = last_run_stats()
        assert stats["timeouts"] >= 1
        assert stats["pool_restarts"] >= 1
        events = read_events(log)
        timeout_events = [e for e in events if e["event"] == "batch_timeout"]
        assert timeout_events
        assert 0 in timeout_events[0]["cells"]    # the hung cell's batch
        assert any(e["event"] == "batch_split" for e in events)

    def test_killed_worker_splits_batch_and_completes(
            self, nocache, state_dir, tmp_path):
        specs = [FaultyBatchSpec("killer", state_dir, "kill", times=1),
                 BatchSquareSpec(1), BatchSquareSpec(2)]
        log = str(tmp_path / "telemetry.jsonl")
        results = run_cells(specs, jobs=2, retries=2, result_cache=nocache,
                            telemetry=log)
        assert results == [("ok", "killer"), 1, 4]
        assert last_run_stats()["pool_restarts"] >= 1
        events = read_events(log)
        split = [e for e in events if e["event"] == "batch_split"]
        assert split and split[0]["reason"] == "broken_pool"

    def test_checkpoint_resume_mid_batch(self, tmp_path, state_dir):
        cache = ResultCache(disk_dir=str(tmp_path / "results"))
        specs = [CacheableBatchSquareSpec(i, state_dir) for i in range(3)]
        specs.append(FaultyBatchSpec("fatal", state_dir, "raise", times=99,
                                     group="other"))
        with pytest.raises(RuntimeError, match="injected failure"):
            run_cells(specs, jobs=1, retries=0, result_cache=cache)
        # The finished batch's cells were checkpointed one by one.
        results = run_cells(specs[:3], jobs=1, retries=0, result_cache=cache)
        assert results == [0, 1, 4]
        assert last_run_stats()["result_cache_hits"] == 3
        assert all(_attempts(state_dir, f"square-{i}") == 1
                   for i in range(3))
