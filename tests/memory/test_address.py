"""Tests for address geometry."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.address import AddressMap, lines_spanned


class TestAddressMap:
    def test_line_of(self):
        amap = AddressMap(line_size=64, num_sets=128)
        assert amap.line_of(0) == 0
        assert amap.line_of(63) == 0
        assert amap.line_of(64) == 1

    def test_set_and_tag(self):
        amap = AddressMap(line_size=64, num_sets=128)
        line = amap.line_of(0x12345)
        assert amap.set_of_line(line) == line % 128
        assert amap.tag_of_line(line) == line // 128

    def test_byte_of_line_roundtrip(self):
        amap = AddressMap(line_size=64, num_sets=16)
        assert amap.line_of(amap.byte_of_line(77)) == 77

    def test_set_of_byte(self):
        amap = AddressMap(line_size=64, num_sets=4)
        assert amap.set_of(64 * 5) == 1

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            AddressMap(line_size=48, num_sets=4)
        with pytest.raises(ValueError):
            AddressMap(line_size=64, num_sets=3)

    @given(st.integers(min_value=0, max_value=2**40))
    def test_line_set_tag_reconstruct(self, addr):
        amap = AddressMap(line_size=64, num_sets=256)
        line = amap.line_of(addr)
        rebuilt = (amap.tag_of_line(line) << amap.set_bits) | \
            amap.set_of_line(line)
        assert rebuilt == line


class TestLinesSpanned:
    def test_exact_table(self):
        # a 1-KB table spans 16 lines of 64 bytes
        assert len(lines_spanned(0x10000, 1024, 64)) == 16

    def test_unaligned_region_rounds_out(self):
        r = lines_spanned(32, 64, 64)
        assert list(r) == [0, 1]

    def test_single_byte(self):
        assert list(lines_spanned(100, 1, 64)) == [1]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            lines_spanned(0, 0, 64)
