"""End-to-end HTTP smoke harness: ``python -m repro.service.smoke``.

Boots a real service (ephemeral port, isolated result store and spool
directory), then drives it over real sockets exactly like an external
client would:

1. submit a small Figure-10 grid (``POST /sweeps``),
2. stream its telemetry while it runs (``GET /sweeps/{id}/events``),
3. fetch the paginated results and pin them **bit-identical** against
   a direct in-process ``run_cells`` of the same specs,
4. re-submit the identical grid and assert the warm run is served
   entirely from the shared result store — zero cells simulated, no
   pool work — and that ``/metrics`` shows the cache hits,
5. exercise the structured failure paths: malformed spec -> 400,
   unknown codec version -> 400.

Exits non-zero on the first broken assertion.  ``--artifact PATH``
copies the per-sweep telemetry JSONL next to the working directory so
CI can upload it.

``--chaos`` runs the end-to-end crash-recovery scenario instead, with
the service as real ``python -m repro serve`` subprocesses:

1. **kill -9 mid-sweep**: a service under
   ``REPRO_CHAOS=kill_after_cells=2`` is SIGKILLed the moment its
   second cell checkpoints; the harness asserts the process died by
   signal with the sweep unfinished;
2. **restart recovery**: a fresh process over the same spool replays
   the journal, resumes the sweep under its original id, serves the
   two checkpointed cells warm (``result_cache_hits == 2``, no pool
   work) and re-simulates only the lost tail; results are pinned
   bit-identical to an uninterrupted in-process ``run_cells``;
   the recovered sweep's events are streamed through
   ``drop_stream_after`` connection drops, exercising the client's
   byte-offset resume (every event delivered exactly once);
3. **graceful drain**: with one sweep running and one queued, SIGTERM
   flips ``/healthz`` to draining, new submissions get 503
   ``draining``, the running sweep finishes (``sweep_finish`` state
   ``done`` on disk), the process exits 0 — and a third process
   recovers the queued sweep from the journal and completes it:
   zero accepted sweeps lost.

``--artifact-dir DIR`` copies the journal + telemetry files there for
CI upload.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional

from repro.leakage.sweep import LeakageCellSpec
from repro.runner.cells import CellSpec
from repro.runner.pool import run_cells
from repro.runner.result_cache import ResultCache
from repro.service.app import serve_in_thread
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.codec import CODEC_VERSION, encode_result, encode_spec
from repro.service.store import DiskResultStore
from repro.service.sweeps import ServiceConfig, SweepService


def smoke_grid(n_refs: int) -> List[CellSpec]:
    """A miniature Figure-10 slice: 2 benchmarks x 2 window shapes."""
    return [
        CellSpec(kind="general", benchmark=benchmark, window=window, n_refs=n_refs, seed=3)
        for benchmark in ("astar", "bzip2")
        for window in ((0, 0), (4, 3))
    ]


def slow_grid(trials: int = 3_000_000, seed: int = 77) -> List[LeakageCellSpec]:
    """One eq7 cell long enough (~3s) to be mid-run when signals land."""
    return [
        LeakageCellSpec(
            channel="eq7",
            scheme="random_fill",
            window=(1, 0),
            trials=trials,
            seed=seed,
            curve_points=(1,),
            curve_repeats=1,
        )
    ]


def quick_grid(n: int = 2, trials: int = 40, seed0: int = 500) -> List[LeakageCellSpec]:
    """A grid of fast eq7 cells (the queued sweep in the drain phase)."""
    return [
        LeakageCellSpec(
            channel="eq7",
            scheme="random_fill",
            window=(1, 0),
            trials=trials,
            seed=seed0 + i,
            curve_points=(1, 2),
            curve_repeats=5,
        )
        for i in range(n)
    ]


def check(ok: bool, what: str) -> None:
    status = "ok" if ok else "FAIL"
    print(f"  [{status}] {what}", flush=True)
    if not ok:
        sys.exit(f"service smoke failed: {what}")


def reference_results(specs) -> List[Any]:
    """The encoded results of an uninterrupted, cache-free direct run."""
    direct = run_cells(
        specs, jobs=1, result_cache=ResultCache(disk_dir=None, use_default_disk_dir=False)
    )
    return [encode_result(result) for result in direct]


# -- normal mode --------------------------------------------------------------


def run_normal(args) -> None:
    workdir = tempfile.mkdtemp(prefix="repro-smoke-")
    store = DiskResultStore(ResultCache(disk_dir=f"{workdir}/results"))
    config = ServiceConfig(
        host="127.0.0.1",
        port=0,
        jobs=2,
        queue_depth=4,
        max_cells_per_request=64,
        rate=50.0,
        burst=50.0,
        spool_dir=f"{workdir}/spool",
    )
    service = SweepService(config, store=store)
    handle = serve_in_thread(config, service=service)
    client = ServiceClient(handle.host, handle.port, client_id="ci-smoke")
    print(f"service smoke against {handle.base_url}")
    try:
        health = client.healthz()
        check(health["ok"] and health["draining"] is False, "GET /healthz (not draining)")

        specs = smoke_grid(args.n_refs)
        accepted = client.submit(specs)
        sweep_id = accepted["id"]
        check(
            accepted["cells"] == len(specs),
            f"POST /sweeps accepted {len(specs)} cells (id {sweep_id})",
        )

        seen = [event["event"] for event in client.stream_events(sweep_id)]
        check(
            "sweep_submitted" in seen and "run_finish" in seen and "sweep_finish" in seen,
            f"GET /sweeps/{{id}}/events streamed {len(seen)} events "
            f"(incl. sweep_submitted/run_finish/sweep_finish)",
        )
        check(
            any(event == "sweep_start" for event in seen),
            "sweep_start (queue_wait_s) present in the stream",
        )

        status = client.wait(sweep_id, timeout=600)
        check(
            status["state"] == "done",
            f"sweep finished: {status['state']} in {status['run_seconds']:.2f}s",
        )

        over_http = client.results(sweep_id, page_size=3)
        expected = reference_results(specs)
        check(over_http == expected, "HTTP results bit-identical to direct run_cells")

        warm = client.submit(specs)
        warm_status = client.wait(warm["id"], timeout=120)
        stats = warm_status["last_run_stats"]
        check(
            stats["result_cache_hits"] == len(specs) and stats["result_cache_misses"] == 0,
            f"warm re-submission served {len(specs)}/{len(specs)} cells from the shared store",
        )
        warm_events = [event["event"] for event in client.stream_events(warm["id"])]
        check(
            "cell_start" not in warm_events and "batch_start" not in warm_events,
            "warm re-submission scheduled zero pool work",
        )
        metrics = client.metrics()
        check(
            metrics["result_store"]["hits"] >= len(specs),
            f"/metrics reports the store hits ({metrics['result_store']['hits']})",
        )
        recovery = metrics["recovery"]
        check(
            recovery["recovered_sweeps"] == 0
            and recovery["resubmitted_cells"] == 0
            and recovery["draining"] is False,
            "/metrics recovery counters present and zero on a fresh boot",
        )
        check(
            metrics["journal"]["appends"] >= 4,
            f"/metrics journal counters ({metrics['journal']['appends']} appends)",
        )

        try:
            client.submit_payload(
                {"version": CODEC_VERSION, "cells": [{"family": "cell", "kind": "nonsense"}]}
            )
            check(False, "malformed spec rejected")
        except ServiceClientError as error:
            check(
                error.status == 400 and error.code == "invalid_spec",
                f"malformed spec -> structured 400 ({error.code})",
            )
        try:
            client.submit_payload({"version": 999, "cells": [encode_spec(specs[0])]})
            check(False, "unknown codec version rejected")
        except ServiceClientError as error:
            check(error.status == 400, "unknown codec version -> 400")

        if args.artifact:
            source = service.get(sweep_id).events_path
            shutil.copyfile(source, args.artifact)
            print(f"  telemetry artifact: {args.artifact}")
        print("service smoke ok")
    finally:
        handle.stop()


# -- chaos mode ---------------------------------------------------------------


class ServerProcess:
    """One ``python -m repro serve`` child with a port-file handshake."""

    def __init__(self, workdir: str, name: str, chaos: Optional[str] = None):
        self.name = name
        self.port_file = os.path.join(workdir, f"{name}.port")
        self.log_path = os.path.join(workdir, f"{name}.log")
        env = dict(os.environ)
        env["REPRO_RESULT_CACHE"] = os.path.join(workdir, "results")
        env["REPRO_BATCH"] = "0"  # per-cell checkpoints: deterministic kill tail
        env.pop("REPRO_CHAOS", None)
        if chaos is not None:
            env["REPRO_CHAOS"] = chaos
        self.log = open(self.log_path, "w", encoding="utf-8")
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--jobs",
                "1",
                "--rate",
                "1000",
                "--burst",
                "1000",
                "--spool",
                os.path.join(workdir, "spool"),
                "--port-file",
                self.port_file,
            ],
            env=env,
            stdout=self.log,
            stderr=subprocess.STDOUT,
        )
        self.port = self._await_port()

    def _await_port(self, timeout: float = 60.0) -> int:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if os.path.exists(self.port_file):
                with open(self.port_file, "r", encoding="utf-8") as fh:
                    return int(fh.read().strip())
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"server {self.name} exited rc={self.proc.returncode} before binding "
                    f"(log: {self.log_path})"
                )
            time.sleep(0.05)
        raise RuntimeError(f"server {self.name} did not publish a port within {timeout}s")

    def client(self, client_id: str = "chaos-smoke", **kwargs) -> ServiceClient:
        return ServiceClient("127.0.0.1", self.port, client_id=client_id, **kwargs)

    def wait(self, timeout: float = 180.0) -> int:
        rc = self.proc.wait(timeout=timeout)
        self.log.close()
        return rc

    def kill_if_alive(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=30)
        if not self.log.closed:
            self.log.close()


def read_spool_events(workdir: str, filename: str) -> List[Dict[str, Any]]:
    path = os.path.join(workdir, "spool", filename)
    events: List[Dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    try:
                        events.append(json.loads(line))
                    except ValueError:
                        continue
    except OSError:
        pass
    return events


def run_chaos(args) -> None:
    workdir = tempfile.mkdtemp(prefix="repro-chaos-")
    print(f"chaos smoke in {workdir}")
    servers: List[ServerProcess] = []
    try:
        # -- phase 1: SIGKILL mid-sweep ---------------------------------------
        victim = ServerProcess(workdir, "victim", chaos="kill_after_cells=2")
        servers.append(victim)
        client = victim.client()
        check(client.healthz()["ok"], f"victim serving on :{victim.port}")

        specs = smoke_grid(args.n_refs)
        sweep_id = client.submit(specs)["id"]
        check(bool(sweep_id), f"submitted {len(specs)} cells (id {sweep_id})")

        # A streaming follower rides the sweep into the crash: it must
        # see real events, then survive the hard connection drop.
        streamed_before: List[Dict[str, Any]] = []

        def follow() -> None:
            try:
                for event in victim.client(client_id="follower").stream_events(sweep_id):
                    streamed_before.append(event)
            except Exception:
                pass  # the process died under us — that is the test

        follower = threading.Thread(target=follow, daemon=True)
        follower.start()

        rc = victim.wait(timeout=180)
        follower.join(timeout=60)
        check(rc == -signal.SIGKILL, f"victim died by SIGKILL (rc={rc})")
        check(
            any(event.get("event") == "sweep_submitted" for event in streamed_before),
            f"follower streamed {len(streamed_before)} events before the drop",
        )
        warm_files = [
            name
            for name in os.listdir(os.path.join(workdir, "results"))
            if name.endswith(".result")
        ]
        check(
            len(warm_files) == 2,
            f"exactly 2 cells checkpointed before the kill ({len(warm_files)} found)",
        )

        # -- phase 2: restart, recover, stream through drops ------------------
        survivor = ServerProcess(workdir, "survivor", chaos="drop_stream_after=3")
        servers.append(survivor)
        client = survivor.client()
        status = client.sweep(sweep_id)
        check(
            status["recovered"] is True,
            f"restart re-admitted sweep {sweep_id} from the journal",
        )
        status = client.wait(sweep_id, timeout=600)
        check(status["state"] == "done", f"recovered sweep finished: {status['state']}")
        stats = status["last_run_stats"]
        check(
            stats["result_cache_hits"] == 2 and stats["result_cache_misses"] == len(specs) - 2,
            f"only the lost tail re-simulated (hits={stats['result_cache_hits']}, "
            f"misses={stats['result_cache_misses']})",
        )
        over_http = client.results(sweep_id, page_size=3)
        check(
            over_http == reference_results(specs),
            "recovered results bit-identical to an uninterrupted run",
        )
        metrics = client.metrics()
        recovery = metrics["recovery"]
        check(
            recovery["recovered_sweeps"] == 1
            and recovery["warm_cells"] == 2
            and recovery["resubmitted_cells"] == len(specs) - 2,
            f"/metrics recovery counters: {recovery}",
        )
        streamed = list(client.stream_events(sweep_id, follow=False))
        keys = [(event.get("event"), event.get("t")) for event in streamed]
        check(len(keys) == len(set(keys)), "stream resume delivered every event exactly once")
        spooled = read_spool_events(workdir, f"sweep-{sweep_id}.jsonl")
        check(
            len(streamed) == len(spooled),
            f"stream resume delivered the complete log ({len(streamed)}/{len(spooled)})",
        )
        names = [event.get("event") for event in streamed]
        check(
            "sweep_resumed" in names and "sweep_finish" in names,
            "recovered sweep's log carries sweep_resumed through to sweep_finish",
        )

        # -- phase 3: graceful drain ------------------------------------------
        running_id = client.submit(slow_grid())["id"]
        deadline = time.monotonic() + 120
        while client.sweep(running_id)["state"] != "running":
            check(time.monotonic() < deadline, "slow sweep reached running before SIGTERM")
            time.sleep(0.05)
        queued_specs = quick_grid()
        queued_id = client.submit(queued_specs)["id"]
        survivor.proc.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + 60
        while not client.healthz()["draining"]:
            check(time.monotonic() < deadline, "healthz flipped to draining after SIGTERM")
            time.sleep(0.05)
        check(True, "SIGTERM -> /healthz reports draining")
        try:
            survivor.client(client_id="late", retries=0).submit(quick_grid(seed0=900))
            check(False, "draining service refused the late submission")
        except ServiceClientError as error:
            check(
                error.status == 503 and error.code == "draining",
                f"late submission -> structured 503 draining ({error.code})",
            )
        rc = survivor.wait(timeout=300)
        check(rc == 0, f"drained server exited cleanly (rc={rc})")
        finish = [
            event
            for event in read_spool_events(workdir, f"sweep-{running_id}.jsonl")
            if event.get("event") == "sweep_finish"
        ]
        check(
            bool(finish) and finish[-1].get("state") == "done",
            "running sweep finished during the drain (sweep_finish state=done)",
        )

        # -- phase 4: the queued sweep survives to the next process -----------
        heir = ServerProcess(workdir, "heir")
        servers.append(heir)
        client = heir.client()
        status = client.sweep(queued_id)
        check(
            status["recovered"] is True,
            f"queued sweep {queued_id} inherited by the next process",
        )
        status = client.wait(queued_id, timeout=300)
        check(status["state"] == "done", "inherited sweep completed: zero accepted sweeps lost")
        check(
            client.results(queued_id) == reference_results(queued_specs),
            "inherited sweep's results bit-identical to a direct run",
        )
        heir.proc.send_signal(signal.SIGTERM)
        check(heir.wait(timeout=120) == 0, "final drain exits 0")
        print("chaos smoke ok")
    finally:
        for server in servers:
            server.kill_if_alive()
        if args.artifact_dir:
            os.makedirs(args.artifact_dir, exist_ok=True)
            spool = os.path.join(workdir, "spool")
            if os.path.isdir(spool):
                for name in sorted(os.listdir(spool)):
                    shutil.copyfile(
                        os.path.join(spool, name), os.path.join(args.artifact_dir, name)
                    )
            for server in servers:
                if os.path.exists(server.log_path):
                    shutil.copyfile(
                        server.log_path,
                        os.path.join(args.artifact_dir, os.path.basename(server.log_path)),
                    )
            print(f"  chaos artifacts: {args.artifact_dir}")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(prog="python -m repro.service.smoke")
    parser.add_argument(
        "--n-refs", type=int, default=8000, help="trace length per cell (default 8000)"
    )
    parser.add_argument("--artifact", default="", help="copy the per-sweep telemetry JSONL here")
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="run the crash-recovery scenario (kill -9, restart, drain) "
        "against real server subprocesses",
    )
    parser.add_argument(
        "--artifact-dir",
        default="",
        help="(--chaos) copy the journal + telemetry + server logs here",
    )
    args = parser.parse_args(argv)
    if args.chaos:
        run_chaos(args)
    else:
        run_normal(args)


if __name__ == "__main__":
    main()
