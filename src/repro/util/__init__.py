"""Shared utilities: deterministic RNG model, text tables, math helpers."""

from repro.util.rng import HardwareRng, derive_seed
from repro.util.tables import format_table
from repro.util.stats import mean, population_variance, sample_variance, welch_t

__all__ = [
    "HardwareRng",
    "derive_seed",
    "format_table",
    "mean",
    "population_variance",
    "sample_variance",
    "welch_t",
]
