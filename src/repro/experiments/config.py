"""Simulator configuration (the paper's Table IV).

+------------------------------+--------------------------+
| Parameter                    | Value                    |
+------------------------------+--------------------------+
| ISA                          | ALPHA                    |
| Processor type               | 4-way out-of-order       |
| L1 instruction cache         | 4-way 32 KB              |
| L2 cache                     | 8-way 2 MB               |
| Cache line size              | 64 bytes                 |
| Cache replacement algorithm  | LRU                      |
| miss queue entries           | 4                        |
| L1/L2 hit latency            | 1 cycle / 20 cycles      |
| DRAM frequency/channels      | DDR3-1600/1              |
+------------------------------+--------------------------+

The L1 *data* cache geometry is the experiment variable (8/16/32 KB,
DM/2-way/4-way).  The ISA and L1-I entries are carried as documentation:
the trace-driven model has no instruction fetch path.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.memory.dram import DramConfig


@dataclass(frozen=True)
class SimulatorConfig:
    """Complete configuration for one simulated machine."""

    isa: str = "ALPHA"                 # documentation only
    issue_width: int = 4
    overlap_credit: int = 8            # cycles of miss latency OoO hides
    l1d_size: int = 32 * 1024
    l1d_assoc: int = 4
    l1i_size: int = 32 * 1024          # documentation only
    l1i_assoc: int = 4                 # documentation only
    l2_size: int = 2 * 1024 * 1024
    l2_assoc: int = 8
    line_size: int = 64
    replacement: str = "lru"
    mshr_entries: int = 4
    l1_hit_latency: int = 1
    l2_hit_latency: int = 20
    dram: DramConfig = field(default_factory=DramConfig)
    newcache_extra_index_bits: int = 4

    def with_l1d(self, size_bytes: int, assoc: int) -> "SimulatorConfig":
        """The Figure 6/7/8 sweep axis: vary the L1-D geometry."""
        return replace(self, l1d_size=size_bytes, l1d_assoc=assoc)

    def attacker_favoring(self) -> "SimulatorConfig":
        """Table III's attack setup: 1 miss-queue entry, no OoO hiding.

        "we minimize the impact of a non-blocking cache by using only 1
        miss queue entry ... This configuration favors the attacker."
        """
        return replace(self, mshr_entries=1, overlap_credit=0)


#: The paper's baseline machine (Table IV).
BASELINE_CONFIG = SimulatorConfig()


def bench_scale(default: float = 1.0) -> float:
    """Benchmark workload scaling factor from ``REPRO_BENCH_SCALE``.

    The benches default to sizes that finish in minutes; set
    ``REPRO_BENCH_SCALE=10`` (say) to approach paper-scale runs.
    """
    raw = os.environ.get("REPRO_BENCH_SCALE", "")
    if not raw:
        return default
    value = float(raw)
    if value <= 0:
        raise ValueError(f"REPRO_BENCH_SCALE must be positive, got {raw!r}")
    return value


def scaled(n: int, minimum: int = 1) -> int:
    """Scale a trial count by the bench scale factor."""
    return max(minimum, int(n * bench_scale()))
