"""Fault injection for the sweep service: the ``REPRO_CHAOS`` harness.

Production failure modes are hard to hit on demand — a deploy SIGKILLs
the service mid-sweep, a journal append tears at a power loss, the
spool disk stalls or errors, a client's connection drops mid-stream.
This module makes each of them reproducible from one environment
variable so the e2e chaos tests (and the CI ``chaos-smoke`` job) drive
the *real* recovery code, not a simulation of it.

``REPRO_CHAOS`` is a comma-separated list of ``mode`` or ``mode=value``
entries:

==========================  ==================================================
``kill_after_cells=N``      SIGKILL this process the moment the N-th
                            ``cell_finish`` telemetry event is emitted —
                            i.e. deterministically *mid-sweep* for any grid
                            with more than N cells (hook:
                            :func:`chaos_telemetry_event`)
``torn_journal=N``          after N-1 more clean appends, write only half of
                            the next journal record's bytes and SIGKILL —
                            a real torn write, not a truncated file made up
                            after the fact (hook: :func:`chaos_journal_write`)
``slow_spool_ms=M``         sleep M milliseconds before every spool telemetry
                            write (hook: :func:`chaos_telemetry_event`)
``fail_spool_every=N``      raise ``OSError`` from every N-th spool telemetry
                            write; :class:`~repro.runner.telemetry.Telemetry`
                            treats telemetry as advisory and must survive
``drop_stream_after=N``     abort each ``/events`` connection after N events
                            have been streamed (hook:
                            :func:`chaos_stream_should_drop`)
==========================  ==================================================

Every hook is a near-free no-op when ``REPRO_CHAOS`` is unset (one
``os.environ`` lookup).  The parsed config is cached per variable
value, so tests can flip modes with ``monkeypatch.setenv`` without any
reset call.  A malformed value raises :class:`ChaosConfigError` naming
the variable on first use — chaos that silently doesn't run is worse
than no chaos.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass
from typing import Optional, Tuple

ENV_VAR = "REPRO_CHAOS"

_INT_MODES = frozenset(
    {"kill_after_cells", "torn_journal", "fail_spool_every", "drop_stream_after"}
)


class ChaosConfigError(ValueError):
    """``REPRO_CHAOS`` could not be parsed."""


class ChaosInjectedError(OSError):
    """The error a chaos-failed spool write raises (an ``OSError`` so
    the advisory telemetry path swallows it exactly like a real disk
    error)."""


@dataclass
class ChaosConfig:
    """Parsed ``REPRO_CHAOS`` modes (``None``/0 = mode off)."""

    kill_after_cells: Optional[int] = None
    torn_journal: Optional[int] = None
    slow_spool_ms: float = 0.0
    fail_spool_every: int = 0
    drop_stream_after: Optional[int] = None


def parse_chaos(value: str) -> ChaosConfig:
    """Parse one ``REPRO_CHAOS`` value; raises :class:`ChaosConfigError`."""
    config = ChaosConfig()
    for entry in value.split(","):
        entry = entry.strip()
        if not entry:
            continue
        mode, _, raw = entry.partition("=")
        mode = mode.strip()
        raw = raw.strip()
        if mode in _INT_MODES:
            try:
                number = int(raw) if raw else 1
            except ValueError:
                raise ChaosConfigError(
                    f"{ENV_VAR}: {mode} needs an integer, got {raw!r}"
                ) from None
            if number < 1:
                raise ChaosConfigError(f"{ENV_VAR}: {mode} must be >= 1, got {number}")
            setattr(config, mode, number)
        elif mode == "slow_spool_ms":
            try:
                config.slow_spool_ms = float(raw)
            except ValueError:
                raise ChaosConfigError(
                    f"{ENV_VAR}: slow_spool_ms needs a number, got {raw!r}"
                ) from None
        else:
            raise ChaosConfigError(f"{ENV_VAR}: unknown chaos mode {mode!r}")
    return config


#: (env value, parsed config) cache — one parse per distinct value
_cached: Tuple[Optional[str], Optional[ChaosConfig]] = (None, None)
_counter_lock = threading.Lock()
_cell_finishes = 0
_spool_writes = 0
_journal_appends = 0


def chaos_config() -> Optional[ChaosConfig]:
    """The active chaos config, ``None`` when ``REPRO_CHAOS`` is unset."""
    global _cached
    value = os.environ.get(ENV_VAR)
    if not value:
        return None
    cached_value, cached_config = _cached
    if value != cached_value:
        cached_config = parse_chaos(value)
        _cached = (value, cached_config)
    return cached_config


def reset_chaos_counters() -> None:
    """Zero the injection counters (test isolation)."""
    global _cell_finishes, _spool_writes, _journal_appends
    with _counter_lock:
        _cell_finishes = 0
        _spool_writes = 0
        _journal_appends = 0


def _sigkill_self() -> None:
    os.kill(os.getpid(), signal.SIGKILL)


# -- hooks --------------------------------------------------------------------


def chaos_telemetry_event(event: str) -> None:
    """Called by :meth:`Telemetry.emit` for every event when chaos is on.

    Applies ``slow_spool_ms`` and ``fail_spool_every`` to the write
    about to happen, and ``kill_after_cells`` to ``cell_finish``
    events.  The kill fires *after* the supervisor has checkpointed the
    finished cell into the result cache (``on_result`` stores before it
    emits), so recovery legitimately finds N warm cells.
    """
    config = chaos_config()
    if config is None:
        return
    global _cell_finishes, _spool_writes
    if config.slow_spool_ms > 0:
        time.sleep(config.slow_spool_ms / 1000.0)
    if config.kill_after_cells is not None and event == "cell_finish":
        with _counter_lock:
            _cell_finishes += 1
            kill = _cell_finishes >= config.kill_after_cells
        if kill:
            _sigkill_self()
    if config.fail_spool_every:
        with _counter_lock:
            _spool_writes += 1
            fail = _spool_writes % config.fail_spool_every == 0
        if fail:
            raise ChaosInjectedError("chaos: injected spool write failure")


def chaos_journal_write(data: bytes) -> bytes:
    """Called by the journal with the bytes it is about to append.

    Under ``torn_journal=N``, the N-th append from now returns only the
    first half of the record (no newline) and schedules an immediate
    SIGKILL — the on-disk result is byte-for-byte what a crash mid-
    ``write`` leaves behind.  The kill happens *after* the torn bytes
    hit the file (the caller writes, then we die on the next hook call
    path), so the tear is ordered before process death.
    """
    config = chaos_config()
    if config is None or config.torn_journal is None:
        return data
    global _journal_appends
    with _counter_lock:
        _journal_appends += 1
        tear = _journal_appends >= config.torn_journal
    if not tear:
        return data
    # Return the torn prefix; the journal writes + fsyncs it, then the
    # deferred killer thread takes the process down before any further
    # append can complete.
    threading.Timer(0.05, _sigkill_self).start()
    return data[: max(1, len(data) // 2)]


def chaos_stream_should_drop(events_sent: int) -> bool:
    """True when an ``/events`` stream should abort its connection."""
    config = chaos_config()
    if config is None or config.drop_stream_after is None:
        return False
    return events_sent >= config.drop_stream_after
