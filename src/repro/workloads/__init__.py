"""Synthetic workload generators standing in for SPEC CPU2006."""

from repro.workloads.cache import TRACE_CACHE, TraceCache, cached_workload
from repro.workloads.spec import (
    FIGURE8_ORDER,
    GENERATOR_VERSION,
    SPEC_BENCHMARKS,
    STREAMING_BENCHMARKS,
    WORKLOAD_BASE,
    make_workload,
)
from repro.workloads.synthetic import (
    locality_mixture,
    pointer_chase,
    streaming,
    strided,
)

__all__ = [
    "FIGURE8_ORDER",
    "GENERATOR_VERSION",
    "SPEC_BENCHMARKS",
    "STREAMING_BENCHMARKS",
    "TRACE_CACHE",
    "TraceCache",
    "WORKLOAD_BASE",
    "cached_workload",
    "locality_mixture",
    "make_workload",
    "pointer_chase",
    "streaming",
    "strided",
]
