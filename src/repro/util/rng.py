"""Deterministic model of the hardware random number generator.

The paper's random fill engine draws from "a free running random number
generator (RNG) ... a pseudo random number generator with a truly random
seed" (Section IV-B.2).  For a reproducible simulator we model the RNG as
a seeded PRNG; the security analysis only requires that the masked output
is uniform over ``[0, 2**width)``, which holds for any good PRNG.

``HardwareRng`` also models the paper's buffering remark ("the random
number can be generated ahead of time and buffered"): numbers are produced
in batches so a draw is a constant-time pop, mirroring the fact that RNG
latency is off the processor's critical path.
"""

from __future__ import annotations

import random
from typing import List


def derive_seed(base_seed: int, *components: object) -> int:
    """Derive a child seed from ``base_seed`` and a label path.

    Experiments use one master seed; every stochastic component (random
    fill engine, workload generator, attacker plaintext source, ...) gets
    its own stream via ``derive_seed(master, "component", index)``.  The
    derivation is stable across runs and Python versions.
    """
    h = 0x9E3779B97F4A7C15 ^ (base_seed & 0xFFFFFFFFFFFFFFFF)
    for component in components:
        for byte in repr(component).encode():
            h ^= byte
            h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


class HardwareRng:
    """Buffered pseudo-random source standing in for the hardware RNG.

    Parameters
    ----------
    seed:
        PRNG seed (models the "truly random seed" of the hardware RNG).
    width:
        Output width in bits; the paper's range registers and RNG are
        8 bits wide (Figure 4).
    buffer_size:
        How many numbers are pre-generated per refill, modelling the
        ahead-of-time generation buffer.
    """

    def __init__(self, seed: int, width: int = 8, buffer_size: int = 256):
        if width <= 0:
            raise ValueError(f"RNG width must be positive, got {width}")
        if buffer_size <= 0:
            raise ValueError(f"buffer_size must be positive, got {buffer_size}")
        self.width = width
        self._max = (1 << width) - 1
        self._rng = random.Random(seed)
        self._buffer_size = buffer_size
        self._buffer: List[int] = []

    def _refill(self) -> None:
        rand = self._rng.getrandbits
        width = self.width
        # In-place extend: the buffer list's identity is stable, so hot
        # loops (the fused timing kernel) may hold a direct reference to
        # it across refills.  Only ever called when the buffer is empty,
        # so the draw sequence is unchanged.
        self._buffer += [rand(width) for _ in range(self._buffer_size)]

    def draw(self) -> int:
        """Return the next raw random number in ``[0, 2**width)``."""
        if not self._buffer:
            self._refill()
        return self._buffer.pop()

    def draw_masked(self, mask: int) -> int:
        """Return ``draw() & mask`` — the bounded value R' of Figure 4."""
        return self.draw() & mask

    def draw_below(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)`` (used by replacement policies).

        Unlike :meth:`draw_masked` this is exact for non-power-of-two
        bounds; it is used by components (e.g. Newcache's random
        replacement) that are not constrained by the Figure 4 datapath.
        """
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        return self._rng.randrange(bound)

    def fork(self, *components: object) -> "HardwareRng":
        """Create an independent child stream (for per-subsystem RNGs)."""
        child_seed = derive_seed(self._rng.getrandbits(64), *components)
        return HardwareRng(child_seed, width=self.width, buffer_size=self._buffer_size)
