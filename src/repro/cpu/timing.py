"""Trace-driven CPU timing model.

Stands in for the paper's gem5 4-way out-of-order core (Table IV) with a
model that keeps what the evaluation measures:

* non-memory instructions retire at ``issue_width`` per cycle,
* an L1 hit costs ``l1_hit_latency`` (1 cycle),
* demand misses overlap: the out-of-order core keeps up to ``mlp``
  demand misses in flight before the reorder buffer backs up; only then
  does it stall until the earliest outstanding miss returns (minus an
  ``overlap_credit`` of further latency the window hides).  This is the
  memory-level parallelism that makes the paper's "disable cache"
  baseline lose 45% rather than 10x, and that lets the nofill re-misses
  of the random fill strategy merge cheaply (Section VII),
* misses to a line already in flight merge in the L1 miss queue and pay
  only a hit cost (the "do not take a whole cache miss latency" remark),
* MPKI uses the paper's definition (demand misses that issue a request
  to L2, excluding merges).

Absolute IPC is therefore a proxy, but the quantities the figures plot —
normalized IPC between fill strategies and MPKI — depend on cache
behaviour, which is modelled faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.cache.context import AccessContext, DEFAULT_CONTEXT
from repro.cache.controller import L1Controller
from repro.cpu.trace import TraceRecord


@dataclass
class SimResult:
    """Outcome of one timed trace run."""

    instructions: int
    cycles: int
    l1_accesses: int
    l1_hits: int
    l1_demand_misses: int
    l2_accesses: int
    l2_demand_misses: int
    memory_lines: int
    random_fill_issued: int = 0

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def l1_mpki(self) -> float:
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.l1_demand_misses / self.instructions

    @property
    def l2_mpki(self) -> float:
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.l2_demand_misses / self.instructions


#: ``charged`` (line -> completion cycle already paid for) only needs
#: entries for lines still in flight; once this many entries accumulate
#: the past ones are swept out.  Entries whose completion cycle has
#: passed never change timing (their exposed stall is <= 0), so eviction
#: is invisible to results — it only bounds memory on long traces with
#: many unique lines.
CHARGED_PRUNE_THRESHOLD = 8192


def prune_charged(charged: dict, now: int) -> dict:
    """Drop charge records whose completion cycle has already passed."""
    return {line: ready for line, ready in charged.items() if ready > now}


class _MlpWindow:
    """Amortized cost model for overlapping demand misses.

    The out-of-order core keeps up to ``limit`` independent misses in
    flight, so a miss's *exposed* stall is its remaining latency divided
    by that parallelism (minus the ``credit`` cycles the window hides
    outright).  A burst of ``limit`` back-to-back L2 hits then costs one
    L2 latency in total — the behaviour that keeps the paper's
    disable-cache baseline at ~45% slowdown rather than 10x — while an
    isolated miss still has a visible cost, preserving the MPKI -> IPC
    coupling Figure 10 relies on.
    """

    __slots__ = ("limit", "credit")

    def __init__(self, limit: int, credit: int):
        self.limit = limit
        self.credit = credit

    def note_miss(self, now: int, ready_at: int) -> int:
        """Charge one miss's exposed stall; returns the new ``now``."""
        remaining = ready_at - now - self.credit
        if remaining <= 0:
            return now
        return now + (remaining + self.limit - 1) // self.limit

    def settle(self, now: int) -> int:
        """End of run; amortized charging has no deferred stalls."""
        return now


class TimingModel:
    """Drives one hardware thread's trace through an L1 controller."""

    def __init__(self, l1: L1Controller, issue_width: int = 4,
                 overlap_credit: int = 8, mlp: Optional[int] = None):
        if issue_width < 1:
            raise ValueError(f"issue_width must be >= 1, got {issue_width}")
        if overlap_credit < 0:
            raise ValueError(f"overlap_credit must be >= 0, got {overlap_credit}")
        self.l1 = l1
        self.issue_width = issue_width
        self.overlap_credit = overlap_credit
        # Default MLP: half the MSHRs.  Dependent code cannot keep the
        # full MSHR file busy with demand misses, and the slack is what
        # lets random fill / prefetch requests find free entries.
        self.mlp = mlp if mlp is not None else max(1, l1.miss_queue.capacity // 2)
        if self.mlp < 1:
            raise ValueError(f"mlp must be >= 1, got {self.mlp}")

    def run(self, trace: Iterable[TraceRecord],
            ctx: AccessContext = DEFAULT_CONTEXT,
            start_cycle: int = 0) -> SimResult:
        """Run a trace to completion; counters are deltas for this run."""
        l1 = self.l1
        l2 = l1.next_level
        width = self.issue_width
        hit_cost = l1.hit_latency
        window = _MlpWindow(self.mlp, self.overlap_credit)
        # The loop below is the simulator's innermost kernel; everything
        # it touches per record is hoisted into locals, and the MLP
        # charging arithmetic of _MlpWindow.note_miss is inlined.
        access = l1.access
        mlp = self.mlp
        credit = self.overlap_credit
        prune_at = CHARGED_PRUNE_THRESHOLD

        l1_acc0 = l1.stats.accesses
        l1_hit0 = l1.stats.hits
        l1_miss0 = l1.stats.demand_misses
        l2_acc0 = l2.stats.accesses
        l2_miss0 = l2.stats.demand_misses
        mem0 = l2.dram.lines_transferred
        rf0 = l1.stats.random_fill_issued

        write_ctx = AccessContext(thread_id=ctx.thread_id, domain=ctx.domain,
                                  critical=ctx.critical, is_write=True)
        now = start_cycle
        instructions = 0
        # Fractional issue cycles accumulate so four 1-gap records cost
        # one cycle, not four.
        issue_backlog = 0
        # line -> completion already charged, so a burst of references
        # to one in-flight line pays its wait only once — but the FIRST
        # reference to a line someone else fetched (e.g. a too-late
        # next-line prefetch) pays the remaining latency.  Pruned once
        # it exceeds CHARGED_PRUNE_THRESHOLD entries so it cannot grow
        # with every unique line of a long trace.
        charged: dict = {}
        for addr, gap, write in trace:
            instructions += gap
            issue_backlog += gap
            now += issue_backlog // width
            issue_backlog %= width
            result = access(addr, now, write_ctx if write else ctx)
            if result.l1_hit:
                now += hit_cost
            elif result.merged:
                completion = result.ready_at - hit_cost
                if charged.get(result.line_addr) == completion:
                    now += hit_cost
                else:
                    charged[result.line_addr] = completion
                    now += hit_cost
                    remaining = completion - now - credit
                    if remaining > 0:
                        now += (remaining + mlp - 1) // mlp
            else:
                charged[result.line_addr] = result.ready_at
                now += hit_cost + result.stalled_for_mshr
                remaining = result.ready_at - now - credit
                if remaining > 0:
                    now += (remaining + mlp - 1) // mlp
            if len(charged) >= prune_at:
                charged = prune_charged(charged, now)
        now = window.settle(now)
        l1.settle()
        return SimResult(
            instructions=instructions,
            cycles=now - start_cycle,
            l1_accesses=l1.stats.accesses - l1_acc0,
            l1_hits=l1.stats.hits - l1_hit0,
            l1_demand_misses=l1.stats.demand_misses - l1_miss0,
            l2_accesses=l2.stats.accesses - l2_acc0,
            l2_demand_misses=l2.stats.demand_misses - l2_miss0,
            memory_lines=l2.dram.lines_transferred - mem0,
            random_fill_issued=l1.stats.random_fill_issued - rf0,
        )
