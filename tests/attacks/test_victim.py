"""Tests for the attack victim processes."""

import pytest

from repro.attacks.victim import (
    AesTimingVictim,
    CleaningConfig,
    TableLookupVictim,
)
from repro.cache.hierarchy import build_hierarchy
from repro.crypto.aes import AES128
from repro.secure.newcache import Newcache
from repro.secure.region import ProtectedRegion

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


def make_victim(**kwargs):
    h = build_hierarchy()
    return AesTimingVictim(h.l1, KEY, **kwargs)


class TestAesVictim:
    def test_measure_returns_correct_ciphertext(self):
        victim = make_victim()
        pt = bytes(range(16))
        ct, cycles = victim.measure(pt)
        assert ct == AES128(KEY).encrypt_block(pt)
        assert cycles > 0

    def test_flush_cleaning_removes_l1_state(self):
        victim = make_victim(cleaning=CleaningConfig(strategy="flush"))
        victim.measure(bytes(16))
        victim.clean_cache()
        assert victim.l1.tag_store.occupancy() == 0

    def test_evict_cleaning_displaces_sa_cache(self):
        victim = make_victim(cleaning=CleaningConfig(strategy="evict"))
        victim.measure(bytes(16))
        victim.clean_cache()
        table_line = victim.layout.enc_table_base // 64
        assert not victim.l1.tag_store.probe(table_line)

    def test_evict_cleaning_leaves_newcache_residue(self):
        """Random replacement makes Newcache hard to clean (Table III)."""
        h = build_hierarchy(l1_tag_store=Newcache(32 * 1024, seed=3))
        victim = AesTimingVictim(
            h.l1, KEY, cleaning=CleaningConfig(strategy="evict",
                                               buffer_factor=1))
        victim.measure(bytes(16))
        victim.clean_cache()
        residue = sum(1 for line in victim.layout.enc_regions().regions[0].lines
                      if victim.l1.tag_store.probe(line))
        # a single-pass eviction walk leaves victim lines behind
        assert residue >= 0  # smoke: no crash; strict check below
        total = sum(1 for region in victim.layout.enc_regions()
                    for line in region.lines
                    if victim.l1.tag_store.probe(line))
        assert total > 0

    def test_true_key_helpers(self):
        victim = make_victim()
        k10 = victim.true_final_round_key()
        assert len(k10) == 16
        assert victim.true_key_byte_xor(0, 1) == k10[0] ^ k10[1]
        nib = victim.true_first_round_xor_nibble(0, 4)
        assert nib == (KEY[0] ^ KEY[4]) >> 4

    def test_cleaning_config_validation(self):
        with pytest.raises(ValueError):
            CleaningConfig(strategy="voodoo")
        with pytest.raises(ValueError):
            CleaningConfig(buffer_factor=0)


class TestTableLookupVictim:
    def test_run_once(self):
        h = build_hierarchy()
        region = ProtectedRegion(0x10000, 1024)
        victim = TableLookupVictim(h.l1, region, noise_refs=4)
        result = victim.run_once(3)
        assert result.l1_accesses == 9  # 4 noise + 1 secret + 4 noise

    def test_secret_bounds(self):
        h = build_hierarchy()
        victim = TableLookupVictim(h.l1, ProtectedRegion(0x10000, 1024))
        with pytest.raises(ValueError):
            victim.run_once(16)
        with pytest.raises(ValueError):
            victim.run_once(-1)

    def test_noise_validation(self):
        h = build_hierarchy()
        with pytest.raises(ValueError):
            TableLookupVictim(h.l1, ProtectedRegion(0, 64), noise_refs=-1)
