"""Tests for job resolution and the ordered cell fan-out."""

import os

import pytest

from repro.runner.cells import CELL_KINDS, CellSpec, run_cell
from repro.runner.pool import (
    last_run_stats,
    resolve_jobs,
    run_cells,
    run_context,
)
from repro.runner.telemetry import read_events


class TestResolveJobs:
    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_beats_cpu_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs() == 7

    def test_defaults_to_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == (os.cpu_count() or 1)

    def test_rejects_nonpositive(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        with pytest.raises(ValueError):
            resolve_jobs(0)
        with pytest.raises(ValueError):
            resolve_jobs(-2)

    def test_rejects_non_integer_env_naming_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "auto")
        with pytest.raises(ValueError, match="REPRO_JOBS.*'auto'"):
            resolve_jobs()


class TestCellSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            CellSpec(kind="nope")

    def test_kinds_are_valid(self):
        for kind in CELL_KINDS:
            CellSpec(kind=kind, benchmark="hmmer", window=(0, 3))


def _specs(n_refs=2000):
    return [CellSpec(kind="general", benchmark=benchmark, window=window,
                     n_refs=n_refs, seed=4)
            for benchmark in ("hmmer", "lbm")
            for window in ((0, 0), (0, 3))]


class TestRunCells:
    def test_inline_matches_run_cell(self):
        specs = _specs()
        assert run_cells(specs, jobs=1) == [run_cell(s) for s in specs]

    def test_pool_preserves_spec_order(self):
        specs = _specs()
        assert run_cells(specs, jobs=2) == run_cells(specs, jobs=1)

    def test_empty_spec_list(self):
        assert run_cells([], jobs=4) == []

    def test_last_run_stats(self):
        specs = _specs()
        run_cells(specs, jobs=1)
        stats = last_run_stats()
        assert stats["cells"] == len(specs)
        assert stats["jobs"] == 1
        assert stats["seconds"] > 0
        assert stats["cells_per_sec"] > 0
        # Supervision counters are always present, zero on a clean run.
        assert stats["retries"] == 0
        assert stats["timeouts"] == 0
        assert stats["pool_restarts"] == 0
        assert stats["inline_fallback"] == 0
        assert stats["latency_p95_s"] >= stats["latency_p50_s"] >= 0

    def test_run_context_scopes_default_telemetry(self, tmp_path):
        path = str(tmp_path / "ctx.jsonl")
        specs = _specs()
        with run_context(telemetry=path):
            run_cells(specs, jobs=1)
        events = read_events(path)
        assert events[0]["event"] == "run_start"
        assert events[-1]["event"] == "run_finish"
        # Outside the context the default is gone: no new events.
        run_cells(specs, jobs=1)
        assert len(read_events(path)) == len(events)
