"""Tests for the random fill window and register encoding (Figure 4)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.window import (
    RandomFillWindow,
    decode_range_registers,
    encode_range_registers,
)


class TestWindow:
    def test_size(self):
        assert RandomFillWindow(16, 15).size == 32

    def test_disabled(self):
        assert RandomFillWindow(0, 0).disabled
        assert not RandomFillWindow(0, 1).disabled

    def test_negative_bounds_rejected(self):
        with pytest.raises(ValueError):
            RandomFillWindow(-1, 0)
        with pytest.raises(ValueError):
            RandomFillWindow(0, -1)

    def test_register_width_limit(self):
        with pytest.raises(ValueError):
            RandomFillWindow(129, 0)
        with pytest.raises(ValueError):
            RandomFillWindow(0, 128)

    def test_contains_offset(self):
        w = RandomFillWindow(4, 3)
        assert w.contains_offset(-4)
        assert w.contains_offset(3)
        assert not w.contains_offset(-5)
        assert not w.contains_offset(4)

    def test_covers_table(self):
        # Section V-A: a, b >= M - 1 closes the timing channel
        assert RandomFillWindow(15, 15).covers_table(16)
        assert not RandomFillWindow(15, 14).covers_table(16)

    def test_is_power_of_two(self):
        assert RandomFillWindow(16, 15).is_power_of_two
        assert not RandomFillWindow(16, 14).is_power_of_two


class TestConstructors:
    def test_from_pow2_figure4_example(self):
        # Figure 4: window [i-4, i+3] = lower bound -4, size 2^3
        w = RandomFillWindow.from_pow2(-4, 3)
        assert (w.a, w.b) == (4, 3)

    def test_from_pow2_validation(self):
        with pytest.raises(ValueError):
            RandomFillWindow.from_pow2(1, 3)   # positive lower bound
        with pytest.raises(ValueError):
            RandomFillWindow.from_pow2(-8, 2)  # size too small
        with pytest.raises(ValueError):
            RandomFillWindow.from_pow2(0, -1)

    def test_forward(self):
        w = RandomFillWindow.forward(16)
        assert (w.a, w.b) == (0, 15)
        with pytest.raises(ValueError):
            RandomFillWindow.forward(0)

    def test_bidirectional(self):
        w = RandomFillWindow.bidirectional(32)
        assert (w.a, w.b) == (16, 15)
        assert RandomFillWindow.bidirectional(1).disabled
        with pytest.raises(ValueError):
            RandomFillWindow.bidirectional(6)

    def test_disabled_window(self):
        assert RandomFillWindow.disabled_window().disabled


class TestRegisterEncoding:
    def test_figure4_bit_pattern(self):
        # RR1 = -4 two's complement = 11111100, RR2 = 2^3-1 = 00000111
        rr1, rr2 = encode_range_registers(RandomFillWindow(4, 3))
        assert rr1 == 0b11111100
        assert rr2 == 0b00000111

    def test_disabled_encodes_zero(self):
        assert encode_range_registers(RandomFillWindow(0, 0)) == (0, 0)

    @given(st.integers(min_value=0, max_value=64),
           st.integers(min_value=0, max_value=63))
    def test_roundtrip(self, a, b):
        w = RandomFillWindow(a, b)
        rr1, rr2 = encode_range_registers(w)
        decoded = decode_range_registers(rr1, rr2, pow2=w.is_power_of_two)
        assert decoded == w

    def test_decode_pow2(self):
        assert decode_range_registers(0b11111100, 0b111) == \
            RandomFillWindow(4, 3)
