"""Sweep service core: submission, registry, telemetry, metrics.

:class:`SweepService` is the HTTP-free heart of ``repro.service``:
it validates submitted grids through the versioned codec, enforces
per-client rate limits and the per-request cell ceiling, queues work on
a :class:`~repro.runner.jobs.JobRunner`, and tracks every sweep in a
registry the API handlers read.  All of it is plain synchronous code
guarded by locks, callable from the asyncio handlers and from tests
alike.

Each accepted sweep gets its own JSONL telemetry file under the spool
directory.  The service writes the ``sweep_submitted`` /
``sweep_start`` (with ``queue_wait_s``) / ``sweep_finish`` prologue
rows; ``run_cells`` appends its ordinary run events to the same file —
so one file is the complete audit trail of one sweep, and the
``/events`` endpoint simply streams it.
"""

from __future__ import annotations

import os
import secrets
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.runner.jobs import JobHandle, JobQueueFull, JobRunner
from repro.runner.telemetry import Telemetry
from repro.service.codec import SpecValidationError, decode_sweep, encode_result
from repro.service.ratelimit import ClientQuotas
from repro.service.store import DiskResultStore, ResultStore


@dataclass
class ServiceConfig:
    """Every knob of one service instance (CLI flags mirror these)."""

    host: str = "127.0.0.1"
    port: int = 8322
    jobs: Optional[int] = None  # worker processes per sweep
    queue_depth: int = 16  # sweeps waiting, beyond the running one
    max_cells_per_request: int = 4096
    rate: float = 10.0  # submissions per second per client
    burst: float = 20.0
    spool_dir: Optional[str] = None  # per-sweep telemetry files
    keep_sweeps: int = 256  # finished sweeps kept in the registry


class ServiceError(Exception):
    """A request the service refuses; carries the structured payload."""

    def __init__(self, status: int, code: str, message: str, **extra: Any):
        super().__init__(message)
        self.status = status
        self.code = code
        self.extra = extra

    def payload(self) -> Dict[str, Any]:
        return {"error": {"code": self.code, "message": str(self), **self.extra}}


@dataclass
class Sweep:
    """Registry entry: one accepted sweep and its job handle."""

    sweep_id: str
    handle: JobHandle
    client: str
    cells: int
    events_path: str
    created_at: float = field(default_factory=time.time)

    def status(self) -> Dict[str, Any]:
        poll = self.handle.poll()
        return {
            "id": self.sweep_id,
            "state": poll["state"],
            "cells": self.cells,
            "client": self.client,
            "created_at": self.created_at,
            "queue_wait_s": poll["queue_wait_s"],
            "run_seconds": poll["run_seconds"],
            "error": poll["error"],
            "last_run_stats": poll["stats"],
        }


class SweepService:
    """Everything the HTTP handlers delegate to."""

    def __init__(
        self,
        config: ServiceConfig,
        store: Optional[ResultStore] = None,
        runner: Optional[JobRunner] = None,
    ):
        self.config = config
        self.store = store if store is not None else DiskResultStore()
        self.runner = runner if runner is not None else JobRunner(queue_depth=config.queue_depth)
        self.quotas = ClientQuotas(rate=config.rate, burst=config.burst)
        self.spool_dir = config.spool_dir or tempfile.mkdtemp(prefix="repro-service-")
        os.makedirs(self.spool_dir, exist_ok=True)
        self.started_at = time.time()
        self._lock = threading.Lock()
        self._sweeps: Dict[str, Sweep] = {}
        self._order: List[str] = []
        self._sweep_seconds: List[float] = []
        self._counters = {
            "submitted": 0,
            "rejected": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
        }

    # -- telemetry helpers ---------------------------------------------------

    def _events_path(self, sweep_id: str) -> str:
        return os.path.join(self.spool_dir, f"sweep-{sweep_id}.jsonl")

    def _service_log(self) -> str:
        return os.path.join(self.spool_dir, "service.jsonl")

    def _emit(self, path: str, event: str, **fields: Any) -> None:
        with Telemetry(path=path, progress=False) as telemetry:
            telemetry.emit(event, **fields)

    def _reject(self, client: str, reason: str, **fields: Any) -> None:
        with self._lock:
            self._counters["rejected"] += 1
        self._emit(
            self._service_log(),
            "sweep_rejected",
            reason=reason,
            client=client,
            **fields,
        )

    # -- submission ----------------------------------------------------------

    def submit(self, payload: Any, client: str) -> Dict[str, Any]:
        """Validate and queue one sweep; the 202 response body.

        Raises :class:`ServiceError` with the structured 400/429
        payloads for malformed specs, rate-limited clients, oversized
        grids, and a full work queue.
        """
        retry_after = self.quotas.admit(client)
        if retry_after is not None:
            self._reject(client, "rate_limited", retry_after_s=retry_after)
            raise ServiceError(
                429,
                "rate_limited",
                f"client {client!r} exceeded {self.config.rate:g} "
                f"submissions/s (burst {self.config.burst:g})",
                retry_after_s=retry_after,
            )
        try:
            specs = decode_sweep(payload)
        except SpecValidationError as error:
            self.quotas.account_rejected(client)
            self._reject(client, "invalid_spec", detail=str(error))
            raise ServiceError(400, "invalid_spec", str(error)) from None
        if len(specs) > self.config.max_cells_per_request:
            self.quotas.account_rejected(client)
            self._reject(client, "too_many_cells", cells=len(specs))
            raise ServiceError(
                400,
                "too_many_cells",
                f"{len(specs)} cells exceeds the per-request ceiling of "
                f"{self.config.max_cells_per_request} (--max-cells-per-request)",
                cells=len(specs),
                max_cells_per_request=self.config.max_cells_per_request,
            )

        sweep_id = secrets.token_hex(6)
        events_path = self._events_path(sweep_id)
        try:
            handle = self.runner.submit(
                specs,
                on_transition=self._make_observer(sweep_id, events_path),
                jobs=self.config.jobs,
                result_cache=self.store,
                telemetry=events_path,
                progress=False,
            )
        except JobQueueFull as error:
            self.quotas.account_rejected(client)
            self._reject(client, "queue_full", queue_depth=self.runner.queue_depth)
            raise ServiceError(
                429,
                "queue_full",
                str(error),
                queue_depth=self.runner.queue_depth,
            ) from None
        self.quotas.account_accepted(client, len(specs))
        self._emit(
            events_path,
            "sweep_submitted",
            sweep=sweep_id,
            cells=len(specs),
            client=client,
        )
        sweep = Sweep(
            sweep_id=sweep_id,
            handle=handle,
            client=client,
            cells=len(specs),
            events_path=events_path,
        )
        with self._lock:
            self._counters["submitted"] += 1
            self._sweeps[sweep_id] = sweep
            self._order.append(sweep_id)
            self._prune_locked()
        return {
            "id": sweep_id,
            "state": handle.state,
            "cells": len(specs),
            "links": {
                "status": f"/sweeps/{sweep_id}",
                "results": f"/sweeps/{sweep_id}/results",
                "events": f"/sweeps/{sweep_id}/events",
            },
        }

    def _make_observer(self, sweep_id: str, events_path: str):
        def observer(handle: JobHandle, state: str) -> None:
            if state == "running":
                self._emit(
                    events_path,
                    "sweep_start",
                    sweep=sweep_id,
                    queue_wait_s=round(handle.queue_wait_s or 0.0, 6),
                )
                return
            counter = {
                "done": "completed",
                "failed": "failed",
                "cancelled": "cancelled",
            }.get(state)
            with self._lock:
                if counter is not None:
                    self._counters[counter] += 1
                if state == "done" and handle.run_seconds is not None:
                    self._sweep_seconds.append(handle.run_seconds)
                    del self._sweep_seconds[:-1000]
            self._emit(
                events_path,
                "sweep_finish",
                sweep=sweep_id,
                state=state,
                error=handle.error,
                run_seconds=handle.run_seconds,
                **handle.stats,
            )

        return observer

    def _prune_locked(self) -> None:
        while len(self._order) > self.config.keep_sweeps:
            for candidate in self._order:
                if self._sweeps[candidate].handle.finished:
                    self._order.remove(candidate)
                    del self._sweeps[candidate]
                    break
            else:
                return  # nothing finished yet; keep everything live

    # -- lookup --------------------------------------------------------------

    def get(self, sweep_id: str) -> Sweep:
        with self._lock:
            sweep = self._sweeps.get(sweep_id)
        if sweep is None:
            raise ServiceError(404, "unknown_sweep", f"no sweep {sweep_id!r}")
        return sweep

    def results_page(self, sweep_id: str, offset: int = 0, limit: int = 256) -> Dict[str, Any]:
        """One page of a finished sweep's encoded cell results."""
        sweep = self.get(sweep_id)
        state = sweep.handle.state
        if state != "done":
            raise ServiceError(
                409,
                "not_finished",
                f"sweep {sweep_id} is {state}; results exist only for completed sweeps",
                state=state,
            )
        results = sweep.handle.result()
        if offset < 0 or limit < 1:
            raise ServiceError(
                400,
                "bad_page",
                f"offset must be >= 0 and limit >= 1, got offset={offset} limit={limit}",
            )
        page = results[offset : offset + limit]
        next_offset = offset + len(page)
        return {
            "id": sweep_id,
            "total": len(results),
            "offset": offset,
            "count": len(page),
            "next_offset": next_offset if next_offset < len(results) else None,
            "results": [encode_result(result) for result in page],
        }

    def cancel(self, sweep_id: str) -> Dict[str, Any]:
        sweep = self.get(sweep_id)
        sweep.handle.cancel()
        return sweep.status()

    # -- health & metrics ----------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return {
            "ok": True,
            "uptime_s": round(time.time() - self.started_at, 3),
            "queue_depth": self.runner.queued(),
            "running": self.runner.running() is not None,
        }

    def metrics(self) -> Dict[str, Any]:
        with self._lock:
            counters = dict(self._counters)
            states: Dict[str, int] = {}
            for sweep in self._sweeps.values():
                state = sweep.handle.state
                states[state] = states.get(state, 0) + 1
            seconds = sorted(self._sweep_seconds)
        latency = {"count": len(seconds)}
        for name, q in (("p50_s", 0.50), ("p95_s", 0.95), ("p99_s", 0.99)):
            if seconds:
                rank = min(len(seconds) - 1, int(round(q * (len(seconds) - 1))))
                latency[name] = round(seconds[rank], 6)
            else:
                latency[name] = 0.0
        return {
            "queue": {
                "depth": self.runner.queued(),
                "capacity": self.runner.queue_depth,
                "running": self.runner.running() is not None,
            },
            "sweeps": {**counters, "states": states},
            "result_store": self.store.stats_snapshot(),
            "sweep_latency": latency,
            "clients": self.quotas.snapshot(),
            "limits": {
                "rate_per_s": self.config.rate,
                "burst": self.config.burst,
                "max_cells_per_request": self.config.max_cells_per_request,
            },
        }

    # -- lifecycle -----------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        self.runner.shutdown(wait=wait)
