"""Synthetic workload generators standing in for SPEC CPU2006."""

from repro.workloads.spec import (
    FIGURE8_ORDER,
    SPEC_BENCHMARKS,
    STREAMING_BENCHMARKS,
    WORKLOAD_BASE,
    make_workload,
)
from repro.workloads.synthetic import (
    locality_mixture,
    pointer_chase,
    streaming,
    strided,
)

__all__ = [
    "FIGURE8_ORDER",
    "SPEC_BENCHMARKS",
    "STREAMING_BENCHMARKS",
    "WORKLOAD_BASE",
    "locality_mixture",
    "make_workload",
    "pointer_chase",
    "streaming",
    "strided",
]
