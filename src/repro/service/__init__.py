"""Sweeps-as-a-service: an asyncio HTTP/JSON API over the runner.

The ROADMAP's serving layer: instead of one-shot CLI sweeps, a
long-lived process accepts spec grids over HTTP, runs them through the
supervised pool + batch planner, shares one content-addressed result
store across every sweep (warm cells are served at cache speed without
touching the pool), and streams each sweep's JSONL telemetry live.

The service is crash-safe: every accepted sweep is journaled to a
write-ahead log under the spool directory before it is queued, a
restarted process replays the journal (finished cells come back warm
from the result-cache checkpoints), and SIGTERM drains gracefully —
the running sweep finishes, queued sweeps survive to the next process.
The ``REPRO_CHAOS`` harness (:mod:`repro.service.chaos`) fault-injects
every one of those paths for the e2e chaos tests.

* :mod:`repro.service.codec` — versioned JSON (de)serialization of
  ``CellSpec`` / ``LeakageCellSpec`` grids; round-trip-exact, so an
  HTTP-submitted spec hits the same cache key as a local one,
* :mod:`repro.service.store` — the :class:`ResultStore` interface with
  the disk-backed content-addressed cache behind it,
* :mod:`repro.service.sweeps` — the HTTP-free core: validation, rate
  and quota accounting, the bounded work queue, the sweep registry,
  metrics,
* :mod:`repro.service.ratelimit` — per-client token buckets + usage
  accounting,
* :mod:`repro.service.journal` — the durable sweep journal (JSONL
  WAL): append, torn-write-tolerant replay, checkpoint compaction,
* :mod:`repro.service.chaos` — ``REPRO_CHAOS`` fault injection
  (process kills mid-sweep, torn journal writes, slow/failing spool
  I/O, dropped event streams),
* :mod:`repro.service.http` — minimal stdlib-asyncio HTTP/1.1
  plumbing (no framework dependency),
* :mod:`repro.service.app` — the endpoints and server lifecycle
  (``run_server`` for ``python -m repro serve``, ``serve_in_thread``
  for tests),
* :mod:`repro.service.client` — blocking stdlib client used by tests,
  CI and scripts,
* :mod:`repro.service.smoke` — the end-to-end smoke harness CI runs
  (``python -m repro.service.smoke``).
"""

from repro.service.app import ServerHandle, run_server, serve_in_thread
from repro.service.chaos import ChaosConfig, ChaosConfigError, parse_chaos
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.journal import (
    JOURNAL_VERSION,
    JournalError,
    SweepJournal,
    decode_record,
    encode_record,
    journal_path,
)
from repro.service.codec import (
    CODEC_VERSION,
    SpecValidationError,
    decode_spec,
    decode_sweep,
    encode_result,
    encode_spec,
    encode_sweep,
)
from repro.service.ratelimit import ClientQuotas, TokenBucket
from repro.service.store import DiskResultStore, ResultStore
from repro.service.sweeps import (
    ServiceConfig,
    ServiceError,
    Sweep,
    SweepService,
)

__all__ = [
    "CODEC_VERSION",
    "ChaosConfig",
    "ChaosConfigError",
    "ClientQuotas",
    "DiskResultStore",
    "JOURNAL_VERSION",
    "JournalError",
    "ResultStore",
    "ServerHandle",
    "ServiceClient",
    "ServiceClientError",
    "ServiceConfig",
    "ServiceError",
    "SpecValidationError",
    "Sweep",
    "SweepJournal",
    "SweepService",
    "TokenBucket",
    "decode_record",
    "decode_spec",
    "decode_sweep",
    "encode_record",
    "encode_result",
    "encode_spec",
    "encode_sweep",
    "journal_path",
    "parse_chaos",
    "run_server",
    "serve_in_thread",
]
