"""Tests for the miss queue (MSHR file)."""

import pytest

from repro.cache.context import DEFAULT_CONTEXT
from repro.cache.mshr import MissQueue, RequestType


def fills_collected():
    filled = []
    return filled, lambda line, ctx: filled.append(line)


class TestAllocation:
    def test_allocate_and_lookup(self):
        q = MissQueue(4)
        q.allocate(10, 100, RequestType.NORMAL, DEFAULT_CONTEXT)
        assert q.lookup(10) is not None
        assert q.lookup(11) is None

    def test_capacity(self):
        q = MissQueue(2)
        q.allocate(1, 10, RequestType.NORMAL, DEFAULT_CONTEXT)
        assert not q.full
        q.allocate(2, 20, RequestType.NORMAL, DEFAULT_CONTEXT)
        assert q.full
        with pytest.raises(RuntimeError):
            q.allocate(3, 30, RequestType.NORMAL, DEFAULT_CONTEXT)

    def test_duplicate_rejected(self):
        q = MissQueue(4)
        q.allocate(1, 10, RequestType.NORMAL, DEFAULT_CONTEXT)
        with pytest.raises(RuntimeError):
            q.allocate(1, 20, RequestType.NORMAL, DEFAULT_CONTEXT)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            MissQueue(0)


class TestDrain:
    def test_drains_completed_only(self):
        q = MissQueue(4)
        filled, cb = fills_collected()
        q.allocate(1, 10, RequestType.NORMAL, DEFAULT_CONTEXT)
        q.allocate(2, 50, RequestType.NORMAL, DEFAULT_CONTEXT)
        assert q.drain(20, cb) == 1
        assert filled == [1]
        assert q.lookup(2) is not None

    def test_completion_order(self):
        q = MissQueue(4)
        filled, cb = fills_collected()
        q.allocate(1, 30, RequestType.NORMAL, DEFAULT_CONTEXT)
        q.allocate(2, 10, RequestType.NORMAL, DEFAULT_CONTEXT)
        q.drain(100, cb)
        assert filled == [2, 1]

    def test_nofill_does_not_fill(self):
        q = MissQueue(4)
        filled, cb = fills_collected()
        q.allocate(1, 10, RequestType.NOFILL, DEFAULT_CONTEXT)
        q.allocate(2, 10, RequestType.RANDOM_FILL, DEFAULT_CONTEXT)
        q.drain(100, cb)
        assert filled == [2]

    def test_drain_empty(self):
        q = MissQueue(4)
        _, cb = fills_collected()
        assert q.drain(100, cb) == 0


class TestMisc:
    def test_earliest_completion(self):
        q = MissQueue(4)
        q.allocate(1, 30, RequestType.NORMAL, DEFAULT_CONTEXT)
        q.allocate(2, 10, RequestType.NORMAL, DEFAULT_CONTEXT)
        assert q.earliest_completion() == 10

    def test_earliest_on_empty_raises(self):
        with pytest.raises(ValueError):
            MissQueue(2).earliest_completion()

    def test_flush(self):
        q = MissQueue(2)
        q.allocate(1, 10, RequestType.NORMAL, DEFAULT_CONTEXT)
        q.flush()
        assert len(q) == 0

    def test_request_type_fill_semantics(self):
        q = MissQueue(4)
        e = q.allocate(1, 10, RequestType.NOFILL, DEFAULT_CONTEXT)
        assert not e.fills_cache
        e2 = q.allocate(2, 10, RequestType.NORMAL, DEFAULT_CONTEXT)
        assert e2.fills_cache
