"""Empirical leakage estimators over (secret, observation) streams.

Every attack in this repository reduces to the same abstraction: the
victim holds a secret ``S``, the attacker records an observation ``O``,
and the leakage is a property of the joint distribution P(S, O).  This
module estimates the standard metrics from sampled pairs:

* **Mutual information** — the plug-in estimator, optionally with the
  Miller-Madow bias correction (the plug-in estimate of I(S; O) is
  biased *upward* by roughly ``(|S||O| - |S| - |O| + 1) / (2 N ln 2)``
  bits, which matters exactly in the low-leakage regime the random fill
  cache creates).
* **Guessing entropy** — the expected number of guesses an optimal
  attacker needs to hit the secret, unconditionally (no observation)
  and conditioned on the observation.
* **Success-rate / key-rank curves** — maximum-likelihood decoding of
  the secret from ``n`` i.i.d. observations using the empirical
  per-secret templates, swept over ``n`` (the empirical analogue of the
  paper's Equation (5) measurement count).

All estimators consume a :class:`JointCounts`, which any sample stream
builds incrementally; observations may be any hashable value (an int
miss count, a tuple of probed lines, ...).
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.util.rng import derive_seed

Observation = Hashable

#: correction modes accepted by :func:`mutual_information_bits`
MI_CORRECTIONS = ("none", "miller-madow")


class JointCounts:
    """Integer counts of (secret, observation) pairs.

    Secrets and observations are kept in first-seen order, which is a
    pure function of the sample stream — estimates are therefore
    bit-identical across processes for the same stream.
    """

    def __init__(self) -> None:
        self._counts: Dict[int, Dict[Observation, int]] = {}
        self.total = 0

    @classmethod
    def from_samples(cls, samples: Iterable[Tuple[int, Observation]]) -> "JointCounts":
        joint = cls()
        for secret, obs in samples:
            joint.add(secret, obs)
        return joint

    @classmethod
    def from_nested(cls, nested: Mapping[int, Mapping[Observation, int]]) -> "JointCounts":
        """Build from a ``{secret: {observation: count}}`` mapping."""
        joint = cls()
        for secret, row in nested.items():
            for obs, count in row.items():
                joint.add(secret, obs, count)
        return joint

    def add(self, secret: int, obs: Observation, count: int = 1) -> None:
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        row = self._counts.setdefault(secret, {})
        row[obs] = row.get(obs, 0) + count
        self.total += count

    # -- views -----------------------------------------------------------

    @property
    def secrets(self) -> List[int]:
        return list(self._counts)

    def row(self, secret: int) -> Dict[Observation, int]:
        return dict(self._counts.get(secret, {}))

    def secret_marginal(self) -> Dict[int, int]:
        return {secret: sum(row.values()) for secret, row in self._counts.items()}

    def observation_marginal(self) -> Dict[Observation, int]:
        marginal: Dict[Observation, int] = {}
        for row in self._counts.values():
            for obs, count in row.items():
                marginal[obs] = marginal.get(obs, 0) + count
        return marginal

    def items(self) -> Iterable[Tuple[int, Observation, int]]:
        for secret, row in self._counts.items():
            for obs, count in row.items():
                yield secret, obs, count

    def num_joint_symbols(self) -> int:
        return sum(len(row) for row in self._counts.values())

    def __len__(self) -> int:
        return len(self._counts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JointCounts):
            return NotImplemented
        return self._counts == other._counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JointCounts({len(self)} secrets, "
            f"{self.num_joint_symbols()} joint symbols, "
            f"total={self.total})"
        )


def entropy_bits(counts: Mapping[Hashable, int]) -> float:
    """Plug-in Shannon entropy of a count table, in bits."""
    total = sum(counts.values())
    if total <= 0:
        raise ValueError("entropy of an empty count table is undefined")
    h = 0.0
    for count in counts.values():
        if count:
            p = count / total
            h -= p * math.log2(p)
    return h


def mutual_information_bits(joint: JointCounts, correction: str = "miller-madow") -> float:
    """Empirical I(S; O) in bits.

    ``correction`` is ``"none"`` for the raw plug-in estimate or
    ``"miller-madow"`` (default) for the first-order bias correction
    ``(K_S + K_O - K_SO - 1) / (2 N ln 2)``, where the K's are the
    numbers of *observed* symbols.  The corrected estimate is clamped
    at zero (true MI is non-negative).
    """
    if correction not in MI_CORRECTIONS:
        raise ValueError(f"unknown correction {correction!r}; known: {MI_CORRECTIONS}")
    total = joint.total
    if total <= 0:
        raise ValueError("mutual information of an empty joint is undefined")
    s_marginal = joint.secret_marginal()
    o_marginal = joint.observation_marginal()
    mi = 0.0
    for secret, obs, count in joint.items():
        p = count / total
        mi += p * math.log2(p / ((s_marginal[secret] / total) * (o_marginal[obs] / total)))
    if correction == "miller-madow":
        k_s = len(s_marginal)
        k_o = len(o_marginal)
        k_so = joint.num_joint_symbols()
        mi += (k_s + k_o - k_so - 1) / (2.0 * total * math.log(2.0))
        mi = max(mi, 0.0)
    return mi


def guessing_entropy(joint: JointCounts) -> float:
    """Unconditional guessing entropy E[rank of S], first guess = 1.

    The optimal blind attacker guesses secrets in decreasing prior
    order; for a uniform M-ary secret this is ``(M + 1) / 2``.
    """
    marginal = joint.secret_marginal()
    return _expected_rank(list(marginal.values()))


def conditional_guessing_entropy(joint: JointCounts) -> float:
    """Guessing entropy given the observation, E_O[E[rank of S | O]].

    The attacker ranks secrets by posterior P(s | o).  A perfectly
    leaky channel gives 1.0; an independent one degrades to the
    unconditional :func:`guessing_entropy`.  Leakier channels always
    score lower (data-processing: conditioning cannot hurt a ranking
    attacker on average).
    """
    total = joint.total
    if total <= 0:
        raise ValueError("guessing entropy of an empty joint is undefined")
    # Group counts by observation: posterior P(s|o) ∝ joint count.
    by_obs: Dict[Observation, List[int]] = {}
    for _secret, obs, count in joint.items():
        by_obs.setdefault(obs, []).append(count)
    ge = 0.0
    for counts in by_obs.values():
        p_obs = sum(counts) / total
        ge += p_obs * _expected_rank(counts)
    return ge


def _expected_rank(counts: Sequence[int]) -> float:
    """E[rank] of a value drawn from ``counts`` under best-first guessing.

    Ties share their rank block evenly (the attacker has no basis to
    order within a tie, so the expectation averages over the block).
    """
    total = sum(counts)
    if total <= 0:
        raise ValueError("expected rank of an empty count table is undefined")
    ordered = sorted(counts, reverse=True)
    ge = 0.0
    rank = 1
    i = 0
    while i < len(ordered):
        j = i
        while j < len(ordered) and ordered[j] == ordered[i]:
            j += 1
        block = j - i  # ties occupy ranks [rank, rank+block)
        mean_rank = rank + (block - 1) / 2.0
        for k in range(i, j):
            ge += (ordered[k] / total) * mean_rank
        rank += block
        i = j
    return ge


def success_rate_curve(
    joint: JointCounts,
    measurement_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
    repeats: int = 200,
    seed: int = 0,
    smoothing: float = 0.5,
) -> List[Tuple[int, float, float]]:
    """Success rate and mean key rank of an ML attacker vs. measurements.

    The attacker knows the empirical templates P(o | s) (profiling
    phase = the ``joint`` itself).  For each ``n`` in
    ``measurement_counts`` we Monte-Carlo ``repeats`` attacks: draw a
    uniform secret, draw ``n`` observations i.i.d. from its template,
    and rank every candidate secret by smoothed log-likelihood.
    Returns ``(n, success_rate, mean_rank)`` triples, where success
    means the true secret is the *strict* likelihood winner and ranks
    are 1-based with ties sharing their block's mean rank.
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    if smoothing <= 0:
        raise ValueError(f"smoothing must be positive, got {smoothing}")
    secrets = joint.secrets
    if not secrets:
        raise ValueError("success rate of an empty joint is undefined")
    obs_alphabet = list(joint.observation_marginal())
    k_obs = len(obs_alphabet) + 1  # +1: an implicit unseen symbol
    # Per-secret sampling tables and smoothed log-likelihood templates.
    rows = [joint.row(secret) for secret in secrets]
    cum_tables = []
    for row in rows:
        symbols = list(row)
        cum: List[int] = []
        running = 0
        for obs in symbols:
            running += row[obs]
            cum.append(running)
        cum_tables.append((symbols, cum, running))
    log_templates: List[Dict[Observation, float]] = []
    for row in rows:
        denom = math.log(sum(row.values()) + smoothing * k_obs)
        log_templates.append(
            {obs: math.log(row.get(obs, 0) + smoothing) - denom for obs in obs_alphabet}
        )
    floor_scores = [
        math.log(smoothing) - math.log(sum(row.values()) + smoothing * k_obs) for row in rows
    ]

    points: List[Tuple[int, float, float]] = []
    for n in measurement_counts:
        if n <= 0:
            raise ValueError(f"measurement counts must be positive, got {n}")
        rng = random.Random(derive_seed(seed, "success-rate", n))
        successes = 0
        rank_sum = 0.0
        for _ in range(repeats):
            true_idx = rng.randrange(len(secrets))
            symbols, cum, total_s = cum_tables[true_idx]
            drawn = [symbols[bisect_right(cum, rng.randrange(total_s))] for _ in range(n)]
            scores = []
            for idx in range(len(secrets)):
                template = log_templates[idx]
                floor = floor_scores[idx]
                scores.append(sum(template.get(obs, floor) for obs in drawn))
            true_score = scores[true_idx]
            higher = sum(1 for s in scores if s > true_score)
            ties = sum(1 for s in scores if s == true_score) - 1
            if higher == 0 and ties == 0:
                successes += 1
            rank_sum += 1 + higher + ties / 2.0
        points.append((n, successes / repeats, rank_sum / repeats))
    return points


def n_to_success(curve: Sequence[Tuple[int, float, float]], target: float = 0.9) -> Optional[int]:
    """Smallest measurement count reaching ``target`` success rate."""
    if not 0 < target <= 1:
        raise ValueError(f"target must be in (0, 1], got {target}")
    for n, rate, _rank in curve:
        if rate >= target:
            return n
    return None


def sample_window_channel(m_lines: int, window, trials: int, seed: int = 0) -> JointCounts:
    """Sample the Equation (7) storage channel directly.

    The sender is uniform over ``[0, M)``; the receiver observes
    ``i + U`` with ``U`` uniform over ``[-a, b]`` — exactly the channel
    whose capacity :func:`repro.analysis.channel_capacity.channel_capacity_bits`
    computes in closed form.  Used to validate the empirical estimators
    against the analytic bound.
    """
    if m_lines <= 0:
        raise ValueError(f"m_lines must be positive, got {m_lines}")
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    rng = random.Random(derive_seed(seed, "eq7", m_lines, window.a, window.b))
    size = window.size
    a = window.a
    joint = JointCounts()
    for _ in range(trials):
        secret = rng.randrange(m_lines)
        joint.add(secret, secret + rng.randrange(size) - a)
    return joint
