"""Figure 8: throughput of programs co-running with AES on an SMT core.

Eight SPEC-like benchmarks co-run with a continuous AES enc+dec stress
thread (all ten tables security-critical, bidirectional window of 32),
under baseline / PLcache+preload / RandomFill+SA / Newcache /
RandomFill+Newcache, for 16 KB DM and 32 KB 4-way L1s.

Paper's shape: random fill (on either substrate) and Newcache have no
impact on the co-runner's throughput; PLcache+preload degrades it badly
at 16 KB (32% average) and slightly at 32 KB.
"""

from statistics import mean

from _reporting import save_report

from repro.experiments.config import scaled
from repro.experiments.perf_concurrent import figure8
from repro.util.tables import format_table


def run():
    return figure8(n_refs=scaled(25_000, minimum=2_000),
                   aes_kb=2, seed=5)


def test_fig8_concurrent(benchmark):
    points = benchmark.pedantic(run, rounds=1, iterations=1)

    def cells(scheme, size):
        return [p.normalized_throughput for p in points
                if p.scheme == scheme and p.l1_size == size]

    small, large = 16 * 1024, 32 * 1024
    # Random fill does not hurt concurrent programs (paper: no impact).
    assert mean(cells("random_fill", small)) > 0.9
    assert mean(cells("random_fill", large)) > 0.9
    assert mean(cells("random_fill_newcache", small)) > 0.85
    # PLcache+preload degrades co-runners, worst at 16 KB (paper: 32%;
    # our milder timing model shows the same ordering at ~8%).
    assert mean(cells("plcache_preload", small)) < 0.96
    assert mean(cells("plcache_preload", small)) < \
        mean(cells("plcache_preload", large))
    # Random fill beats PLcache+preload on the co-runner at 16 KB.
    assert mean(cells("random_fill", small)) > \
        mean(cells("plcache_preload", small))

    rows = [(f"{p.l1_size // 1024}KB/{p.l1_assoc}w", p.benchmark, p.scheme,
             f"{p.normalized_throughput:.3f}") for p in points]
    save_report("fig8_concurrent", format_table(
        ["config", "benchmark", "scheme", "normalized throughput"], rows,
        title="Figure 8: co-runner throughput normalized to baseline"))
