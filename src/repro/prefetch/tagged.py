"""Tagged next-line prefetcher (Vanderwiel & Lilja survey, Section VII).

The paper compares random fill against "a commonly used tagged
prefetcher, that associates a 1-bit tag with the cache line to detect
when a demand-fetched or prefetched cache line is referenced for the
first time, to fetch the next sequential line."

Implemented as a fill policy: demand misses fetch normally *and* queue
line ``i+1``; the first hit on a line whose tag bit is still set also
queues ``i+1`` and clears the bit.  The prefetch requests reuse the
controller's fill queue / MSHR path exactly like random fill requests
(they are ``RANDOM_FILL``-typed: fill, no data to CPU).
"""

from __future__ import annotations

from typing import Set

from repro.cache.context import AccessContext
from repro.cache.controller import FillPolicy, L1Controller, MissPlan
from repro.cache.mshr import RequestType


class TaggedPrefetchPolicy(FillPolicy):
    """Demand fetch + tagged next-sequential-line prefetching."""

    def __init__(self) -> None:
        # Lines whose 1-bit tag is set (untouched since being fetched).
        self._tagged: Set[int] = set()
        self._controller: "L1Controller | None" = None
        self.prefetches_triggered = 0

    def attach(self, controller: L1Controller) -> None:
        """Bind to the controller whose fill queue receives prefetches.

        Needed because first-reference detection happens on *hits*,
        where the policy must push a new request itself.
        """
        self._controller = controller

    def on_miss(self, line_addr: int, ctx: AccessContext) -> MissPlan:
        # Demand fetch of i prefetches i+1; the prefetched line is tagged
        # so its first reference triggers the next prefetch.
        self._tagged.add(line_addr + 1)
        self.prefetches_triggered += 1
        return MissPlan(RequestType.NORMAL, (line_addr + 1,))

    def on_hit(self, line_addr: int, ctx: AccessContext) -> None:
        if line_addr in self._tagged:
            # First reference to a prefetched line: chain the next one.
            self._tagged.discard(line_addr)
            if self._controller is not None:
                self._tagged.add(line_addr + 1)
                self.prefetches_triggered += 1
                self._controller._enqueue_random_fills((line_addr + 1,), ctx)

    def reset(self) -> None:
        self._tagged.clear()
        self.prefetches_triggered = 0


def build_tagged_prefetch_l1(tag_store, next_level, **kwargs) -> L1Controller:
    """Construct an L1 controller with the tagged prefetcher attached."""
    policy = TaggedPrefetchPolicy()
    controller = L1Controller(tag_store, next_level, policy=policy, **kwargs)
    policy.attach(controller)
    return controller
