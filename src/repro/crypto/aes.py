"""AES-128 block cipher, T-table implementation (FIPS-197 correct).

This is the OpenSSL-style software AES whose table-lookup address stream
the cache collision attack exploits: rounds 1..9 index Te0..Te3, the
final round indexes Te4 (the paper's "T4"), so that
``Te4[x_u] & 0xff == S[x_u]`` and ``S[x_u] ^ k10_i == c_i`` — the
final-round relation of Section II-C.

The plain :class:`AES128` is the functional cipher; the traced variant
in :mod:`repro.crypto.traced_aes` reuses its key schedule and emits the
memory reference stream.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.crypto.aes_tables import (
    INV_SBOX,
    SBOX,
    TD0,
    TD1,
    TD2,
    TD3,
    TE0,
    TE1,
    TE2,
    TE3,
    TE4,
    inv_mix_columns_word,
)

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)
_MASK32 = 0xFFFFFFFF


def _words_from_bytes(data: bytes) -> List[int]:
    return [int.from_bytes(data[i:i + 4], "big") for i in range(0, len(data), 4)]


def _bytes_from_words(words: Sequence[int]) -> bytes:
    return b"".join(w.to_bytes(4, "big") for w in words)


def expand_key(key: bytes) -> List[int]:
    """AES-128 key expansion: 44 round-key words (FIPS-197 section 5.2)."""
    if len(key) != 16:
        raise ValueError(f"AES-128 key must be 16 bytes, got {len(key)}")
    rk = _words_from_bytes(key)
    for i in range(4, 44):
        temp = rk[i - 1]
        if i % 4 == 0:
            temp = ((temp << 8) | (temp >> 24)) & _MASK32  # RotWord
            temp = ((SBOX[(temp >> 24) & 0xFF] << 24) |
                    (SBOX[(temp >> 16) & 0xFF] << 16) |
                    (SBOX[(temp >> 8) & 0xFF] << 8) |
                    SBOX[temp & 0xFF])                      # SubWord
            temp ^= _RCON[i // 4 - 1] << 24
        rk.append(rk[i - 4] ^ temp)
    return rk


def expand_decrypt_key(key: bytes) -> List[int]:
    """Round keys for the equivalent inverse cipher (Td-table decryption)."""
    rk = expand_key(key)
    drk: List[int] = []
    for round_index in range(11):
        source = rk[4 * (10 - round_index): 4 * (10 - round_index) + 4]
        if round_index in (0, 10):
            drk.extend(source)
        else:
            drk.extend(inv_mix_columns_word(w) for w in source)
    return drk


class AES128:
    """AES-128 in ECB (block) and CBC modes."""

    block_size = 16

    def __init__(self, key: bytes):
        self.round_keys = expand_key(key)
        self.decrypt_round_keys = expand_decrypt_key(key)

    # -- block primitives ---------------------------------------------------

    def encrypt_block(self, plaintext: bytes) -> bytes:
        if len(plaintext) != 16:
            raise ValueError(f"block must be 16 bytes, got {len(plaintext)}")
        rk = self.round_keys
        s0, s1, s2, s3 = (w ^ k for w, k in
                          zip(_words_from_bytes(plaintext), rk[:4]))
        for rnd in range(1, 10):
            base = 4 * rnd
            t0 = (TE0[s0 >> 24] ^ TE1[(s1 >> 16) & 0xFF] ^
                  TE2[(s2 >> 8) & 0xFF] ^ TE3[s3 & 0xFF] ^ rk[base])
            t1 = (TE0[s1 >> 24] ^ TE1[(s2 >> 16) & 0xFF] ^
                  TE2[(s3 >> 8) & 0xFF] ^ TE3[s0 & 0xFF] ^ rk[base + 1])
            t2 = (TE0[s2 >> 24] ^ TE1[(s3 >> 16) & 0xFF] ^
                  TE2[(s0 >> 8) & 0xFF] ^ TE3[s1 & 0xFF] ^ rk[base + 2])
            t3 = (TE0[s3 >> 24] ^ TE1[(s0 >> 16) & 0xFF] ^
                  TE2[(s1 >> 8) & 0xFF] ^ TE3[s2 & 0xFF] ^ rk[base + 3])
            s0, s1, s2, s3 = t0, t1, t2, t3
        c0 = ((TE4[s0 >> 24] & 0xFF000000) ^ (TE4[(s1 >> 16) & 0xFF] & 0x00FF0000) ^
              (TE4[(s2 >> 8) & 0xFF] & 0x0000FF00) ^ (TE4[s3 & 0xFF] & 0xFF) ^ rk[40])
        c1 = ((TE4[s1 >> 24] & 0xFF000000) ^ (TE4[(s2 >> 16) & 0xFF] & 0x00FF0000) ^
              (TE4[(s3 >> 8) & 0xFF] & 0x0000FF00) ^ (TE4[s0 & 0xFF] & 0xFF) ^ rk[41])
        c2 = ((TE4[s2 >> 24] & 0xFF000000) ^ (TE4[(s3 >> 16) & 0xFF] & 0x00FF0000) ^
              (TE4[(s0 >> 8) & 0xFF] & 0x0000FF00) ^ (TE4[s1 & 0xFF] & 0xFF) ^ rk[42])
        c3 = ((TE4[s3 >> 24] & 0xFF000000) ^ (TE4[(s0 >> 16) & 0xFF] & 0x00FF0000) ^
              (TE4[(s1 >> 8) & 0xFF] & 0x0000FF00) ^ (TE4[s2 & 0xFF] & 0xFF) ^ rk[43])
        return _bytes_from_words((c0, c1, c2, c3))

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) != 16:
            raise ValueError(f"block must be 16 bytes, got {len(ciphertext)}")
        rk = self.decrypt_round_keys
        s0, s1, s2, s3 = (w ^ k for w, k in
                          zip(_words_from_bytes(ciphertext), rk[:4]))
        for rnd in range(1, 10):
            base = 4 * rnd
            t0 = (TD0[s0 >> 24] ^ TD1[(s3 >> 16) & 0xFF] ^
                  TD2[(s2 >> 8) & 0xFF] ^ TD3[s1 & 0xFF] ^ rk[base])
            t1 = (TD0[s1 >> 24] ^ TD1[(s0 >> 16) & 0xFF] ^
                  TD2[(s3 >> 8) & 0xFF] ^ TD3[s2 & 0xFF] ^ rk[base + 1])
            t2 = (TD0[s2 >> 24] ^ TD1[(s1 >> 16) & 0xFF] ^
                  TD2[(s0 >> 8) & 0xFF] ^ TD3[s3 & 0xFF] ^ rk[base + 2])
            t3 = (TD0[s3 >> 24] ^ TD1[(s2 >> 16) & 0xFF] ^
                  TD2[(s1 >> 8) & 0xFF] ^ TD3[s0 & 0xFF] ^ rk[base + 3])
            s0, s1, s2, s3 = t0, t1, t2, t3
        out = []
        for w0, w1, w2, w3, k in ((s0, s3, s2, s1, rk[40]),
                                  (s1, s0, s3, s2, rk[41]),
                                  (s2, s1, s0, s3, rk[42]),
                                  (s3, s2, s1, s0, rk[43])):
            word = ((INV_SBOX[w0 >> 24] << 24) |
                    (INV_SBOX[(w1 >> 16) & 0xFF] << 16) |
                    (INV_SBOX[(w2 >> 8) & 0xFF] << 8) |
                    INV_SBOX[w3 & 0xFF]) ^ k
            out.append(word)
        return _bytes_from_words(out)

    # -- CBC mode ---------------------------------------------------------

    def encrypt_cbc(self, plaintext: bytes, iv: bytes) -> bytes:
        if len(plaintext) % 16:
            raise ValueError("CBC plaintext must be a multiple of 16 bytes")
        if len(iv) != 16:
            raise ValueError(f"IV must be 16 bytes, got {len(iv)}")
        out = bytearray()
        prev = iv
        for i in range(0, len(plaintext), 16):
            block = bytes(a ^ b for a, b in zip(plaintext[i:i + 16], prev))
            prev = self.encrypt_block(block)
            out.extend(prev)
        return bytes(out)

    def decrypt_cbc(self, ciphertext: bytes, iv: bytes) -> bytes:
        if len(ciphertext) % 16:
            raise ValueError("CBC ciphertext must be a multiple of 16 bytes")
        if len(iv) != 16:
            raise ValueError(f"IV must be 16 bytes, got {len(iv)}")
        out = bytearray()
        prev = iv
        for i in range(0, len(ciphertext), 16):
            block = ciphertext[i:i + 16]
            plain = self.decrypt_block(block)
            out.extend(a ^ b for a, b in zip(plain, prev))
            prev = block
        return bytes(out)
