"""Shared-state lowering for batched cell execution.

A Figure-10-style sweep runs many cells that differ only in window,
seed knob, or scheme while replaying the *same* trace through the same
cache geometry.  The per-cell path re-derives the decode columns and
re-warms the L2 for every one of them; this module computes that shared
work once per batch group and lowers each eligible cell onto the flat
kernel (:func:`repro.cpu.timing.run_flat_general`) or — several lanes
at a time — onto the lane-parallel kernel
(:func:`repro.cpu.lanes.run_lanes_general`):

* :class:`GeneralGroupState` — the per-(trace, config, warm) inputs:
  decoded line/step columns of the measured slice and the warmed L2
  contents as plain int lists (copied per cell, the copy is cheap),
* :func:`lower_cell` — build the cell's scheme, check that it is
  exactly the stock set-associative/LRU configuration the kernels
  transcribe, and pregenerate its random-fill draw row from its own
  derived RNG stream; ineligible cells lower to ``None`` and the
  caller falls back to :func:`repro.runner.cells.run_cell`,
* :func:`run_lowered_cell` / :func:`run_batched_cell` — one cell
  through the scalar flat kernel,
* :func:`run_lane_cells` — a group of lowered cells through the lane
  kernel in one shared trace pass (the lanes must agree on
  :meth:`LoweredCell.shared_key`),
* :func:`lane_eligible` — the structural half of the eligibility check
  from the spec alone (no trace load), for plan displays.

Results are bit-identical to the per-cell path: the kernels are exact
transcriptions of the fused kernel plus settle, the warm replay mirrors
``warm_l2``, and the draw row reproduces the scalar ``draw()`` stream
(:meth:`repro.util.rng.HardwareRng.pregenerate`).
"""

from __future__ import annotations


from typing import List, Optional, Sequence

from repro.cache.controller import DemandFetchPolicy
from repro.cache.l2 import L2Cache
from repro.cache.set_associative import SetAssociativeCache
from repro.core.policy import RandomFillPolicy
from repro.cpu.lanes import LaneCell, masked_offsets, run_lanes_general
from repro.cpu.timing import SimResult, run_flat_general
from repro.cpu.trace import Trace
from repro.memory.dram import DramModel

#: thread whose window registers drive a batched run (the timing model's
#: default context)
_THREAD_ID = 0


class GeneralGroupState:
    """Shared inputs of one batch group: decode columns + warm L2 state.

    Built once per (trace, config, warm) group; every cell of the group
    reads the same column lists (never mutated) and receives its own
    copy of the warmed L2 sets (mutated by its kernel run).
    """

    __slots__ = ("config", "lines", "steps", "instructions",
                 "l2_num_sets", "l2_assoc", "_warm_l2_sets")

    def __init__(self, trace: Trace, config, warm: bool):
        self.config = config
        line_shift = config.line_size.bit_length() - 1
        if warm:
            # Warm on the first half, measure the second — the same
            # split (and the same memoized slice/decode objects) as
            # run_general_workload.
            split = len(trace) // 2
            footprint = trace.decoded(line_shift).warm_footprint(split)
            measured = trace[split:]
        else:
            footprint = ()
            measured = trace
        decode = measured.decoded(line_shift)
        self.lines: List[int] = decode.lines_list()
        self.steps: List[int] = decode.issue_steps(config.issue_width)
        self.instructions: int = measured.instruction_count
        self.l2_num_sets = (config.l2_size // config.line_size) \
            // config.l2_assoc
        self.l2_assoc = config.l2_assoc
        # Flat replay of warm_l2: access-or-fill per footprint line on
        # MRU-first int lists (hits move to front, fills evict the LRU
        # tail), matching SetAssociativeCache under LRU exactly.
        l2_mask = self.l2_num_sets - 1
        l2_assoc = self.l2_assoc
        sets: List[List[int]] = [[] for _ in range(self.l2_num_sets)]
        for line in footprint:
            cache_set = sets[line & l2_mask]
            if line in cache_set:
                if cache_set[0] != line:
                    cache_set.remove(line)
                    cache_set.insert(0, line)
            else:
                if len(cache_set) >= l2_assoc:
                    cache_set.pop()
                cache_set.insert(0, line)
        self._warm_l2_sets = sets

    def l2_sets_copy(self) -> List[List[int]]:
        """A fresh mutable copy of the warmed L2 contents."""
        return [list(cache_set) for cache_set in self._warm_l2_sets]

    def l2_sets_view(self) -> List[List[int]]:
        """The warmed L2 contents, MRU first — read-only for callers.

        The lane kernel copies per lane internally, so sharing the
        backing lists avoids one full L2 image copy per lane.
        """
        return self._warm_l2_sets


def group_state_for(spec) -> GeneralGroupState:
    """Build the shared state for a batch group from one member spec."""
    from repro.workloads.cache import cached_workload
    trace = cached_workload(spec.benchmark, n_refs=spec.n_refs,
                            seed=spec.seed)
    return GeneralGroupState(trace, spec.config, spec.warm)


class LoweredCell:
    """One eligible cell lowered to plain kernel parameters.

    The shared fields (geometry, capacities, latencies, DRAM timing)
    must agree between lanes run together — :meth:`shared_key` is the
    grouping key; ``policy_kind`` / ``rf_a`` / ``rf_mask`` / ``draws``
    are the per-lane split.
    """

    __slots__ = ("l1_num_sets", "l1_assoc", "l2_hit_latency",
                 "mq_capacity", "fill_reserve", "fill_queue_capacity",
                 "hit_cost", "mlp", "credit", "dram",
                 "policy_kind", "rf_a", "rf_mask", "draws")

    def shared_key(self):
        return (self.l1_num_sets, self.l1_assoc, self.l2_hit_latency,
                self.mq_capacity, self.fill_reserve,
                self.fill_queue_capacity, self.hit_cost, self.mlp,
                self.credit, self.dram)


def _lower(spec, config, l2_num_sets, l2_assoc,
           n_draws: int) -> Optional[LoweredCell]:
    """Structural eligibility check + parameter extraction.

    ``n_draws == 0`` performs a *dry* lowering (no draw row is
    pregenerated, leaving the scheme's RNG untouched) — enough for
    eligibility display; a real run lowers with one draw per trace
    record.
    """
    from repro.experiments.schemes import build_scheme
    from repro.runner.cells import CellSpec
    from repro.schemes import get_scheme

    if not isinstance(spec, CellSpec) or spec.kind != "general":
        return None
    # Declarative early-out from the scheme registry: schemes not
    # flagged lane_eligible never lower, and pow2_window_only schemes
    # skip the build for windows the mask path cannot draw.  The
    # structural checks below stay as the authority for flagged
    # schemes (a conformance test pins flag/structure agreement).
    registered = get_scheme(spec.scheme, timing=True)
    if not registered.lane_eligible:
        return None
    if registered.pow2_window_only and spec.window is not None:
        size = spec.window[0] + spec.window[1] + 1
        if size > 1 and size & (size - 1):
            return None
    scheme = build_scheme(spec.scheme, config, seed=spec.seed)
    window = spec.window if spec.window is not None else (0, 0)
    if scheme.os is not None:
        scheme.os.set_rr(*window)

    l1 = scheme.l1
    tag = l1.tag_store
    if type(tag) is not SetAssociativeCache \
            or not (tag._lru_hits and tag._mru_fills and tag._max_victims) \
            or l1._policy_bypasses or l1._policy_on_hit is not None:
        return None
    l2 = l1.next_level
    if type(l2) is not L2Cache:
        return None
    l2_tag = l2.tag_store
    if type(l2_tag) is not SetAssociativeCache \
            or not (l2_tag._lru_hits and l2_tag._mru_fills
                    and l2_tag._max_victims) \
            or l2_tag._set_mask + 1 != l2_num_sets \
            or l2_tag.associativity != l2_assoc:
        return None
    dram = l2.dram
    if type(dram) is not DramModel:
        return None
    # The kernel starts from empty in-flight/warm state; a freshly
    # built scheme always satisfies this.
    if len(l1.miss_queue) or l1.fill_queue or dram._open_row \
            or dram._bank_free_at:
        return None

    policy = l1._policy
    policy_kind = 1
    rf_a = rf_mask = 0
    draws: Sequence[int] = ()
    if type(policy) is RandomFillPolicy:
        engine = policy.engine
        rf_window = engine.window_for(_THREAD_ID)
        if not (rf_window.a == 0 and rf_window.b == 0):
            rf_a, rf_mask, _size = engine._params[_THREAD_ID]
            if rf_mask is None:
                return None          # non-power-of-two: draw_below path
            policy_kind = 2
            # One raw draw per demand miss; one per record is always
            # enough.  The row comes from this cell's own derived RNG
            # stream and reproduces scalar draw() bit-exactly.
            if n_draws:
                draws = engine._rng.pregenerate(n_draws)
    elif type(policy) is not DemandFetchPolicy:
        return None

    cfg = dram.config
    lowered = LoweredCell()
    lowered.l1_num_sets = tag._set_mask + 1
    lowered.l1_assoc = tag.associativity
    lowered.l2_hit_latency = l2.hit_latency
    lowered.mq_capacity = l1.miss_queue.capacity
    lowered.fill_reserve = l1.fill_reserve
    lowered.fill_queue_capacity = l1.fill_queue_capacity
    lowered.hit_cost = l1.hit_latency
    lowered.mlp = max(1, l1.miss_queue.capacity // 2)
    lowered.credit = config.overlap_credit
    lowered.dram = (
        cfg.row_size_bytes // cfg.line_size, cfg.num_banks,
        cfg.row_hit_latency, cfg.row_miss_latency,
        cfg.t_burst, cfg.t_rp + cfg.t_rcd + cfg.t_burst,
    )
    lowered.policy_kind = policy_kind
    lowered.rf_a = rf_a
    lowered.rf_mask = rf_mask
    lowered.draws = draws
    return lowered


def lower_cell(spec, group: GeneralGroupState) -> Optional[LoweredCell]:
    """Lower one cell onto kernel parameters, or ``None`` if ineligible.

    The cell's scheme is built exactly as ``run_general_workload``
    builds it (same ``build_scheme`` seed derivation, same ``set_rr``),
    then checked: only the stock set-associative/LRU L1 and L2 with a
    demand-fetch or power-of-two random-fill policy qualify — the same
    configurations the fused kernel covers, minus the non-power-of-two
    windows that draw via ``draw_below``.
    """
    if spec.config != group.config:
        return None
    return _lower(spec, spec.config, group.l2_num_sets, group.l2_assoc,
                  n_draws=len(group.lines))


def lane_eligible(spec) -> bool:
    """Would this spec lower onto the kernels?  Structure only, no trace.

    Used by plan displays (``--profile``): the check builds the scheme
    (cheap) but skips the draw-row pregeneration, so no workload trace
    is loaded.
    """
    from repro.runner.cells import CellSpec

    if not isinstance(spec, CellSpec) or spec.kind != "general":
        return False
    config = spec.config
    l2_num_sets = (config.l2_size // config.line_size) // config.l2_assoc
    return _lower(spec, config, l2_num_sets, config.l2_assoc,
                  n_draws=0) is not None


def run_lowered_cell(group: GeneralGroupState,
                     lowered: LoweredCell) -> SimResult:
    """Run one lowered cell through the scalar flat kernel."""
    return run_flat_general(
        group.lines, group.steps, group.instructions,
        l1_num_sets=lowered.l1_num_sets, l1_assoc=lowered.l1_assoc,
        l2_sets=group.l2_sets_copy(), l2_num_sets=group.l2_num_sets,
        l2_assoc=group.l2_assoc, l2_hit_latency=lowered.l2_hit_latency,
        mq_capacity=lowered.mq_capacity,
        fill_reserve=lowered.fill_reserve,
        fill_queue_capacity=lowered.fill_queue_capacity,
        hit_cost=lowered.hit_cost, mlp=lowered.mlp, credit=lowered.credit,
        policy_kind=lowered.policy_kind, rf_a=lowered.rf_a,
        rf_mask=lowered.rf_mask, draws=lowered.draws, dram=lowered.dram,
    )


def run_batched_cell(spec, group: GeneralGroupState) -> Optional[SimResult]:
    """Run one cell through the flat kernel, or ``None`` if ineligible."""
    lowered = lower_cell(spec, group)
    if lowered is None:
        return None
    return run_lowered_cell(group, lowered)


def run_lane_cells(group: GeneralGroupState,
                   lowered: Sequence[LoweredCell]) -> List[SimResult]:
    """Run a group of lowered cells as lanes of one shared trace pass.

    Every member must report the same :meth:`LoweredCell.shared_key`
    (the runner groups by it before calling).  Returns one result per
    cell, in order, bit-identical to :func:`run_lowered_cell` per cell.
    """
    if not lowered:
        return []
    first = lowered[0]
    cells = [
        LaneCell(
            lc.policy_kind,
            masked_offsets(lc.draws, lc.rf_a, lc.rf_mask)
            if lc.policy_kind == 2 else None,
        )
        for lc in lowered
    ]
    return run_lanes_general(
        group.lines, group.steps, group.instructions,
        l1_num_sets=first.l1_num_sets, l1_assoc=first.l1_assoc,
        l2_sets=group.l2_sets_view(),
        l2_num_sets=group.l2_num_sets, l2_assoc=group.l2_assoc,
        l2_hit_latency=first.l2_hit_latency,
        mq_capacity=first.mq_capacity, fill_reserve=first.fill_reserve,
        fill_queue_capacity=first.fill_queue_capacity,
        hit_cost=first.hit_cost, mlp=first.mlp, credit=first.credit,
        cells=cells, dram=first.dram,
    )
