"""Memory reference trace format.

The timing model consumes *trace records*.  For speed in multi-million
reference runs a record is a plain tuple::

    (byte_addr, gap, write)

* ``byte_addr`` — the referenced byte address,
* ``gap``       — instructions executed since the previous record,
                  *including* this memory instruction (>= 1),
* ``write``     — 1 for a store, 0 for a load.

``MemRef`` is a readable constructor/inspector for the same shape; it IS
a tuple (``typing.NamedTuple``), so traces may mix both freely.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, NamedTuple, Tuple

TraceRecord = Tuple[int, int, int]


class MemRef(NamedTuple):
    """Readable trace record; interchangeable with the raw tuple form."""

    addr: int
    gap: int = 1
    write: int = 0


def validate_trace(trace: Iterable[TraceRecord]) -> Iterator[TraceRecord]:
    """Yield records, raising on malformed ones (used in tests/debug)."""
    for i, record in enumerate(trace):
        if len(record) != 3:
            raise ValueError(f"record {i} has {len(record)} fields, want 3")
        addr, gap, write = record
        if addr < 0:
            raise ValueError(f"record {i}: negative address {addr}")
        if gap < 1:
            raise ValueError(f"record {i}: gap must be >= 1, got {gap}")
        if write not in (0, 1):
            raise ValueError(f"record {i}: write flag must be 0/1, got {write}")
        yield record


def instruction_count(trace: Iterable[TraceRecord]) -> int:
    """Total instructions represented by a trace (sum of gaps)."""
    return sum(gap for _, gap, _ in trace)


def materialize(trace: Iterable[TraceRecord]) -> List[TraceRecord]:
    """Force a generator trace into a list (for reuse across schemes)."""
    return list(trace)
