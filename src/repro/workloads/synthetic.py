"""Primitive synthetic address-stream generators.

SPEC CPU2006 binaries and reference inputs are proprietary, so the
concurrent-program and general-performance experiments (Figures 8-10)
run on synthetic traces whose *spatial/temporal locality profile*
matches each benchmark's published character — which is precisely the
property Figure 9 shows determines random-fill behaviour.  The
primitives here are composed into named benchmarks by
:mod:`repro.workloads.spec`.

All generators emit columnar :class:`~repro.cpu.trace.Trace` objects
of ``(byte_addr, gap, write)`` records (see :mod:`repro.cpu.trace`) —
built by appending to plain per-column lists, then converted to numpy
in one pass — and are deterministic given their seed.
"""

from __future__ import annotations

import random
from typing import List

from repro.cpu.trace import Trace

LINE = 64


def streaming(n_refs: int, base: int, array_lines: int,
              refs_per_line: int = 8, stride_lines_max: int = 1,
              dense_prob: float = 0.7,
              write_ratio: float = 0.0, gap: int = 4,
              seed: int = 0) -> Trace:
    """Irregular forward streaming (the libquantum/lbm pattern).

    Walks forward over a large array, touching each visited line with
    ``refs_per_line`` element accesses, then advancing by one line
    (probability ``dense_prob``) or jumping 2..``stride_lines_max``
    lines ahead — "irregular streaming access patterns ... wider
    spatial locality beyond a cache line, especially in the forward
    direction" (Section VII).  The irregular jumps are what break a
    next-sequential-line prefetcher while a forward random fill window
    still covers the skipped-to lines.  Wraps around the array if the
    trace is longer than one pass.
    """
    if n_refs <= 0:
        raise ValueError(f"n_refs must be positive, got {n_refs}")
    if array_lines <= stride_lines_max:
        raise ValueError("array too small for the requested stride")
    if not 0.0 <= dense_prob <= 1.0:
        raise ValueError(f"dense_prob must be in [0, 1], got {dense_prob}")
    rng = random.Random(seed)
    addrs: List[int] = []
    writes: List[int] = []
    line = 0
    element_stride = LINE // refs_per_line
    while len(addrs) < n_refs:
        line_base = base + (line % array_lines) * LINE
        for e in range(refs_per_line):
            writes.append(1 if rng.random() < write_ratio else 0)
            addrs.append(line_base + e * element_stride)
            if len(addrs) >= n_refs:
                break
        if stride_lines_max <= 1 or rng.random() < dense_prob:
            line += 1
        else:
            line += rng.randint(2, stride_lines_max)
    return Trace.from_columns(addrs, [gap] * len(addrs), writes)


def locality_mixture(n_refs: int, base: int, working_set_lines: int,
                     hot_lines: int, p_hot: float,
                     p_neighbor: float, neighbor_span: int,
                     refs_per_line: int = 2, write_ratio: float = 0.2,
                     gap: int = 4, seed: int = 0) -> Trace:
    """General-purpose locality mixture (astar/bzip2/sjeng/... pattern).

    Each step picks the next *line* as one of:

    * a hot line (probability ``p_hot``) — temporal locality against a
      small hot set *scattered* across the working set (hot objects in
      real programs are not contiguous, which is what keeps the
      Figure 9 reference ratio low at far offsets),
    * a neighbor of the previous line within ``±neighbor_span`` lines
      (probability ``p_neighbor``) — bounded spatial locality,
    * a uniformly random line in the working set — capacity pressure.

    Each chosen line receives ``refs_per_line`` element accesses.
    """
    if n_refs <= 0:
        raise ValueError(f"n_refs must be positive, got {n_refs}")
    if not 0 <= p_hot + p_neighbor <= 1:
        raise ValueError("p_hot + p_neighbor must be within [0, 1]")
    if hot_lines > working_set_lines:
        raise ValueError("hot set larger than working set")
    rng = random.Random(seed)
    addrs: List[int] = []
    writes: List[int] = []
    prev_line = 0
    element_stride = max(1, LINE // refs_per_line)
    hot_set = rng.sample(range(working_set_lines), hot_lines)
    while len(addrs) < n_refs:
        roll = rng.random()
        if roll < p_hot:
            line = hot_set[rng.randrange(hot_lines)]
        elif roll < p_hot + p_neighbor:
            line = (prev_line + rng.randint(-neighbor_span, neighbor_span)) \
                % working_set_lines
        else:
            line = rng.randrange(working_set_lines)
        prev_line = line
        line_base = base + line * LINE
        for e in range(refs_per_line):
            writes.append(1 if rng.random() < write_ratio else 0)
            addrs.append(line_base + e * element_stride)
            if len(addrs) >= n_refs:
                break
    return Trace.from_columns(addrs, [gap] * len(addrs), writes)


def strided(n_refs: int, base: int, array_lines: int, stride_lines: int,
            refs_per_line: int = 2, write_ratio: float = 0.1,
            gap: int = 6, seed: int = 0) -> Trace:
    """Regular strided sweep (the milc-like pattern): repeated passes
    with a fixed multi-line stride, so demand fetch sees no next-line
    spatial locality and neither does a next-line prefetcher."""
    if n_refs <= 0:
        raise ValueError(f"n_refs must be positive, got {n_refs}")
    if stride_lines < 1:
        raise ValueError(f"stride_lines must be >= 1, got {stride_lines}")
    rng = random.Random(seed)
    addrs: List[int] = []
    writes: List[int] = []
    line = 0
    element_stride = max(1, LINE // refs_per_line)
    while len(addrs) < n_refs:
        line_base = base + (line % array_lines) * LINE
        for e in range(refs_per_line):
            writes.append(1 if rng.random() < write_ratio else 0)
            addrs.append(line_base + e * element_stride)
            if len(addrs) >= n_refs:
                break
        line += stride_lines
    return Trace.from_columns(addrs, [gap] * len(addrs), writes)


def pointer_chase(n_refs: int, base: int, working_set_lines: int,
                  gap: int = 5, write_ratio: float = 0.05,
                  seed: int = 0) -> Trace:
    """Pointer chasing over a shuffled cycle: no spatial locality at all,
    temporal locality only through working-set size (the astar/sjeng
    irregular-control pattern)."""
    if n_refs <= 0:
        raise ValueError(f"n_refs must be positive, got {n_refs}")
    if working_set_lines < 2:
        raise ValueError("pointer chase needs >= 2 lines")
    rng = random.Random(seed)
    order = list(range(working_set_lines))
    rng.shuffle(order)
    successor = {order[i]: order[(i + 1) % working_set_lines]
                 for i in range(working_set_lines)}
    addrs: List[int] = []
    writes: List[int] = []
    line = order[0]
    for _ in range(n_refs):
        writes.append(1 if rng.random() < write_ratio else 0)
        addrs.append(base + line * LINE + rng.randrange(8) * 8)
        line = successor[line]
    return Trace.from_columns(addrs, [gap] * n_refs, writes)
