"""Registrations for every built-in scheme (legacy six + the design zoo).

One :func:`repro.schemes.registry.register` call per design is the
whole integration surface: the timing sweeps, the leakage channels, the
occupancy attack, the batch planner, the service codec and the CLI all
read the registry.  Registration order is the canonical display order;
the legacy names come first so the computed ``LEAKAGE_SCHEMES`` /
``SCHEME_NAMES`` tuples keep their historical order.

Seed-derivation paths are part of each scheme's contract: the factories
below reproduce the pre-registry strings exactly (pinned by the golden
conformance tests), so migrating a scheme here never moves its
measured results.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.cache.controller import DemandFetchPolicy
from repro.cache.hierarchy import Hierarchy, build_hierarchy
from repro.cache.replacement import RandomPolicy
from repro.cache.set_associative import SetAssociativeCache
from repro.core.engine import RandomFillEngine
from repro.core.policy import RandomFillPolicy
from repro.core.syscalls import RandomFillOS
from repro.prefetch.tagged import TaggedPrefetchPolicy
from repro.schemes.chameleon import ChameleonCache
from repro.schemes.ras import RandomAndSafeFill, RandomAndSafePolicy
from repro.schemes.registry import (
    DEMAND,
    NOFILL_RANDOM,
    RANDOM_FILL,
    SchemeSpec,
    StoreGeometry,
    register,
)
from repro.schemes.skewed import SkewedRandomCache
from repro.secure.newcache import Newcache
from repro.secure.nocache import DisableCachePolicy
from repro.secure.plcache import PLCache
from repro.secure.rpcache import RPCache
from repro.util.rng import HardwareRng, derive_seed


def _common(config) -> dict:
    """Hierarchy kwargs shared by every controller factory."""
    return dict(
        l1_size=config.l1d_size,
        l1_assoc=config.l1d_assoc,
        line_size=config.line_size,
        l1_hit_latency=config.l1_hit_latency,
        l2_size=config.l2_size,
        l2_assoc=config.l2_assoc,
        l2_hit_latency=config.l2_hit_latency,
        mshr_entries=config.mshr_entries,
        dram_config=config.dram,
    )


# -- functional store factories (leakage channels) ---------------------------


def _sa_store(geometry: StoreGeometry) -> SetAssociativeCache:
    return SetAssociativeCache(geometry.cache_bytes, geometry.associativity)


def _newcache_store(geometry: StoreGeometry) -> Newcache:
    return Newcache(geometry.cache_bytes, seed=geometry.seed)


def _rpcache_store(geometry: StoreGeometry) -> RPCache:
    return RPCache(geometry.cache_bytes, geometry.associativity, seed=geometry.seed)


def _plcache_store(geometry: StoreGeometry) -> PLCache:
    return PLCache(geometry.cache_bytes, geometry.associativity)


def _skewed_store(geometry: StoreGeometry) -> SkewedRandomCache:
    return SkewedRandomCache(
        geometry.cache_bytes, geometry.associativity, seed=geometry.seed
    )


def _chameleon_store(geometry: StoreGeometry) -> ChameleonCache:
    return ChameleonCache(
        geometry.cache_bytes, geometry.associativity, seed=geometry.seed
    )


def _ras_store(geometry: StoreGeometry) -> SetAssociativeCache:
    rng = HardwareRng(derive_seed(geometry.seed, "ras", "repl"))
    return SetAssociativeCache(
        geometry.cache_bytes, geometry.associativity, policy=RandomPolicy(rng)
    )


def _ras_victim_cache(store, window, rng, region, ctx) -> RandomAndSafeFill:
    return RandomAndSafeFill(store, region.lines, rng, ctx)


# -- timing controller factories ---------------------------------------------

ControllerResult = Tuple[Hierarchy, Optional[RandomFillOS]]


def _baseline_controller(config, seed, protected) -> ControllerResult:
    return build_hierarchy(policy=DemandFetchPolicy(), **_common(config)), None


def _random_fill_controller(config, seed, protected) -> ControllerResult:
    engine = RandomFillEngine(HardwareRng(derive_seed(seed, "random_fill", "rng")))
    hierarchy = build_hierarchy(policy=RandomFillPolicy(engine), **_common(config))
    return hierarchy, RandomFillOS(engine)


def _newcache_controller(config, seed, protected) -> ControllerResult:
    tag_store = Newcache(
        config.l1d_size,
        config.line_size,
        extra_index_bits=config.newcache_extra_index_bits,
        seed=derive_seed(seed, "newcache", "newcache"),
    )
    hierarchy = build_hierarchy(
        l1_tag_store=tag_store, policy=DemandFetchPolicy(), **_common(config)
    )
    return hierarchy, None


def _random_fill_newcache_controller(config, seed, protected) -> ControllerResult:
    name = "random_fill_newcache"
    engine = RandomFillEngine(HardwareRng(derive_seed(seed, name, "rng")))
    tag_store = Newcache(
        config.l1d_size,
        config.line_size,
        extra_index_bits=config.newcache_extra_index_bits,
        seed=derive_seed(seed, name, "newcache"),
    )
    hierarchy = build_hierarchy(
        l1_tag_store=tag_store, policy=RandomFillPolicy(engine), **_common(config)
    )
    return hierarchy, RandomFillOS(engine)


def _plcache_controller(config, seed, protected) -> ControllerResult:
    tag_store = PLCache(config.l1d_size, config.l1d_assoc, config.line_size)
    hierarchy = build_hierarchy(
        l1_tag_store=tag_store, policy=DemandFetchPolicy(), **_common(config)
    )
    return hierarchy, None


def _disable_cache_controller(config, seed, protected) -> ControllerResult:
    hierarchy = build_hierarchy(
        policy=DisableCachePolicy(protected), **_common(config)
    )
    return hierarchy, None


def _tagged_prefetch_controller(config, seed, protected) -> ControllerResult:
    policy = TaggedPrefetchPolicy()
    hierarchy = build_hierarchy(policy=policy, **_common(config))
    policy.attach(hierarchy.l1)
    return hierarchy, None


def _skewed_controller(config, seed, protected) -> ControllerResult:
    tag_store = SkewedRandomCache(
        config.l1d_size,
        config.l1d_assoc,
        config.line_size,
        seed=derive_seed(seed, "skewed_random", "store"),
    )
    hierarchy = build_hierarchy(
        l1_tag_store=tag_store, policy=DemandFetchPolicy(), **_common(config)
    )
    return hierarchy, None


def _chameleon_controller(config, seed, protected) -> ControllerResult:
    tag_store = ChameleonCache(
        config.l1d_size,
        config.l1d_assoc,
        config.line_size,
        seed=derive_seed(seed, "chameleon", "store"),
    )
    hierarchy = build_hierarchy(
        l1_tag_store=tag_store, policy=DemandFetchPolicy(), **_common(config)
    )
    return hierarchy, None


def _ras_controller(config, seed, protected) -> ControllerResult:
    store_rng = HardwareRng(derive_seed(seed, "random_and_safe", "repl"))
    tag_store = SetAssociativeCache(
        config.l1d_size,
        config.l1d_assoc,
        config.line_size,
        policy=RandomPolicy(store_rng),
    )
    policy = RandomAndSafePolicy(
        protected, HardwareRng(derive_seed(seed, "random_and_safe", "rng"))
    )
    hierarchy = build_hierarchy(
        l1_tag_store=tag_store, policy=policy, **_common(config)
    )
    return hierarchy, None


# -- registrations (canonical order: legacy names first) ---------------------

register(
    SchemeSpec(
        name="baseline",
        summary="demand-fetch set-associative L1 (Table IV)",
        controller_factory=_baseline_controller,
        lane_eligible=True,
    )
)
register(
    SchemeSpec(
        name="demand_fetch",
        summary="conventional SA cache, demand fetch (functional face of baseline)",
        store_factory=_sa_store,
    )
)
register(
    SchemeSpec(
        name="random_fill",
        summary="the paper's random fill window on an SA cache",
        fill_strategy=RANDOM_FILL,
        store_factory=_sa_store,
        controller_factory=_random_fill_controller,
        lane_eligible=True,
        pow2_window_only=True,
    )
)
register(
    SchemeSpec(
        name="newcache",
        summary="Newcache mapping randomization, demand fetch",
        store_factory=_newcache_store,
        controller_factory=_newcache_controller,
    )
)
register(
    SchemeSpec(
        name="random_fill_newcache",
        summary="random fill built on Newcache",
        fill_strategy=RANDOM_FILL,
        store_factory=_newcache_store,
        controller_factory=_random_fill_newcache_controller,
    )
)
register(
    SchemeSpec(
        name="rpcache",
        summary="RPcache permutation randomization, demand fetch",
        store_factory=_rpcache_store,
    )
)
register(
    SchemeSpec(
        name="plcache_preload",
        summary="PLcache with the protected region preloaded and locked",
        store_factory=_plcache_store,
        controller_factory=_plcache_controller,
        preload=True,
    )
)
register(
    SchemeSpec(
        name="disable_cache",
        summary="L1 bypass for security-critical accesses",
        controller_factory=_disable_cache_controller,
        needs_protected=True,
    )
)
register(
    SchemeSpec(
        name="tagged_prefetch",
        summary="demand fetch + tagged next-line prefetcher",
        controller_factory=_tagged_prefetch_controller,
    )
)
register(
    SchemeSpec(
        name="skewed_random",
        summary="CEASER/ScatterCache-style keyed skewed indexing with epoch rekeying",
        store_factory=_skewed_store,
        controller_factory=_skewed_controller,
    )
)
register(
    SchemeSpec(
        name="chameleon",
        summary="Chameleon Cache: random replacement + FA victim cache (arXiv 2209.14673)",
        store_factory=_chameleon_store,
        controller_factory=_chameleon_controller,
    )
)
register(
    SchemeSpec(
        name="random_and_safe",
        summary="Random-and-Safe: no demand fill + in-region decoy fills (arXiv 2309.16172)",
        fill_strategy=NOFILL_RANDOM,
        store_factory=_ras_store,
        victim_cache_factory=_ras_victim_cache,
        controller_factory=_ras_controller,
        needs_protected=True,
    )
)