"""Named cache schemes: everything the paper's figures compare.

A *scheme* is a fully wired memory hierarchy plus the control knobs the
experiment needs (the random-fill OS layer, the preload routine, the
protected regions).  :func:`build_scheme` is the single entry point the
experiment runners and benches use.

Which schemes exist and how their hierarchies are wired comes from the
scheme-plugin registry (:mod:`repro.schemes`): ``SCHEME_NAMES`` is
computed from the registered specs (every spec with a
``controller_factory``), and registering a new
:class:`~repro.schemes.SchemeSpec` makes it buildable here — and hence
sweepable through every figure — with no further code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.controller import L1Controller
from repro.cache.hierarchy import Hierarchy
from repro.cache.context import AccessContext
from repro.core.syscalls import RandomFillOS
from repro.core.window import RandomFillWindow, validate_window
from repro.experiments.config import SimulatorConfig
from repro.schemes import get_scheme, timing_scheme_names
from repro.secure.plcache import preload_and_lock
from repro.secure.region import RegionSet

#: every registered scheme with a timing controller (registry order)
SCHEME_NAMES = timing_scheme_names()


@dataclass
class Scheme:
    """A built scheme, ready to run traces through."""

    name: str
    hierarchy: Hierarchy
    config: SimulatorConfig
    os: Optional[RandomFillOS] = None
    protected: Optional[RegionSet] = None
    #: run the preload-and-lock setup routine in :meth:`prepare`
    preload: bool = False

    @property
    def l1(self) -> L1Controller:
        return self.hierarchy.l1

    def set_window(self, window: RandomFillWindow, thread_id: int = 0) -> None:
        """Program the thread's range registers (Table II system call)."""
        if self.os is None:
            raise ValueError(f"scheme {self.name!r} has no random fill engine")
        validate_window(
            window,
            capacity_lines=getattr(self.l1.tag_store, "capacity_lines", None),
            where=f"scheme {self.name!r}")
        self.os.set_rr(window.a, window.b, thread_id)

    def prepare(self, now: int = 0,
                ctx: AccessContext = AccessContext()) -> int:
        """Run the scheme's setup routine (PLcache preload); returns the
        cycle at which setup finished (charged to the victim)."""
        if self.preload:
            if self.protected is None:
                raise ValueError(f"{self.name} needs protected regions")
            return preload_and_lock(self.l1, self.protected, ctx, now)
        return now


def build_scheme(name: str, config: SimulatorConfig,
                 seed: int = 0,
                 protected: Optional[RegionSet] = None,
                 window: Optional[RandomFillWindow] = None) -> Scheme:
    """Construct a registered timing scheme.

    ``window`` applies to thread 0 of the random fill schemes (other
    threads can be configured afterwards via ``scheme.set_window``).
    ``protected`` is required by schemes flagged ``needs_protected``
    (``plcache_preload`` consumes it in :meth:`Scheme.prepare`).
    Unknown names raise :class:`ValueError` listing the registered
    timing schemes.
    """
    spec = get_scheme(name, timing=True)
    if spec.needs_protected and protected is None:
        raise ValueError(f"{name} needs protected regions")

    hierarchy, os_layer = spec.controller_factory(config, seed, protected)

    scheme = Scheme(name=name, hierarchy=hierarchy, config=config,
                    os=os_layer, protected=protected, preload=spec.preload)
    if window is not None:
        if os_layer is not None:
            scheme.set_window(window)
        elif not window.disabled:
            raise ValueError(
                f"scheme {name!r} cannot honour a random fill window")
    return scheme
