"""End-to-end tests of the sweep service over real HTTP sockets.

A module-scoped server (ephemeral port, isolated result store and
spool) backs the happy-path tests; the rate-limit and queue-full tests
boot their own dedicated servers so their knobs don't perturb the
shared one.
"""

import http.client
import json

import pytest

from repro.leakage.sweep import LeakageCellSpec
from repro.runner.pool import run_cells
from repro.runner.result_cache import ResultCache
from repro.service.app import serve_in_thread
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.codec import CODEC_VERSION, encode_result, encode_sweep
from repro.service.store import DiskResultStore
from repro.service.sweeps import ServiceConfig, SweepService


def eq7_grid(n=4, trials=40):
    return [
        LeakageCellSpec(channel="eq7", scheme="random_fill", window=(1, 0),
                        trials=trials, seed=seed, curve_points=(1, 2),
                        curve_repeats=5)
        for seed in range(n)
    ]


def slow_grid(seed=0):
    # ~1.5s of eq7 sampling — long enough to catch the sweep running.
    return [LeakageCellSpec(channel="eq7", scheme="random_fill",
                            window=(1, 0), trials=1_500_000, seed=seed,
                            curve_points=(1,), curve_repeats=1)]


def boot(tmp, **overrides):
    settings = dict(
        host="127.0.0.1", port=0, jobs=1, queue_depth=4,
        max_cells_per_request=32, rate=1000.0, burst=1000.0,
        spool_dir=str(tmp / "spool"),
    )
    settings.update(overrides)
    config = ServiceConfig(**settings)
    store = DiskResultStore(ResultCache(disk_dir=str(tmp / "results")))
    service = SweepService(config, store=store)
    return serve_in_thread(config, service=service)


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    handle = boot(tmp_path_factory.mktemp("service"))
    yield handle
    handle.stop()


@pytest.fixture
def client(server):
    return ServiceClient(server.host, server.port, client_id="pytest")


class TestHappyPath:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["ok"] is True
        assert health["uptime_s"] >= 0

    def test_submit_wait_results_bit_identical(self, client):
        specs = eq7_grid(n=4)
        accepted = client.submit(specs)
        assert accepted["cells"] == len(specs)
        assert accepted["links"]["status"] == f"/sweeps/{accepted['id']}"

        status = client.wait(accepted["id"], timeout=120)
        assert status["state"] == "done"
        assert status["last_run_stats"]["cells"] == len(specs)
        assert status["queue_wait_s"] >= 0

        direct = run_cells(
            specs, jobs=1, progress=False,
            result_cache=ResultCache(disk_dir=None,
                                     use_default_disk_dir=False),
        )
        over_http = client.results(accepted["id"], page_size=3)
        assert over_http == [encode_result(result) for result in direct]

    def test_pagination(self, client):
        specs = eq7_grid(n=5)
        sweep_id = client.submit(specs)["id"]
        client.wait(sweep_id, timeout=120)
        page = client.results_page(sweep_id, offset=0, limit=2)
        assert page["total"] == 5
        assert page["count"] == 2
        assert page["next_offset"] == 2
        last = client.results_page(sweep_id, offset=4, limit=2)
        assert last["count"] == 1
        assert last["next_offset"] is None
        stitched = client.results(sweep_id, page_size=2)
        assert len(stitched) == 5

    def test_event_stream(self, client):
        specs = eq7_grid(n=2)
        sweep_id = client.submit(specs)["id"]
        events = [event["event"] for event in client.stream_events(sweep_id)]
        assert "sweep_submitted" in events
        assert "sweep_start" in events
        assert "run_finish" in events
        assert events[-1] == "sweep_finish"
        client.wait(sweep_id, timeout=120)

    def test_sweep_start_carries_queue_wait(self, client):
        sweep_id = client.submit(eq7_grid(n=1))["id"]
        starts = [event for event in client.stream_events(sweep_id)
                  if event["event"] == "sweep_start"]
        assert starts and starts[0]["queue_wait_s"] >= 0

    def test_warm_resubmission_zero_pool_work(self, client):
        # The acceptance demo: an identical grid resubmitted later is
        # served entirely from the shared result store.
        specs = eq7_grid(n=4, trials=60)
        cold_id = client.submit(specs)["id"]
        cold = client.wait(cold_id, timeout=120)
        assert cold["last_run_stats"]["result_cache_misses"] == len(specs)

        warm_id = client.submit(specs)["id"]
        warm = client.wait(warm_id, timeout=120)
        stats = warm["last_run_stats"]
        assert stats["result_cache_hits"] == len(specs)
        assert stats["result_cache_misses"] == 0
        warm_events = [event["event"]
                       for event in client.stream_events(warm_id)]
        assert "cell_start" not in warm_events
        assert "batch_start" not in warm_events

        metrics = client.metrics()
        assert metrics["result_store"]["hits"] >= len(specs)
        assert metrics["result_store"]["hit_rate"] > 0

        assert client.results(warm_id) == client.results(cold_id)

    def test_metrics_shape(self, client):
        client.wait(client.submit(eq7_grid(n=1))["id"], timeout=120)
        metrics = client.metrics()
        assert metrics["queue"]["capacity"] == 4
        assert metrics["sweeps"]["submitted"] >= 1
        assert metrics["sweeps"]["completed"] >= 1
        assert metrics["sweep_latency"]["count"] >= 1
        assert metrics["sweep_latency"]["p50_s"] <= metrics["sweep_latency"]["p99_s"]
        assert metrics["result_store"]["backend"] == "disk"
        assert metrics["limits"]["max_cells_per_request"] == 32
        assert "pytest" in metrics["clients"]
        assert metrics["http_latency"]["count"] >= 1


class TestLifecycleErrors:
    def test_results_before_done_is_409(self, client):
        sweep_id = client.submit(slow_grid(seed=100))["id"]
        with pytest.raises(ServiceClientError) as excinfo:
            client.results_page(sweep_id)
        assert excinfo.value.status == 409
        assert excinfo.value.code == "not_finished"
        client.wait(sweep_id, timeout=120)

    def test_cancel_running_sweep(self, client):
        sweep_id = client.submit(slow_grid(seed=101))["id"]
        cancelled = client.cancel(sweep_id)
        assert cancelled["state"] in {"cancelling", "cancelled"}
        final = client.wait(sweep_id, timeout=120)
        assert final["state"] == "cancelled"
        with pytest.raises(ServiceClientError) as excinfo:
            client.results_page(sweep_id)
        assert excinfo.value.status == 409

    def test_bad_page_params(self, client):
        sweep_id = client.submit(eq7_grid(n=1))["id"]
        client.wait(sweep_id, timeout=120)
        with pytest.raises(ServiceClientError) as excinfo:
            client.results_page(sweep_id, offset=-1)
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad_page"


class TestRequestErrors:
    def test_invalid_spec_is_400(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit_payload(
                {"version": CODEC_VERSION,
                 "cells": [{"family": "cell", "kind": "nonsense"}]})
        assert excinfo.value.status == 400
        assert excinfo.value.code == "invalid_spec"

    def test_unknown_codec_version_is_400(self, client):
        payload = encode_sweep(eq7_grid(n=1))
        payload["version"] = 999
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit_payload(payload)
        assert excinfo.value.status == 400
        assert "999" in excinfo.value.payload["error"]["message"]

    def test_too_many_cells_is_400(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit(eq7_grid(n=33))
        assert excinfo.value.status == 400
        assert excinfo.value.code == "too_many_cells"

    def test_malformed_json_is_400(self, server):
        connection = http.client.HTTPConnection(server.host, server.port,
                                                timeout=30)
        connection.request("POST", "/sweeps", body=b"{nope",
                           headers={"content-type": "application/json",
                                    "x-repro-client": "pytest"})
        response = connection.getresponse()
        payload = json.loads(response.read())
        connection.close()
        assert response.status == 400
        assert payload["error"]["code"] == "bad_json"

    def test_unknown_sweep_is_404(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.sweep("feedfacecafe")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "unknown_sweep"

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "not_found"

    def test_wrong_method_is_405(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client._request("DELETE", "/healthz")
        assert excinfo.value.status == 405
        assert excinfo.value.code == "method_not_allowed"


class TestBackpressure:
    def test_rate_limited_is_429_with_retry_after(self, tmp_path):
        handle = boot(tmp_path, rate=0.5, burst=2.0)
        try:
            # retries=0: the point is to observe the 429, not ride
            # through it on the default retry policy.
            client = ServiceClient(handle.host, handle.port,
                                   client_id="bursty", retries=0)
            ids = [client.submit(eq7_grid(n=1))["id"] for _ in range(2)]
            with pytest.raises(ServiceClientError) as excinfo:
                client.submit(eq7_grid(n=1))
            assert excinfo.value.status == 429
            assert excinfo.value.code == "rate_limited"
            assert excinfo.value.payload["error"]["retry_after_s"] > 0
            # Another client still has its own bucket.
            other = ServiceClient(handle.host, handle.port,
                                  client_id="polite")
            ids.append(other.submit(eq7_grid(n=1))["id"])
            for sweep_id in ids:
                client.wait(sweep_id, timeout=120)
            rejected = client.metrics()["sweeps"]["rejected"]
            assert rejected >= 1
        finally:
            handle.stop()

    def test_queue_full_is_429(self, tmp_path):
        handle = boot(tmp_path, queue_depth=1)
        try:
            client = ServiceClient(handle.host, handle.port,
                                   client_id="flood", retries=0)
            running = client.submit(slow_grid(seed=200))["id"]
            # Wait for it to leave the queue and occupy the executor.
            deadline = 120
            import time
            start = time.monotonic()
            while (client.sweep(running)["state"] == "queued"
                   and time.monotonic() - start < deadline):
                time.sleep(0.01)
            queued = client.submit(slow_grid(seed=201))["id"]
            with pytest.raises(ServiceClientError) as excinfo:
                client.submit(slow_grid(seed=202))
            assert excinfo.value.status == 429
            assert excinfo.value.code == "queue_full"
            client.cancel(queued)
            client.wait(running, timeout=120)
        finally:
            handle.stop()
