"""Figure 7: impact of the random fill window size on AES performance.

Normalized IPC (to window size 1 = demand fetch) for bidirectional
windows 1..32, with the random fill strategy on the SA cache (8 KB DM,
32 KB 4-way) and on Newcache (8 KB, 32 KB).

Paper's shape: on SA the performance is insensitive to window size; on
Newcache it decays slightly as the window grows (max 9% at size 32 on
the 8 KB cache) because random replacement evicts useful lines.
"""

from _reporting import save_report

from repro.experiments.config import scaled
from repro.experiments.perf_crypto import figure7
from repro.util.tables import format_table


def run():
    return figure7(message_kb=scaled(4, minimum=1), seed=5)


def test_fig7_window_size(benchmark):
    series = benchmark.pedantic(run, rounds=1, iterations=1)

    for label, points in series.items():
        values = dict(points)
        assert values[1] == 1.0  # normalization reference
        # No configuration collapses: worst case stays above 75%.
        assert min(values.values()) > 0.75
    # The larger caches tolerate the window better than the 8 KB ones.
    assert dict(series["32KB 4-way SA"])[32] >= \
        dict(series["8KB DM"])[32] - 0.05

    rows = []
    for label, points in series.items():
        for size, norm in points:
            rows.append((label, size, f"{norm:.3f}"))
    save_report("fig7_window_size", format_table(
        ["configuration", "window size", "normalized IPC"], rows,
        title="Figure 7: AES normalized IPC vs bidirectional window size"))
