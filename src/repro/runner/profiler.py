"""``--profile`` support: run one sweep cell under cProfile.

Future performance work should be measured, not guessed, so every sweep
CLI can profile a single representative cell: ``python -m repro sweep
fig10 --profile`` (and ``leakage --profile``) runs the first cell of
the sweep grid under :mod:`cProfile` and prints the top cumulative
hotspots instead of running the sweep.

The cell executes inline (no worker pool, result cache bypassed) so the
profile shows simulation cost, not IPC overhead or a cache hit.  When
the sweep would run batched, the CLI profiles the first *batch* instead
(:func:`profile_batch`) so the report reflects the shared-decode flat
kernel the real run uses.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Optional

from repro.runner.cells import run_cell

#: rows of the flat profile shown by default
DEFAULT_TOP = 20


def profile_cell(spec, top: int = DEFAULT_TOP, stream: Optional[io.TextIOBase] = None):
    """Run one cell under cProfile; returns ``(result, report_text)``.

    ``report_text`` is the top-``top`` cumulative-time rows of the flat
    profile (also written to ``stream`` when given).
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = run_cell(spec)
    finally:
        profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    report = buffer.getvalue()
    if stream is not None:
        stream.write(report)
    return result, report


def profile_batch(batch, top: int = DEFAULT_TOP, stream: Optional[io.TextIOBase] = None):
    """Run one :class:`~repro.runner.batch.CellBatch` under cProfile.

    Returns ``(results, report_text)`` with one result per member cell;
    the profile covers the shared group-state build (trace decode, warm
    replay) plus every cell's kernel run — lane kernel calls included —
    i.e. exactly what a worker does for one batched work item.  For a
    lane-backed batch the report is prefixed with the lane summary
    (width, vectorized vs scalar-fallback cells, kernel backend).
    """
    from repro.cpu import lanes
    from repro.runner.batch import run_batch

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        results, _metas, batch_meta = run_batch(batch)
    finally:
        profiler.disable()
    buffer = io.StringIO()
    if batch_meta.get("vectorized_cells"):
        backend = lanes.LAST_STATS.get("backend", "unknown")
        buffer.write(
            f"lane kernel: width {batch_meta['lane_width']}, "
            f"{batch_meta['vectorized_cells']} vectorized / "
            f"{batch_meta['scalar_fallback_cells']} scalar-fallback "
            f"cells, backend {backend}\n"
        )
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    report = buffer.getvalue()
    if stream is not None:
        stream.write(report)
    return results, report
