"""The random fill engine of Figure 3(b)/Figure 4.

On every demand miss to line ``i`` the engine produces one random fill
request with address ``i + offset`` where ``offset`` is uniform over the
configured window ``[-a, b]``.  For power-of-two windows the offset is
computed exactly as the Figure 4 datapath does: mask the free-running RNG
output with ``2**n - 1``, add the (sign-extended) lower bound from RR1,
then add the demand miss line address — one adder on the critical path.

The engine holds one pair of range registers per hardware thread: the
registers are "part of the context of the processor" (Section IV-B.3),
and an SMT core has a per-thread architectural context.
"""

from __future__ import annotations

from typing import Dict

from repro.core.window import DISABLED_WINDOW, RandomFillWindow, \
    encode_range_registers
from repro.util.rng import HardwareRng

#: Pre-derived draw parameters of the disabled window: ``a`` = 0,
#: power-of-two mask 0, size 1 (see ``RandomFillEngine.set_window``).
_DISABLED_PARAMS = (0, 0, 1)


class RandomFillEngine:
    """Per-thread window registers + bounded random address generation."""

    def __init__(self, rng: HardwareRng):
        self._rng = rng
        self._windows: Dict[int, RandomFillWindow] = {}
        # thread_id -> (a, mask-or-None, size), derived once per
        # set_window so the per-miss path skips the window properties.
        self._params: Dict[int, "tuple"] = {}

    # -- register file -----------------------------------------------------

    def window_for(self, thread_id: int) -> RandomFillWindow:
        """Current window of a hardware thread (default: disabled)."""
        return self._windows.get(thread_id, DISABLED_WINDOW)

    def set_window(self, thread_id: int, window: RandomFillWindow) -> None:
        self._windows[thread_id] = window
        mask = (window.size - 1) if window.is_power_of_two else None
        self._params[thread_id] = (window.a, mask, window.size)

    def range_registers(self, thread_id: int) -> "tuple[int, int]":
        """The raw (RR1, RR2) encoding, for context save (PCB)."""
        return encode_range_registers(self.window_for(thread_id))

    # -- address generation --------------------------------------------------

    def random_offset(self, thread_id: int) -> int:
        """Draw a bounded random offset in ``[-a, b]``.

        Power-of-two windows use the Figure 4 mask-and-add path; other
        windows (the plain ``set_RR`` configuration) fall back to an
        exact uniform draw, modelling a modulo-reduction unit.
        """
        a, mask, size = self._params.get(thread_id, _DISABLED_PARAMS)
        if mask is not None:
            return self._rng.draw_masked(mask) - a
        return self._rng.draw_below(size) - a

    def generate(self, demand_line: int, thread_id: int) -> int:
        """Random fill line address for a demand miss to ``demand_line``."""
        return demand_line + self.random_offset(thread_id)
