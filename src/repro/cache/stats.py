"""Counters shared by every cache level."""

from __future__ import annotations


class CacheStats:
    """Event counters for one cache level.

    ``demand_misses`` follows the paper's MPKI definition: misses that
    cause a fetch request to the next level, *excluding* outstanding
    misses to the same cache line (those are counted in ``mshr_merges``).

    A ``__slots__`` class rather than a dataclass: several counters are
    incremented on every simulated access, and slot stores are the
    cheapest attribute writes Python offers.
    """

    _FIELDS = ("accesses", "hits", "demand_misses", "mshr_merges",
               "fills", "evictions", "random_fill_issued",
               "random_fill_dropped", "next_level_requests")

    __slots__ = _FIELDS

    def __init__(self, accesses: int = 0, hits: int = 0,
                 demand_misses: int = 0, mshr_merges: int = 0,
                 fills: int = 0, evictions: int = 0,
                 random_fill_issued: int = 0, random_fill_dropped: int = 0,
                 next_level_requests: int = 0):
        self.accesses = accesses
        self.hits = hits
        self.demand_misses = demand_misses
        self.mshr_merges = mshr_merges
        self.fills = fills
        self.evictions = evictions
        self.random_fill_issued = random_fill_issued
        self.random_fill_dropped = random_fill_dropped
        self.next_level_requests = next_level_requests

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CacheStats):
            return NotImplemented
        return all(getattr(self, name) == getattr(other, name)
                   for name in CacheStats._FIELDS)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(f"{name}={getattr(self, name)}"
                           for name in CacheStats._FIELDS)
        return f"CacheStats({fields})"

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def mpki(self, instructions: int) -> float:
        """Misses per kilo-instruction, per the paper's definition."""
        if instructions <= 0:
            raise ValueError(f"instructions must be positive, got {instructions}")
        return 1000.0 * self.demand_misses / instructions

    def reset(self) -> None:
        for name in CacheStats._FIELDS:
            setattr(self, name, 0)
