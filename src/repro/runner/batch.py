"""Batch planning and execution for the supervised runner.

``run_cells`` plans its *pending* (cache-missed) cells into batches:
cells whose specs report the same ``batch_group_key()`` share per-group
work — for general-perf cells one trace decode and one L2 warm replay
(:mod:`repro.cpu.batch`), for leakage cells the dispatch overhead — and
a batch is the unit submitted to a worker.  Supervision semantics are
preserved by construction: a batch that fails, hangs, or dies with its
pool is *split* and its member cells requeued individually, where the
ordinary per-cell retry/timeout machinery applies; each finished cell
still lands in the result cache one by one.

Batching is on by default and controlled by ``--batch/--no-batch`` or
``REPRO_BATCH`` (:func:`resolve_batch`); checked mode (``REPRO_CHECK``)
disables planning entirely so every cell takes the per-cell oracle
path.  Results are bit-identical with batching on or off, for any jobs
count, because the batched kernel is exact and chunk boundaries carry
no state between cells.
"""

from __future__ import annotations

import gc
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.runner.cells import run_cell
from repro.runner.telemetry import worker_meta

#: smallest group worth batching — a singleton is just a cell
MIN_BATCH = 2

#: largest batch submitted as one work item; bounds the blast radius of
#: a split (one bad cell re-runs at most this many siblings' dispatch)
#: and keeps per-batch timeouts meaningful
MAX_BATCH = 32

#: ``REPRO_BATCH`` values that disable / enable batching
_FALSE_VALUES = frozenset({"0", "off", "no", "false"})
_TRUE_VALUES = frozenset({"1", "on", "yes", "true"})


def resolve_batch(batch: Optional[bool] = None) -> bool:
    """Batching switch: argument > ``REPRO_BATCH`` > on."""
    if batch is not None:
        return bool(batch)
    env = os.environ.get("REPRO_BATCH", "").strip().lower()
    if not env:
        return True
    if env in _FALSE_VALUES:
        return False
    if env in _TRUE_VALUES:
        return True
    raise ValueError(f"REPRO_BATCH must be a boolean flag (1/0/on/off/yes/no), got {env!r}")


class CellBatch:
    """A picklable group of compatible cell specs, dispatched as one.

    ``kind`` is the first element of the members' shared group key:
    ``"general"`` batches share trace decode + warm L2 state through
    the flat kernel; any other kind only amortizes dispatch.
    """

    __slots__ = ("batch_id", "kind", "cells")

    def __init__(self, batch_id: str, kind: str, cells: Tuple):
        self.batch_id = batch_id
        self.kind = kind
        self.cells = cells

    def __len__(self) -> int:
        return len(self.cells)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CellBatch({self.batch_id!r}, kind={self.kind!r}, cells={len(self.cells)})"


class BatchItem:
    """One batched work-queue entry: the member indices + their batch."""

    __slots__ = ("indices", "batch")

    def __init__(self, indices: Tuple[int, ...], batch: CellBatch):
        self.indices = indices
        self.batch = batch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BatchItem({self.batch.batch_id!r}, indices={self.indices})"


def plan_batches(specs: Sequence, pending: Sequence[int], jobs: int = 1) -> List:
    """Group pending cell indices into a work list.

    Returns a list of plain ``int`` indices (unbatched cells) and
    :class:`BatchItem` entries, ordered by each item's first index so
    sequential execution keeps sweep order.  Only specs exposing
    ``batch_group_key()`` (returning a hashable key, or ``None`` to
    opt out) are grouped; group keys are compared between *pending*
    cells only — fully cached cells were short-circuited before
    planning and never reach here.

    With ``jobs`` workers the batch size is additionally capped at
    ``ceil(pending / jobs)`` so a small grid still spreads across the
    pool; at high jobs counts this degrades gracefully toward per-cell
    dispatch without affecting results.
    """
    groups: "Dict[object, List[int]]" = {}
    singles: List[int] = []
    for index in pending:
        key_of = getattr(specs[index], "batch_group_key", None)
        key = key_of() if key_of is not None else None
        if key is None:
            singles.append(index)
            continue
        bucket = groups.get(key)
        if bucket is None:
            groups[key] = [index]
        else:
            bucket.append(index)

    max_batch = MAX_BATCH
    if jobs > 1:
        max_batch = max(1, min(max_batch, -(-len(pending) // jobs)))

    items: List = list(singles)
    sequence = 0
    for key, indices in groups.items():
        for start in range(0, len(indices), max_batch):
            chunk = indices[start : start + max_batch]
            if len(chunk) < MIN_BATCH:
                items.extend(chunk)
                continue
            kind = str(key[0]) if isinstance(key, tuple) and key else str(key)
            batch = CellBatch(
                batch_id=f"b{sequence}", kind=kind, cells=tuple(specs[i] for i in chunk)
            )
            items.append(BatchItem(tuple(chunk), batch))
            sequence += 1
    items.sort(key=_first_index)
    return items


def _first_index(item) -> int:
    return item.indices[0] if type(item) is BatchItem else item


def run_batch(batch: CellBatch):
    """Worker entry point: run every cell of a batch in-process.

    Returns ``(results, metas, batch_meta)`` with one result + meta per
    cell in batch order.  ``"general"`` batches build the shared group
    state once and run each cell through the flat kernel; cells the
    kernel does not cover — and every cell when ``REPRO_CHECK`` is
    active, as a belt-and-braces guard (the parent already skips
    planning under checked mode) — fall back to :func:`run_cell`
    individually inside the batch.  Any exception propagates whole:
    the supervisor splits the batch and retries the cells one by one.
    """
    from repro.check import check_rate_from_env, check_totals

    was_enabled = gc.isenabled()
    gc.disable()
    try:
        checked = check_rate_from_env() is not None
        shared = None
        if batch.kind == "general" and not checked:
            from repro.cpu.batch import group_state_for
            shared = group_state_for(batch.cells[0])
        results = []
        metas = []
        kernel_cells = 0
        checks_before = check_totals()["checks_run"]
        for spec in batch.cells:
            started = time.perf_counter()
            result = None
            if shared is not None:
                from repro.cpu.batch import run_batched_cell
                result = run_batched_cell(spec, shared)
            amortized = result is not None
            if result is None:
                result = run_cell(spec)
            kernel_cells += amortized
            meta = worker_meta(time.perf_counter() - started)
            meta["batch_amortized_decode"] = amortized
            results.append(result)
            metas.append(meta)
        batch_meta = {"decode_reuses": max(0, kernel_cells - 1)}
        checks_run = check_totals()["checks_run"] - checks_before
        if checks_run:
            batch_meta["checks_run"] = checks_run
        return results, metas, batch_meta
    finally:
        if was_enabled:
            gc.enable()
