"""Tests for the JSONL telemetry log and the live progress line."""

import io
import json
import threading

from repro.runner.pool import last_run_stats, run_cells
from repro.runner.result_cache import ResultCache
from repro.runner.telemetry import (
    Telemetry,
    read_events,
    read_events_incremental,
    rss_kb,
)


class TokenSpec:
    def __init__(self, value):
        self.value = value

    def __repr__(self):
        return f"TokenSpec({self.value})"

    def result_cache_token(self):
        return "telemetry-test"

    def run(self):
        return self.value + 100


class TestTelemetrySink:
    def test_no_path_is_a_noop(self, tmp_path):
        telemetry = Telemetry(path=None, progress=False)
        telemetry.emit("run_start", cells=1)
        telemetry.close()
        assert telemetry.events_written == 0

    def test_events_are_one_json_object_per_line(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with Telemetry(path=path, progress=False) as telemetry:
            telemetry.emit("run_start", cells=2)
            telemetry.emit("cell_finish", index=0, wall_s=0.5)
        with open(path, encoding="utf-8") as fh:
            lines = [json.loads(line) for line in fh]
        assert [line["event"] for line in lines] == ["run_start",
                                                     "cell_finish"]
        assert all("t" in line for line in lines)

    def test_appends_across_instances(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with Telemetry(path=path, progress=False) as telemetry:
            telemetry.emit("run_start")
        with Telemetry(path=path, progress=False) as telemetry:
            telemetry.emit("run_start")
        assert len(read_events(path)) == 2

    def test_unserializable_fields_fall_back_to_repr(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with Telemetry(path=path, progress=False) as telemetry:
            telemetry.emit("cell_retry", error=ValueError("boom"))
        events = read_events(path)
        assert "boom" in events[0]["error"]

    def test_read_events_skips_corrupt_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"event": "run_start"}\nnot json\n'
                        '{"event": "run_finish"}\n')
        events = read_events(str(path))
        assert [e["event"] for e in events] == ["run_start", "run_finish"]

    def test_read_events_missing_file(self, tmp_path):
        assert read_events(str(tmp_path / "absent.jsonl")) == []

    def test_rss_is_positive_on_posix(self):
        value = rss_kb()
        assert value is None or value > 0


class TestIncrementalReader:
    """``read_events_incremental`` is what the service's streaming
    endpoint polls while the writer is still appending — it must never
    consume a partially-written trailing line, and a follow-up call
    from the returned offset must pick up exactly where it left off."""

    def test_empty_and_missing_files(self, tmp_path):
        missing = str(tmp_path / "absent.jsonl")
        assert read_events_incremental(missing) == ([], 0)
        empty = tmp_path / "empty.jsonl"
        empty.write_bytes(b"")
        assert read_events_incremental(str(empty)) == ([], 0)

    def test_partial_trailing_line_is_left_for_next_call(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_bytes(b'{"event": "a"}\n{"event": "b"')
        events, offset = read_events_incremental(str(path))
        assert [e["event"] for e in events] == ["a"]
        assert offset == len(b'{"event": "a"}\n')
        # Writer finishes the line; resuming from offset sees only "b".
        with open(path, "ab") as fh:
            fh.write(b"}\n")
        events, offset = read_events_incremental(str(path), offset)
        assert [e["event"] for e in events] == ["b"]
        assert offset == path.stat().st_size

    def test_offset_resume_never_duplicates(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        offset = 0
        seen = []
        with Telemetry(path=path, progress=False) as telemetry:
            for i in range(10):
                telemetry.emit("tick", i=i)
                events, offset = read_events_incremental(path, offset)
                seen.extend(events)
        assert [e["i"] for e in seen] == list(range(10))

    def test_corrupt_lines_are_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_bytes(b'{"event": "a"}\nnot json\n{"event": "b"}\n')
        events, offset = read_events_incremental(str(path))
        assert [e["event"] for e in events] == ["a", "b"]
        assert offset == path.stat().st_size

    def test_concurrent_reader_against_appending_writer(self, tmp_path):
        # Satellite 3: a reader polling the file while the writer is
        # actively appending — including writes deliberately split
        # mid-line — recovers every event exactly once, in order.
        path = str(tmp_path / "live.jsonl")
        total = 400
        done = threading.Event()

        def writer():
            with open(path, "ab") as fh:
                for i in range(total):
                    line = json.dumps({"event": "tick", "i": i}).encode()
                    line += b"\n"
                    # Split every other line into two flushes so the
                    # reader routinely observes a partial tail.
                    if i % 2:
                        cut = len(line) // 2
                        fh.write(line[:cut])
                        fh.flush()
                        fh.write(line[cut:])
                    else:
                        fh.write(line)
                    fh.flush()
            done.set()

        thread = threading.Thread(target=writer)
        thread.start()
        seen = []
        offset = 0
        while True:
            finished = done.is_set()
            events, offset = read_events_incremental(path, offset)
            seen.extend(events)
            if finished and len(seen) >= total:
                break
        thread.join()
        assert [e["i"] for e in seen] == list(range(total))


class TestProgressLine:
    def test_progress_redraws_with_carriage_return(self):
        stream = io.StringIO()
        telemetry = Telemetry(progress=True, stream=stream)
        telemetry.progress(1, 3)
        telemetry.progress(2, 3, "last cell 0.10s")
        telemetry.finish_progress()
        output = stream.getvalue()
        assert "\r[1/3]" in output
        assert "[2/3] last cell 0.10s" in output
        assert output.endswith("\n")

    def test_progress_defaults_off_for_non_tty(self):
        telemetry = Telemetry(stream=io.StringIO())
        assert not telemetry.show_progress

    def test_shorter_redraw_pads_out_leftovers(self):
        stream = io.StringIO()
        telemetry = Telemetry(progress=True, stream=stream)
        telemetry.progress(1, 10, "a very long note indeed")
        telemetry.progress(2, 10)
        last = stream.getvalue().rsplit("\r", 1)[-1]
        assert last.startswith("[2/10]")
        assert len(last.rstrip()) < len(last)   # padding erased the tail


class TestRunCellsTelemetry:
    def test_full_run_event_stream(self, tmp_path):
        cache = ResultCache(disk_dir=str(tmp_path / "results"))
        path = str(tmp_path / "run.jsonl")
        specs = [TokenSpec(1), TokenSpec(2)]
        run_cells(specs, jobs=1, result_cache=cache, telemetry=path)
        events = read_events(path)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_finish"
        assert kinds.count("cell_start") == 2
        finishes = [e for e in events if e["event"] == "cell_finish"]
        assert len(finishes) == 2
        for event in finishes:
            assert event["wall_s"] >= 0
            assert event["worker"] > 0
            assert event["rss_kb"] is None or event["rss_kb"] > 0
        header = events[0]
        assert header["cells"] == 2 and header["pending"] == 2

        # A warm re-run reports every cell as a checkpoint hit.
        run_cells(specs, jobs=1, result_cache=cache, telemetry=path)
        events = read_events(path)
        cached = [e for e in events if e["event"] == "cell_cached"]
        assert len(cached) == 2
        assert events[-1]["result_cache_hits"] == 2

    def test_telemetry_instance_is_not_closed(self, tmp_path):
        cache = ResultCache(disk_dir=None, use_default_disk_dir=False)
        telemetry = Telemetry(path=str(tmp_path / "t.jsonl"), progress=False)
        run_cells([TokenSpec(1)], jobs=1, result_cache=cache,
                  telemetry=telemetry)
        telemetry.emit("after")            # still usable
        telemetry.close()
        assert read_events(telemetry.path)[-1]["event"] == "after"

    def test_stats_report_latency_percentiles(self, tmp_path):
        cache = ResultCache(disk_dir=None, use_default_disk_dir=False)
        run_cells([TokenSpec(i) for i in range(5)], jobs=1,
                  result_cache=cache)
        stats = last_run_stats()
        assert 0 <= stats["latency_p50_s"] <= stats["latency_p95_s"]
        assert stats["result_cache_uncacheable"] == 0
