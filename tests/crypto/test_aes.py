"""Tests for the from-scratch AES-128 (FIPS-197 conformance)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.aes import AES128, expand_decrypt_key, expand_key
from repro.crypto.aes_tables import (
    INV_SBOX,
    SBOX,
    TD0, TD1, TD2, TD3,
    TE0, TE1, TE2, TE3, TE4,
)

FIPS_KEY = bytes(range(16))
FIPS_PT = bytes.fromhex("00112233445566778899aabbccddeeff")
FIPS_CT = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")

# Appendix B of FIPS-197 (a different key/plaintext pair)
APPB_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
APPB_PT = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
APPB_CT = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")


class TestSbox:
    def test_known_values(self):
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_bijection(self):
        assert sorted(SBOX) == list(range(256))

    def test_inverse(self):
        assert all(INV_SBOX[SBOX[x]] == x for x in range(256))


class TestTables:
    def test_te4_replicates_sbox(self):
        assert all(TE4[x] == SBOX[x] * 0x01010101 for x in range(256))

    def test_te_tables_are_rotations(self):
        for x in range(256):
            w = TE0[x]
            assert TE1[x] == ((w >> 8) | (w << 24)) & 0xFFFFFFFF
            assert TE2[x] == ((w >> 16) | (w << 16)) & 0xFFFFFFFF
            assert TE3[x] == ((w >> 24) | (w << 8)) & 0xFFFFFFFF

    def test_td_tables_are_rotations(self):
        for x in (0, 17, 255):
            w = TD0[x]
            assert TD1[x] == ((w >> 8) | (w << 24)) & 0xFFFFFFFF
            assert TD2[x] == ((w >> 16) | (w << 16)) & 0xFFFFFFFF
            assert TD3[x] == ((w >> 24) | (w << 8)) & 0xFFFFFFFF

    def test_table_sizes(self):
        for table in (TE0, TE1, TE2, TE3, TE4, TD0, TD1, TD2, TD3):
            assert len(table) == 256
            assert all(0 <= w < 2**32 for w in table)


class TestKeySchedule:
    def test_fips_appendix_a(self):
        rk = expand_key(APPB_KEY)
        assert rk[4] == 0xA0FAFE17   # w4 of the FIPS-197 example
        assert rk[43] == 0xB6630CA6  # final word

    def test_length(self):
        assert len(expand_key(FIPS_KEY)) == 44
        assert len(expand_decrypt_key(FIPS_KEY)) == 44

    def test_key_length_validation(self):
        with pytest.raises(ValueError):
            expand_key(b"short")


class TestCipher:
    def test_fips_c1_vector(self):
        assert AES128(FIPS_KEY).encrypt_block(FIPS_PT) == FIPS_CT

    def test_fips_appendix_b_vector(self):
        assert AES128(APPB_KEY).encrypt_block(APPB_PT) == APPB_CT

    def test_decrypt_vectors(self):
        assert AES128(FIPS_KEY).decrypt_block(FIPS_CT) == FIPS_PT
        assert AES128(APPB_KEY).decrypt_block(APPB_CT) == APPB_PT

    def test_block_size_validation(self):
        aes = AES128(FIPS_KEY)
        with pytest.raises(ValueError):
            aes.encrypt_block(b"short")
        with pytest.raises(ValueError):
            aes.decrypt_block(b"short")

    @settings(max_examples=30)
    @given(st.binary(min_size=16, max_size=16),
           st.binary(min_size=16, max_size=16))
    def test_roundtrip(self, key, block):
        aes = AES128(key)
        assert aes.decrypt_block(aes.encrypt_block(block)) == block


class TestCbc:
    def test_roundtrip(self):
        aes = AES128(FIPS_KEY)
        data = bytes(range(64))
        iv = bytes(16)
        assert aes.decrypt_cbc(aes.encrypt_cbc(data, iv), iv) == data

    def test_first_block_is_ecb_of_xored_iv(self):
        aes = AES128(FIPS_KEY)
        iv = bytes(range(16, 32))
        pt = bytes(16)
        ct = aes.encrypt_cbc(pt, iv)
        assert ct[:16] == aes.encrypt_block(iv)  # pt=0 so block = iv

    def test_chaining(self):
        aes = AES128(FIPS_KEY)
        ct = aes.encrypt_cbc(bytes(32), bytes(16))
        assert ct[:16] != ct[16:]  # identical blocks chain differently

    def test_validation(self):
        aes = AES128(FIPS_KEY)
        with pytest.raises(ValueError):
            aes.encrypt_cbc(b"not multiple", bytes(16))
        with pytest.raises(ValueError):
            aes.encrypt_cbc(bytes(16), b"shortiv")
        with pytest.raises(ValueError):
            aes.decrypt_cbc(b"not multiple", bytes(16))
