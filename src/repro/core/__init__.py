"""The paper's contribution: the random fill cache architecture.

The random cache fill strategy is packaged as a fill *policy*
(:class:`RandomFillPolicy`) that composes with any tag store via
:class:`repro.cache.L1Controller`, plus the engine, window arithmetic
and OS interface around it.  :func:`build_random_fill_hierarchy` is the
one-call constructor most users want.
"""

from repro.core.engine import RandomFillEngine
from repro.core.policy import RandomFillPolicy
from repro.core.syscalls import ProcessControlBlock, RandomFillOS
from repro.core.window import (
    REGISTER_WIDTH,
    RandomFillWindow,
    decode_range_registers,
    encode_range_registers,
)
from repro.core.factory import build_random_fill_hierarchy

__all__ = [
    "ProcessControlBlock",
    "REGISTER_WIDTH",
    "RandomFillEngine",
    "RandomFillOS",
    "RandomFillPolicy",
    "RandomFillWindow",
    "build_random_fill_hierarchy",
    "decode_range_registers",
    "encode_range_registers",
]
