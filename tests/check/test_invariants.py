"""Unit tests for the invariant sanitizer: each check catches its bug.

Every test drives a *real* hierarchy into a healthy state, corrupts one
structure the way a fast-path bug would, and asserts the matching
catalogue entry fires (and only then).
"""

import copy

import pytest

from repro.cache.context import DEFAULT_CONTEXT
from repro.cache.tagstore import LineState
from repro.check import CheckViolation
from repro.check.invariants import validate_l1, validate_tag_store
from repro.cpu.timing import TimingModel
from repro.cpu.trace import Trace
from repro.experiments.config import BASELINE_CONFIG
from repro.experiments.schemes import build_scheme


def _ran_l1(scheme_name="random_fill", window=(4, 3), n=600, seed=3):
    """An L1 that has simulated a non-trivial trace and settled."""
    scheme = build_scheme(scheme_name, BASELINE_CONFIG, seed=seed)
    if scheme.os is not None and window is not None:
        scheme.os.set_rr(*window)
    records = [(((i * 2654435761) % (1 << 20)) * 64, 1 + i % 3, i % 2 == 0)
               for i in range(n)]
    timing = TimingModel(scheme.l1, issue_width=BASELINE_CONFIG.issue_width,
                         overlap_credit=BASELINE_CONFIG.overlap_credit)
    timing.run(Trace.from_records(records))
    return scheme.l1


def _kind(excinfo) -> str:
    return excinfo.value.kind


class TestTagStore:
    def test_healthy_state_validates(self):
        validate_l1(_ran_l1())

    def test_duplicate_line_in_set(self):
        l1 = _ran_l1()
        cache_set = next(s for s in l1.tag_store._sets if s)
        cache_set.insert(0, copy.copy(cache_set[-1]))
        with pytest.raises(CheckViolation) as excinfo:
            validate_l1(l1)
        assert _kind(excinfo) in ("tag-duplicate", "occupancy")

    def test_over_occupancy(self):
        l1 = _ran_l1()
        store = l1.tag_store
        num_sets = len(store._sets)
        full = next(i for i, s in enumerate(store._sets)
                    if len(s) == store.associativity)
        # One more line that genuinely maps here: no duplicate, no
        # mapping violation — only the occupancy bound trips.
        fresh = (1 << 24) + full
        assert (fresh % num_sets) == full
        store._sets[full].append(LineState(fresh))
        with pytest.raises(CheckViolation) as excinfo:
            validate_l1(l1)
        assert _kind(excinfo) == "occupancy"

    def test_wrong_set_mapping(self):
        l1 = _ran_l1()
        store = l1.tag_store
        donor = next(i for i, s in enumerate(store._sets) if s)
        target = (donor + 1) % len(store._sets)
        moved = store._sets[donor].pop()
        if len(store._sets[target]) >= store.associativity:
            store._sets[target].pop()
        store._sets[target].append(moved)
        with pytest.raises(CheckViolation) as excinfo:
            validate_l1(l1)
        assert _kind(excinfo) == "set-mapping"

    def test_generic_store_duplicate(self):
        class StubStore:
            capacity_lines = 8

            def resident_lines(self):
                return iter([1, 2, 1])

        with pytest.raises(CheckViolation) as excinfo:
            validate_tag_store(StubStore())
        assert _kind(excinfo) == "tag-duplicate"

    def test_generic_store_occupancy(self):
        class StubStore:
            capacity_lines = 2

            def resident_lines(self):
                return iter([1, 2, 3])

        with pytest.raises(CheckViolation) as excinfo:
            validate_tag_store(StubStore())
        assert _kind(excinfo) == "occupancy"


class TestMshr:
    def _l1_with_inflight(self):
        l1 = _ran_l1(n=0)
        l1.access_line(0x1234, 0, DEFAULT_CONTEXT)   # miss -> MSHR entry
        assert l1.miss_queue._entries
        return l1

    def test_inflight_state_validates(self):
        validate_l1(self._l1_with_inflight())

    def test_stale_next_completion(self):
        l1 = self._l1_with_inflight()
        l1.miss_queue.next_completion -= 1
        with pytest.raises(CheckViolation) as excinfo:
            validate_l1(l1)
        assert _kind(excinfo) == "mshr"

    def test_entry_keyed_by_wrong_line(self):
        l1 = self._l1_with_inflight()
        entries = l1.miss_queue._entries
        line, entry = next(iter(entries.items()))
        del entries[line]
        entries[line + 1] = entry
        with pytest.raises(CheckViolation) as excinfo:
            validate_l1(l1)
        assert _kind(excinfo) == "mshr"

    def test_nofill_security_resident_while_in_flight(self):
        """Section IV-B: a nofill miss must never allocate its line."""
        l1 = self._l1_with_inflight()
        line = next(iter(l1.miss_queue._entries))
        l1.tag_store.fill(line, DEFAULT_CONTEXT)
        with pytest.raises(CheckViolation) as excinfo:
            validate_l1(l1)
        assert _kind(excinfo) == "nofill-security"


class TestFillQueue:
    def test_negative_parked_line(self):
        l1 = _ran_l1()
        l1.fill_queue.append((-3, DEFAULT_CONTEXT))
        with pytest.raises(CheckViolation) as excinfo:
            validate_l1(l1)
        assert _kind(excinfo) == "fill-queue"

    def test_over_capacity(self):
        l1 = _ran_l1()
        for i in range(l1.fill_queue_capacity + 1 - len(l1.fill_queue)):
            l1.fill_queue.append((0x40 + i, DEFAULT_CONTEXT))
        with pytest.raises(CheckViolation) as excinfo:
            validate_l1(l1)
        assert _kind(excinfo) == "fill-queue"

    def test_blocked_flag_with_empty_queue(self):
        l1 = _ran_l1()
        assert not l1.fill_queue
        l1._fills_blocked = True
        with pytest.raises(CheckViolation) as excinfo:
            validate_l1(l1)
        assert _kind(excinfo) == "fill-queue"


class TestStatsLaws:
    def test_l1_conservation(self):
        l1 = _ran_l1()
        l1.stats.hits += 1
        with pytest.raises(CheckViolation) as excinfo:
            validate_l1(l1)
        assert _kind(excinfo) == "stats"

    def test_negative_counter(self):
        l1 = _ran_l1()
        l1.stats.accesses = -1
        with pytest.raises(CheckViolation) as excinfo:
            validate_l1(l1)
        assert _kind(excinfo) == "stats"

    def test_random_fill_budget(self):
        l1 = _ran_l1()
        l1.stats.random_fill_issued = l1.stats.demand_misses + \
            l1.stats.random_fill_dropped + 1
        with pytest.raises(CheckViolation) as excinfo:
            validate_l1(l1)
        assert _kind(excinfo) == "stats"

    def test_l2_conservation(self):
        l1 = _ran_l1()
        l1.next_level.stats.hits += 1
        with pytest.raises(CheckViolation) as excinfo:
            validate_l1(l1)
        assert _kind(excinfo) == "stats"

    def test_fills_bounded_by_requests(self):
        l1 = _ran_l1()
        l1.stats.fills = l1.stats.next_level_requests + 1
        with pytest.raises(CheckViolation) as excinfo:
            validate_l1(l1)
        assert _kind(excinfo) == "stats"


class TestNewcacheStore:
    def test_healthy_newcache_validates(self):
        l1 = _ran_l1("newcache", window=None)
        validate_l1(l1)
