"""Figure 2: the final-round collision attack's timing characteristic.

The paper collects 2^17 block encryptions on gem5 and plots the average
encryption time against c0 ^ c1; the minimum sits at k10_0 ^ k10_1.
Python is ~10^3 x slower per simulated access, so the default run is
40k measurements (scale with REPRO_BENCH_SCALE); at that size the true
XOR ranks at/near the bottom of 256 buckets, and the dip magnitude and
location are reported.
"""

from _reporting import save_report

from repro.experiments.config import scaled
from repro.experiments.security import figure2
from repro.util.tables import format_table

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


def test_fig2_timing_characteristic(benchmark):
    measurements = scaled(40_000, minimum=2_000)
    result = benchmark.pedantic(
        figure2, kwargs=dict(measurements=measurements, key=KEY, seed=7),
        rounds=1, iterations=1)

    curve = dict(result.curve)
    rank = sorted(curve, key=curve.get).index(result.true_xor)
    values = list(curve.values())
    mean = sum(values) / len(values)
    sd = (sum((v - mean) ** 2 for v in values) / (len(values) - 1)) ** 0.5
    z = (curve[result.true_xor] - mean) / sd if sd else 0.0

    lowest = sorted(curve, key=curve.get)[:5]
    save_report("fig2_timing_characteristic", format_table(
        ["quantity", "value"],
        [
            ("measurements", result.measurements),
            ("true k10_0 ^ k10_1", result.true_xor),
            ("recovered (argmin)", result.recovered_xor),
            ("rank of true value (of 256)", rank),
            ("dip at true value (cycles)", f"{curve[result.true_xor]:.2f}"),
            ("dip z-score vs buckets", f"{z:.2f}"),
            ("5 lowest buckets", " ".join(map(str, lowest))),
        ],
        title=("Figure 2: timing characteristic for c0^c1 "
               "(paper: min at 160 = k10_0^k10_1)")))

    # The collision dip at the true XOR is the signal: below the bucket
    # population mean and deep in the left tail of the 256 buckets.
    # The dip sharpens and the rank converges to 0 as measurements
    # accumulate (full pair recovery takes ~60-100k in this simulator;
    # raise REPRO_BENCH_SCALE to watch it happen).
    assert z < -0.8
    assert rank < (64 if measurements >= 30_000 else 100)
