"""Security experiments: Figure 2, Table III, and the Table I demos.

These glue the attack implementations to the cache schemes under the
attacker-favoring configuration Table III prescribes (1 miss-queue
entry).  Measurement counts are capped (Python is ~10^3 x slower per
simulated access than gem5; the paper itself capped at 2^24), and the
Equation (5) extrapolation is reported alongside so the infinite-cap
prediction is visible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.hit_probability import (
    monte_carlo_p1_p2,
    newcache_tag_store_factory,
    sa_tag_store_factory,
)
from repro.attacks.collision import FinalRoundCollisionAttack
from repro.attacks.stats import measurements_needed
from repro.attacks.victim import AesTimingVictim, CleaningConfig
from repro.cache.hierarchy import build_hierarchy
from repro.core.engine import RandomFillEngine
from repro.core.policy import RandomFillPolicy
from repro.core.window import RandomFillWindow
from repro.experiments.config import BASELINE_CONFIG, SimulatorConfig
from repro.secure.newcache import Newcache
from repro.util.rng import HardwareRng, derive_seed

#: Table III's window sizes (size 1 = demand fetch).
TABLE3_WINDOW_SIZES = (1, 2, 4, 8, 16, 32)


def build_attack_victim(window_size: int,
                        substrate: str = "sa",
                        key: Optional[bytes] = None,
                        seed: int = 0,
                        config: Optional[SimulatorConfig] = None,
                        cleaning: Optional[CleaningConfig] = None,
                        ) -> AesTimingVictim:
    """An AES victim on the Table III configuration.

    ``substrate`` is ``"sa"`` (4-way 32 KB set-associative) or
    ``"newcache"``; ``window_size`` 1 disables random fill.  Newcache is
    cleaned by eviction (its random replacement makes a full clean hard,
    the paper's observation), the SA cache by a full flush.
    """
    if substrate not in ("sa", "newcache"):
        raise ValueError(f"unknown substrate {substrate!r}")
    cfg = (config if config is not None else BASELINE_CONFIG).attacker_favoring()
    key = key if key is not None else \
        bytes(random.Random(derive_seed(seed, "key")).randrange(256)
              for _ in range(16))
    engine = RandomFillEngine(HardwareRng(derive_seed(seed, "rng")))
    window = RandomFillWindow.bidirectional(window_size)
    engine.set_window(0, window)
    tag_store = None
    if substrate == "newcache":
        tag_store = Newcache(cfg.l1d_size, cfg.line_size,
                             seed=derive_seed(seed, "newcache"))
    hierarchy = build_hierarchy(
        l1_tag_store=tag_store, policy=RandomFillPolicy(engine),
        l1_size=cfg.l1d_size, l1_assoc=cfg.l1d_assoc,
        line_size=cfg.line_size, l1_hit_latency=cfg.l1_hit_latency,
        l2_size=cfg.l2_size, l2_assoc=cfg.l2_assoc,
        l2_hit_latency=cfg.l2_hit_latency, mshr_entries=cfg.mshr_entries,
        dram_config=cfg.dram)
    if cleaning is None:
        cleaning = CleaningConfig(
            strategy="flush" if substrate == "sa" else "evict")
    return AesTimingVictim(
        hierarchy.l1, key, cleaning=cleaning,
        overlap_credit=cfg.overlap_credit,
        extra_refs_per_block=60)


@dataclass
class Figure2Result:
    """The Figure 2 timing characteristic for one ciphertext-byte pair."""

    pair: Tuple[int, int]
    curve: List[Tuple[int, float]]   # (c_i ^ c_j, mean-centred avg time)
    recovered_xor: int
    true_xor: int
    measurements: int

    @property
    def success(self) -> bool:
        return self.recovered_xor == self.true_xor


def figure2(measurements: int = 50_000,
            pair: Tuple[int, int] = (0, 1),
            key: Optional[bytes] = None,
            seed: int = 0) -> Figure2Result:
    """Reproduce Figure 2: the final-round timing characteristic chart.

    The paper collected 2^17 block encryptions on gem5; the minimum of
    the average encryption time over c_0 ^ c_1 reveals k10_0 ^ k10_1.
    """
    victim = build_attack_victim(1, "sa", key=key, seed=seed)
    attack = FinalRoundCollisionAttack(victim, pairs=[pair],
                                       seed=derive_seed(seed, "attack"))
    attack.collect(measurements)
    estimate = attack.estimates()[0]
    return Figure2Result(
        pair=pair,
        curve=attack.timing_characteristic(pair),
        recovered_xor=estimate.recovered,
        true_xor=estimate.true_value,
        measurements=measurements,
    )


@dataclass
class Table3Row:
    """One Table III cell group for a substrate + window size."""

    substrate: str
    window_size: int
    p1_minus_p2: float
    attack_measurements: Optional[int]   # None = no success within cap
    attack_cap: int
    extrapolated_n: float                # Equation (5) estimate

    def measurements_text(self) -> str:
        if self.attack_measurements is not None:
            return str(self.attack_measurements)
        return f"no success after {self.attack_cap}"


def table3(substrates: Sequence[str] = ("sa", "newcache"),
           window_sizes: Sequence[int] = TABLE3_WINDOW_SIZES,
           mc_trials: int = 20_000,
           attack_caps: Optional[Dict[int, int]] = None,
           attack_pair: Tuple[int, int] = (0, 1),
           sigma_t: float = 48.0,
           timing_gap: float = 12.0,
           seed: int = 0) -> List[Table3Row]:
    """Reproduce Table III: P1 - P2 and attack measurement counts.

    ``attack_caps`` maps window size -> measurement cap (0 skips the
    live attack for that size and reports only the extrapolation).
    ``sigma_t`` and ``timing_gap`` feed Equation (5); the defaults are
    the empirically measured values for this simulator's victim
    (per-measurement time stddev and L1-hit vs L2-hit stall gap).
    """
    if attack_caps is None:
        attack_caps = {1: 60_000, 2: 20_000, 4: 10_000,
                       8: 5_000, 16: 5_000, 32: 5_000}
    rows: List[Table3Row] = []
    for substrate in substrates:
        factory = (sa_tag_store_factory() if substrate == "sa"
                   else newcache_tag_store_factory(seed=derive_seed(seed, "nc")))
        for size in window_sizes:
            window = RandomFillWindow.bidirectional(size)
            mc = monte_carlo_p1_p2(factory, window, trials=mc_trials,
                                   seed=derive_seed(seed, substrate, size))
            cap = attack_caps.get(size, 0)
            found: Optional[int] = None
            if cap > 0:
                victim = build_attack_victim(
                    size, substrate, seed=derive_seed(seed, "v", substrate, size))
                attack = FinalRoundCollisionAttack(
                    victim, pairs=[attack_pair],
                    seed=derive_seed(seed, "a", substrate, size))
                result = attack.run(cap, check_every=max(1000, cap // 10))
                if result.success:
                    found = result.measurements
            extrapolated = measurements_needed(
                max(mc.p1_minus_p2, 0.0), t_miss=1 + timing_gap, t_hit=1,
                sigma_t=sigma_t) if mc.p1_minus_p2 > 0 else math.inf
            rows.append(Table3Row(
                substrate=substrate, window_size=size,
                p1_minus_p2=mc.p1_minus_p2,
                attack_measurements=found, attack_cap=cap,
                extrapolated_n=extrapolated))
    return rows
