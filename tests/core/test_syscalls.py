"""Tests for the Table II system calls and PCB context switching."""

import pytest

from repro.core.engine import RandomFillEngine
from repro.core.syscalls import RandomFillOS
from repro.core.window import RandomFillWindow
from repro.util.rng import HardwareRng


def make_os():
    return RandomFillOS(RandomFillEngine(HardwareRng(0)))


class TestSyscalls:
    def test_set_rr(self):
        os = make_os()
        os.set_rr(16, 15)
        assert os.engine.window_for(0) == RandomFillWindow(16, 15)

    def test_set_window_pow2(self):
        os = make_os()
        os.set_window(-16, 5)
        assert os.engine.window_for(0) == RandomFillWindow(16, 15)

    def test_disable(self):
        os = make_os()
        os.set_rr(4, 3)
        os.disable()
        assert os.engine.window_for(0).disabled

    def test_per_thread(self):
        os = make_os()
        os.set_rr(4, 3, thread_id=1)
        assert os.engine.window_for(0).disabled
        assert os.engine.window_for(1) == RandomFillWindow(4, 3)


class TestProcesses:
    def test_create_and_schedule(self):
        os = make_os()
        os.create_process(1)
        os.schedule(1)
        assert os.running_pid(0) == 1

    def test_duplicate_pid(self):
        os = make_os()
        os.create_process(1)
        with pytest.raises(ValueError):
            os.create_process(1)

    def test_unknown_pid(self):
        os = make_os()
        with pytest.raises(KeyError):
            os.pcb(9)
        with pytest.raises(KeyError):
            os.running_pid(0)

    def test_context_switch_saves_and_restores(self):
        os = make_os()
        os.create_process(1)
        os.create_process(2)
        os.schedule(1)
        os.set_rr(16, 15)                 # process 1's window
        os.context_switch(1, 2)
        assert os.engine.window_for(0).disabled  # process 2 default
        os.set_rr(2, 1)                   # process 2's window
        os.context_switch(2, 1)
        assert os.engine.window_for(0) == RandomFillWindow(16, 15)
        assert os.pcb(2).window == RandomFillWindow(2, 1)

    def test_context_switch_wrong_outgoing(self):
        os = make_os()
        os.create_process(1)
        os.create_process(2)
        os.schedule(1)
        with pytest.raises(ValueError):
            os.context_switch(2, 1)

    def test_attacker_cannot_change_victim_window(self):
        """Section VIII: the attacker cannot set the victim's window."""
        os = make_os()
        os.create_process(1)  # victim
        os.create_process(2)  # attacker
        os.schedule(1)
        os.set_rr(16, 15)
        os.context_switch(1, 2)
        os.set_rr(0, 0)       # attacker zeroes its own registers
        os.context_switch(2, 1)
        # victim's window is restored intact from its PCB
        assert os.engine.window_for(0) == RandomFillWindow(16, 15)
