"""Tests for the random fill window and register encoding (Figure 4)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.window import (
    RandomFillWindow,
    decode_range_registers,
    encode_range_registers,
    validate_window,
)


class TestWindow:
    def test_size(self):
        assert RandomFillWindow(16, 15).size == 32

    def test_disabled(self):
        assert RandomFillWindow(0, 0).disabled
        assert not RandomFillWindow(0, 1).disabled

    def test_negative_bounds_rejected(self):
        with pytest.raises(ValueError):
            RandomFillWindow(-1, 0)
        with pytest.raises(ValueError):
            RandomFillWindow(0, -1)

    def test_register_width_limit(self):
        with pytest.raises(ValueError):
            RandomFillWindow(129, 0)
        with pytest.raises(ValueError):
            RandomFillWindow(0, 128)

    def test_contains_offset(self):
        w = RandomFillWindow(4, 3)
        assert w.contains_offset(-4)
        assert w.contains_offset(3)
        assert not w.contains_offset(-5)
        assert not w.contains_offset(4)

    def test_covers_table(self):
        # Section V-A: a, b >= M - 1 closes the timing channel
        assert RandomFillWindow(15, 15).covers_table(16)
        assert not RandomFillWindow(15, 14).covers_table(16)

    def test_is_power_of_two(self):
        assert RandomFillWindow(16, 15).is_power_of_two
        assert not RandomFillWindow(16, 14).is_power_of_two


class TestConstructors:
    def test_from_pow2_figure4_example(self):
        # Figure 4: window [i-4, i+3] = lower bound -4, size 2^3
        w = RandomFillWindow.from_pow2(-4, 3)
        assert (w.a, w.b) == (4, 3)

    def test_from_pow2_validation(self):
        with pytest.raises(ValueError):
            RandomFillWindow.from_pow2(1, 3)   # positive lower bound
        with pytest.raises(ValueError):
            RandomFillWindow.from_pow2(-8, 2)  # size too small
        with pytest.raises(ValueError):
            RandomFillWindow.from_pow2(0, -1)

    def test_forward(self):
        w = RandomFillWindow.forward(16)
        assert (w.a, w.b) == (0, 15)
        with pytest.raises(ValueError):
            RandomFillWindow.forward(0)

    def test_bidirectional(self):
        w = RandomFillWindow.bidirectional(32)
        assert (w.a, w.b) == (16, 15)
        assert RandomFillWindow.bidirectional(1).disabled
        with pytest.raises(ValueError):
            RandomFillWindow.bidirectional(6)

    def test_disabled_window(self):
        assert RandomFillWindow.disabled_window().disabled


class TestRegisterEncoding:
    def test_figure4_bit_pattern(self):
        # RR1 = -4 two's complement = 11111100, RR2 = 2^3-1 = 00000111
        rr1, rr2 = encode_range_registers(RandomFillWindow(4, 3))
        assert rr1 == 0b11111100
        assert rr2 == 0b00000111

    def test_disabled_encodes_zero(self):
        assert encode_range_registers(RandomFillWindow(0, 0)) == (0, 0)

    @given(st.integers(min_value=0, max_value=64),
           st.integers(min_value=0, max_value=63))
    def test_roundtrip(self, a, b):
        w = RandomFillWindow(a, b)
        rr1, rr2 = encode_range_registers(w)
        decoded = decode_range_registers(rr1, rr2, pow2=w.is_power_of_two)
        assert decoded == w

    def test_decode_pow2(self):
        assert decode_range_registers(0b11111100, 0b111) == \
            RandomFillWindow(4, 3)

    def test_decode_pow2_rejects_non_mask_rr2(self):
        # RR2 = 0b101 -> size 6: not a power of two, so the Figure 4
        # mask-and-add datapath cannot realize it.
        with pytest.raises(ValueError, match="power-of-two"):
            decode_range_registers(0b11111100, 0b101, pow2=True)
        # The general set_RR encoding still accepts it (RR2 = b).
        assert decode_range_registers(0, 0b101, pow2=False) == \
            RandomFillWindow(0, 5)


class TestValidateWindow:
    def test_window_within_capacity_passes_through(self):
        w = RandomFillWindow(16, 15)
        assert validate_window(w, capacity_lines=512) is w

    def test_no_capacity_context_accepts_anything(self):
        assert validate_window(RandomFillWindow(64, 63)) is not None

    def test_window_exceeding_cache_rejected(self):
        with pytest.raises(ValueError, match="64 candidate lines"):
            validate_window(RandomFillWindow(32, 31), capacity_lines=32,
                            where="test")

    def test_scheme_set_window_validates(self):
        from dataclasses import replace

        from repro.experiments.config import BASELINE_CONFIG
        from repro.experiments.schemes import build_scheme

        config = replace(BASELINE_CONFIG, l1d_size=8 * 1024)  # 128 lines
        scheme = build_scheme("random_fill", config, seed=0)
        scheme.set_window(RandomFillWindow(16, 15))     # fine
        with pytest.raises(ValueError, match="shrink the window"):
            scheme.set_window(RandomFillWindow(128, 127))

    def test_functional_scheme_validates(self):
        from repro.leakage.adapters import build_functional_scheme
        from repro.secure.region import ProtectedRegion

        region = ProtectedRegion(0x4000, 1024)
        with pytest.raises(ValueError, match="candidate lines"):
            build_functional_scheme(
                "random_fill", region, window=RandomFillWindow(64, 63),
                cache_bytes=4 * 1024)
