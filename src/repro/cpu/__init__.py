"""Trace-driven CPU model: trace format, single-thread timing, SMT."""

from repro.cpu.smt import SmtThread, run_smt
from repro.cpu.timing import SimResult, TimingModel
from repro.cpu.trace import MemRef, TraceRecord, instruction_count, materialize, validate_trace

__all__ = [
    "MemRef",
    "SimResult",
    "SmtThread",
    "TimingModel",
    "TraceRecord",
    "instruction_count",
    "materialize",
    "run_smt",
    "validate_trace",
]
