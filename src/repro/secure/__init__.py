"""Secure cache designs from prior work (Section III), for comparison.

All of these defend (only) against contention based attacks — they keep
the demand fetch policy, which the paper identifies as the root cause of
reuse based attacks.  They serve as baselines and as substrates the
random fill strategy composes with.
"""

from repro.secure.newcache import Newcache
from repro.secure.nocache import DisableCachePolicy
from repro.secure.nomo import NoMoCache
from repro.secure.plcache import PLCache, preload_and_lock
from repro.secure.region import ProtectedRegion, RegionSet
from repro.secure.rpcache import RPCache

__all__ = [
    "DisableCachePolicy",
    "Newcache",
    "NoMoCache",
    "PLCache",
    "ProtectedRegion",
    "RPCache",
    "RegionSet",
    "preload_and_lock",
]
