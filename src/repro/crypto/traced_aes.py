"""AES-128 with a memory reference trace: the victim the attacks target.

``TracedAES128`` performs bit-identical encryption/decryption to
:class:`repro.crypto.aes.AES128` while emitting every data access the
software cipher performs:

* the 160 table lookups per block (16 per round; rounds 1..9 hit
  Te0..Te3, the final round hits Te4 — the paper's ``T4``),
* round-key loads,
* plaintext loads / ciphertext stores,
* a configurable number of stack/bookkeeping accesses per block, tuned
  so security-critical accesses are ~24% of all data-cache accesses, the
  fraction Section VI reports for OpenSSL AES.

The memory layout places the ten 1-KB tables contiguously (as a shared
library's ``.rodata`` would), which is what gives the storage channel
its boundary effect (Section V-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.cpu.trace import Trace, TraceRecord
from repro.crypto.aes import AES128, _bytes_from_words, _words_from_bytes
from repro.crypto.aes_tables import (
    TABLE_BYTES,
    TD0,
    TD1,
    TD2,
    TD3,
    TE0,
    TE1,
    TE2,
    TE3,
    TE4,
)
from repro.secure.region import ProtectedRegion, RegionSet

#: instructions per memory access in the modelled cipher inner loop
DEFAULT_GAP = 3
#: stack/bookkeeping accesses per block so table lookups are ~24% of refs
DEFAULT_EXTRA_REFS = 456


@dataclass(frozen=True)
class AesMemoryLayout:
    """Where the cipher's data lives in the simulated address space.

    Defaults put the five encryption tables at 64 KB and the five
    decryption tables right after — contiguous 1-KB tables, 64-byte
    aligned, 16 cache lines each.
    """

    enc_table_base: int = 0x10000
    dec_table_base: int = 0x10000 + 5 * TABLE_BYTES
    round_key_base: int = 0x20000
    # The stack sits 332 lines above the tables so that, in a small
    # direct-mapped L1 (8 KB = 128 sets), a few of its lines alias with
    # table sets — the realistic partial conflict that makes locking
    # defences (PLcache+preload) degrade at small sizes — while in a
    # 32 KB cache (512 sets) there is no aliasing at all, as in Fig. 6.
    stack_base: int = 0x10000 + 332 * 64
    message_base: int = 0x40000
    line_size: int = 64

    def enc_table_addr(self, table: int, index: int) -> int:
        """Byte address of entry ``index`` of Te``table``."""
        return self.enc_table_base + table * TABLE_BYTES + index * 4

    def dec_table_addr(self, table: int, index: int) -> int:
        return self.dec_table_base + table * TABLE_BYTES + index * 4

    def enc_regions(self) -> RegionSet:
        """The five encryption tables as protected regions."""
        return RegionSet([
            ProtectedRegion(self.enc_table_base + i * TABLE_BYTES,
                            TABLE_BYTES, self.line_size, name=f"Te{i}")
            for i in range(5)
        ])

    def dec_regions(self) -> RegionSet:
        return RegionSet([
            ProtectedRegion(self.dec_table_base + i * TABLE_BYTES,
                            TABLE_BYTES, self.line_size, name=f"Td{i}")
            for i in range(5)
        ])

    def all_regions(self) -> RegionSet:
        """All ten tables (the Figure 8 enc+dec workload protects these)."""
        return RegionSet(list(self.enc_regions()) + list(self.dec_regions()))

    def final_round_table(self, decrypt: bool = False) -> ProtectedRegion:
        """The paper's T4: the final-round table region."""
        base = (self.dec_table_base if decrypt else self.enc_table_base)
        name = "Td4" if decrypt else "Te4"
        return ProtectedRegion(base + 4 * TABLE_BYTES, TABLE_BYTES,
                               self.line_size, name=name)


class TracedAES128(AES128):
    """AES-128 whose block operations emit their memory reference trace."""

    def __init__(self, key: bytes, layout: AesMemoryLayout = AesMemoryLayout(),
                 gap: int = DEFAULT_GAP,
                 extra_refs_per_block: int = DEFAULT_EXTRA_REFS):
        super().__init__(key)
        if gap < 1:
            raise ValueError(f"gap must be >= 1, got {gap}")
        if extra_refs_per_block < 0:
            raise ValueError("extra_refs_per_block must be >= 0")
        self.layout = layout
        self.gap = gap
        self.extra_refs_per_block = extra_refs_per_block

    # -- internals ---------------------------------------------------------

    def _emit_extras(self, out: List[TraceRecord], count: int) -> None:
        """Stack/bookkeeping traffic: cycles through a 1-KB hot region."""
        gap = self.gap
        base = self.layout.stack_base
        for i in range(count):
            out.append((base + (i * 8) % 1024, gap, i & 1))

    def _emit_round_keys(self, out: List[TraceRecord], first_word: int,
                         count: int = 4) -> None:
        gap = self.gap
        base = self.layout.round_key_base
        for w in range(first_word, first_word + count):
            out.append((base + w * 4, gap, 0))

    # -- traced block encryption --------------------------------------------

    def encrypt_block_traced(
            self, plaintext: bytes, message_offset: int = 0,
            lookup_sink: Optional[Callable[[int, int], None]] = None,
    ) -> Tuple[bytes, List[TraceRecord]]:
        """Encrypt one block, returning (ciphertext, trace).

        ``lookup_sink(table, index)``, when given, receives every table
        lookup as it happens (used by the attack analysis to know the
        true final-round indices).
        """
        if len(plaintext) != 16:
            raise ValueError(f"block must be 16 bytes, got {len(plaintext)}")
        out: List[TraceRecord] = []
        gap = self.gap
        layout = self.layout
        rk = self.round_keys
        tables = (TE0, TE1, TE2, TE3)

        msg = layout.message_base + message_offset
        for w in range(4):
            out.append((msg + w * 4, gap, 0))
        self._emit_round_keys(out, 0)
        extras_per_round = self.extra_refs_per_block // 10

        s = [w ^ k for w, k in zip(_words_from_bytes(plaintext), rk[:4])]
        for rnd in range(1, 10):
            base = 4 * rnd
            t = []
            for col in range(4):
                indices = ((s[col] >> 24) & 0xFF,
                           (s[(col + 1) & 3] >> 16) & 0xFF,
                           (s[(col + 2) & 3] >> 8) & 0xFF,
                           s[(col + 3) & 3] & 0xFF)
                word = rk[base + col]
                for tbl, idx in enumerate(indices):
                    word ^= tables[tbl][idx]
                    out.append((layout.enc_table_addr(tbl, idx), gap, 0))
                    if lookup_sink is not None:
                        lookup_sink(tbl, idx)
                t.append(word)
            self._emit_round_keys(out, base)
            self._emit_extras(out, extras_per_round)
            s = t

        # Final round: 16 lookups into Te4 (the paper's T4).
        c = []
        masks = (0xFF000000, 0x00FF0000, 0x0000FF00, 0x000000FF)
        for col in range(4):
            indices = ((s[col] >> 24) & 0xFF,
                       (s[(col + 1) & 3] >> 16) & 0xFF,
                       (s[(col + 2) & 3] >> 8) & 0xFF,
                       s[(col + 3) & 3] & 0xFF)
            word = rk[40 + col]
            for pos, idx in enumerate(indices):
                word ^= TE4[idx] & masks[pos]
                out.append((layout.enc_table_addr(4, idx), gap, 0))
                if lookup_sink is not None:
                    lookup_sink(4, idx)
            c.append(word)
        self._emit_round_keys(out, 40)
        self._emit_extras(out, self.extra_refs_per_block - 9 * extras_per_round)
        for w in range(4):
            out.append((msg + 16 + w * 4, gap, 1))
        return _bytes_from_words(c), out

    def decrypt_block_traced(
            self, ciphertext: bytes, message_offset: int = 0,
            lookup_sink: Optional[Callable[[int, int], None]] = None,
    ) -> Tuple[bytes, List[TraceRecord]]:
        """Decrypt one block, returning (plaintext, trace)."""
        if len(ciphertext) != 16:
            raise ValueError(f"block must be 16 bytes, got {len(ciphertext)}")
        out: List[TraceRecord] = []
        gap = self.gap
        layout = self.layout
        rk = self.decrypt_round_keys
        tables = (TD0, TD1, TD2, TD3)

        msg = layout.message_base + message_offset
        for w in range(4):
            out.append((msg + w * 4, gap, 0))
        self._emit_round_keys(out, 0)
        extras_per_round = self.extra_refs_per_block // 10

        s = [w ^ k for w, k in zip(_words_from_bytes(ciphertext), rk[:4])]
        for rnd in range(1, 10):
            base = 4 * rnd
            t = []
            for col in range(4):
                indices = ((s[col] >> 24) & 0xFF,
                           (s[(col - 1) & 3] >> 16) & 0xFF,
                           (s[(col - 2) & 3] >> 8) & 0xFF,
                           s[(col - 3) & 3] & 0xFF)
                word = rk[base + col]
                for tbl, idx in enumerate(indices):
                    word ^= tables[tbl][idx]
                    out.append((layout.dec_table_addr(tbl, idx), gap, 0))
                    if lookup_sink is not None:
                        lookup_sink(tbl, idx)
                t.append(word)
            self._emit_round_keys(out, base)
            self._emit_extras(out, extras_per_round)
            s = t

        # Final round: 16 lookups into Td4.
        from repro.crypto.aes_tables import INV_SBOX
        p = []
        for col in range(4):
            indices = ((s[col] >> 24) & 0xFF,
                       (s[(col - 1) & 3] >> 16) & 0xFF,
                       (s[(col - 2) & 3] >> 8) & 0xFF,
                       s[(col - 3) & 3] & 0xFF)
            word = rk[40 + col]
            shift = 24
            for idx in indices:
                word ^= INV_SBOX[idx] << shift
                out.append((layout.dec_table_addr(4, idx), gap, 0))
                if lookup_sink is not None:
                    lookup_sink(4, idx)
                shift -= 8
            p.append(word)
        self._emit_round_keys(out, 40)
        self._emit_extras(out, self.extra_refs_per_block - 9 * extras_per_round)
        for w in range(4):
            out.append((msg + 16 + w * 4, gap, 1))
        return _bytes_from_words(p), out

    # -- traced CBC over a whole message ------------------------------------

    def encrypt_cbc_traced(self, plaintext: bytes,
                           iv: bytes) -> Tuple[bytes, Trace]:
        """CBC-encrypt a message (the Figure 6 workload is 32 KB).

        Per-block traces stay record lists (the attacks dissect them);
        the message-level trace is returned columnar, converted from
        the accumulated records in one pass.
        """
        if len(plaintext) % 16:
            raise ValueError("CBC plaintext must be a multiple of 16 bytes")
        if len(iv) != 16:
            raise ValueError(f"IV must be 16 bytes, got {len(iv)}")
        records: List[TraceRecord] = []
        out = bytearray()
        prev = iv
        for i in range(0, len(plaintext), 16):
            block = bytes(a ^ b for a, b in zip(plaintext[i:i + 16], prev))
            prev, block_trace = self.encrypt_block_traced(
                block, message_offset=(i * 2) % 0x8000)
            records.extend(block_trace)
            out.extend(prev)
        return bytes(out), Trace.from_records(records)

    def final_round_indices(self, plaintext: bytes) -> List[int]:
        """The 16 final-round Te4 indices for one block (attack oracle).

        Used by tests and the Monte Carlo analysis to check recovered
        relations against ground truth; a real attacker cannot call this.
        """
        sink: List[int] = []
        self.encrypt_block_traced(
            plaintext,
            lookup_sink=lambda tbl, idx: sink.append(idx) if tbl == 4 else None)
        return sink
