"""Content-addressed workload trace cache.

Trace generation is deterministic given its parameters, so a trace is
fully identified by a key tuple such as ``("spec", name, n_refs, seed,
GENERATOR_VERSION)``.  The cache exploits that:

* an **in-process LRU** layer keeps the most recently used traces as
  live objects, so a sweep that runs the same benchmark under many
  windows synthesizes the trace once,
* an optional **on-disk** layer under ``~/.cache/repro/traces`` makes
  traces survive across processes (including the worker processes of
  the parallel runner) and across runs.

The generator version is part of the key: bumping it orphans old disk
entries rather than serving stale traces.  Set ``REPRO_TRACE_CACHE`` to
a directory to relocate the disk layer, or to ``0``/``off``/``none``/
``disabled`` to turn the disk layer off entirely.

Disk entries are written atomically (temp file + ``os.replace``) so a
crashed or concurrent writer can never leave a truncated entry behind;
unreadable entries are treated as misses and regenerated.

Columnar :class:`~repro.cpu.trace.Trace` values are stored as their
three numpy columns (pickled as whole buffers — no per-record object
encoding on either side); plain record lists keep the legacy list
payload, and either form is read back transparently.  The disk layer
shares the mtime-LRU size bound of :mod:`repro.util.diskcache`
(``REPRO_CACHE_MAX_MB``).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from collections import OrderedDict
from typing import Callable, Optional, Tuple

import numpy as np

from repro.cpu.trace import Trace
from repro.util.diskcache import maybe_evict

#: default number of traces the in-process LRU layer retains
DEFAULT_MEMORY_ENTRIES = 32

#: ``REPRO_TRACE_CACHE`` values that disable the on-disk layer
_DISABLED_VALUES = frozenset({"0", "off", "none", "disabled"})


def default_cache_dir() -> Optional[str]:
    """Resolve the on-disk cache directory from the environment.

    Returns ``None`` when the disk layer is disabled.
    """
    override = os.environ.get("REPRO_TRACE_CACHE")
    if override is not None:
        if override.strip().lower() in _DISABLED_VALUES:
            return None
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "traces")


class TraceCache:
    """Two-layer (memory LRU + optional disk) cache of generated traces."""

    def __init__(self, memory_entries: int = DEFAULT_MEMORY_ENTRIES,
                 disk_dir: Optional[str] = None,
                 use_default_disk_dir: bool = True):
        if memory_entries < 1:
            raise ValueError(
                f"memory_entries must be >= 1, got {memory_entries}")
        self.memory_entries = memory_entries
        if disk_dir is None and use_default_disk_dir:
            disk_dir = default_cache_dir()
        self.disk_dir = disk_dir
        self._memory: "OrderedDict[tuple, object]" = OrderedDict()
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0

    # -- key / path mapping --------------------------------------------------

    @staticmethod
    def _path_for(disk_dir: str, key: tuple) -> str:
        digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
        return os.path.join(disk_dir, f"{digest}.trace")

    # -- layers --------------------------------------------------------------

    #: payload marker for columnar trace entries (``(_COLUMNAR, addr,
    #: gap, write)`` — legacy entries are the bare record list)
    _COLUMNAR = "columns/v1"

    def _disk_load(self, key: tuple):
        if self.disk_dir is None:
            return None
        path = self._path_for(self.disk_dir, key)
        try:
            with open(path, "rb") as fh:
                stored_key, payload = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, ValueError,
                TypeError, AttributeError):
            return None
        # A hash collision (or hand-edited file) must not alias keys.
        if stored_key != key:
            return None
        try:
            # A read keeps the entry young for the mtime-LRU bound.
            os.utime(path)
        except OSError:
            pass
        if (isinstance(payload, tuple) and len(payload) == 4
                and payload[0] == self._COLUMNAR):
            addr, gap, write = payload[1:]
            if not all(isinstance(col, np.ndarray) for col in payload[1:]):
                return None
            try:
                return Trace(addr, gap, write)
            except ValueError:
                return None
        if not isinstance(payload, list):
            return None
        return payload

    @classmethod
    def _payload_for(cls, trace):
        if isinstance(trace, Trace):
            return (cls._COLUMNAR, np.ascontiguousarray(trace.addr),
                    np.ascontiguousarray(trace.gap),
                    np.ascontiguousarray(trace.write))
        return trace

    def _disk_store(self, key: tuple, trace) -> None:
        if self.disk_dir is None:
            return
        try:
            os.makedirs(self.disk_dir, exist_ok=True)
            path = self._path_for(self.disk_dir, key)
            fd, tmp = tempfile.mkstemp(dir=self.disk_dir, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump((key, self._payload_for(trace)), fh,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            maybe_evict(self.disk_dir)
        except OSError:
            # A read-only or full filesystem only costs persistence.
            pass

    def _remember(self, key: tuple, trace) -> None:
        memory = self._memory
        memory[key] = trace
        memory.move_to_end(key)
        while len(memory) > self.memory_entries:
            memory.popitem(last=False)

    # -- public API ----------------------------------------------------------

    def get(self, key: tuple, maker: Callable[[], object]):
        """Return the trace for ``key``, generating it at most once.

        Callers must treat the returned value as immutable: it is
        shared between everyone asking for the same key.  Values are
        columnar :class:`Trace` objects for the built-in workloads, but
        any picklable value (e.g. a plain record list) is accepted.
        """
        memory = self._memory
        trace = memory.get(key)
        if trace is not None:
            memory.move_to_end(key)
            self.memory_hits += 1
            return trace
        trace = self._disk_load(key)
        if trace is not None:
            self.disk_hits += 1
            self._remember(key, trace)
            return trace
        self.misses += 1
        trace = maker()
        self._disk_store(key, trace)
        self._remember(key, trace)
        return trace

    def get_trace(self, key: tuple, maker: Callable[[], object]) -> Trace:
        """Like :meth:`get`, but guarantees a columnar :class:`Trace`.

        Legacy disk entries (bare record lists written before the
        columnar engine) are upgraded on load and the upgraded object
        replaces the list in the memory layer, so the conversion
        happens at most once per process.
        """
        trace = self.get(key, maker)
        if not isinstance(trace, Trace):
            trace = Trace.from_records(trace)
            self._remember(key, trace)
        return trace

    def clear_memory(self) -> None:
        """Drop the in-process layer (disk entries are untouched)."""
        self._memory.clear()

    def stats(self) -> Tuple[int, int, int]:
        """``(memory_hits, disk_hits, misses)`` since construction."""
        return (self.memory_hits, self.disk_hits, self.misses)


#: process-wide cache used by :func:`cached_workload` and the runner
TRACE_CACHE = TraceCache()


def cached_workload(name: str, n_refs: int = 100_000,
                    seed: int = 0) -> Trace:
    """`make_workload` through the process-wide trace cache."""
    from repro.workloads.spec import GENERATOR_VERSION, make_workload
    key = ("spec", name, n_refs, seed, GENERATOR_VERSION)
    return TRACE_CACHE.get_trace(
        key, lambda: make_workload(name, n_refs=n_refs, seed=seed))
