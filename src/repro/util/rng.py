"""Deterministic model of the hardware random number generator.

The paper's random fill engine draws from "a free running random number
generator (RNG) ... a pseudo random number generator with a truly random
seed" (Section IV-B.2).  For a reproducible simulator we model the RNG as
a seeded PRNG; the security analysis only requires that the masked output
is uniform over ``[0, 2**width)``, which holds for any good PRNG.

``HardwareRng`` also models the paper's buffering remark ("the random
number can be generated ahead of time and buffered"): numbers are produced
in batches so a draw is a constant-time pop, mirroring the fact that RNG
latency is off the processor's critical path.
"""

from __future__ import annotations

import random
from typing import List


def derive_seed(base_seed: int, *components: object) -> int:
    """Derive a child seed from ``base_seed`` and a label path.

    Experiments use one master seed; every stochastic component (random
    fill engine, workload generator, attacker plaintext source, ...) gets
    its own stream via ``derive_seed(master, "component", index)``.  The
    derivation is stable across runs and Python versions.
    """
    h = 0x9E3779B97F4A7C15 ^ (base_seed & 0xFFFFFFFFFFFFFFFF)
    for component in components:
        for byte in repr(component).encode():
            h ^= byte
            h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


class HardwareRng:
    """Buffered pseudo-random source standing in for the hardware RNG.

    Parameters
    ----------
    seed:
        PRNG seed (models the "truly random seed" of the hardware RNG).
    width:
        Output width in bits; the paper's range registers and RNG are
        8 bits wide (Figure 4).
    buffer_size:
        How many numbers are pre-generated per refill, modelling the
        ahead-of-time generation buffer.
    """

    def __init__(self, seed: int, width: int = 8, buffer_size: int = 256):
        if width <= 0:
            raise ValueError(f"RNG width must be positive, got {width}")
        if buffer_size <= 0:
            raise ValueError(f"buffer_size must be positive, got {buffer_size}")
        self.width = width
        self._max = (1 << width) - 1
        self._rng = random.Random(seed)
        self._buffer_size = buffer_size
        self._buffer: List[int] = []

    def _refill(self) -> None:
        rand = self._rng.getrandbits
        width = self.width
        # In-place extend: the buffer list's identity is stable, so hot
        # loops (the fused timing kernel) may hold a direct reference to
        # it across refills.  Only ever called when the buffer is empty,
        # so the draw sequence is unchanged.
        self._buffer += [rand(width) for _ in range(self._buffer_size)]

    def draw(self) -> int:
        """Return the next raw random number in ``[0, 2**width)``."""
        if not self._buffer:
            self._refill()
        return self._buffer.pop()

    def pregenerate(self, count: int) -> List[int]:
        """The next ``count`` values of the :meth:`draw` stream, at once.

        Bit-identical to ``[self.draw() for _ in range(count)]``,
        including the state left behind: the underlying PRNG advances by
        the same number of words and the buffer holds the unconsumed
        remainder of the last refill, so interleaving ``pregenerate``
        and ``draw`` calls produces the same stream as ``draw`` alone.

        The batched runner uses this to turn the per-miss ``draw()``
        calls of a whole cell into one vectorized row: ``getrandbits``
        consumes exactly one 32-bit Mersenne Twister word per call for
        widths <= 32, so the words are produced by numpy's MT19937 from
        a transplanted state and shifted down to ``width`` bits.  Wider
        RNGs (none in the paper's 8-bit datapath) and exotic PRNG states
        fall back to the scalar refill loop.
        """
        if count <= 0:
            return []
        taken: List[int] = []
        buffer = self._buffer
        while buffer and len(taken) < count:
            taken.append(buffer.pop())
        need = count - len(taken)
        if need == 0:
            return taken
        chunk = self._buffer_size
        refills = -(-need // chunk)
        values = self._bulk_values(refills * chunk)
        taken.extend(values[:need])
        # Unconsumed tail of the final refill, restored so pop() yields
        # it in the same order scalar draws would.
        buffer.extend(reversed(values[need:]))
        return taken

    def _bulk_values(self, total: int) -> List[int]:
        """``total`` draw-stream values (a whole number of refills).

        Each refill appends ``buffer_size`` words and ``draw`` pops from
        the end, so the consumed order is each chunk reversed.
        """
        width = self.width
        if width <= 32:
            values = self._numpy_words(total)
            if values is not None:
                shift = 32 - width
                return (values.reshape(-1, self._buffer_size)[:, ::-1]
                        >> shift).ravel().tolist()
        rand = self._rng.getrandbits
        chunk = self._buffer_size
        out: List[int] = []
        for _ in range(total // chunk):
            out.extend([rand(width) for _ in range(chunk)][::-1])
        return out

    def _numpy_words(self, total: int):
        """``total`` raw 32-bit MT words via numpy, advancing ``_rng``.

        Returns ``None`` when the stdlib PRNG state is not the plain
        624-word Mersenne Twister layout (e.g. a subclassed Random).
        """
        try:
            import numpy as np
        except ImportError:                    # pragma: no cover
            return None
        try:
            version, internal, gauss_next = self._rng.getstate()
        except (TypeError, ValueError):        # pragma: no cover
            return None
        if version != 3 or len(internal) != 625:
            return None
        bit_generator = np.random.MT19937()
        bit_generator.state = {
            "bit_generator": "MT19937",
            "state": {"key": np.asarray(internal[:-1], dtype=np.uint64),
                      "pos": internal[-1]},
        }
        words = bit_generator.random_raw(total)
        state = bit_generator.state["state"]
        self._rng.setstate((version,
                            tuple(int(word) for word in state["key"])
                            + (int(state["pos"]),),
                            gauss_next))
        return words

    def draw_masked(self, mask: int) -> int:
        """Return ``draw() & mask`` — the bounded value R' of Figure 4."""
        return self.draw() & mask

    def draw_below(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)`` (used by replacement policies).

        Unlike :meth:`draw_masked` this is exact for non-power-of-two
        bounds; it is used by components (e.g. Newcache's random
        replacement) that are not constrained by the Figure 4 datapath.
        """
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        return self._rng.randrange(bound)

    def fork(self, *components: object) -> "HardwareRng":
        """Create an independent child stream (for per-subsystem RNGs)."""
        child_seed = derive_seed(self._rng.getrandbits(64), *components)
        return HardwareRng(child_seed, width=self.width, buffer_size=self._buffer_size)
