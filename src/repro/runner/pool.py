"""Supervised, fault-tolerant fan-out of sweep cells over workers.

``run_cells`` is the single entry point every figure sweep funnels
through.  Results always come back in spec order, so callers regroup
them positionally regardless of which worker finished first.

Job count resolution (first match wins):

1. an explicit ``jobs=`` argument (``--jobs`` on the CLI),
2. the ``REPRO_JOBS`` environment variable,
3. ``os.cpu_count()``.

``jobs == 1`` (or a single cell) runs inline — no executor, no pickle
round-trip — which is also what keeps the whole suite usable on
single-core machines and under debuggers.

Sweeps are **incremental and resumable**: before dispatching, the
parent consults the content-addressed result cache
(:mod:`repro.runner.result_cache`) and only the cells whose fingerprint
misses are computed; every finished cell is checkpointed back to the
cache *as it lands*, so an interrupted sweep re-run recomputes only the
cells that had not finished.  Results are bit-identical with the cache
on or off and for any job count.

Pending cells that share a ``batch_group_key()`` are additionally
planned into **batches** (:mod:`repro.runner.batch`) — groups that
share one trace decode and warm L2 replay through the flat kernel and
are dispatched to a worker as one unit.  A failed, hung, or crashed
batch is split and its cells retried individually; ``--no-batch`` /
``REPRO_BATCH=0`` disables planning, and ``REPRO_CHECK`` always forces
the per-cell path.  Batched results are bit-identical to per-cell
results.

The pool mode is supervised rather than a bare ``Executor.map``:

* each cell gets its own future, dispatched with at most ``jobs`` in
  flight so a queued cell starts as soon as a worker frees up;
* a cell whose attempt raises is retried with exponential backoff, up
  to ``REPRO_CELL_RETRIES`` extra attempts (``retries=`` to override);
* a cell still running after ``REPRO_CELL_TIMEOUT`` seconds
  (``timeout=``; unset/0 disables) is killed with its pool, counted,
  and retried on a fresh pool;
* a worker death (``BrokenProcessPool`` — segfault, OOM-kill,
  ``os._exit``) resubmits only the unfinished cells to a fresh pool;
  after ``_MAX_POOL_RESTARTS`` pool losses the remaining cells degrade
  to inline execution in the parent, which cannot lose a worker;
* every transition is reported to :mod:`repro.runner.telemetry` and
  summarized in :func:`last_run_stats` (retries, timeouts, pool
  restarts, p50/p95 cell latency, checked-mode ``checks_run`` /
  ``violations``);
* a :exc:`~repro.check.CheckViolation` from a cell running under
  ``REPRO_CHECK`` is deterministic, so it is never retried: it is
  emitted as a ``check_violation`` telemetry event and re-raised at
  once with the failing spec attached.

Timeouts are enforced only in pool mode: inline execution cannot
preempt a running cell, so ``timeout`` is ignored there (retries still
apply).
"""

from __future__ import annotations

import os
import sys
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence, Union

from repro.check import CheckViolation, check_rate_from_env, check_totals
from repro.runner.batch import (
    BatchItem,
    plan_batches,
    resolve_batch,
    run_batch,
)
from repro.runner.cells import run_cell
from repro.runner.result_cache import RESULT_CACHE, ResultCache
from repro.runner.telemetry import Telemetry, worker_meta

#: statistics of the most recent ``run_cells`` call in this process
_LAST_RUN: Dict[str, float] = {}

#: pool losses tolerated before degrading to inline execution
_MAX_POOL_RESTARTS = 3

#: first retry backoff; doubles per subsequent attempt of the same cell
_RETRY_BACKOFF_S = 0.1

#: default extra attempts per cell when ``REPRO_CELL_RETRIES`` is unset
_DEFAULT_RETRIES = 2

#: how often the supervisor wakes to check deadlines (pool mode)
_WAIT_TICK_S = 0.05


class CellTimeoutError(TimeoutError):
    """A cell exceeded its per-attempt timeout on every allowed attempt."""


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve the worker count: argument > ``REPRO_JOBS`` > cpu count."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_JOBS must be an integer worker count, got {env!r}"
                ) from None
        else:
            jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def resolve_cell_timeout(timeout: Optional[float] = None) -> Optional[float]:
    """Per-attempt cell timeout: argument > ``REPRO_CELL_TIMEOUT`` > none.

    ``None``, an empty variable, or any value <= 0 disables the timeout.
    """
    if timeout is None:
        env = os.environ.get("REPRO_CELL_TIMEOUT", "").strip()
        if not env:
            return None
        try:
            timeout = float(env)
        except ValueError:
            raise ValueError(
                f"REPRO_CELL_TIMEOUT must be a number of seconds, got {env!r}"
            ) from None
    return timeout if timeout > 0 else None


def resolve_cell_retries(retries: Optional[int] = None) -> int:
    """Extra attempts per cell: argument > ``REPRO_CELL_RETRIES`` > 2."""
    if retries is None:
        env = os.environ.get("REPRO_CELL_RETRIES", "").strip()
        if not env:
            return _DEFAULT_RETRIES
        try:
            retries = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_CELL_RETRIES must be an integer retry count, got {env!r}"
            ) from None
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    return retries


def _run_cell_task(spec):
    """Worker entry point: the cell result plus execution metadata."""
    started = time.perf_counter()
    checks_before = check_totals()["checks_run"]
    result = run_cell(spec)
    meta = worker_meta(time.perf_counter() - started)
    checks_run = check_totals()["checks_run"] - checks_before
    if checks_run:
        meta["checks_run"] = checks_run
    return result, meta


# -- run-wide defaults (CLI surface) -----------------------------------------

_RUN_DEFAULTS: Dict[str, Optional[object]] = {"telemetry": None, "progress": None, "batch": None}


@contextmanager
def run_context(
    telemetry: Union[Telemetry, str, None] = None,
    progress: Optional[bool] = None,
    batch: Optional[bool] = None,
):
    """Scope default telemetry/progress/batching for nested
    ``run_cells`` calls.

    The CLI wraps a whole figure sweep in this so ``--telemetry PATH``
    (and ``--batch/--no-batch``) reaches the ``run_cells`` buried
    inside the experiment modules without threading a parameter through
    every signature.
    """
    saved = dict(_RUN_DEFAULTS)
    owned = None
    if isinstance(telemetry, str):
        telemetry = owned = Telemetry(path=telemetry, progress=progress)
    _RUN_DEFAULTS.update(telemetry=telemetry, progress=progress, batch=batch)
    try:
        yield telemetry
    finally:
        _RUN_DEFAULTS.clear()
        _RUN_DEFAULTS.update(saved)
        if owned is not None:
            owned.close()


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted non-empty list."""
    rank = max(0, min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


class _Supervisor:
    """Shared bookkeeping for one ``run_cells`` invocation."""

    def __init__(
        self,
        specs: Sequence,
        retries: int,
        timeout: Optional[float],
        telemetry: Telemetry,
        cache: ResultCache,
        fingerprints: List[Optional[str]],
        results: List,
        total: int,
    ):
        self.specs = specs
        self.retries = retries
        self.timeout = timeout
        self.telemetry = telemetry
        self.cache = cache
        self.fingerprints = fingerprints
        self.results = results
        self.total = total
        self.done = 0
        self.attempts: Dict[int, int] = {}
        self.latencies: List[float] = []
        self.counters = dict(
            retries=0,
            timeouts=0,
            pool_restarts=0,
            inline_fallback=0,
            checks_run=0,
            check_violations=0,
            batches=0,
            batched_cells=0,
            decode_reuse_hits=0,
            vectorized_cells=0,
            scalar_fallback_cells=0,
            lane_width=0,
        )

    def note_cached(self, index: int) -> None:
        self.done += 1
        self.telemetry.emit("cell_cached", index=index)
        self.telemetry.progress(self.done, self.total, "cached")

    def on_result(self, index: int, result, meta: dict) -> None:
        """Record one finished cell and checkpoint it immediately."""
        self.results[index] = result
        if self.fingerprints[index] is not None:
            self.cache.store(self.fingerprints[index], result)
        self.counters["checks_run"] += meta.get("checks_run", 0)
        self.latencies.append(meta.get("wall_s", 0.0))
        self.done += 1
        self.telemetry.emit("cell_finish", index=index, attempt=self.attempts.get(index, 0), **meta)
        self.telemetry.progress(self.done, self.total, f"last cell {meta.get('wall_s', 0):.2f}s")

    def on_failure(self, index: int, error: BaseException) -> bool:
        """Count one failed attempt; True if the cell may be retried."""
        attempt = self.attempts.get(index, 0) + 1
        self.attempts[index] = attempt
        if isinstance(error, CheckViolation):
            # A checked-mode divergence is deterministic — retrying the
            # same spec would only rediscover it.  Surface it at once.
            self.counters["check_violations"] += 1
            self.telemetry.emit(
                "check_violation",
                index=index,
                kind=error.kind,
                where=error.where,
                access_index=error.index,
                error=str(error),
                spec=error.spec,
            )
            return False
        if attempt > self.retries:
            return False
        self.counters["retries"] += 1
        self.telemetry.emit("cell_retry", index=index, attempt=attempt, error=repr(error))
        return True

    def on_batch_result(self, item: BatchItem, payload) -> None:
        """Record one finished batch: per-cell results plus counters."""
        results, metas, batch_meta = payload
        self.counters["batches"] += 1
        self.counters["batched_cells"] += len(item.indices)
        self.counters["decode_reuse_hits"] += batch_meta.get("decode_reuses", 0)
        batch = item.batch
        event = dict(
            batch_id=batch.batch_id,
            size=len(item.indices),
            decode_reuses=batch_meta.get("decode_reuses", 0),
        )
        if "lane_width" in batch_meta:
            # Lane metrics ride along only for kernel-backed batches.
            event["lane_width"] = batch_meta["lane_width"]
            event["vectorized_cells"] = batch_meta.get("vectorized_cells", 0)
            event["scalar_fallback_cells"] = batch_meta.get("scalar_fallback_cells", 0)
            self.counters["vectorized_cells"] += event["vectorized_cells"]
            self.counters["scalar_fallback_cells"] += event["scalar_fallback_cells"]
            self.counters["lane_width"] = max(
                self.counters["lane_width"], batch_meta["lane_width"]
            )
        self.telemetry.emit("batch_finish", **event)
        for index, result, meta in zip(item.indices, results, metas):
            meta["batch_id"] = batch.batch_id
            meta["batch_size"] = len(item.indices)
            if "checks_run" in batch_meta:
                # Checked batches (defensive fallback path) account
                # their checks once, on the first member's meta.
                meta["checks_run"] = batch_meta.pop("checks_run")
            self.on_result(index, result, meta)

    def on_batch_split(
        self, item: BatchItem, reason: str, error: Optional[BaseException] = None
    ) -> None:
        """Report that a batch is dissolving into per-cell retries.

        The split itself is the mitigation, so member cells are *not*
        charged an attempt here — a deterministic failer then exhausts
        its ordinary per-cell retries, while its innocent siblings
        complete individually.
        """
        self.telemetry.emit(
            "batch_split",
            batch_id=item.batch.batch_id,
            cells=list(item.indices),
            reason=reason,
            error=repr(error) if error is not None else None,
        )

    def on_batch_timeout(self, item: BatchItem) -> None:
        self.counters["timeouts"] += 1
        self.telemetry.emit(
            "batch_timeout",
            batch_id=item.batch.batch_id,
            cells=list(item.indices),
            timeout_s=self.timeout * len(item.indices),
        )

    def on_timeout(self, index: int) -> bool:
        """Count one timed-out attempt; True if the cell may be retried."""
        attempt = self.attempts.get(index, 0) + 1
        self.attempts[index] = attempt
        self.counters["timeouts"] += 1
        self.telemetry.emit("cell_timeout", index=index, attempt=attempt, timeout_s=self.timeout)
        if attempt > self.retries:
            return False
        self.counters["retries"] += 1
        return True

    def backoff(self, index: int) -> None:
        time.sleep(_RETRY_BACKOFF_S * (2 ** (self.attempts[index] - 1)))


def _run_inline(sup: _Supervisor, pending: Sequence) -> None:
    """Sequential execution with retry (timeouts cannot be enforced)."""
    for item in pending:
        if type(item) is BatchItem:
            sup.telemetry.emit(
                "batch_start", batch_id=item.batch.batch_id, cells=list(item.indices)
            )
            try:
                payload = run_batch(item.batch)
            except Exception as error:
                sup.on_batch_split(item, "error", error)
                _run_inline(sup, list(item.indices))
                continue
            sup.on_batch_result(item, payload)
            continue
        i = item
        while True:
            sup.telemetry.emit("cell_start", index=i, attempt=sup.attempts.get(i, 0))
            try:
                result, meta = _run_cell_task(sup.specs[i])
            except Exception as error:
                if not sup.on_failure(i, error):
                    raise
                sup.backoff(i)
                continue
            sup.on_result(i, result, meta)
            break


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Terminate a pool's workers without waiting on running cells.

    ``Executor.shutdown`` alone would block behind a hung or dead
    worker, so the workers are SIGTERMed first; the final ``wait=True``
    then only joins the management thread, which exits promptly once it
    notices its processes are gone (leaving no half-dead executor for
    the interpreter's atexit hook to trip over).
    """
    try:
        processes = list(pool._processes.values())
    except AttributeError:  # implementation detail moved
        processes = []
    for process in processes:
        try:
            process.terminate()
        except OSError:
            pass
    pool.shutdown(wait=True, cancel_futures=True)


def _split_to_front(queue: deque, item: BatchItem) -> None:
    """Requeue a dissolved batch's cells, preserving their order."""
    for index in reversed(item.indices):
        queue.appendleft(index)


def _run_supervised(sup: _Supervisor, pending: Sequence, jobs: int) -> int:
    """Pool execution with retry, timeout and crash recovery.

    ``pending`` holds plain cell indices and :class:`BatchItem`
    entries.  A batch is dispatched as one future with a deadline of
    ``timeout * len(batch)``; any failure, timeout, or pool loss splits
    it back into individual indices (never into a batch again), so
    per-cell retry semantics are preserved.  Returns the number of
    workers actually used.  Falls back to :func:`_run_inline` for
    whatever is left after the restart budget is exhausted.
    """
    queue = deque(pending)
    jobs_used = 1
    restarts = 0
    while queue:
        if restarts > _MAX_POOL_RESTARTS:
            sup.counters["inline_fallback"] = 1
            sup.telemetry.emit("inline_fallback", pending=len(queue), restarts=restarts)
            _run_inline(sup, list(queue))
            return jobs_used
        workers = min(jobs, len(queue))
        jobs_used = max(jobs_used, workers)
        restart_reason = None
        in_flight: Dict = {}  # future -> (item, submit time)
        pool = ProcessPoolExecutor(max_workers=workers)
        graceful = False
        try:
            while queue or in_flight:
                while queue and len(in_flight) < workers:
                    item = queue.popleft()
                    if type(item) is BatchItem:
                        sup.telemetry.emit(
                            "batch_start", batch_id=item.batch.batch_id, cells=list(item.indices)
                        )
                        future = pool.submit(run_batch, item.batch)
                    else:
                        sup.telemetry.emit(
                            "cell_start", index=item, attempt=sup.attempts.get(item, 0)
                        )
                        future = pool.submit(_run_cell_task, sup.specs[item])
                    in_flight[future] = (item, time.monotonic())
                tick = _WAIT_TICK_S if sup.timeout is not None else None
                finished, _ = wait(set(in_flight), timeout=tick, return_when=FIRST_COMPLETED)
                for future in finished:
                    item, _submitted = in_flight.pop(future)
                    error = future.exception()
                    if error is None:
                        if type(item) is BatchItem:
                            sup.on_batch_result(item, future.result())
                        else:
                            result, meta = future.result()
                            sup.on_result(item, result, meta)
                    elif isinstance(error, BrokenProcessPool):
                        in_flight[future] = (item, _submitted)
                        raise error
                    elif type(item) is BatchItem:
                        sup.on_batch_split(item, "error", error)
                        _split_to_front(queue, item)
                    else:
                        if not sup.on_failure(item, error):
                            raise error
                        sup.backoff(item)
                        queue.append(item)
                if sup.timeout is not None and in_flight:
                    now = time.monotonic()
                    expired = []
                    for future, (item, t0) in in_flight.items():
                        if future.done():
                            continue
                        scale = len(item.indices) if type(item) is BatchItem else 1
                        if now - t0 > sup.timeout * scale:
                            expired.append(item)
                    if expired:
                        for item in expired:
                            if type(item) is BatchItem:
                                sup.on_batch_timeout(item)
                            elif not sup.on_timeout(item):
                                raise CellTimeoutError(
                                    f"cell {item} exceeded its {sup.timeout}s timeout on "
                                    f"every allowed attempt "
                                    f"(REPRO_CELL_TIMEOUT / REPRO_CELL_RETRIES)"
                                )
                        restart_reason = "timeout"
                        break
            graceful = restart_reason is None
        except BrokenProcessPool:
            restart_reason = "broken_pool"
            # One of the in-flight cells likely killed the worker, but
            # the executor cannot say which: charge them all an attempt
            # so a deterministic killer cell cannot restart the pool
            # forever (the restart budget below is the hard stop).
            # Batches are not charged — they split in the salvage pass
            # below, and the killer then pays per-cell attempts.
            for future, (item, _t0) in in_flight.items():
                salvaged = future.done() and not future.cancelled() and future.exception() is None
                if type(item) is not BatchItem and not salvaged:
                    sup.attempts[item] = sup.attempts.get(item, 0) + 1
        finally:
            if graceful:
                pool.shutdown(wait=True, cancel_futures=True)
            else:
                # Timed-out / crashed / fatally-failed run: never wait
                # on a hung or dead worker.
                _kill_pool(pool)
        if restart_reason is not None:
            # Salvage futures that completed before the loss, requeue
            # everything still unfinished on a fresh pool (batches are
            # split: their cells retry individually).
            for future, (item, _t0) in in_flight.items():
                if future.done() and not future.cancelled() and future.exception() is None:
                    if type(item) is BatchItem:
                        sup.on_batch_result(item, future.result())
                    else:
                        result, meta = future.result()
                        sup.on_result(item, result, meta)
                elif type(item) is BatchItem:
                    sup.on_batch_split(item, restart_reason)
                    _split_to_front(queue, item)
                else:
                    queue.appendleft(item)
            restarts += 1
            sup.counters["pool_restarts"] = restarts
            sup.telemetry.emit(
                "pool_restart", reason=restart_reason, restarts=restarts, pending=len(queue)
            )
    return jobs_used


def run_cells(
    specs: Sequence,
    jobs: Optional[int] = None,
    chunksize: Optional[int] = None,
    result_cache: Optional[ResultCache] = None,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    telemetry: Union[Telemetry, str, None] = None,
    progress: Optional[bool] = None,
    batch: Optional[bool] = None,
    stats_sink: Optional[Dict] = None,
) -> List:
    """Run every cell; returns results in the order of ``specs``.

    Accepts :class:`CellSpec` instances or any other picklable spec
    :func:`run_cell` understands (specs with a ``run()`` method).

    ``batch`` resolves argument > :func:`run_context` default >
    ``REPRO_BATCH`` > on.  When on, pending cells whose specs share a
    ``batch_group_key()`` are planned into :class:`CellBatch` work
    items (:func:`repro.runner.batch.plan_batches`) and dispatched as
    units; results are bit-identical either way.  Planning happens
    *after* the per-cell result-cache check, so a fully cached grid
    never plans a batch or touches a trace, and it is skipped entirely
    under ``REPRO_CHECK`` so checked runs take the per-cell oracle
    path.

    ``jobs`` follows :func:`resolve_jobs`; ``timeout`` and ``retries``
    follow :func:`resolve_cell_timeout` / :func:`resolve_cell_retries`
    (``REPRO_CELL_TIMEOUT`` / ``REPRO_CELL_RETRIES``).  ``chunksize``
    is accepted for backwards compatibility and ignored: supervision is
    per-cell, and specs are small values whose pickle cost is noise.

    ``result_cache`` defaults to the process-wide
    :data:`~repro.runner.result_cache.RESULT_CACHE`; cells whose
    fingerprint is already stored are not recomputed, and every newly
    finished cell is checkpointed back immediately.  Only specs that
    expose ``result_cache_token()`` participate — others always run and
    are counted as ``result_cache_uncacheable`` in
    :func:`last_run_stats`.

    ``telemetry`` is a :class:`~repro.runner.telemetry.Telemetry`, a
    JSONL path, or ``None`` (inherit the :func:`run_context` default);
    ``progress`` forces the live progress line on/off.

    ``stats_sink``, when given, receives the final
    :func:`last_run_stats` payload for *this* call — the process-wide
    ``last_run_stats()`` is a single slot, so concurrent callers (the
    sweep service's job thread vs. the main thread) pass a sink to get
    their own copy race-free.
    """
    del chunksize  # legacy knob; supervision is per-cell
    jobs = resolve_jobs(jobs)
    timeout = resolve_cell_timeout(timeout)
    retries = resolve_cell_retries(retries)
    started = time.perf_counter()
    cache = RESULT_CACHE if result_cache is None else result_cache

    if telemetry is None:
        telemetry = _RUN_DEFAULTS["telemetry"]
    if progress is None:
        progress = _RUN_DEFAULTS["progress"]
    owned = None
    if isinstance(telemetry, str):
        telemetry = owned = Telemetry(path=telemetry, progress=progress)
    elif telemetry is None:
        telemetry = owned = Telemetry(path=None, progress=bool(progress))

    total = len(specs)
    results: List = [None] * total
    fingerprints: List[Optional[str]] = [None] * total
    pending: List[int] = []
    cache_hits = 0
    cache_misses = 0
    uncacheable = 0
    sup = _Supervisor(specs, retries, timeout, telemetry, cache, fingerprints, results, total)
    try:
        cached_indices: List[int] = []
        for i, spec in enumerate(specs):
            fingerprint, cached = cache.lookup_spec(spec)
            if fingerprint is None:
                if not hasattr(spec, "result_cache_token"):
                    uncacheable += 1
                pending.append(i)
                continue
            fingerprints[i] = fingerprint
            if cached is not None:
                results[i] = cached
                cache_hits += 1
                cached_indices.append(i)
                continue
            cache_misses += 1
            pending.append(i)

        if batch is None:
            batch = _RUN_DEFAULTS["batch"]
        batching = resolve_batch(batch)
        work: List = list(pending)
        planned_batches = 0
        if batching and len(pending) > 1 and check_rate_from_env() is None:
            work = plan_batches(specs, pending, jobs=jobs)
            planned_batches = sum(1 for item in work if type(item) is BatchItem)

        telemetry.emit(
            "run_start",
            cells=total,
            pending=len(pending),
            cached=cache_hits,
            jobs=jobs,
            timeout_s=timeout,
            retries=retries,
            batches=planned_batches,
            python=".".join(map(str, sys.version_info[:3])),
            pid=os.getpid(),
        )
        for i in cached_indices:
            sup.note_cached(i)

        jobs_used = 1
        try:
            if pending:
                # A single pending work item still goes through the
                # pool when a timeout is requested: inline execution
                # cannot preempt it.
                inline = jobs == 1 or (len(work) == 1 and timeout is None)
                if inline:
                    _run_inline(sup, work)
                else:
                    jobs_used = _run_supervised(sup, work, jobs)
        finally:
            # Recorded even when the run dies (e.g. a CheckViolation):
            # last_run_stats still reports what was counted up to the
            # failure.  run_finish is only emitted for completed runs.
            elapsed = time.perf_counter() - started
            ordered = sorted(sup.latencies)
            _LAST_RUN.clear()
            _LAST_RUN.update(
                cells=total,
                jobs=jobs_used,
                seconds=elapsed,
                cells_per_sec=(total / elapsed) if elapsed > 0 else 0.0,
                result_cache_hits=cache_hits,
                result_cache_misses=cache_misses,
                result_cache_uncacheable=uncacheable,
                retries=sup.counters["retries"],
                timeouts=sup.counters["timeouts"],
                pool_restarts=sup.counters["pool_restarts"],
                inline_fallback=sup.counters["inline_fallback"],
                checks_run=sup.counters["checks_run"],
                violations=sup.counters["check_violations"],
                batches=sup.counters["batches"],
                batched_cells=sup.counters["batched_cells"],
                decode_reuse_hits=sup.counters["decode_reuse_hits"],
                lane_width=sup.counters["lane_width"],
                vectorized_cells=sup.counters["vectorized_cells"],
                scalar_fallback_cells=sup.counters["scalar_fallback_cells"],
                latency_p50_s=_percentile(ordered, 0.50) if ordered else 0.0,
                latency_p95_s=_percentile(ordered, 0.95) if ordered else 0.0,
            )
            if stats_sink is not None:
                stats_sink.update(_LAST_RUN)
        telemetry.emit("run_finish", **_LAST_RUN)
    finally:
        if owned is not None:
            owned.close()
        else:
            telemetry.finish_progress()
    return results


def last_run_stats() -> Dict[str, float]:
    """Timing of the most recent :func:`run_cells` call (a copy)."""
    return dict(_LAST_RUN)
