"""Ordered fan-out of sweep cells over worker processes.

``run_cells`` is the single entry point every figure sweep funnels
through.  Results always come back in spec order, so callers regroup
them positionally regardless of which worker finished first.

Job count resolution (first match wins):

1. an explicit ``jobs=`` argument (``--jobs`` on the CLI),
2. the ``REPRO_JOBS`` environment variable,
3. ``os.cpu_count()``.

``jobs == 1`` (or a single cell) runs inline — no executor, no pickle
round-trip — which is also what keeps the whole suite usable on
single-core machines and under debuggers.

Sweeps are **incremental**: before dispatching, the parent process
consults the content-addressed result cache
(:mod:`repro.runner.result_cache`) and only the cells whose fingerprint
misses are computed; everything else is served from disk.  Workers
receive only the small spec values — traces travel as trace-cache keys
(benchmark name / message size / seed inside the spec), never as
pickled record payloads — and the pending cells are dispatched in
chunks so each worker amortizes its process and pickle overhead over
several cells.  Results are bit-identical with the cache on or off and
for any job count.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence

from repro.runner.cells import run_cell
from repro.runner.result_cache import RESULT_CACHE, ResultCache

#: statistics of the most recent ``run_cells`` call in this process
_LAST_RUN: Dict[str, float] = {}


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve the worker count: argument > ``REPRO_JOBS`` > cpu count."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            jobs = int(env)
        else:
            jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def run_cells(specs: Sequence, jobs: Optional[int] = None,
              chunksize: Optional[int] = None,
              result_cache: Optional[ResultCache] = None) -> List:
    """Run every cell; returns results in the order of ``specs``.

    Accepts :class:`CellSpec` instances or any other picklable spec
    :func:`run_cell` understands (specs with a ``run()`` method).

    ``jobs`` follows :func:`resolve_jobs`; ``chunksize`` (pool mode
    only) defaults to ``pending // (jobs * 4)`` so each worker gets
    several batches, balancing stragglers against pickle overhead.

    ``result_cache`` defaults to the process-wide
    :data:`~repro.runner.result_cache.RESULT_CACHE`; cells whose
    fingerprint is already stored are not recomputed.  Only specs that
    expose ``result_cache_token()`` participate — others always run.
    """
    jobs = resolve_jobs(jobs)
    started = time.perf_counter()
    cache = RESULT_CACHE if result_cache is None else result_cache

    total = len(specs)
    results: List = [None] * total
    fingerprints: List[Optional[str]] = [None] * total
    pending: List[int] = []
    cache_hits = 0
    cache_misses = 0
    if cache.enabled:
        for i, spec in enumerate(specs):
            fingerprint = cache.fingerprint(spec)
            fingerprints[i] = fingerprint
            if fingerprint is not None:
                cached = cache.load(fingerprint)
                if cached is not None:
                    results[i] = cached
                    cache_hits += 1
                    continue
                cache_misses += 1
            pending.append(i)
    else:
        pending = list(range(total))

    jobs_used = 1
    if pending:
        pending_specs = [specs[i] for i in pending]
        if jobs == 1 or len(pending_specs) <= 1:
            computed = [run_cell(spec) for spec in pending_specs]
        else:
            jobs_used = min(jobs, len(pending_specs))
            if chunksize is None:
                chunksize = max(1, len(pending_specs) // (jobs_used * 4))
            with ProcessPoolExecutor(max_workers=jobs_used) as pool:
                computed = list(pool.map(run_cell, pending_specs,
                                         chunksize=chunksize))
        for i, result in zip(pending, computed):
            results[i] = result
            if fingerprints[i] is not None:
                cache.store(fingerprints[i], result)

    elapsed = time.perf_counter() - started
    _LAST_RUN.clear()
    _LAST_RUN.update(
        cells=total, jobs=jobs_used, seconds=elapsed,
        cells_per_sec=(total / elapsed) if elapsed > 0 else 0.0,
        result_cache_hits=cache_hits, result_cache_misses=cache_misses)
    return results


def last_run_stats() -> Dict[str, float]:
    """Timing of the most recent :func:`run_cells` call (a copy)."""
    return dict(_LAST_RUN)
