"""Content-addressed cache of per-cell sweep results.

A sweep cell is a pure function of its spec (that is what makes the
parallel runner bit-identical for any job count), so its *result* is
fully identified by a fingerprint of

* the spec itself (``repr`` of the frozen dataclass — every field,
  including the simulator config, participates),
* the spec's ``result_cache_token()`` — a version string naming every
  piece of code whose behaviour the result depends on (simulator
  semantics, trace generators); bumping any named version orphans old
  entries rather than serving stale results,
* :data:`SIM_CODE_VERSION` below, the simulator-wide version.

``run_cells`` consults this cache in the parent process before
dispatching: cells already computed by a previous run (or an earlier
identical spec in this run) are served from disk, making re-run sweeps
incremental — only changed cells simulate.

Specs without a ``result_cache_token()`` method are never cached (their
result may not be a pure function of ``repr``), so arbitrary run()-specs
keep working unchanged.

The disk layout mirrors the trace cache: one pickle per fingerprint
under ``~/.cache/repro/results`` (override with ``REPRO_RESULT_CACHE``,
disable with ``0``/``off``/``none``/``disabled``), atomic writes, and
the shared mtime-LRU size bound (``REPRO_CACHE_MAX_MB``, see
:mod:`repro.util.diskcache`).  A corrupt entry — unreadable pickle or
a stored fingerprint that does not match its file name — is
*quarantined*: unlinked on first contact, counted in
``corrupt_evicted``, and the cell recomputes; ``python -m repro cache
--stats`` runs the same integrity scan over the whole directory.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from contextlib import contextmanager
from typing import Optional

from repro.util.diskcache import maybe_evict

#: bump when simulator semantics change results for unchanged specs
#: (timing model, controller, scheme construction, RNG derivation, ...)
SIM_CODE_VERSION = 2

#: ``REPRO_RESULT_CACHE`` values that disable the cache
_DISABLED_VALUES = frozenset({"0", "off", "none", "disabled"})


def default_result_dir() -> Optional[str]:
    """Resolve the result-cache directory from the environment."""
    override = os.environ.get("REPRO_RESULT_CACHE")
    if override is not None:
        if override.strip().lower() in _DISABLED_VALUES:
            return None
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "results")


class ResultCache:
    """Disk cache of cell results keyed by spec + code-version hash."""

    def __init__(self, disk_dir: Optional[str] = None, use_default_disk_dir: bool = True):
        if disk_dir is None and use_default_disk_dir:
            disk_dir = default_result_dir()
        self.disk_dir = disk_dir
        self.hits = 0
        self.misses = 0
        self.store_failures = 0
        self.corrupt_evicted = 0
        self._suspended = 0
        # Counter updates come from whichever thread ran the lookup —
        # the sweep service serves /metrics while a job thread is
        # populating the same cache — so they go through one lock and
        # are read back with :meth:`stats_snapshot`.
        self._stats_lock = threading.Lock()

    def _count(self, counter: str, delta: int = 1) -> None:
        with self._stats_lock:
            setattr(self, counter, getattr(self, counter) + delta)

    def stats_snapshot(self) -> dict:
        """A consistent copy of the counters, safe to call from any
        thread while another thread is using the cache.

        This is the one source the live-service ``/metrics`` endpoint
        and ``python -m repro cache --stats`` both read, so the two
        always agree on what the counters mean.
        """
        with self._stats_lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "store_failures": self.store_failures,
                "corrupt_evicted": self.corrupt_evicted,
                "enabled": self.enabled,
                "disk_dir": self.disk_dir,
            }

    # -- keying --------------------------------------------------------------

    @staticmethod
    def fingerprint(spec) -> Optional[str]:
        """Content hash identifying ``spec``'s result; ``None`` if the
        spec does not opt into result caching."""
        token_fn = getattr(spec, "result_cache_token", None)
        if token_fn is None:
            return None
        material = f"result:v{SIM_CODE_VERSION}|{token_fn()}|{type(spec).__qualname__}|{spec!r}"
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def _path_for(self, fingerprint: str) -> str:
        return os.path.join(self.disk_dir, f"{fingerprint}.result")

    def lookup_spec(self, spec):
        """``(fingerprint, cached_result)`` for one spec in one call.

        The runner's pre-dispatch sweep uses this per cell *before* any
        batch planning: a spec that does not opt into caching returns
        ``(None, None)``; a stored result returns its fingerprint and
        the result; a miss returns the fingerprint alone.  Keying and
        lookup are pure functions of the spec value — no trace, decode,
        or scheme state is touched — which is what lets a fully cached
        grid short-circuit without ever planning a batch.
        """
        fingerprint = self.fingerprint(spec) if self.enabled else None
        if fingerprint is None:
            return None, None
        return fingerprint, self.load(fingerprint)

    # -- state ---------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.disk_dir is not None and not self._suspended

    @contextmanager
    def disabled(self):
        """Temporarily bypass the cache (benchmarks measure cold runs)."""
        self._suspended += 1
        try:
            yield self
        finally:
            self._suspended -= 1

    # -- load/store ----------------------------------------------------------

    def _quarantine(self, path: str) -> None:
        """Remove a corrupt/mismatched entry so it cannot be retried
        forever (and cannot be served by a future buggy reader)."""
        try:
            os.unlink(path)
        except OSError:
            return
        self._count("corrupt_evicted")

    def load(self, fingerprint: str):
        """The cached result, or ``None`` on any kind of miss.

        A missing file is a plain miss; an entry that exists but cannot
        be unpickled — or whose stored fingerprint does not match its
        name (truncated write, bit rot, tampering) — is *quarantined*:
        unlinked on the spot and counted in ``corrupt_evicted``.
        """
        if not self.enabled:
            return None
        path = self._path_for(fingerprint)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            stored_fingerprint, result = payload
        except FileNotFoundError:
            self._count("misses")
            return None
        except (
            OSError,
            pickle.UnpicklingError,
            EOFError,
            ValueError,
            TypeError,
            AttributeError,
            ModuleNotFoundError,
        ):
            self._quarantine(path)
            self._count("misses")
            return None
        if stored_fingerprint != fingerprint:
            self._quarantine(path)
            self._count("misses")
            return None
        try:
            # A read keeps the entry young for the mtime-LRU bound.
            os.utime(path)
        except OSError:
            pass
        self._count("hits")
        return result

    def store(self, fingerprint: str, result) -> None:
        if not self.enabled:
            return
        try:
            os.makedirs(self.disk_dir, exist_ok=True)
            path = self._path_for(fingerprint)
            fd, tmp = tempfile.mkstemp(dir=self.disk_dir, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump((fingerprint, result), fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            maybe_evict(self.disk_dir)
        except (OSError, pickle.PicklingError, TypeError, AttributeError):
            # Unpicklable results (or a full disk) only cost caching.
            self._count("store_failures")

    # -- maintenance ---------------------------------------------------------

    def verify(self) -> dict:
        """Integrity-scan every entry on disk; quarantine the bad ones.

        Each ``*.result`` file must unpickle to a
        ``(fingerprint, result)`` pair whose fingerprint matches its
        file name.  Returns ``{"scanned": n, "quarantined": m}``; the
        quarantined count also accumulates into ``corrupt_evicted``.
        """
        scanned = 0
        quarantined_before = self.corrupt_evicted
        if self.disk_dir is None or not os.path.isdir(self.disk_dir):
            return {"scanned": 0, "quarantined": 0}
        for name in sorted(os.listdir(self.disk_dir)):
            if not name.endswith(".result"):
                continue
            scanned += 1
            path = os.path.join(self.disk_dir, name)
            try:
                with open(path, "rb") as fh:
                    stored_fingerprint, _result = pickle.load(fh)
            except FileNotFoundError:
                continue
            except (
                OSError,
                pickle.UnpicklingError,
                EOFError,
                ValueError,
                TypeError,
                AttributeError,
                ModuleNotFoundError,
            ):
                self._quarantine(path)
                continue
            if f"{stored_fingerprint}.result" != name:
                self._quarantine(path)
        return {"scanned": scanned, "quarantined": self.corrupt_evicted - quarantined_before}


#: process-wide result cache used by :func:`repro.runner.pool.run_cells`
RESULT_CACHE = ResultCache()
