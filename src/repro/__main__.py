"""``python -m repro`` — scope demo, ``sweep`` and ``leakage`` subcommands.

Without arguments: lists the implemented systems and the table/figure
-> bench mapping, then runs a 5-second demonstration (the Flush-Reload
attack against demand fetch succeeds; against the random fill cache it
fails).

``python -m repro sweep <figure>`` runs one evaluation sweep through
the supervised parallel runner (``--jobs`` / ``REPRO_JOBS``; per-cell
retry and timeout via ``REPRO_CELL_RETRIES`` / ``REPRO_CELL_TIMEOUT``)
and appends its wall-clock and throughput to ``BENCH_runner.json``.
``--telemetry PATH`` streams a JSONL event log of the run; ``--resume``
re-runs an interrupted sweep, recomputing only the cells that had not
been checkpointed into the result cache.  Compatible cells are batched
by default so one trace decode serves a whole group
(``--batch/--no-batch`` / ``REPRO_BATCH``); results are bit-identical
either way.

``python -m repro leakage`` runs the unified leakage sweep — empirical
mutual information, guessing entropy and success-rate curves for the
Equation (7) reference channel, Flush-Reload and the cache-occupancy
channel, per scheme x window x seed — validates it against the
Section V-B closed forms, and writes ``BENCH_leakage.json``.

``python -m repro serve`` runs the asyncio sweep service
(:mod:`repro.service`): ``POST /sweeps`` accepts CellSpec /
LeakageCellSpec grids as versioned JSON, runs them through the same
supervised runner behind a bounded work queue with per-client rate
limits, shares one content-addressed result store across all sweeps,
and streams per-sweep JSONL telemetry from ``GET /sweeps/{id}/events``
(``--port/--jobs/--queue-depth/--max-cells-per-request/--rate``).
The service is crash-safe: accepted sweeps are journaled under the
spool directory (``--spool``), a restart replays the journal and
resumes interrupted work from the result-cache checkpoints, and
SIGTERM/SIGINT drain gracefully — the running sweep finishes, queued
sweeps survive to the next process (``--no-recover`` opts out;
``--port-file`` publishes the bound port for supervisors).

``--check[=RATE]`` on both sweeps turns on checked simulation mode
(:mod:`repro.check`): every cell runs under the invariant sanitizer
and the differential oracle, sampled every RATE accesses (default
1024).  The flag exports ``REPRO_CHECK`` so worker processes inherit
it; on ``leakage`` it additionally keeps its original meaning of
exiting non-zero when a validation check fails.
"""

import argparse
import os
import sys

from repro import __version__
from repro.attacks import run_flush_reload_trials
from repro.cache.set_associative import SetAssociativeCache
from repro.core.window import RandomFillWindow
from repro.secure.region import ProtectedRegion

EXPERIMENTS = (
    ("Table I", "attack classification", "test_table1_attack_classification"),
    ("Figure 2", "collision-attack timing characteristic", "test_fig2_timing_characteristic"),
    ("Table III", "P1-P2 vs window size", "test_table3_p1p2"),
    ("Figure 5", "storage channel capacity", "test_fig5_channel_capacity"),
    ("Figure 6", "AES performance under defences", "test_fig6_crypto_performance"),
    ("Figure 7", "window size vs AES performance", "test_fig7_window_size"),
    ("Figure 8", "SMT co-runner throughput", "test_fig8_concurrent"),
    ("Figure 9", "Eff(d) locality profiles", "test_fig9_profiling"),
    ("Figure 10", "MPKI/IPC vs window shape", "test_fig10_mpki_ipc"),
    ("Sec. VII", "tagged prefetcher comparison", "test_sec7_prefetcher_comparison"),
    ("(extra)", "fill-path ablations", "test_ablation_fill_path"),
)

#: ``sweep`` subcommand choices -> short description
SWEEPS = {
    "fig6": "AES-CBC performance under the defences",
    "fig7": "AES-CBC performance vs window size",
    "fig8": "SMT co-runner throughput",
    "fig9": "Eff(d) locality profiles",
    "fig10": "general-benchmark MPKI/IPC window sweep",
    "prefetch": "tagged prefetcher vs random fill",
}


def demo() -> None:
    print(f"repro {__version__} — Random Fill Cache Architecture "
          "(Liu & Lee, MICRO 2014)")
    print("\nReproduced experiments (pytest benchmarks/ --benchmark-only):")
    for figure, what, bench in EXPERIMENTS:
        print(f"  {figure:9s} {what:40s} benchmarks/{bench}.py")

    print("\nSmoke demo: Flush-Reload against a 1-KB table (16 lines)")
    region = ProtectedRegion(0x10000, 1024)
    for label, window in (("demand fetch", RandomFillWindow(0, 0)),
                          ("random fill [-16,+15]", RandomFillWindow(16, 15))):
        result = run_flush_reload_trials(
            SetAssociativeCache(32 * 1024, 4), region, window,
            trials=400, seed=1)
        print(f"  {label:22s} attacker accuracy {result.exact_accuracy:.2f}, "
              f"leakage {result.mutual_information:.2f} bits")
    print("\nSee README.md, DESIGN.md and EXPERIMENTS.md for the full story.")


def _sweep_profile_spec(args: argparse.Namespace):
    """A representative first cell of the chosen figure's grid."""
    from repro.runner.cells import CellSpec

    if args.figure in ("fig6", "fig7"):
        return CellSpec(kind="crypto", scheme="random_fill", window=(16, 15),
                        message_kb=args.message_kb, seed=args.seed)
    if args.figure == "fig8":
        return CellSpec(kind="concurrent", scheme="random_fill",
                        benchmark="sjeng", window=(16, 15),
                        n_refs=args.n_refs, seed=args.seed)
    if args.figure == "fig9":
        return CellSpec(kind="profile", benchmark="astar", window=(16, 15),
                        n_refs=args.n_refs, seed=args.seed)
    if args.figure == "prefetch":
        return CellSpec(kind="general", scheme="tagged_prefetch",
                        benchmark="lbm", window=(0, 0), n_refs=args.n_refs,
                        seed=args.seed)
    return CellSpec(kind="general", benchmark="astar", window=(4, 3),
                    n_refs=args.n_refs, seed=args.seed)


def _run_profile(spec) -> None:
    from repro.runner.profiler import profile_cell

    print(f"profiling one cell under cProfile: {spec}")
    _result, report = profile_cell(spec)
    print(report)


def _profile_grid_specs(args: argparse.Namespace):
    """The full cell grid for figures whose ``--profile`` should show
    the batched path (``None`` -> profile a single cell instead)."""
    if args.figure != "fig10":
        return None
    from repro.experiments.perf_general import figure10_specs

    return figure10_specs(n_refs=args.n_refs, seed=args.seed)


def _batch_label(batch) -> str:
    first = batch.cells[0]
    detail = getattr(first, "benchmark", None)
    if not detail:
        channel = getattr(first, "channel", "")
        scheme = getattr(first, "scheme", "")
        detail = f"{channel}/{scheme}" if channel else ""
    return f"{batch.kind}:{detail}" if detail else batch.kind


def _run_profile_batched(specs, batch) -> bool:
    """Profile the first planned batch of ``specs`` under cProfile.

    Prints the batch plan (groups, cells per group) first, so the
    profile is read in context of what the real sweep would dispatch.
    Returns ``False`` — caller falls back to single-cell profiling —
    when batching is off (flag, env, or checked mode) or when the grid
    plans no batch.
    """
    from repro.check import check_rate_from_env
    from repro.cpu.batch import lane_eligible
    from repro.runner.batch import (
        BatchItem, plan_batches, resolve_batch, resolve_lanes,
    )
    from repro.runner.profiler import profile_batch

    try:
        batching = resolve_batch(batch)
        lane_width = resolve_lanes()
    except ValueError as error:
        sys.exit(f"error: {error}")
    if not batching or check_rate_from_env() is not None:
        return False
    items = plan_batches(specs, range(len(specs)))
    batches = [item for item in items if isinstance(item, BatchItem)]
    if not batches:
        return False
    batched_cells = sum(len(item.indices) for item in batches)
    print(f"batch plan: {len(batches)} batches covering {batched_cells} of "
          f"{len(specs)} cells (lane width {lane_width})")
    lane_batch = None
    for item in batches:
        eligible = 0
        if item.batch.kind == "general" and lane_width >= 2:
            eligible = sum(lane_eligible(spec) for spec in item.batch.cells)
        fallback = len(item.indices) - eligible
        lanes_note = (f"{eligible:3d} lane / {fallback} fallback"
                      if eligible else "scalar")
        print(f"  {item.batch.batch_id:4s} {_batch_label(item.batch):28s} "
              f"{len(item.indices):3d} cells  {lanes_note}")
        if eligible >= 2 and lane_batch is None:
            lane_batch = item
    first = lane_batch or batches[0]
    kind = "lane batch" if first is lane_batch else "batch"
    print(f"\nprofiling {kind} {first.batch.batch_id} "
          f"({len(first.indices)} cells) under cProfile")
    _results, report = profile_batch(first.batch)
    print(report)
    return True


def _resolve_jobs_or_exit(jobs):
    """CLI-friendly job resolution: a bad ``--jobs`` / ``REPRO_JOBS``
    is a usage error, not a traceback."""
    from repro.runner.pool import resolve_jobs

    try:
        return resolve_jobs(jobs)
    except ValueError as error:
        sys.exit(f"error: {error}")


def _apply_check_mode(value) -> None:
    """Export a ``--check[=RATE]`` request as ``REPRO_CHECK``.

    Setting the environment variable (rather than threading a flag)
    means worker processes inherit checked mode for free.  A malformed
    value is a usage error, not a traceback — and never silently off.
    """
    if value is None:
        return
    from repro.check import DEFAULT_RATE, ENV_VAR, parse_check_value

    try:
        rate = parse_check_value(value)
    except ValueError as error:
        sys.exit(f"error: --check: {error}")
    if rate is None:
        return
    os.environ[ENV_VAR] = value
    suffix = "" if rate == DEFAULT_RATE else f" (every {rate} accesses)"
    print(f"checked mode on: invariant sanitizer + differential "
          f"oracle{suffix}")


def _validate_cache_env() -> None:
    """Fail fast on a malformed ``REPRO_CACHE_MAX_MB`` before any cell
    runs (the workers would each hit the same error mid-sweep)."""
    from repro.util.diskcache import max_cache_bytes

    try:
        max_cache_bytes()
    except ValueError as error:
        sys.exit(f"error: {error}")


def _check_resume(resume: bool) -> None:
    """``--resume`` relies on the result-cache checkpoints; refuse to
    pretend when the cache is disabled."""
    if not resume:
        return
    from repro.runner.result_cache import RESULT_CACHE
    if not RESULT_CACHE.enabled:
        sys.exit("--resume needs the result cache, but it is disabled "
                 "(REPRO_RESULT_CACHE); unset it and re-run")


def _print_run_stats(stats: dict, jobs: int, resume: bool = False) -> None:
    """Shared post-sweep summary: throughput plus supervision counters."""
    print(f"\n{stats['cells']:.0f} cells in {stats['seconds']:.2f}s "
          f"({stats['cells_per_sec']:.1f} cells/s, jobs={jobs}, "
          f"cell latency p50 {stats.get('latency_p50_s', 0):.3f}s / "
          f"p95 {stats.get('latency_p95_s', 0):.3f}s)")
    if resume:
        print(f"resumed: {stats.get('result_cache_hits', 0):.0f} cells "
              f"restored from checkpoints, "
              f"{stats.get('result_cache_misses', 0):.0f} recomputed")
    if stats.get("batches", 0):
        print(f"batched: {stats.get('batches', 0):.0f} batches covering "
              f"{stats.get('batched_cells', 0):.0f} cells, "
              f"{stats.get('decode_reuse_hits', 0):.0f} decode reuses")
    if stats.get("lane_width", 0):
        print(f"lanes: width {stats.get('lane_width', 0):.0f}, "
              f"{stats.get('vectorized_cells', 0):.0f} cells vectorized, "
              f"{stats.get('scalar_fallback_cells', 0):.0f} scalar "
              f"fallback")
    supervision = {name: stats.get(name, 0)
                   for name in ("retries", "timeouts", "pool_restarts",
                                "inline_fallback")}
    if any(supervision.values()):
        print("supervision: " + ", ".join(
            f"{name}={value:.0f}" for name, value in supervision.items()
            if value))
    if stats.get("checks_run", 0) or stats.get("violations", 0):
        print(f"checked mode: {stats.get('checks_run', 0):.0f} validations, "
              f"{stats.get('violations', 0):.0f} violations")


def _apply_lanes(lanes) -> None:
    """Export ``--lanes`` as ``REPRO_LANES`` so workers inherit it."""
    if lanes is None:
        return
    from repro.runner.batch import resolve_lanes

    try:
        resolve_lanes(lanes)
    except ValueError as error:
        sys.exit(f"error: --lanes: {error}")
    os.environ["REPRO_LANES"] = str(lanes)


def sweep(args: argparse.Namespace) -> None:
    from repro.experiments.perf_concurrent import figure8
    from repro.experiments.perf_crypto import figure6, figure7
    from repro.experiments.perf_general import (
        figure9,
        figure10,
        prefetcher_comparison,
    )
    from repro.runner.pool import last_run_stats, run_context
    from repro.runner.report import record_bench

    _apply_check_mode(args.check)
    _apply_lanes(args.lanes)
    _validate_cache_env()
    if args.profile:
        grid = _profile_grid_specs(args)
        if grid is None or not _run_profile_batched(grid, args.batch):
            _run_profile(_sweep_profile_spec(args))
        return
    _check_resume(args.resume)
    jobs = _resolve_jobs_or_exit(args.jobs)
    print(f"sweep {args.figure}: {SWEEPS[args.figure]} "
          f"(jobs={jobs}, seed={args.seed})")
    with run_context(telemetry=args.telemetry or None, batch=args.batch):
        if args.figure == "fig6":
            points = figure6(message_kb=args.message_kb, seed=args.seed,
                             jobs=jobs)
            for p in points:
                print(f"  {p.scheme:20s} {p.l1_size // 1024:2d}KB "
                      f"{p.l1_assoc}-way  normalized IPC "
                      f"{p.normalized_ipc:.3f}")
        elif args.figure == "fig7":
            series = figure7(message_kb=args.message_kb, seed=args.seed,
                             jobs=jobs)
            for label, pts in series.items():
                curve = ", ".join(f"W={w}: {v:.3f}" for w, v in pts)
                print(f"  {label:16s} {curve}")
        elif args.figure == "fig8":
            points = figure8(n_refs=args.n_refs, seed=args.seed, jobs=jobs)
            for p in points:
                print(f"  {p.benchmark:11s} {p.scheme:20s} "
                      f"{p.l1_size // 1024:2d}KB {p.l1_assoc}-way  "
                      f"normalized throughput {p.normalized_throughput:.3f}")
        elif args.figure == "fig9":
            profiles = figure9(n_refs=args.n_refs, seed=args.seed, jobs=jobs)
            for benchmark, profile in profiles.items():
                print(f"  {benchmark:11s} Eff(0)={profile.eff(0):.3f}")
        elif args.figure == "fig10":
            points = figure10(n_refs=args.n_refs, seed=args.seed, jobs=jobs)
            for p in points:
                print(f"  {p.benchmark:11s} {p.label:9s} "
                      f"L1 MPKI {p.result.l1_mpki:7.2f}  "
                      f"normalized IPC {p.normalized_ipc:.3f}")
        else:  # prefetch
            rows = prefetcher_comparison(n_refs=args.n_refs, seed=args.seed,
                                         jobs=jobs)
            for row in rows:
                print(f"  {row['benchmark']:11s} "
                      f"tagged x{row['tagged_speedup']:.3f}  "
                      f"random fill x{row['random_fill_speedup']:.3f}")
    stats = last_run_stats()
    _print_run_stats(stats, jobs, resume=args.resume)
    if args.report:
        entry = {"figure": args.figure, "seed": args.seed, **stats}
        record_bench(f"sweep_{args.figure}", entry, path=args.report)
        print(f"recorded under 'sweep_{args.figure}' in {args.report}")


def leakage(args: argparse.Namespace) -> None:
    from repro.leakage.report import (
        format_leakage_table,
        validate_results,
        write_leakage_report,
    )
    from repro.leakage.sweep import leakage_grid, run_leakage_sweep
    from repro.runner.pool import last_run_stats, run_context

    _apply_check_mode(args.check)
    _validate_cache_env()
    _check_resume(args.resume)
    jobs = _resolve_jobs_or_exit(args.jobs)
    grid_kwargs = dict(
        m_lines=args.m_lines, trials=args.trials,
        seeds=tuple(args.seed + i for i in range(args.seeds)))
    if args.schemes:
        from repro.schemes import functional_scheme_names
        schemes = tuple(args.schemes.split(","))
        known = functional_scheme_names()
        unknown = [s for s in schemes if s not in known]
        if unknown:
            sys.exit(f"unknown scheme(s) {', '.join(unknown)}; "
                     f"registered: {', '.join(known)}")
        grid_kwargs["schemes"] = schemes
    if args.windows:
        grid_kwargs["window_sizes"] = tuple(
            int(w) for w in args.windows.split(","))
    if args.smoke:
        # CI-sized grid: one window, every registered scheme (so a
        # broken plugin fails the smoke), fewer Monte-Carlo repeats.
        # Explicit flags still win.
        grid_kwargs.setdefault("window_sizes", (8,))
        grid_kwargs["curve_repeats"] = 100
    specs = leakage_grid(**grid_kwargs)
    if args.profile:
        if not _run_profile_batched(specs, args.batch):
            _run_profile(specs[0])
        return
    print(f"leakage sweep: {len(specs)} cells "
          f"(jobs={jobs}, seed={args.seed}, seeds={args.seeds})")
    with run_context(telemetry=args.telemetry or None, batch=args.batch):
        results = run_leakage_sweep(specs, jobs=jobs)
    print(format_leakage_table(results))

    validation = validate_results(results)
    print(f"\nvalidation: {validation['passed']} passed, "
          f"{validation['failed']} failed")
    for check in validation["checks"]:
        if not check["ok"]:
            print(f"  FAIL {check['check']}: {check['detail']}")
    stats = last_run_stats()
    _print_run_stats(stats, jobs, resume=args.resume)
    if args.report:
        write_leakage_report(results, validation=validation,
                             stats={"seed": args.seed, **stats},
                             path=args.report)
        print(f"recorded under 'leakage' in {args.report}")
    if args.check and validation["failed"]:
        sys.exit(1)


def serve_cmd(args: argparse.Namespace) -> None:
    """``python -m repro serve``: the asyncio sweep service."""
    from repro.service.app import run_server
    from repro.service.sweeps import ServiceConfig

    _validate_cache_env()
    jobs = _resolve_jobs_or_exit(args.jobs) if args.jobs is not None else None
    try:
        config = ServiceConfig(
            host=args.host, port=args.port, jobs=jobs,
            queue_depth=args.queue_depth,
            max_cells_per_request=args.max_cells_per_request,
            rate=args.rate, burst=args.burst,
            spool_dir=args.spool or None,
            port_file=args.port_file or None,
            recover=not args.no_recover)
        run_server(config)
    except (ValueError, OSError) as error:
        sys.exit(f"error: {error}")


def cache_cmd(args: argparse.Namespace) -> None:
    """``python -m repro cache --stats/--clear``: inspect or empty the
    on-disk cache layers under ``~/.cache/repro``."""
    from repro.runner.result_cache import RESULT_CACHE, default_result_dir
    from repro.util.diskcache import clear_dir, dir_stats, max_cache_bytes
    from repro.workloads.cache import default_cache_dir

    _validate_cache_env()
    layers = (("traces", default_cache_dir()),
              ("results", default_result_dir()))
    if args.clear:
        for name, directory in layers:
            cleared = clear_dir(directory)
            where = directory if directory else "(disabled)"
            print(f"{name:8s} {where}: removed {cleared['files']} files, "
                  f"{cleared['bytes'] / 1e6:.1f} MB")
        return
    budget = max_cache_bytes()
    budget_text = (f"{budget / 1e6:.0f} MB per layer"
                   if budget is not None else "unbounded")
    print(f"on-disk cache layers (mtime-LRU bound: {budget_text}, "
          f"REPRO_CACHE_MAX_MB to change):")
    for name, directory in layers:
        stats = dir_stats(directory)
        where = directory if directory else "(disabled)"
        print(f"  {name:8s} {stats['files']:5d} files "
              f"{stats['bytes'] / 1e6:8.1f} MB  {where}")
    scan = RESULT_CACHE.verify()
    if scan["scanned"]:
        print(f"results integrity: {scan['scanned']} entries scanned, "
              f"{scan['quarantined']} corrupt quarantined")
    # The same thread-safe snapshot the service's /metrics endpoint
    # reports, so a live service and this CLI agree on the counters.
    counters = RESULT_CACHE.stats_snapshot()
    print(f"results counters (this process): hits={counters['hits']} "
          f"misses={counters['misses']} "
          f"corrupt_evicted={counters['corrupt_evicted']} "
          f"store_failures={counters['store_failures']}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Random Fill Cache Architecture reproduction")
    sub = parser.add_subparsers(dest="command")
    sp = sub.add_parser(
        "sweep", help="run one evaluation sweep via the parallel runner")
    sp.add_argument("figure", choices=sorted(SWEEPS),
                    help="which sweep to run")
    sp.add_argument("--jobs", type=int, default=None,
                    help="worker processes (default: REPRO_JOBS or all cores)")
    sp.add_argument("--n-refs", type=int, default=100_000,
                    help="trace length for general/concurrent sweeps")
    sp.add_argument("--message-kb", type=int, default=32,
                    help="AES-CBC message size for crypto sweeps")
    sp.add_argument("--seed", type=int, default=0,
                    help="master seed for traces and schemes")
    sp.add_argument("--report", default="BENCH_runner.json",
                    help="benchmark report file ('' to skip recording)")
    sp.add_argument("--telemetry", default="", metavar="PATH",
                    help="append a JSONL event log of the run (cell "
                    "start/finish/retry/timeout, pool restarts) to PATH")
    sp.add_argument("--resume", action="store_true",
                    help="resume an interrupted sweep: recompute only the "
                    "cells missing from the result-cache checkpoints and "
                    "report how many were restored")
    sp.add_argument("--check", nargs="?", const="1", default=None,
                    metavar="RATE",
                    help="checked simulation mode: run every cell under "
                    "the invariant sanitizer and differential oracle, "
                    "validating every RATE accesses (default 1024); "
                    "exports REPRO_CHECK to worker processes")
    sp.add_argument("--batch", action=argparse.BooleanOptionalAction,
                    default=None,
                    help="batch compatible cells so one trace decode "
                    "serves a whole group (default: on, or REPRO_BATCH); "
                    "results are bit-identical either way")
    sp.add_argument("--lanes", type=int, default=None, metavar="N",
                    help="lane width for the batched kernel: advance up "
                    "to N eligible cells of a group per kernel call "
                    "(default: REPRO_LANES or 64; 0/1 keeps the scalar "
                    "per-cell kernel); results are bit-identical for "
                    "any width")
    sp.add_argument("--profile", action="store_true",
                    help="run ONE representative cell (or, when the sweep "
                    "batches, its first batch) under cProfile and print "
                    "the top-20 cumulative hotspots instead of running "
                    "the sweep")
    lp = sub.add_parser(
        "leakage", help="run the unified leakage sweep (MI, guessing "
        "entropy, success-rate curves per scheme x window x seed)")
    lp.add_argument("--jobs", type=int, default=None,
                    help="worker processes (default: REPRO_JOBS or all cores)")
    lp.add_argument("--seed", type=int, default=0,
                    help="master seed for every leakage cell")
    lp.add_argument("--seeds", type=int, default=1,
                    help="number of seed replicates (seed, seed+1, ...)")
    lp.add_argument("--trials", type=int, default=0,
                    help="trials per cell (0 = per-channel defaults)")
    lp.add_argument("--m-lines", type=int, default=16,
                    help="security-critical region size in lines (M)")
    lp.add_argument("--schemes", default="",
                    help="comma-separated scheme subset (default: all)")
    lp.add_argument("--windows", default="",
                    help="comma-separated window sizes (default: 2,4,8,16,32)")
    lp.add_argument("--smoke", action="store_true",
                    help="CI-sized grid: every registered scheme, "
                         "window 8 only, fewer curve repeats")
    lp.add_argument("--check", nargs="?", const="1", default=None,
                    metavar="RATE",
                    help="checked simulation mode (sanitizer + oracle, "
                    "every RATE accesses, default 1024; exports "
                    "REPRO_CHECK to workers) — and exit non-zero if any "
                    "validation check fails")
    lp.add_argument("--report", default="BENCH_leakage.json",
                    help="leakage report file ('' to skip recording)")
    lp.add_argument("--telemetry", default="", metavar="PATH",
                    help="append a JSONL event log of the run (cell "
                    "start/finish/retry/timeout, pool restarts) to PATH")
    lp.add_argument("--resume", action="store_true",
                    help="resume an interrupted sweep: recompute only the "
                    "cells missing from the result-cache checkpoints and "
                    "report how many were restored")
    lp.add_argument("--batch", action=argparse.BooleanOptionalAction,
                    default=None,
                    help="batch compatible cells into one work item per "
                    "group (default: on, or REPRO_BATCH); results are "
                    "bit-identical either way")
    lp.add_argument("--profile", action="store_true",
                    help="run ONE grid cell (or, when the sweep batches, "
                    "its first batch) under cProfile and print the "
                    "top-20 cumulative hotspots instead of the sweep")
    vp = sub.add_parser(
        "serve", help="run the asyncio sweep service (HTTP/JSON API over "
        "the supervised runner with a shared result store)")
    vp.add_argument("--host", default="127.0.0.1",
                    help="bind address (default 127.0.0.1)")
    vp.add_argument("--port", type=int, default=8322,
                    help="TCP port (0 picks an ephemeral port; default 8322)")
    vp.add_argument("--jobs", type=int, default=None,
                    help="worker processes per sweep (default: REPRO_JOBS "
                    "or all cores)")
    vp.add_argument("--queue-depth", type=int, default=16,
                    help="sweeps allowed to wait behind the running one "
                    "before POST /sweeps answers 429 (default 16)")
    vp.add_argument("--max-cells-per-request", type=int, default=4096,
                    help="per-submission cell ceiling; larger grids get a "
                    "structured 400 (default 4096)")
    vp.add_argument("--rate", type=float, default=10.0,
                    help="per-client submissions per second (default 10)")
    vp.add_argument("--burst", type=float, default=20.0,
                    help="per-client submission burst capacity (default 20)")
    vp.add_argument("--spool", default="",
                    help="directory for per-sweep telemetry JSONL files and "
                    "the durable sweep journal; reuse it across restarts to "
                    "recover interrupted sweeps (default: a fresh temp "
                    "directory)")
    vp.add_argument("--port-file", default="",
                    help="write the bound port to this file once listening "
                    "(atomic; handshake for supervisors and the chaos "
                    "harness)")
    vp.add_argument("--no-recover", action="store_true",
                    help="skip replaying the sweep journal on boot (fresh "
                    "start even over a dirty spool)")
    cp = sub.add_parser(
        "cache", help="inspect or clear the on-disk trace/result caches")
    group = cp.add_mutually_exclusive_group()
    group.add_argument("--stats", action="store_true",
                       help="print per-layer file counts and sizes (default)")
    group.add_argument("--clear", action="store_true",
                       help="delete every entry of both layers")
    return parser


def main(argv=None) -> None:
    args = build_parser().parse_args(argv)
    if args.command == "sweep":
        sweep(args)
    elif args.command == "leakage":
        leakage(args)
    elif args.command == "serve":
        serve_cmd(args)
    elif args.command == "cache":
        cache_cmd(args)
    else:
        demo()


if __name__ == "__main__":
    main(sys.argv[1:])
