"""Structured telemetry for sweep runs: JSONL events + progress line.

Every supervised ``run_cells`` call can stream its lifecycle into a
JSONL event log (one JSON object per line) so a sweep leaves an
auditable record instead of a single summary dict.  The event
vocabulary:

* ``run_start``    — header: cell counts, job count, timeout/retry
  policy, python version, parent pid;
* ``cell_cached``  — a cell served from the content-addressed result
  cache (checkpoint hit) without running;
* ``cell_start``   — a cell dispatched to a worker (or inline), with
  its attempt number;
* ``cell_finish``  — a cell completed: wall seconds, worker pid,
  worker max-RSS in KB; cells that ran inside a batch additionally
  carry ``batch_id``, ``batch_size`` and ``batch_amortized_decode``
  (whether the cell went through the shared-decode flat kernel rather
  than the per-cell fallback inside its batch);
* ``cell_retry``   — an attempt raised and the cell was requeued;
* ``cell_timeout`` — an attempt exceeded ``REPRO_CELL_TIMEOUT``;
* ``batch_start``  — a planned batch dispatched as one work item:
  batch id, cell indices, size;
* ``batch_finish`` — every cell of a batch completed: batch id, size,
  ``decode_reuses`` (cells beyond the first that shared the group's
  trace decode); lane-planned batches additionally carry
  ``lane_width`` (resolved width), ``vectorized_cells`` (members
  advanced by the lane kernel) and ``scalar_fallback_cells`` (members
  that kept the scalar per-cell path);
* ``batch_split``  — a batch failed (worker exception or lost pool)
  and its member cells were requeued individually, with the reason and
  the error repr; the split itself charges no per-cell attempts — the
  ordinary retry machinery takes over per cell;
* ``batch_timeout`` — a batch exceeded its deadline (per-cell timeout
  x batch size) and was split after the pool restart;
* ``check_violation`` — a cell running under ``REPRO_CHECK`` tripped
  the invariant sanitizer or diverged from the differential oracle
  (:mod:`repro.check`): violation kind, component, access index, the
  formatted delta and the cell spec repr; such a cell is never
  retried — the divergence is deterministic;
* ``pool_restart`` — the worker pool died (or was killed to enforce a
  timeout) and the unfinished cells moved to a fresh pool;
* ``inline_fallback`` — the restart budget ran out and the remaining
  cells degraded to inline execution in the parent;
* ``run_finish``   — the final ``last_run_stats`` payload.

The sweep service (:mod:`repro.service`) adds a per-sweep prologue in
the same log file:

* ``sweep_submitted`` — a sweep was accepted over HTTP: sweep id, cell
  count, client id;
* ``sweep_rejected`` — a submission was refused (service-level log):
  the reason (``rate_limited``, ``queue_full``, ``invalid_spec``,
  ``too_many_cells``, ``draining``) and the client id;
* ``sweep_start``   — the sweep left the work queue, carrying
  ``queue_wait_s`` (seconds spent queued behind earlier sweeps);
* ``sweep_resumed`` — restart recovery re-admitted this sweep from the
  durable journal: its prior state (``queued``/``running``), cell
  count, and how many cells were already warm in the result cache;
* ``sweep_finish``  — terminal state (``done``/``failed``/
  ``cancelled``) plus the run's stats payload.

Service-lifecycle events land in the service-wide ``service.jsonl``:

* ``service_recovered``    — boot replayed the sweep journal:
  recovered sweep count, cells resubmitted vs. served warm;
* ``journal_corrupt_tail`` — replay dropped a torn/corrupt trailing
  journal line (and kept going);
* ``service_draining``     — SIGTERM/SIGINT flipped the service into
  draining mode (new submissions get 503);
* ``service_drained``      — the running sweep finished and the
  journal was checkpointed; queued sweeps are preserved for the next
  process.

When ``REPRO_CHAOS`` is set, every ``emit`` first passes through the
fault-injection hook (:mod:`repro.service.chaos`) — process kills,
slow or failing spool writes — which is how the chaos tests drive the
recovery machinery deterministically; with the variable unset the hook
costs one dict lookup.

The CLI surfaces this as ``--telemetry PATH`` on the ``sweep`` and
``leakage`` subcommands; CI uploads the leakage smoke log as an
artifact.  A :class:`Telemetry` with no path and no progress stream is
a near-free no-op, so library callers pay nothing by default.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import IO, List, Optional

try:
    import resource
except ImportError:  # non-POSIX platform
    resource = None

#: fault-injection opt-in (see :mod:`repro.service.chaos`)
ENV_CHAOS = "REPRO_CHAOS"


def rss_kb() -> Optional[int]:
    """Max resident set size of this process in KB (None if unknown)."""
    if resource is None:
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF)
    return int(usage.ru_maxrss)  # KB on Linux


def worker_meta(wall_s: float) -> dict:
    """Per-attempt execution metadata recorded by the worker itself."""
    return {"wall_s": round(wall_s, 6), "worker": os.getpid(), "rss_kb": rss_kb()}


class Telemetry:
    """JSONL event sink plus an optional live progress line.

    ``path`` is the JSONL file to append to (``None`` disables event
    logging); ``progress`` turns the carriage-return progress line on
    ``stream`` (default ``sys.stderr``) on or off, with ``None``
    meaning "on when the stream is a tty".
    """

    def __init__(
        self,
        path: Optional[str] = None,
        progress: Optional[bool] = None,
        stream: Optional[IO[str]] = None,
    ):
        self.path = path
        self.stream = stream if stream is not None else sys.stderr
        if progress is None:
            isatty = getattr(self.stream, "isatty", lambda: False)
            try:
                progress = bool(isatty())
            except (OSError, ValueError):
                progress = False
        self.show_progress = progress
        self.events_written = 0
        self._fh: Optional[IO[str]] = None
        self._progress_len = 0

    # -- events --------------------------------------------------------------

    def emit(self, event: str, **fields) -> None:
        """Append one event line; never raises (telemetry is advisory)."""
        if self.path is None:
            return
        record = {"event": event, "t": round(time.time(), 6), **fields}
        try:
            if ENV_CHAOS in os.environ:
                # Fault injection (slow/failing spool writes, process
                # kill mid-sweep) for the chaos tests; the injected
                # OSError is swallowed below exactly like a disk error.
                from repro.service.chaos import chaos_telemetry_event

                chaos_telemetry_event(event)
            if self._fh is None:
                directory = os.path.dirname(os.path.abspath(self.path))
                os.makedirs(directory, exist_ok=True)
                self._fh = open(self.path, "a", encoding="utf-8")
            json.dump(record, self._fh, sort_keys=True, default=repr)
            self._fh.write("\n")
            self._fh.flush()
            self.events_written += 1
        except OSError:
            pass

    # -- progress ------------------------------------------------------------

    def progress(self, done: int, total: int, note: str = "") -> None:
        """Redraw the live ``[done/total]`` line (no-op when disabled)."""
        if not self.show_progress or total <= 0:
            return
        line = f"[{done}/{total}] {note}".rstrip()
        pad = " " * max(0, self._progress_len - len(line))
        try:
            self.stream.write(f"\r{line}{pad}")
            self.stream.flush()
        except (OSError, ValueError):
            self.show_progress = False
            return
        self._progress_len = len(line)

    def finish_progress(self) -> None:
        """Terminate the progress line with a newline, if one is active."""
        if self.show_progress and self._progress_len:
            try:
                self.stream.write("\n")
                self.stream.flush()
            except (OSError, ValueError):
                pass
            self._progress_len = 0

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self.finish_progress()
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_events_incremental(path: str, offset: int = 0):
    """Parse events appended at or after byte ``offset``; returns
    ``(events, new_offset)``.

    Safe against a *concurrently appending* writer: only lines
    terminated by a newline are consumed, so a partially-flushed final
    line is left in place and picked up whole by the next call (the
    returned offset never advances past it).  This is what the sweep
    service's ``/events`` streamer polls — each event is delivered
    exactly once, in order, even while ``run_cells`` is still writing.

    A missing file (the sweep has not emitted yet) reads as no events;
    corrupt complete lines are skipped, exactly like
    :func:`read_events`.
    """
    try:
        with open(path, "rb") as fh:
            fh.seek(offset)
            data = fh.read()
    except OSError:
        return [], offset
    end = data.rfind(b"\n")
    if end < 0:
        return [], offset
    events: List[dict] = []
    for raw in data[:end].split(b"\n"):
        raw = raw.strip()
        if not raw:
            continue
        try:
            events.append(json.loads(raw.decode("utf-8")))
        except (ValueError, UnicodeDecodeError):
            continue
    return events, offset + end + 1


def read_events(path: str) -> List[dict]:
    """Parse a telemetry JSONL file (skips partial/corrupt lines)."""
    events: List[dict] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    events.append(json.loads(line))
                except ValueError:
                    continue
    except OSError:
        return []
    return events
