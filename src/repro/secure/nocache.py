"""Disable-cache defence: bypass the cache for security-critical data.

The "drastic approach" of Section III-B: accesses to the protected
regions never allocate in (or even look up) the L1 — every one pays an
L2/DRAM round trip, guaranteeing constant *L1* behaviour at a large
performance cost (the paper measures ~45% for AES).  Non-critical
accesses behave as normal demand fetch.
"""

from __future__ import annotations

from repro.cache.context import AccessContext
from repro.cache.controller import FillPolicy, MissPlan
from repro.cache.mshr import RequestType
from repro.secure.region import RegionSet


class DisableCachePolicy(FillPolicy):
    """Demand fetch for normal data; full bypass for protected lines."""

    def __init__(self, protected: RegionSet):
        self.protected = protected

    def bypass(self, line_addr: int, ctx: AccessContext) -> bool:
        return self.protected.contains_line(line_addr)

    def on_miss(self, line_addr: int, ctx: AccessContext) -> MissPlan:
        return MissPlan(RequestType.NORMAL)
