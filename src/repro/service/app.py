"""The sweep service application: endpoints, server, lifecycle.

Endpoints (all JSON; errors are ``{"error": {"code", "message", ...}}``):

==============================  ==============================================
``POST /sweeps``                submit a spec grid (codec JSON); 202 with id
``GET /sweeps/{id}``            lifecycle state + ``last_run_stats``
``GET /sweeps/{id}/results``    paginated encoded cell results
                                (``?offset=&limit=``; 409 until done)
``GET /sweeps/{id}/events``     the sweep's JSONL telemetry, streamed with
                                chunked encoding; follows the live file
                                until the sweep finishes (``?follow=0`` for
                                a plain snapshot, ``?from=`` byte offset)
``DELETE /sweeps/{id}``         cancel (cooperative; queued sweeps cancel
                                outright)
``GET /healthz``                liveness + queue depth
``GET /metrics``                queue, result-store counters + hit rate,
                                sweep latency percentiles, per-client quotas
==============================  ==============================================

The asyncio event loop only ever does cheap work: submissions validate
and enqueue (the simulation itself runs on the
:class:`~repro.runner.jobs.JobRunner` executor thread and its process
pool), reads are dict snapshots, and the event stream polls the sweep's
JSONL file with the partial-line-tolerant incremental reader.

``run_server`` blocks (the ``python -m repro serve`` path);
``serve_in_thread`` boots the same server on a background thread and
returns a handle with the bound port — the tests and the CI smoke
client drive a real server through real sockets that way.

Shutdown is a graceful drain: SIGTERM or the first SIGINT flips the
service into draining mode (submissions get 503 ``draining``, reads
and ``/healthz`` keep answering), the running sweep finishes, the
sweep journal is checkpointed with the still-queued sweeps preserved
for the next process, and only then does the loop exit.  A second
signal hard-exits immediately.  ``ServerHandle.drain()`` triggers the
same path programmatically for tests.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.runner.telemetry import ENV_CHAOS, read_events_incremental
from repro.service.http import (
    ChunkWriter,
    HttpError,
    Request,
    Router,
    json_response,
    read_request,
)
from repro.service.sweeps import ServiceConfig, ServiceError, SweepService

#: how often the event streamer polls the JSONL file for new lines
_EVENT_POLL_S = 0.05

#: hard ceiling on one follow-mode stream (a wedged sweep must not pin
#: a connection forever)
_EVENT_FOLLOW_TIMEOUT_S = 3600.0


def json_line(event: dict) -> bytes:
    return (json.dumps(event, sort_keys=True, default=repr) + "\n").encode("utf-8")


class ServiceApp:
    """Routes bound to one :class:`SweepService`."""

    def __init__(self, service: SweepService):
        self.service = service
        self.router = Router()
        self.router.add("POST", "/sweeps", self.submit)
        self.router.add("GET", "/sweeps/{id}", self.status)
        self.router.add("GET", "/sweeps/{id}/results", self.results)
        self.router.add("GET", "/sweeps/{id}/events", self.events)
        self.router.add("DELETE", "/sweeps/{id}", self.cancel)
        self.router.add("GET", "/healthz", self.healthz)
        self.router.add("GET", "/metrics", self.metrics)
        self._latencies: Deque[float] = deque(maxlen=1024)

    # -- handlers ------------------------------------------------------------

    async def submit(self, request: Request, writer) -> bytes:
        payload = request.json()
        accepted = self.service.submit(payload, client=request.client_id())
        return json_response(202, accepted)

    async def status(self, request: Request, writer) -> bytes:
        sweep = self.service.get(request.params["id"])
        return json_response(200, sweep.status())

    async def results(self, request: Request, writer) -> bytes:
        page = self.service.results_page(
            request.params["id"],
            offset=request.int_query("offset", 0),
            limit=request.int_query("limit", 256),
        )
        return json_response(200, page)

    async def cancel(self, request: Request, writer) -> bytes:
        return json_response(200, self.service.cancel(request.params["id"]))

    async def healthz(self, request: Request, writer) -> bytes:
        return json_response(200, self.service.healthz())

    async def metrics(self, request: Request, writer) -> bytes:
        payload = self.service.metrics()
        latencies = sorted(self._latencies)
        http = {"count": len(latencies)}
        for name, q in (("p50_s", 0.50), ("p95_s", 0.95), ("p99_s", 0.99)):
            if latencies:
                rank = min(len(latencies) - 1, int(round(q * (len(latencies) - 1))))
                http[name] = round(latencies[rank], 6)
            else:
                http[name] = 0.0
        payload["http_latency"] = http
        return json_response(200, payload)

    async def events(self, request: Request, writer) -> None:
        """Stream the sweep's JSONL telemetry with chunked encoding."""
        sweep = self.service.get(request.params["id"])
        follow = request.int_query("follow", 1) != 0
        offset = request.int_query("from", 0)
        chunks = ChunkWriter(writer)
        await chunks.start()
        deadline = time.monotonic() + _EVENT_FOLLOW_TIMEOUT_S
        sent = 0
        while True:
            # Read the settled flag BEFORE reading the file: once the
            # job has settled, its terminal sweep_finish row is on
            # disk, so this read necessarily sees the final events and
            # breaking afterwards loses nothing.  (``finished`` is not
            # enough — it flips before the observer writes the row.)
            finished = sweep.handle.settled
            events, offset = read_events_incremental(sweep.events_path, offset)
            if events:
                await chunks.send(b"".join(json_line(e) for e in events))
                sent += len(events)
                if ENV_CHAOS in os.environ:
                    from repro.service.chaos import chaos_stream_should_drop

                    if chaos_stream_should_drop(sent):
                        # Close without the terminating chunk: the
                        # client sees the delivered events followed by
                        # a dead connection (IncompleteRead), exactly
                        # like a mid-stream network drop.  (A FIN, not
                        # an RST — an abort could discard bytes the
                        # client has not read yet, making the drop
                        # nondeterministic.)
                        writer.close()
                        return
                continue
            if not follow or finished or time.monotonic() > deadline:
                break
            await asyncio.sleep(_EVENT_POLL_S)
        await chunks.finish()

    # -- connection handling -------------------------------------------------

    async def handle_connection(self, reader, writer) -> None:
        peer = writer.get_extra_info("peername")
        client = peer[0] if isinstance(peer, tuple) else "unknown"
        started = time.monotonic()
        try:
            try:
                request = await read_request(reader, client)
                if request is None:
                    return
                handler = self.router.match(request)
                response = await handler(request, writer)
            except HttpError as error:
                response = json_response(error.status, error.payload())
            except ServiceError as error:
                response = json_response(error.status, error.payload())
            except Exception as error:  # never a traceback on the wire
                response = json_response(
                    500,
                    {"error": {"code": "internal", "message": repr(error)}},
                )
            if response is not None:
                writer.write(response)
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._latencies.append(time.monotonic() - started)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


# -- server lifecycle ---------------------------------------------------------


def _write_port_file(path: str, port: int) -> None:
    """Atomically publish the bound port (the chaos harness handshake)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(f"{port}\n")
    os.replace(tmp, path)


async def _serve(
    config: ServiceConfig,
    service: SweepService,
    bound: Optional["threading.Event"] = None,
    handle: Optional["ServerHandle"] = None,
    announce: bool = False,
) -> None:
    app = ServiceApp(service)
    server = await asyncio.start_server(app.handle_connection, host=config.host, port=config.port)
    port = server.sockets[0].getsockname()[1]
    if config.port_file:
        _write_port_file(config.port_file, port)
    if handle is not None:
        handle.host = config.host
        handle.port = port

    loop = asyncio.get_running_loop()
    drain_requested = asyncio.Event()
    signals_seen = 0

    def request_drain() -> None:
        nonlocal signals_seen
        signals_seen += 1
        if signals_seen > 1:
            os._exit(130)  # second signal: the operator means NOW
        drain_requested.set()

    installed = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, request_drain)
            installed.append(signum)
        except (NotImplementedError, ValueError, RuntimeError):
            pass  # non-main thread or platform without loop signals
    if handle is not None:
        handle._drain_event = drain_requested
    if announce:
        print(f"repro.service listening on http://{config.host}:{port}")
        print(
            f"  jobs={config.jobs or 'auto'} "
            f"queue-depth={config.queue_depth} "
            f"max-cells-per-request={config.max_cells_per_request} "
            f"rate={config.rate:g}/s burst={config.burst:g}"
        )
        print(f"  spool: {service.spool_dir}")
        print(
            "  POST /sweeps | GET /sweeps/{id}[/results|/events] | "
            "GET /healthz | GET /metrics",
            flush=True,
        )
    if bound is not None:
        bound.set()
    try:
        async with server:
            await drain_requested.wait()
            # Drain: refuse new submissions (503) but keep answering
            # reads and /healthz while the running sweep finishes, then
            # checkpoint the journal and let the server close.
            if announce:
                print("\ndraining: finishing the running sweep, journaling the queue", flush=True)
            service.begin_drain()
            await loop.run_in_executor(None, service.finish_drain)
            if announce:
                print("drained: queued sweeps preserved in the journal", flush=True)
    finally:
        for signum in installed:
            try:
                loop.remove_signal_handler(signum)
            except (NotImplementedError, ValueError, RuntimeError):
                pass


def run_server(config: ServiceConfig, service: Optional[SweepService] = None) -> None:
    """Run the service in the foreground; SIGTERM/SIGINT drain it."""
    service = service if service is not None else SweepService(config)
    try:
        asyncio.run(_serve(config, service, announce=True))
    except KeyboardInterrupt:
        # Loop-signal handlers unavailable (e.g. Windows): degrade to
        # the old hard stop.
        print("\nshutting down (waiting for the running sweep)")
    finally:
        service.shutdown(wait=False)


@dataclass
class ServerHandle:
    """A service running on a background thread (tests, smoke client)."""

    service: SweepService
    host: str = ""
    port: int = 0
    _thread: Optional[threading.Thread] = None
    _loop: Optional[asyncio.AbstractEventLoop] = None
    _drain_event: Optional[asyncio.Event] = None

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def drain(self, timeout: float = 60.0) -> None:
        """Trigger the graceful-drain path (what SIGTERM does in the
        foreground server) and wait for the server thread to exit."""
        if self._loop is not None and self._drain_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._drain_event.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def stop(self) -> None:
        if self._loop is not None:
            try:
                self._loop.call_soon_threadsafe(self._loop.stop)
            except RuntimeError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=10)
        self.service.shutdown(wait=False)


def serve_in_thread(config: ServiceConfig, service: Optional[SweepService] = None) -> ServerHandle:
    """Boot the server on a daemon thread; returns once it is bound.

    ``config.port`` 0 picks an ephemeral port; the handle carries the
    real one.
    """
    service = service if service is not None else SweepService(config)
    handle = ServerHandle(service=service)
    bound = threading.Event()

    def runner() -> None:
        loop = asyncio.new_event_loop()
        handle._loop = loop
        asyncio.set_event_loop(loop)
        task = loop.create_task(_serve(config, service, bound=bound, handle=handle))
        # When _serve returns (a drain completed), park the loop so the
        # thread exits and ServerHandle.drain()'s join comes back.
        task.add_done_callback(lambda _t: loop.stop())
        try:
            loop.run_forever()
        finally:
            for task in asyncio.all_tasks(loop):
                task.cancel()
            try:
                loop.run_until_complete(asyncio.sleep(0))
            except (RuntimeError, asyncio.CancelledError):
                pass
            loop.close()

    thread = threading.Thread(target=runner, name="repro-service", daemon=True)
    handle._thread = thread
    thread.start()
    if not bound.wait(timeout=10):
        raise RuntimeError("service failed to bind within 10s")
    return handle
