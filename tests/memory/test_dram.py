"""Tests for the DRAM timing model."""

from repro.memory.dram import DramConfig, DramModel


class TestLatency:
    def test_first_access_is_row_miss(self):
        dram = DramModel()
        done = dram.access(0, now=0)
        assert done == dram.config.row_miss_latency
        assert dram.row_misses == 1

    def test_same_row_hits(self):
        dram = DramModel()
        dram.access(0, now=0)
        before = dram.row_hits
        dram.access(1, now=1000)
        assert dram.row_hits == before + 1

    def test_row_hit_faster_than_miss(self):
        cfg = DramConfig()
        assert cfg.row_hit_latency < cfg.row_miss_latency


class TestBankPipelining:
    def test_row_hits_pipeline_at_burst_rate(self):
        dram = DramModel()
        dram.access(0, now=0)  # open the row
        t1 = dram.access(1, now=10_000)
        t2 = dram.access(2, now=10_000)
        # second access queues behind only the burst, not the full latency
        assert t2 - t1 == dram.config.t_burst

    def test_different_banks_independent(self):
        dram = DramModel()
        lines_per_row = dram.config.row_size_bytes // dram.config.line_size
        t1 = dram.access(0, now=0)
        t2 = dram.access(lines_per_row, now=0)  # next row -> next bank
        assert t1 == t2  # no queuing across banks

    def test_busy_bank_delays(self):
        dram = DramModel()
        t1 = dram.access(0, now=0)
        t2 = dram.access(0, now=0)
        assert t2 > t1 - dram.config.row_hit_latency  # queued behind busy


class TestStats:
    def test_lines_transferred(self):
        dram = DramModel()
        for i in range(5):
            dram.access(i, now=i * 200)
        assert dram.lines_transferred == 5

    def test_reset_stats_keeps_rows(self):
        dram = DramModel()
        dram.access(0, now=0)
        dram.reset_stats()
        assert dram.lines_transferred == 0
        dram.access(1, now=1000)
        assert dram.row_hits == 1  # row still open

    def test_full_reset(self):
        dram = DramModel()
        dram.access(0, now=0)
        dram.reset()
        dram.access(1, now=0)
        assert dram.row_misses == 1
