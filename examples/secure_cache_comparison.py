#!/usr/bin/env python3
"""Defense matrix: which cache design stops which attack class.

Runs the two attack mechanisms (contention based Prime-Probe, reuse
based Flush-Reload) against four designs:

* the conventional set-associative cache,
* Newcache (mapping randomization),
* the random fill cache on the SA substrate,
* random fill built on Newcache — the paper's recommended combination
  ("comprehensive defenses against all known cache side channel
  attacks").

Run:  python examples/secure_cache_comparison.py
"""

from repro.attacks import run_flush_reload_trials, run_prime_probe_trials
from repro.cache.set_associative import SetAssociativeCache
from repro.core.window import RandomFillWindow
from repro.secure.newcache import Newcache
from repro.secure.region import ProtectedRegion
from repro.util.tables import format_table

REGION = ProtectedRegion(0x10000, 1024)  # one 1-KB AES table, 16 lines
WINDOW = RandomFillWindow(16, 15)
NO_WINDOW = RandomFillWindow(0, 0)

DESIGNS = (
    ("SA cache (demand fetch)", lambda: SetAssociativeCache(8 * 1024, 4),
     NO_WINDOW),
    ("Newcache (demand fetch)", lambda: Newcache(8 * 1024, seed=11),
     NO_WINDOW),
    ("Random fill + SA", lambda: SetAssociativeCache(8 * 1024, 4), WINDOW),
    ("Random fill + Newcache", lambda: Newcache(8 * 1024, seed=11), WINDOW),
)


def verdict(leaks: bool) -> str:
    return "LEAKS" if leaks else "defended"


def main():
    rows = []
    for name, make_store, window in DESIGNS:
        pp = run_prime_probe_trials(make_store(), 32, 4, REGION,
                                    window=window, trials=200, seed=1)
        fr = run_flush_reload_trials(make_store(), REGION, window,
                                     trials=400, seed=2)
        rows.append((
            name,
            f"{verdict(pp.advantage > 0.1)} (acc {pp.set_accuracy:.2f})",
            f"{verdict(fr.exact_accuracy > 0.5)} "
            f"(acc {fr.exact_accuracy:.2f}, "
            f"MI {fr.mutual_information:.2f}b)",
        ))
    print(format_table(
        ["design", "Prime-Probe (contention)", "Flush-Reload (reuse)"],
        rows, title="Which design stops which attack class"))
    print("\nMapping randomization (Newcache) stops contention attacks but")
    print("not reuse attacks.  Random fill stops reuse attacks; with a")
    print("window covering the whole table it also blinds Prime-Probe on")
    print("this single-table victim, but the set of the fill still leaks")
    print("its neighborhood when the window is smaller than the secret")
    print("region - which is why the paper recommends building random")
    print("fill on Newcache for comprehensive protection.")


if __name__ == "__main__":
    main()
