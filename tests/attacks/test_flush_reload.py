"""Tests for the Flush-Reload attack (reuse based, storage channel)."""


from repro.analysis.channel_capacity import channel_capacity_bits
from repro.attacks.flush_reload import run_flush_reload_trials
from repro.cache.set_associative import SetAssociativeCache
from repro.core.window import RandomFillWindow
from repro.secure.newcache import Newcache
from repro.secure.region import ProtectedRegion

REGION = ProtectedRegion(0x10000, 1024)  # 16 lines, one AES table


class TestAgainstDemandFetch:
    def test_perfect_recovery(self):
        result = run_flush_reload_trials(
            SetAssociativeCache(32 * 1024, 4), REGION,
            RandomFillWindow(0, 0), trials=300, seed=1)
        assert result.exact_accuracy == 1.0

    def test_full_mutual_information(self):
        result = run_flush_reload_trials(
            SetAssociativeCache(32 * 1024, 4), REGION,
            RandomFillWindow(0, 0), trials=2000, seed=2)
        assert result.mutual_information > 3.5  # ~log2(16) = 4 bits

    def test_newcache_demand_fetch_also_leaks(self):
        """Mapping randomization does not stop reuse based attacks."""
        result = run_flush_reload_trials(
            Newcache(32 * 1024, seed=5), REGION,
            RandomFillWindow(0, 0), trials=300, seed=3)
        assert result.exact_accuracy > 0.9


class TestAgainstRandomFill:
    def test_accuracy_collapses(self):
        result = run_flush_reload_trials(
            SetAssociativeCache(32 * 1024, 4), REGION,
            RandomFillWindow(16, 15), trials=500, seed=4)
        assert result.exact_accuracy < 0.2

    def test_mutual_information_bounded_by_capacity(self):
        window = RandomFillWindow(16, 15)
        result = run_flush_reload_trials(
            SetAssociativeCache(32 * 1024, 4), REGION, window,
            trials=3000, seed=5)
        bound = channel_capacity_bits(REGION.num_lines, window)
        # finite-sample MI estimates are biased upward; allow slack
        assert result.mutual_information < bound + 0.5

    def test_mi_comes_from_shared_estimators(self):
        """The attack reports the Miller-Madow estimate of its own
        joint — no private MI implementation left behind."""
        from repro.leakage.estimators import mutual_information_bits

        result = run_flush_reload_trials(
            SetAssociativeCache(32 * 1024, 4), REGION,
            RandomFillWindow(8, 7), trials=400, seed=7)
        assert result.mutual_information == \
            mutual_information_bits(result.joint)

    def test_information_drops_with_window(self):
        mis = []
        for size in (1, 4, 32):
            result = run_flush_reload_trials(
                SetAssociativeCache(32 * 1024, 4), REGION,
                RandomFillWindow.bidirectional(size), trials=800,
                seed=6)
            mis.append(result.mutual_information)
        assert mis[0] > mis[1] > mis[2]
