"""Tests for the Evict-Time attack (contention based, timing driven)."""

import pytest

from repro.attacks.evict_time import run_evict_time
from repro.attacks.victim import TableLookupVictim
from repro.cache.hierarchy import build_hierarchy
from repro.secure.region import ProtectedRegion


def make_victim(l1_size=4 * 1024, assoc=1, noise_refs=0):
    h = build_hierarchy(l1_size=l1_size, l1_assoc=assoc)
    region = ProtectedRegion(0x10000, 1024)
    return TableLookupVictim(h.l1, region, noise_refs=noise_refs, seed=1)


class TestEvictTime:
    def test_recovers_victim_set_on_dm_cache(self):
        victim = make_victim()
        num_sets = 4 * 1024 // 64
        result = run_evict_time(victim, secret=5, num_sets=num_sets,
                                associativity=1, trials_per_set=10, seed=2)
        assert result.success
        assert result.inferred_set == result.true_set

    def test_avg_times_elevated_at_true_set(self):
        # With background noise the true set is still elevated above
        # the mean, even if noise-set collisions create false peaks.
        victim = make_victim(noise_refs=2)
        num_sets = 64
        result = run_evict_time(victim, secret=9, num_sets=num_sets,
                                associativity=1, trials_per_set=10, seed=3)
        true_avg = result.avg_time_per_set[result.true_set]
        others = [t for s, t in enumerate(result.avg_time_per_set)
                  if s != result.true_set]
        assert true_avg > sum(others) / len(others)

    def test_validation(self):
        victim = make_victim()
        with pytest.raises(ValueError):
            run_evict_time(victim, 0, 64, 1, trials_per_set=0)
