"""Storage-channel capacity of the random fill cache (Section V-B).

The Flush-Reload storage channel is modelled as a discrete channel: the
victim (sender) accesses security-critical line ``i`` in a region of M
lines; the attacker (receiver) observes which line ``j`` was filled.
With random fill, ``j`` is uniform over the window ``[i - a, i + b]``
(Equation 7); the capacity is the mutual information I(S; R) under a
uniform sender (Equation 8).  Demand fetch is the identity channel with
capacity ``log2(M)``.

Figure 5 plots capacity normalized to demand fetch against window size
normalized to M, for M in {8, 16, 64, 128}.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence



@dataclass(frozen=True)
class AnalysisWindow:
    """Unbounded (a, b) window for analytical studies.

    The Figure 5 sweep evaluates windows up to 8x a 128-line region —
    beyond what the 8-bit hardware range registers encode.  The math
    only needs ``a``, ``b`` and ``size``, so analytical code may use
    this in place of :class:`RandomFillWindow`.
    """

    a: int
    b: int

    def __post_init__(self) -> None:
        if self.a < 0 or self.b < 0:
            raise ValueError(f"bounds must be non-negative: {self.a}, {self.b}")

    @property
    def size(self) -> int:
        return self.a + self.b + 1


def transition_probability(i: int, j: int, window) -> float:
    """P(R = j | S = i) of Equation (7)."""
    if i - window.a <= j <= i + window.b:
        return 1.0 / window.size
    return 0.0


def channel_capacity_bits(m_lines: int, window) -> float:
    """Mutual information I(S; R) in bits for a uniform sender.

    ``m_lines`` is M, the number of cache lines of security-critical
    data; the receiver alphabet spans ``[M0 - a, M0 + M - 1 + b]``
    (boundary lines leak, as the paper notes).
    """
    if m_lines <= 0:
        raise ValueError(f"m_lines must be positive, got {m_lines}")
    w = window.size
    p_sender = 1.0 / m_lines
    capacity = 0.0
    # Receiver symbol j (relative coordinates, sender i in [0, M)).
    for j in range(-window.a, m_lines + window.b):
        senders = [i for i in range(m_lines) if i - window.a <= j <= i + window.b]
        if not senders:
            continue
        p_j = len(senders) * p_sender / w
        for _i in senders:
            joint = p_sender / w
            capacity += joint * math.log2(joint / (p_sender * p_j))
    return capacity


def demand_fetch_capacity_bits(m_lines: int) -> float:
    """Identity channel: the attacker learns the line exactly."""
    if m_lines <= 0:
        raise ValueError(f"m_lines must be positive, got {m_lines}")
    return math.log2(m_lines)


def normalized_capacity(m_lines: int, window) -> float:
    """Capacity normalized to the demand fetch case (Figure 5's y-axis)."""
    if m_lines == 1:
        # A one-line region carries no information either way.
        return 0.0
    return channel_capacity_bits(m_lines, window) / \
        demand_fetch_capacity_bits(m_lines)


def figure5_series(m_values: Sequence[int] = (8, 16, 64, 128),
                   normalized_window_sizes: Sequence[float] = (
                       0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0),
                   ) -> Dict[int, List["tuple[float, float]"]]:
    """The Figure 5 data: per M, (normalized window size, normalized C).

    Window sizes are rounded to the nearest realizable bidirectional-ish
    window ``[-ceil(W/2), W - ceil(W/2) - 1]``.
    """
    series: Dict[int, List[tuple]] = {}
    for m in m_values:
        points = []
        for norm_w in normalized_window_sizes:
            w = max(1, round(norm_w * m))
            a = w // 2
            b = w - a - 1
            window = AnalysisWindow(a, b)
            points.append((w / m, normalized_capacity(m, window)))
        series[m] = points
    return series
