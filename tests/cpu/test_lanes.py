"""Lane-kernel identity tests: lanes == scalar flat kernel, bit for bit.

The lane kernel (:mod:`repro.cpu.lanes`) advances every eligible cell
of a batch group over one shared decoded trace.  Its only permitted
observable difference from the scalar flat kernel is speed, so every
test here compares :func:`run_lane_cells` /
:func:`run_lanes_general` against per-cell
:func:`run_lowered_cell` (``run_flat_general``) across schemes,
windows, warm state, seeds and lane counts — on both the native C
backend and the pure-Python fallback.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import lanes as lanes_mod
from repro.cpu.batch import (
    group_state_for,
    lower_cell,
    run_lane_cells,
    run_lowered_cell,
)
from repro.cpu.lanes import (
    LaneCell,
    masked_offsets,
    native_available,
    run_lanes_general,
)
from repro.runner.cells import CellSpec

#: pow2 windows the kernels cover, plus demand fetch; the (2, 2)
#: window is non-power-of-two and must fail lowering (fallback path)
POW2_WINDOWS = ((0, 0), (0, 7), (4, 3), (16, 15), (8, 7))

BACKENDS = ["python"] + (["native"] if native_available() else [])


def _group(benchmark, windows, warm, seed, n_refs=1200):
    """Build one batch group: shared state + lowered eligible cells."""
    specs = [CellSpec(kind="general", benchmark=benchmark,
                      scheme="random_fill", window=window, n_refs=n_refs,
                      seed=seed, warm=warm)
             for window in windows if window != (0, 0)]
    specs += [CellSpec(kind="general", benchmark=benchmark,
                       scheme="baseline", window=(0, 0), n_refs=n_refs,
                       seed=seed, warm=warm)]
    shared = group_state_for(specs[0])
    lowered = [lower_cell(spec, shared) for spec in specs]
    return shared, lowered


def _run_lanes(shared, lowered, backend):
    first = lowered[0]
    cells = [LaneCell(lc.policy_kind,
                      masked_offsets(lc.draws, lc.rf_a, lc.rf_mask)
                      if lc.policy_kind == 2 else None)
             for lc in lowered]
    return run_lanes_general(
        shared.lines, shared.steps, shared.instructions,
        l1_num_sets=first.l1_num_sets, l1_assoc=first.l1_assoc,
        l2_sets=shared.l2_sets_view(), l2_num_sets=shared.l2_num_sets,
        l2_assoc=shared.l2_assoc, l2_hit_latency=first.l2_hit_latency,
        mq_capacity=first.mq_capacity, fill_reserve=first.fill_reserve,
        fill_queue_capacity=first.fill_queue_capacity,
        hit_cost=first.hit_cost, mlp=first.mlp, credit=first.credit,
        cells=cells, dram=first.dram, backend=backend)


class TestLaneIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=6, deadline=None)
    @given(windows=st.lists(st.sampled_from(POW2_WINDOWS), min_size=1,
                            max_size=4, unique=True),
           warm=st.booleans(),
           seed=st.integers(min_value=0, max_value=3),
           benchmark=st.sampled_from(("astar", "lbm")))
    def test_matches_scalar_flat_kernel(self, backend, windows, warm,
                                        seed, benchmark):
        shared, lowered = _group(benchmark, windows, warm, seed)
        assert all(lc is not None for lc in lowered)
        scalar = [run_lowered_cell(shared, lc) for lc in lowered]
        laned = _run_lanes(shared, lowered, backend)
        assert laned == scalar
        assert lanes_mod.LAST_STATS["backend"] == backend
        assert lanes_mod.LAST_STATS["lanes"] == len(lowered)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("n_lanes", [1, 2, 3, 7])
    def test_lane_count_never_changes_results(self, backend, n_lanes):
        # The same cell replicated N times must produce N identical
        # results, each equal to its scalar run — lanes share read-only
        # columns but no mutable state.
        shared, lowered = _group("astar", ((4, 3),), warm=False, seed=1)
        scalar = run_lowered_cell(shared, lowered[0])
        laned = _run_lanes(shared, lowered[:1] * n_lanes, backend)
        assert laned == [scalar] * n_lanes

    @pytest.mark.skipif(len(BACKENDS) < 2, reason="no C compiler on host")
    def test_backends_agree(self):
        shared, lowered = _group("lbm", POW2_WINDOWS, warm=True, seed=2)
        assert _run_lanes(shared, lowered, "python") == \
            _run_lanes(shared, lowered, "native")

    def test_mixed_group_fallback_cells_stay_scalar(self):
        # A (2, 2) window is not a power of two: it must fail lowering
        # (scalar fallback inside the batch), while its pow2 siblings
        # lane — and both paths agree with the per-cell kernel.
        windows = ((4, 3), (2, 2), (0, 7))
        specs = [CellSpec(kind="general", benchmark="astar",
                          scheme="random_fill", window=window,
                          n_refs=1200, seed=0)
                 for window in windows]
        shared = group_state_for(specs[0])
        lowered = [lower_cell(spec, shared) for spec in specs]
        assert [lc is not None for lc in lowered] == [True, False, True]
        eligible = [lc for lc in lowered if lc is not None]
        laned = run_lane_cells(shared, eligible)
        assert laned == [run_lowered_cell(shared, lc) for lc in eligible]


class TestLaneKnobs:
    def test_explicit_native_raises_without_compiler(self, monkeypatch):
        monkeypatch.setattr(lanes_mod, "_native", lambda: None)
        shared, lowered = _group("astar", ((0, 0),), warm=False, seed=0)
        with pytest.raises(RuntimeError, match="native"):
            _run_lanes(shared, lowered, "native")

    def test_unknown_backend_rejected(self):
        shared, lowered = _group("astar", ((0, 0),), warm=False, seed=0)
        with pytest.raises(ValueError, match="backend"):
            _run_lanes(shared, lowered, "cuda")

    def test_empty_lane_list_is_empty(self):
        shared, _ = _group("astar", ((0, 0),), warm=False, seed=0)
        assert run_lane_cells(shared, []) == []

    def test_big_mshr_falls_back_to_python(self):
        # The native kernel bounds its drain scratch at 64 MSHR
        # entries; a larger capacity must transparently take the
        # Python lanes (backend=None auto-selection).
        shared, lowered = _group("astar", ((4, 3),), warm=False, seed=0)
        for lc in lowered:
            lc.mq_capacity = 128
        laned = _run_lanes(shared, lowered[:1] * 2, None)
        assert lanes_mod.LAST_STATS["backend"] == "python"
        assert laned[0] == laned[1]
        # Identity still holds at the bigger capacity: compare against
        # the scalar kernel run with the same parameters.
        assert laned[0] == run_lowered_cell(shared, lowered[0])
