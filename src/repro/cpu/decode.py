"""Batched address pre-decode for columnar traces.

Splitting a byte address into line address / set index / tag is pure
per-record arithmetic, yet the interpreter used to pay for it once per
access — tens of millions of shift-and-mask bytecodes per sweep.  A
:class:`TraceDecode` performs each derivation exactly once per (trace,
cache geometry) as a whole-column numpy pass, then hands the timing
model plain Python lists (one ``tolist()`` call, not one ``int()`` per
element), which the per-record simulation loop iterates faster than
numpy scalars.

Instances are memoized on the :class:`~repro.cpu.trace.Trace`
(``trace.decoded(line_shift)``), so the eleven Figure-10 windows that
replay one benchmark trace at jobs=1 share a single decode.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.cpu.trace import Trace


class TraceDecode:
    """Per-geometry decoded columns of one trace (all lazily computed).

    ``line_shift`` is ``log2(line_size)``; every product below is cached
    after its first computation:

    * :meth:`lines` / :meth:`lines_list` — line address per record,
    * :meth:`set_indices` / :meth:`tags` — placement for one tag-store
      geometry,
    * :meth:`issue_steps` — per-record cycle increment of the in-order
      issue front-end for one ``issue_width`` (the running
      ``backlog // width`` arithmetic collapsed into a cumsum diff),
    * :meth:`warm_footprint` — consecutive-duplicate-free line-address
      prefix used to pre-warm the L2.
    """

    __slots__ = ("trace", "line_shift", "_lines", "_lines_list",
                 "_gaps_list", "_writes_list", "_issue_steps",
                 "_set_indices", "_tags", "_footprints")

    def __init__(self, trace: Trace, line_shift: int):
        if line_shift < 0:
            raise ValueError(f"line_shift must be >= 0, got {line_shift}")
        self.trace = trace
        self.line_shift = line_shift
        self._lines: "np.ndarray | None" = None
        self._lines_list: "List[int] | None" = None
        self._gaps_list: "List[int] | None" = None
        self._writes_list: "List[int] | None" = None
        self._issue_steps: Dict[int, List[int]] = {}
        self._set_indices: Dict[int, np.ndarray] = {}
        self._tags: Dict[int, np.ndarray] = {}
        self._footprints: Dict[int, List[int]] = {}

    # -- line addresses ------------------------------------------------------

    def lines(self) -> np.ndarray:
        """Line address column (``addr >> line_shift``), one numpy pass."""
        if self._lines is None:
            self._lines = self.trace.addr >> self.line_shift
        return self._lines

    def lines_list(self) -> List[int]:
        """Line addresses as plain ints (fastest form for the sim loop)."""
        if self._lines_list is None:
            self._lines_list = self.lines().tolist()
        return self._lines_list

    def gaps_list(self) -> List[int]:
        if self._gaps_list is None:
            self._gaps_list = self.trace.gap.tolist()
        return self._gaps_list

    def writes_list(self) -> List[int]:
        if self._writes_list is None:
            self._writes_list = self.trace.write.tolist()
        return self._writes_list

    # -- placement -----------------------------------------------------------

    def set_indices(self, num_sets: int) -> np.ndarray:
        """Set index per record for a power-of-two ``num_sets`` geometry."""
        cached = self._set_indices.get(num_sets)
        if cached is None:
            cached = self.lines() & (num_sets - 1)
            self._set_indices[num_sets] = cached
        return cached

    def tags(self, num_sets: int) -> np.ndarray:
        """Tag per record (line address above the set-index bits)."""
        cached = self._tags.get(num_sets)
        if cached is None:
            cached = self.lines() >> (num_sets - 1).bit_length()
            self._tags[num_sets] = cached
        return cached

    # -- issue front-end -----------------------------------------------------

    def issue_steps(self, issue_width: int) -> List[int]:
        """Cycles the issue front-end advances before each record.

        Equivalent to the scalar recurrence ``backlog += gap;
        step = backlog // width; backlog %= width`` — the running
        backlog is just the cumulative gap count modulo ``width``, so
        the per-record step is the difference of
        ``cumsum(gap) // width``.
        """
        cached = self._issue_steps.get(issue_width)
        if cached is None:
            if issue_width < 1:
                raise ValueError(
                    f"issue_width must be >= 1, got {issue_width}")
            issued = np.cumsum(self.trace.gap) // issue_width
            cached = np.diff(issued, prepend=0).tolist()
            self._issue_steps[issue_width] = cached
        return cached

    # -- warm-up -------------------------------------------------------------

    def warm_footprint(self, split: int) -> List[int]:
        """Line addresses of ``trace[:split]`` with consecutive runs
        collapsed (the warm-up loop probes each run once anyway)."""
        cached = self._footprints.get(split)
        if cached is None:
            prefix = self.lines()[:split]
            if len(prefix) == 0:
                cached = []
            else:
                keep = np.empty(len(prefix), dtype=bool)
                keep[0] = True
                np.not_equal(prefix[1:], prefix[:-1], out=keep[1:])
                cached = prefix[keep].tolist()
            self._footprints[split] = cached
        return cached
